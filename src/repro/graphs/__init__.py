"""Graph substrate: property checkers, distance-to-property, generators.

This package implements the graph-theoretic vocabulary of the paper:

- every verification predicate of Appendix A.2 (:mod:`repro.graphs.properties`),
- the ``delta``-far distance of Section 2.2 (:mod:`repro.graphs.distance`),
- weight utilities including the aspect ratio ``W`` (:mod:`repro.graphs.weights`),
- graph/instance generators used by tests and benchmarks
  (:mod:`repro.graphs.generators`).
"""

from repro.graphs.distance import delta_far_from_connected, delta_far_from_hamiltonian, is_delta_far
from repro.graphs.properties import (
    contains_cycle,
    contains_cycle_through_edge,
    edge_on_all_paths,
    is_bipartite_subgraph,
    is_connected_spanning_subgraph,
    is_cut,
    is_hamiltonian_cycle,
    is_simple_path,
    is_spanning_tree,
    is_st_cut,
    is_subgraph_connected,
    least_element_list,
    st_connected,
)
from repro.graphs.weights import aspect_ratio, assign_uniform_weights, total_weight

__all__ = [
    "is_hamiltonian_cycle",
    "is_spanning_tree",
    "is_connected_spanning_subgraph",
    "is_subgraph_connected",
    "contains_cycle",
    "contains_cycle_through_edge",
    "is_bipartite_subgraph",
    "st_connected",
    "is_cut",
    "is_st_cut",
    "edge_on_all_paths",
    "is_simple_path",
    "least_element_list",
    "delta_far_from_connected",
    "delta_far_from_hamiltonian",
    "is_delta_far",
    "aspect_ratio",
    "total_weight",
    "assign_uniform_weights",
]
