"""Verification predicates of Appendix A.2.

Every distributed verification problem in the paper asks whether a marked
subnetwork ``M`` of the network ``N`` satisfies some property.  This module
provides the centralised ground-truth checkers; the distributed algorithms in
:mod:`repro.algorithms.verification` are tested against them.

Subnetworks are represented as an edge collection (iterable of 2-tuples) over
the node set of ``N``.  Following Section 2.2, ``M`` always spans the node set
``V(N)`` (a node may simply have no incident ``M``-edge).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

import networkx as nx

Edge = tuple[Hashable, Hashable]


def subgraph_from_edges(network: nx.Graph, edges: Iterable[Edge]) -> nx.Graph:
    """Return the subnetwork ``M`` of ``network`` with the given edge set.

    Raises ``ValueError`` if an edge is not present in the network, mirroring
    the consistency requirement on the indicator variables ``x_{u,v}``.
    """
    sub = nx.Graph()
    sub.add_nodes_from(network.nodes())
    for u, v in edges:
        if not network.has_edge(u, v):
            raise ValueError(f"edge {(u, v)!r} is not an edge of the network")
        sub.add_edge(u, v)
    return sub


def _as_subgraph(network: nx.Graph, m: Iterable[Edge] | nx.Graph) -> nx.Graph:
    if isinstance(m, nx.Graph):
        missing = [n for n in network.nodes() if n not in m]
        if missing:
            sub = m.copy()
            sub.add_nodes_from(missing)
            return sub
        return m
    return subgraph_from_edges(network, m)


def is_hamiltonian_cycle(network: nx.Graph, m: Iterable[Edge] | nx.Graph) -> bool:
    """``M`` is a simple cycle of length ``n`` visiting every node of ``N``."""
    sub = _as_subgraph(network, m)
    n = network.number_of_nodes()
    if n < 3 or sub.number_of_edges() != n:
        return False
    if any(d != 2 for _, d in sub.degree()):
        return False
    return nx.is_connected(sub)


def is_spanning_tree(network: nx.Graph, m: Iterable[Edge] | nx.Graph) -> bool:
    """``M`` is a tree spanning all nodes of ``N``."""
    sub = _as_subgraph(network, m)
    n = network.number_of_nodes()
    return sub.number_of_edges() == n - 1 and nx.is_connected(sub)


def is_subgraph_connected(network: nx.Graph, m: Iterable[Edge] | nx.Graph) -> bool:
    """Connectivity verification: is ``M`` (over all of ``V(N)``) connected?"""
    sub = _as_subgraph(network, m)
    return nx.is_connected(sub)


def is_connected_spanning_subgraph(network: nx.Graph, m: Iterable[Edge] | nx.Graph) -> bool:
    """``M`` is connected and every node of ``N`` is incident to an ``M``-edge."""
    sub = _as_subgraph(network, m)
    if any(d == 0 for _, d in sub.degree()):
        return False
    return nx.is_connected(sub)


def contains_cycle(network: nx.Graph, m: Iterable[Edge] | nx.Graph) -> bool:
    """Cycle containment: does ``M`` contain any cycle?"""
    sub = _as_subgraph(network, m)
    n_components = nx.number_connected_components(sub)
    return sub.number_of_edges() > sub.number_of_nodes() - n_components


def contains_cycle_through_edge(
    network: nx.Graph, m: Iterable[Edge] | nx.Graph, e: Edge
) -> bool:
    """e-cycle containment: does ``M`` contain a cycle through edge ``e``?"""
    sub = _as_subgraph(network, m)
    u, v = e
    if not sub.has_edge(u, v):
        return False
    pruned = sub.copy()
    pruned.remove_edge(u, v)
    return nx.has_path(pruned, u, v)


def is_bipartite_subgraph(network: nx.Graph, m: Iterable[Edge] | nx.Graph) -> bool:
    """Bipartiteness verification for ``M``."""
    sub = _as_subgraph(network, m)
    return nx.is_bipartite(sub)


def st_connected(
    network: nx.Graph, m: Iterable[Edge] | nx.Graph, s: Hashable, t: Hashable
) -> bool:
    """s-t connectivity verification: are ``s`` and ``t`` connected in ``M``?"""
    sub = _as_subgraph(network, m)
    return nx.has_path(sub, s, t)


def is_cut(network: nx.Graph, m: Iterable[Edge] | nx.Graph) -> bool:
    """Cut verification: is ``N`` disconnected after removing ``E(M)``?"""
    sub = _as_subgraph(network, m)
    remainder = network.copy()
    remainder.remove_edges_from(sub.edges())
    return not nx.is_connected(remainder)


def is_st_cut(
    network: nx.Graph, m: Iterable[Edge] | nx.Graph, s: Hashable, t: Hashable
) -> bool:
    """s-t cut verification: removing ``E(M)`` from ``N`` separates ``s``, ``t``."""
    sub = _as_subgraph(network, m)
    remainder = network.copy()
    remainder.remove_edges_from(sub.edges())
    return not nx.has_path(remainder, s, t)


def edge_on_all_paths(
    network: nx.Graph, m: Iterable[Edge] | nx.Graph, u: Hashable, v: Hashable, e: Edge
) -> bool:
    """Edge-on-all-paths verification: ``e`` lies on every u-v path in ``M``.

    Equivalently (Appendix A.2): ``e`` is a u-v cut in ``M``.  If ``u`` and
    ``v`` are disconnected in ``M`` the statement is vacuously true.
    """
    sub = _as_subgraph(network, m)
    a, b = e
    if not sub.has_edge(a, b):
        # No path can use a non-edge; the property holds only if u, v are
        # already disconnected.
        return not nx.has_path(sub, u, v)
    pruned = sub.copy()
    pruned.remove_edge(a, b)
    return not nx.has_path(pruned, u, v)


def is_simple_path(network: nx.Graph, m: Iterable[Edge] | nx.Graph) -> bool:
    """``M`` is a simple path: no cycle, degrees in {0, 1, 2}, exactly two
    degree-1 endpoints and a single nontrivial component."""
    sub = _as_subgraph(network, m)
    degrees = dict(sub.degree())
    if any(d > 2 for d in degrees.values()):
        return False
    endpoints = [n for n, d in degrees.items() if d == 1]
    if len(endpoints) != 2:
        return False
    if contains_cycle(network, sub):
        return False
    # All edges must live in one component (isolated nodes are allowed).
    nontrivial = [c for c in nx.connected_components(sub) if len(c) > 1]
    return len(nontrivial) == 1


def least_element_list(
    network: nx.Graph, ranks: Mapping[Hashable, int], u: Hashable, weight: str = "weight"
) -> list[tuple[Hashable, float]]:
    """Compute the Least-Element list of ``u`` (Cohen [Coh97], Appendix A.2).

    ``v`` is a least element of ``u`` if ``v`` has the lowest rank among all
    vertices within (weighted) distance ``d(u, v)`` of ``u``.  The LE-list is
    ``{<v, d(u, v)>}`` over all least elements ``v``, returned sorted by
    distance.
    """
    dist = nx.single_source_dijkstra_path_length(network, u, weight=weight)
    ordered = sorted(dist.items(), key=lambda item: (item[1], ranks[item[0]]))
    result: list[tuple[Hashable, float]] = []
    best_rank: int | None = None
    for v, d in ordered:
        if best_rank is None or ranks[v] < best_rank:
            result.append((v, d))
            best_rank = ranks[v]
    return result


def verify_least_element_list(
    network: nx.Graph,
    ranks: Mapping[Hashable, int],
    u: Hashable,
    candidate: Iterable[tuple[Hashable, float]],
    weight: str = "weight",
) -> bool:
    """Least-element-list verification: is ``candidate`` the LE-list of ``u``?"""
    expected = least_element_list(network, ranks, u, weight=weight)
    return sorted(expected) == sorted(candidate)
