"""Instance generators for tests and benchmarks.

These produce the concrete workloads on which the paper's predicates,
algorithms and bound formulas are exercised: random connected graphs, weighted
graphs with a prescribed aspect ratio, kNN-geometric graphs (grid-indexed,
~O(n * k) construction), disjoint-cycle covers (gap-Hamiltonian inputs), and
random perfect matchings (Server-model Ham inputs).
"""

from __future__ import annotations

import math
import random
from typing import Hashable, Mapping

import networkx as nx

from repro.graphs.spatial import GridIndex

Edge = tuple[Hashable, Hashable]
Point = tuple[float, float]


def knn_geometric_graph(
    pos: Mapping[Hashable, Point], k: int = 3, index: GridIndex | None = None
) -> nx.Graph:
    """The k-nearest-neighbour graph of labelled planar points.

    Built from a :class:`~repro.graphs.spatial.GridIndex` in ~O(n * k)
    expected instead of the all-pairs O(n^2) scan, but byte-identical to
    it: nodes are added in ``pos`` iteration order, each node's edges in
    its brute-force candidate order (distance, then ``pos`` order on
    ties), so node order, edge orientation and edge insertion order all
    match ``sorted(others, key=distance)[:k]`` exactly.
    """
    if index is None:
        index = GridIndex(pos)
    graph = nx.Graph()
    graph.add_nodes_from(pos)
    for u in pos:
        for v in index.nearest(u, k):
            graph.add_edge(u, v)
    return graph


def connect_nearest_components(
    graph: nx.Graph, pos: Mapping[Hashable, Point], index: GridIndex | None = None
) -> None:
    """Bridge ``graph``'s components with their closest cross-pairs, in place.

    Repeats the classic kNN-graph repair -- join the first component to
    whichever other component has the closest point pair -- until the
    graph is connected, with each candidate pair found by a grid query
    instead of a component x component distance scan.  Tie-breaking
    reproduces the brute-force ``min`` over ``(a in comp0, b in later
    components)`` iteration order exactly.
    """
    if index is None:
        index = GridIndex(pos)
    while not nx.is_connected(graph):
        components = [sorted(c) for c in nx.connected_components(graph)]
        # Candidate rank = b's position in the brute-force iteration order
        # (components after the first, each ascending); doubles as the
        # "not in component 0" filter.
        b_rank: dict[Hashable, int] = {}
        for component in components[1:]:
            for b in component:
                b_rank[b] = len(b_rank)
        best = None
        for a_rank, a in enumerate(components[0]):
            hits = index.nearest(a, 1, rank=b_rank)
            if not hits:
                continue
            b = hits[0]
            key = (math.dist(pos[a], pos[b]), a_rank, b_rank[b])
            if best is None or key < best[0]:
                best = (key, a, b)
        assert best is not None, "disconnected graph with no cross-component pair"
        graph.add_edge(best[1], best[2])


def random_connected_graph(n: int, extra_edge_prob: float = 0.15, seed: int | None = None) -> nx.Graph:
    """A random connected graph: a random spanning tree plus random extra edges."""
    rng = random.Random(seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    nodes = list(range(n))
    rng.shuffle(nodes)
    for i in range(1, n):
        graph.add_edge(nodes[i], nodes[rng.randrange(i)])
    for u in range(n):
        for v in range(u + 1, n):
            if not graph.has_edge(u, v) and rng.random() < extra_edge_prob:
                graph.add_edge(u, v)
    return graph


def random_weighted_graph(
    n: int,
    aspect_ratio: float = 10.0,
    extra_edge_prob: float = 0.15,
    seed: int | None = None,
    weight: str = "weight",
) -> nx.Graph:
    """Random connected graph whose weights realise the given aspect ratio.

    Edge weights are drawn uniformly from ``[1, W]`` and one edge each is
    pinned to the extremes so the realised aspect ratio is exactly ``W``.
    """
    if aspect_ratio < 1:
        raise ValueError("aspect ratio must be at least 1")
    rng = random.Random(seed)
    graph = random_connected_graph(n, extra_edge_prob=extra_edge_prob, seed=seed)
    edges = list(graph.edges())
    for u, v in edges:
        graph.edges[u, v][weight] = rng.uniform(1.0, aspect_ratio)
    if len(edges) >= 2:
        graph.edges[edges[0]][weight] = 1.0
        graph.edges[edges[-1]][weight] = float(aspect_ratio)
    return graph


def disjoint_cycle_cover(n: int, n_cycles: int, seed: int | None = None) -> nx.Graph:
    """A graph that is a disjoint union of ``n_cycles`` cycles covering ``n`` nodes.

    These are the paper's gap-Hamiltonian inputs: for ``n_cycles == 1`` the
    graph is a Hamiltonian cycle; for ``c >= 2`` it is ``c``-far from one.
    Every cycle has length at least 3.
    """
    if n_cycles < 1 or n < 3 * n_cycles:
        raise ValueError("need n >= 3 * n_cycles and n_cycles >= 1")
    rng = random.Random(seed)
    nodes = list(range(n))
    rng.shuffle(nodes)
    sizes = [3] * n_cycles
    remaining = n - 3 * n_cycles
    for _ in range(remaining):
        sizes[rng.randrange(n_cycles)] += 1
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    start = 0
    for size in sizes:
        cycle = nodes[start : start + size]
        for i, u in enumerate(cycle):
            graph.add_edge(u, cycle[(i + 1) % size])
        start += size
    return graph


def random_perfect_matching(n: int, seed: int | None = None) -> list[Edge]:
    """A uniformly random perfect matching on nodes ``0..n-1`` (``n`` even)."""
    if n % 2 != 0:
        raise ValueError("perfect matching needs an even number of nodes")
    rng = random.Random(seed)
    nodes = list(range(n))
    rng.shuffle(nodes)
    return [(nodes[2 * i], nodes[2 * i + 1]) for i in range(n // 2)]


def matching_pair_for_cycles(n: int, n_cycles: int, seed: int | None = None) -> tuple[list[Edge], list[Edge]]:
    """Two perfect matchings on ``n`` nodes whose union is ``n_cycles`` cycles.

    This is the Server-model Hamiltonian input format (Definition 3.3, where
    Carol's and David's edge sets are both perfect matchings): the union of two
    perfect matchings is always a disjoint union of even cycles; we control the
    number of cycles to produce 1-inputs (Hamiltonian) or far inputs.
    """
    if n % 2 != 0 or n < 4 * n_cycles:
        raise ValueError("need even n >= 4 * n_cycles")
    rng = random.Random(seed)
    nodes = list(range(n))
    rng.shuffle(nodes)
    sizes = [4] * n_cycles
    remaining = (n - 4 * n_cycles) // 2
    for _ in range(remaining):
        sizes[rng.randrange(n_cycles)] += 2
    carol: list[Edge] = []
    david: list[Edge] = []
    start = 0
    for size in sizes:
        cycle = nodes[start : start + size]
        for i in range(0, size, 2):
            carol.append((cycle[i], cycle[i + 1]))
            david.append((cycle[i + 1], cycle[(i + 2) % size]))
        start += size
    return carol, david
