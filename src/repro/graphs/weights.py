"""Weight utilities: aspect ratio ``W`` and weight assignments (Section 2.2)."""

from __future__ import annotations

from typing import Hashable, Iterable

import networkx as nx

Edge = tuple[Hashable, Hashable]


def aspect_ratio(network: nx.Graph, weight: str = "weight") -> float:
    """The weight aspect ratio ``W = max_e w(e) / min_e w(e)``."""
    weights = [data[weight] for _, _, data in network.edges(data=True)]
    if not weights:
        raise ValueError("network has no edges")
    if min(weights) <= 0:
        raise ValueError("weights must be positive")
    return max(weights) / min(weights)


def total_weight(network: nx.Graph, edges: Iterable[Edge], weight: str = "weight") -> float:
    """Total weight of an edge collection."""
    return sum(network.edges[u, v][weight] for u, v in edges)


def assign_uniform_weights(network: nx.Graph, value: float = 1.0, weight: str = "weight") -> nx.Graph:
    """Assign the same weight to all edges (in place); returns the network."""
    for _, _, data in network.edges(data=True):
        data[weight] = value
    return network


def assign_gap_weights(
    network: nx.Graph,
    marked: Iterable[Edge],
    low: float = 1.0,
    high: float = 100.0,
    weight: str = "weight",
) -> nx.Graph:
    """Weight scheme of the Section 9.2 reduction.

    Marked (subnetwork) edges get weight ``low`` (= 1 in the paper); all other
    network edges get weight ``high`` (= W).  Used to turn an alpha-approximate
    MST algorithm into a gap-connectivity verifier.
    """
    if high < low:
        raise ValueError("high must be at least low")
    marked_set = {frozenset(e) for e in marked}
    for u, v, data in network.edges(data=True):
        data[weight] = low if frozenset((u, v)) in marked_set else high
    return network
