"""The ``delta``-far distance of Section 2.2.

A subnetwork ``M`` of ``N`` is *delta-far* from a property ``P`` if at least
``delta`` edges of ``N`` must be **added** to ``M`` (edge removals are free)
to make ``M`` satisfy ``P``.  The gap problem ``delta-P`` distinguishes
"``M`` satisfies ``P``" from "``M`` is delta-far from ``P``".

For the two properties driving the paper's reductions (connectivity and
Hamiltonian cycle) the distance has a closed form; a brute-force reference
implementation is provided for small instances.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Hashable, Iterable

import networkx as nx

from repro.graphs.properties import _as_subgraph, is_hamiltonian_cycle

Edge = tuple[Hashable, Hashable]


def delta_far_from_connected(network: nx.Graph, m: Iterable[Edge] | nx.Graph) -> int:
    """Exact distance of ``M`` from connectivity.

    Removals are free, so only the component structure matters: ``M`` with
    ``c`` components needs exactly ``c - 1`` added edges -- and, provided the
    component multigraph induced by ``N`` is connected (always true when ``N``
    is connected), ``c - 1`` additions from ``E(N)`` suffice.
    """
    if not nx.is_connected(network):
        raise ValueError("the network N is assumed connected")
    sub = _as_subgraph(network, m)
    return nx.number_connected_components(sub) - 1


def delta_far_from_hamiltonian(network: nx.Graph, m: Iterable[Edge] | nx.Graph) -> int:
    """Distance from being a Hamiltonian cycle, for cycle-cover inputs.

    The paper's gap-Hamiltonian instances (Section 7, Fig. 7) are unions of
    ``c`` vertex-disjoint cycles covering all nodes.  Merging ``c`` disjoint
    cycles into one needs at least ``c`` new edges (each splice replaces one
    edge per cycle and all cycles must be touched), and ``c`` suffice when the
    network provides splice edges.  For such inputs the distance is therefore
    ``c`` when ``c >= 2`` and 0 for a single spanning cycle.

    Raises ``ValueError`` on inputs that are not disjoint-cycle covers, where
    no closed form applies (use :func:`brute_force_delta_far`).
    """
    sub = _as_subgraph(network, m)
    if any(d != 2 for _, d in sub.degree()):
        raise ValueError("closed form requires a disjoint-cycle cover (all degrees 2)")
    c = nx.number_connected_components(sub)
    return 0 if c == 1 else c


def brute_force_delta_far(
    network: nx.Graph,
    m: Iterable[Edge] | nx.Graph,
    predicate: Callable[[nx.Graph, nx.Graph], bool],
    max_additions: int | None = None,
) -> int | None:
    """Reference delta-far computation by exhaustive search (tiny instances).

    Tries all subsets of ``E(N) \\ E(M)`` of increasing size as additions and,
    for each, all subsets of the resulting edge set as removals.  Returns the
    minimum number of additions, or ``None`` if no completion satisfies the
    predicate within ``max_additions``.
    """
    sub = _as_subgraph(network, m)
    candidates = [e for e in network.edges() if not sub.has_edge(*e)]
    limit = len(candidates) if max_additions is None else max_additions
    for k in range(limit + 1):
        for added in combinations(candidates, k):
            augmented = sub.copy()
            augmented.add_edges_from(added)
            if _satisfiable_with_removals(network, augmented, predicate):
                return k
    return None


def _satisfiable_with_removals(
    network: nx.Graph,
    augmented: nx.Graph,
    predicate: Callable[[nx.Graph, nx.Graph], bool],
) -> bool:
    """Check whether some removal subset of ``augmented`` satisfies the predicate."""
    edges = list(augmented.edges())
    for k in range(len(edges) + 1):
        for removed in combinations(edges, k):
            candidate = augmented.copy()
            candidate.remove_edges_from(removed)
            if predicate(network, candidate):
                return True
    return False


def is_delta_far(
    network: nx.Graph,
    m: Iterable[Edge] | nx.Graph,
    predicate: Callable[[nx.Graph, nx.Graph], bool],
    delta: int,
) -> bool:
    """Is ``M`` at least ``delta``-far from the property (brute force)?

    Intended for tiny instances and property tests; the closed-form helpers
    above should be preferred where they apply.
    """
    if delta <= 0:
        return True
    distance = brute_force_delta_far(network, m, predicate, max_additions=delta - 1)
    return distance is None


def gap_hamiltonian_label(network: nx.Graph, m: Iterable[Edge] | nx.Graph, delta: int) -> bool | None:
    """Promise-problem label for ``delta``-Ham (Section 2.2).

    Returns ``True`` for a Hamiltonian cycle, ``False`` if ``M`` is a
    disjoint-cycle cover with at least ``delta`` cycles (hence delta-far), and
    ``None`` when the input violates the promise.
    """
    if is_hamiltonian_cycle(network, m):
        return True
    try:
        distance = delta_far_from_hamiltonian(network, m)
    except ValueError:
        return None
    return False if distance >= delta else None
