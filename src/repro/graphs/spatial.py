"""Spatial indexes for geometric instance generators.

The kNN-geometric and component-bridging steps of the Boruvka sweep
instances used to be all-pairs O(n^2) scans; :class:`GridIndex` answers
the same queries from a stdlib uniform-grid bucketing in ~O(k) expected
per query, so topology construction is ~O(n * k).

Determinism contract: a query returns candidates ordered by
``(distance, rank)`` where ``rank`` is the point's insertion order (or a
caller-supplied rank map) -- exactly the order a stable
``sorted(candidates, key=distance)`` over insertion-ordered candidates
produces.  The generators rely on this to stay byte-identical to the
brute-force scans they replaced; the property tests in
``tests/test_graphs_spatial.py`` pin it down.

An ``rtree``-backed index with the same query contract is provided when
the optional ``rtree`` package is importable (it is not a dependency);
:func:`build_spatial_index` picks the grid by default and never requires
it.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Mapping

try:  # optional, never required: the stdlib grid is the reference
    from rtree import index as _rtree_index
except ImportError:  # pragma: no cover - rtree is absent in CI images
    _rtree_index = None

HAVE_RTREE = _rtree_index is not None

Point = tuple[float, float]


class GridIndex:
    """Uniform-grid bucketing over labelled 2D points.

    Cells are square with side ``cell`` (default: spread / sqrt(n), about
    one point per cell for uniform data).  :meth:`nearest` runs an
    expanding ring search: after scanning rings ``0..r``, every unscanned
    point is farther than ``r * cell`` from the query point, so the
    search stops as soon as the k-th best found distance is within that
    bound -- the result is exact, including tie order.
    """

    def __init__(self, points: Mapping[Hashable, Point], cell: float | None = None):
        self._points: dict[Hashable, Point] = dict(points)
        self._rank = {label: i for i, label in enumerate(self._points)}
        if cell is None:
            coords = list(self._points.values())
            if coords:
                xs = [p[0] for p in coords]
                ys = [p[1] for p in coords]
                spread = max(max(xs) - min(xs), max(ys) - min(ys))
            else:
                spread = 0.0
            cell = max(spread, 1e-9) / max(1.0, math.sqrt(max(1, len(coords))))
        if cell <= 0:
            raise ValueError("cell size must be positive")
        self.cell = cell
        self._buckets: dict[tuple[int, int], list[Hashable]] = {}
        for label, (x, y) in self._points.items():
            key = (math.floor(x / cell), math.floor(y / cell))
            bucket = self._buckets.get(key)
            if bucket is None:
                self._buckets[key] = [label]
            else:
                bucket.append(label)
        if self._buckets:
            keys = list(self._buckets)
            self._min_bx = min(k[0] for k in keys)
            self._max_bx = max(k[0] for k in keys)
            self._min_by = min(k[1] for k in keys)
            self._max_by = max(k[1] for k in keys)

    def __len__(self) -> int:
        return len(self._points)

    def nearest(
        self,
        origin: Hashable,
        k: int = 1,
        exclude: Iterable[Hashable] = (),
        rank: Mapping[Hashable, int] | None = None,
    ) -> list[Hashable]:
        """The ``k`` points nearest to ``origin`` (itself always excluded),
        ordered by ``(distance, rank)``.

        ``exclude`` drops candidates entirely (e.g. the querying node's own
        component); candidates missing from a caller-supplied ``rank`` map
        are dropped too, so a rank map doubles as a candidate filter.
        """
        return self.nearest_point(self._points[origin], k, exclude={origin, *exclude}, rank=rank)

    def nearest_point(
        self,
        point: Point,
        k: int = 1,
        exclude: Iterable[Hashable] = (),
        rank: Mapping[Hashable, int] | None = None,
    ) -> list[Hashable]:
        """:meth:`nearest` for an arbitrary query location."""
        if k < 1 or not self._buckets:
            return []
        excluded = exclude if isinstance(exclude, (set, frozenset)) else set(exclude)
        ranks: Mapping[Hashable, int] = self._rank if rank is None else rank
        x, y = point
        cell = self.cell
        cx = math.floor(x / cell)
        cy = math.floor(y / cell)
        max_r = max(
            abs(cx - self._min_bx),
            abs(cx - self._max_bx),
            abs(cy - self._min_by),
            abs(cy - self._max_by),
        )
        points = self._points
        buckets = self._buckets
        found: list[tuple[float, int, Hashable]] = []
        for r in range(max_r + 1):
            for key in _ring(cx, cy, r):
                for label in buckets.get(key, ()):
                    if label in excluded:
                        continue
                    candidate_rank = ranks.get(label)
                    if candidate_rank is None:
                        continue
                    # math.dist, not hypot: bit-identical to the brute-force
                    # scans these queries replaced, so tie order is too.
                    found.append((math.dist(point, points[label]), candidate_rank, label))
            if len(found) >= k:
                found.sort()
                # Unscanned cells are > r * cell away; nothing out there
                # can beat (or tie) the current k-th best.
                if found[k - 1][0] <= r * cell:
                    return [label for _, _, label in found[:k]]
        found.sort()
        return [label for _, _, label in found[:k]]


def _ring(cx: int, cy: int, r: int) -> Iterable[tuple[int, int]]:
    """Bucket keys at Chebyshev distance exactly ``r`` from ``(cx, cy)``."""
    if r == 0:
        yield (cx, cy)
        return
    for bx in range(cx - r, cx + r + 1):
        yield (bx, cy - r)
        yield (bx, cy + r)
    for by in range(cy - r + 1, cy + r):
        yield (cx - r, by)
        yield (cx + r, by)


class RTreeIndex:
    """The same query contract as :class:`GridIndex`, over ``rtree``.

    Only constructible when the optional ``rtree`` package is installed;
    the library's nearest-neighbour order is distance-only, so ties are
    re-broken by rank on an over-fetched candidate set to keep results
    identical to the grid.
    """

    def __init__(self, points: Mapping[Hashable, Point]):
        if _rtree_index is None:  # pragma: no cover - rtree absent in CI
            raise RuntimeError("the optional 'rtree' package is not installed")
        self._points = dict(points)
        self._rank = {label: i for i, label in enumerate(self._points)}
        self._labels = list(self._points)
        self._idx = _rtree_index.Index(
            (i, (x, y, x, y), None) for i, (x, y) in enumerate(self._points.values())
        )

    def __len__(self) -> int:
        return len(self._points)

    def nearest(self, origin, k=1, exclude=(), rank=None):  # pragma: no cover - optional dep
        return self.nearest_point(self._points[origin], k, exclude={origin, *exclude}, rank=rank)

    def nearest_point(self, point, k=1, exclude=(), rank=None):  # pragma: no cover - optional dep
        if k < 1 or not self._labels:
            return []
        excluded = set(exclude)
        ranks = self._rank if rank is None else rank
        x, y = point
        found: list[tuple[float, int, Hashable]] = []
        # Over-fetch so excluded/unranked hits and distance ties cannot
        # push a true top-k candidate out of the fetched window.
        fetch = k + len(excluded) + 8
        while True:
            ids = list(self._idx.nearest((x, y, x, y), num_results=min(fetch, len(self._labels))))
            found = []
            for i in ids:
                label = self._labels[i]
                if label in excluded:
                    continue
                candidate_rank = ranks.get(label)
                if candidate_rank is None:
                    continue
                found.append((math.dist(point, self._points[label]), candidate_rank, label))
            if len(found) >= k or fetch >= len(self._labels):
                break
            fetch *= 2
        found.sort()
        return [label for _, _, label in found[:k]]


def build_spatial_index(points: Mapping[Hashable, Point], prefer: str = "grid"):
    """Build a spatial index; ``prefer="rtree"`` uses it when available,
    silently falling back to the stdlib grid otherwise."""
    if prefer == "rtree" and HAVE_RTREE:
        return RTreeIndex(points)  # pragma: no cover - rtree absent in CI
    return GridIndex(points)
