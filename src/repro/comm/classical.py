"""Classical two-party protocols (upper bounds).

These are the baselines the paper's quantum protocols are measured against:
the trivial send-everything protocol (n + 1 bits, matching the Omega(n)
deterministic bounds), the public-coin randomized Equality protocol (O(k)
bits for error 2^-k), and exact evaluators for the inner-product problems.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.comm.protocols import Channel, TwoPartyProtocol


class SendAllProtocol(TwoPartyProtocol):
    """Alice ships her whole input; Bob evaluates and returns the answer.

    Cost ``n + 1`` bits -- the deterministic upper bound every boolean
    function admits, and the benchmark the Omega(n) lower bounds meet.
    """

    name = "send-all"

    def __init__(self, evaluate):
        self.evaluate = evaluate

    def execute(self, x: Sequence[int], y: Sequence[int], channel: Channel, rng: random.Random):
        received = channel.alice_sends(tuple(x), bits=max(1, len(x)))
        answer = self.evaluate(received, y)
        channel.bob_sends(answer, bits=1)
        return answer


class RandomizedEqualityProtocol(TwoPartyProtocol):
    """Public-coin Equality: ``k`` random inner-product checks.

    One-sided error: equal inputs always accept; unequal inputs are accepted
    with probability ``2^-k``.  Cost ``k + 1`` bits.
    """

    name = "randomized-equality"

    def __init__(self, repetitions: int = 10):
        if repetitions < 1:
            raise ValueError("need at least one repetition")
        self.repetitions = repetitions

    def execute(self, x: Sequence[int], y: Sequence[int], channel: Channel, rng: random.Random):
        n = len(x)
        # Public coins: both players see the same random vectors for free.
        coins = [[rng.randrange(2) for _ in range(n)] for _ in range(self.repetitions)]
        alice_parities = tuple(sum(r[i] * x[i] for i in range(n)) % 2 for r in coins)
        received = channel.alice_sends(alice_parities, bits=self.repetitions)
        bob_parities = tuple(sum(r[i] * y[i] for i in range(n)) % 2 for r in coins)
        answer = int(received == bob_parities)
        channel.bob_sends(answer, bits=1)
        return answer


class DeterministicDisjointnessProtocol(SendAllProtocol):
    """Disjointness by shipping ``x``: the Theta(n) classical cost of
    Example 1.1's baseline."""

    name = "deterministic-disjointness"

    def __init__(self):
        super().__init__(lambda x, y: int(all(a * b == 0 for a, b in zip(x, y))))


class DeterministicIPmod3Protocol(SendAllProtocol):
    """IPmod3 by shipping ``x`` (no better classical protocol exists:
    Theorem 6.1 gives Omega(n) even quantumly, even in the Server model)."""

    name = "deterministic-ipmod3"

    def __init__(self):
        super().__init__(lambda x, y: int(sum(a * b for a, b in zip(x, y)) % 3 == 0))


class HammingDistanceThresholdProtocol(TwoPartyProtocol):
    """Decides Gap-Eq exactly by shipping ``x`` (cost n + 1)."""

    name = "send-all-gap-equality"

    def execute(self, x: Sequence[int], y: Sequence[int], channel: Channel, rng: random.Random):
        received = channel.alice_sends(tuple(x), bits=max(1, len(x)))
        answer = int(tuple(received) == tuple(y))
        channel.bob_sends(answer, bits=1)
        return answer
