"""Quantum two-party protocols.

Two canonical quantum upper bounds the paper leans on:

- **Fingerprint Equality** [BCW98]: ``O(log n)`` qubits per repetition,
  one-sided error.
- **Grover Disjointness** [BCW98, AA05]: ``O(sqrt(n) log n)`` qubits.  Each
  Grover query to ``g(i) = x_i AND y_i`` is realised distributively: Alice
  holds the index register, ships it to Bob (``ceil(log n)`` qubits), Bob
  phases by ``y_i`` conditioned on his bit, ships it back, and Alice phases
  by ``x_i``.  This is the protocol that breaks the classical
  Simulation-Theorem argument (Example 1.1) and forces the paper to route
  hardness through IPmod3 instead of Disjointness.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.comm.protocols import Channel, TwoPartyProtocol
from repro.quantum.fingerprint import FingerprintEquality
from repro.quantum.grover import grover_find_any


class QuantumFingerprintEqualityProtocol(TwoPartyProtocol):
    """Equality via quantum fingerprints and swap tests.

    Alice sends ``repetitions`` fingerprint states of ``O(log n)`` qubits
    each; the referee-free variant has Bob perform the swap tests against his
    own fingerprints.
    """

    name = "quantum-fingerprint-equality"

    def __init__(self, n_bits: int, repetitions: int = 10, seed: int | None = None):
        self.scheme = FingerprintEquality(n_bits, seed=seed)
        self.repetitions = repetitions

    def execute(self, x: Sequence[int], y: Sequence[int], channel: Channel, rng: random.Random):
        per_state = self.scheme.fingerprint_qubits
        # Alice ships her fingerprint states; the payload records the inputs
        # they encode (the simulator carries amplitudes out-of-band).
        channel.alice_sends(("fingerprints", tuple(x)), bits=self.repetitions * per_state, quantum=True)
        verdict = int(self.scheme.are_equal(x, y, repetitions=self.repetitions, rng=rng))
        channel.bob_sends(verdict, bits=1)
        return verdict


class GroverDisjointnessProtocol(TwoPartyProtocol):
    """Disjointness in ``O(sqrt(n) log n)`` qubits via distributed Grover.

    Communication accounting per oracle query: the index register
    (``ceil(log2 n)`` qubits) makes a round trip plus one target qubit, so
    each query charges ``index_qubits + 1`` to Alice and ``index_qubits`` to
    Bob.  Correctness is exercised by running the actual Grover iteration on
    the statevector simulator (the distributed and local versions apply the
    same unitary).
    """

    name = "grover-disjointness"

    def execute(self, x: Sequence[int], y: Sequence[int], channel: Channel, rng: random.Random):
        n = len(x)
        index_qubits = max(1, math.ceil(math.log2(n)))

        def oracle(i: int) -> bool:
            return bool(x[i] and y[i])

        found, queries = grover_find_any(oracle, n, rng=rng)
        # Each query: Alice -> Bob (index register + target), Bob -> Alice (back).
        for _ in range(queries):
            channel.alice_sends("grover-query", bits=index_qubits + 1, quantum=True)
            channel.bob_sends("grover-reply", bits=index_qubits + 1, quantum=True)
        answer = int(found is None)  # disjoint iff no witness index exists
        channel.alice_sends(answer, bits=1)
        return answer

    @staticmethod
    def expected_communication(n: int) -> float:
        """The O(sqrt(n) log n) scaling target used by benchmarks."""
        return math.sqrt(n) * math.log2(max(2, n))
