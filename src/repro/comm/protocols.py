"""The two-party protocol framework with honest bit accounting.

A protocol is an object whose :meth:`TwoPartyProtocol.execute` drives Alice
and Bob through a shared :class:`Channel`.  The channel is the *only* way to
move information between the players, and it counts every bit (and qubit).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

ALICE = "alice"
BOB = "bob"


@dataclass
class TranscriptEntry:
    sender: str
    payload: Any
    bits: int
    quantum: bool


@dataclass
class ProtocolResult:
    output: Any
    alice_bits: int
    bob_bits: int
    alice_qubits: int
    bob_qubits: int
    transcript: list[TranscriptEntry] = field(default_factory=list)

    @property
    def total_bits(self) -> int:
        return self.alice_bits + self.bob_bits

    @property
    def total_qubits(self) -> int:
        return self.alice_qubits + self.bob_qubits

    @property
    def total_communication(self) -> int:
        """Bits plus qubits -- the model's cost measure."""
        return self.total_bits + self.total_qubits


class Channel:
    """A bidirectional channel between Alice and Bob with cost accounting."""

    def __init__(self) -> None:
        self.transcript: list[TranscriptEntry] = []
        self.bits = {ALICE: 0, BOB: 0}
        self.qubits = {ALICE: 0, BOB: 0}

    def send(self, sender: str, payload: Any, bits: int, quantum: bool = False) -> Any:
        """Record a transmission and hand the payload to the other player."""
        if sender not in (ALICE, BOB):
            raise ValueError("sender must be 'alice' or 'bob'")
        if bits < 1:
            raise ValueError("transmissions cost at least one bit")
        if quantum:
            self.qubits[sender] += bits
        else:
            self.bits[sender] += bits
        self.transcript.append(TranscriptEntry(sender, payload, bits, quantum))
        return payload

    def alice_sends(self, payload: Any, bits: int, quantum: bool = False) -> Any:
        return self.send(ALICE, payload, bits, quantum=quantum)

    def bob_sends(self, payload: Any, bits: int, quantum: bool = False) -> Any:
        return self.send(BOB, payload, bits, quantum=quantum)


class TwoPartyProtocol:
    """Base class for two-party protocols.

    Subclasses implement :meth:`execute`, which must route all information
    through the provided channel.  ``shared_randomness`` models the public
    coin (which shared entanglement subsumes, footnote 2 of the paper).
    """

    name = "abstract-protocol"

    def execute(self, x: Any, y: Any, channel: Channel, rng: random.Random) -> Any:
        raise NotImplementedError

    def run(self, x: Any, y: Any, seed: int | None = None) -> ProtocolResult:
        rng = random.Random(seed)
        channel = Channel()
        output = self.execute(x, y, channel, rng)
        return ProtocolResult(
            output=output,
            alice_bits=channel.bits[ALICE],
            bob_bits=channel.bits[BOB],
            alice_qubits=channel.qubits[ALICE],
            bob_qubits=channel.qubits[BOB],
            transcript=channel.transcript,
        )

    def error_rate(
        self,
        problem,
        trials: int = 200,
        seed: int = 0,
        input_sampler=None,
    ) -> float:
        """Empirical error rate over sampled inputs."""
        rng = random.Random(seed)
        sampler = input_sampler or problem.sample_input
        errors = 0
        for t in range(trials):
            x, y = sampler(rng)
            result = self.run(x, y, seed=rng.randrange(2**31))
            if result.output != problem.evaluate(x, y):
                errors += 1
        return errors / trials
