"""Two-party communication complexity substrate (Section 2.1, [KN97]).

Alice and Bob hold inputs ``x`` and ``y`` and exchange bits (or qubits) over
a channel with per-message accounting.  The Server model of the paper
(:mod:`repro.core.server_model`) extends this with a third, free-talking
party.

- :mod:`repro.comm.protocols`         -- the channel/transcript framework.
- :mod:`repro.comm.problems`          -- Eq, Disj, IP, IPmod3, Gap-Eq and the
  graph verification problems in edge-partition form (Definition 3.3).
- :mod:`repro.comm.classical`         -- classical protocols (upper bounds).
- :mod:`repro.comm.quantum_protocols` -- quantum fingerprinting Equality and
  the Grover-based Disjointness protocol behind Example 1.1.
- :mod:`repro.comm.lower_bounds`      -- fooling sets, log-rank, discrepancy.
"""

from repro.comm.problems import (
    DISJOINTNESS,
    EQUALITY,
    INNER_PRODUCT_MOD2,
    IPMOD3,
    GapEquality,
    Problem,
    hamiltonian_matching_problem,
)
from repro.comm.protocols import Channel, ProtocolResult, TwoPartyProtocol

__all__ = [
    "Channel",
    "ProtocolResult",
    "TwoPartyProtocol",
    "Problem",
    "EQUALITY",
    "DISJOINTNESS",
    "INNER_PRODUCT_MOD2",
    "IPMOD3",
    "GapEquality",
    "hamiltonian_matching_problem",
]
