"""Communication problems of the paper.

- ``Eq``     -- Equality on n-bit strings.
- ``Disj``   -- Set Disjointness (Example 1.1): is ``<x, y> = 0``?
- ``IP``     -- Inner Product mod 2.
- ``IPmod3`` -- Inner Product mod 3 (Section 6): output 1 iff
  ``sum_i x_i y_i = 0 (mod 3)``.
- ``Gap-Eq`` -- Equality under the promise ``x = y`` or ``dist(x,y) > delta``.
- Graph verification problems in the edge-partition encoding of
  Definition 3.3 (e.g. ``Ham_n`` where both players hold perfect matchings).

Each problem provides ``evaluate`` (ground truth), input samplers, and a
``matrix`` method producing the +-1 communication matrix used by the
lower-bound machinery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import networkx as nx
import numpy as np

Bits = tuple[int, ...]


def random_bits(n: int, rng: random.Random) -> Bits:
    return tuple(rng.randrange(2) for _ in range(n))


def hamming_distance(x: Sequence[int], y: Sequence[int]) -> int:
    return sum(1 for a, b in zip(x, y) if a != b)


@dataclass
class Problem:
    """A two-party boolean function with input structure."""

    name: str
    n: int
    evaluate: Callable[[Any, Any], int]
    sample_input: Callable[[random.Random], tuple[Any, Any]]
    sample_one_input: Callable[[random.Random], tuple[Any, Any]] | None = None
    sample_zero_input: Callable[[random.Random], tuple[Any, Any]] | None = None

    def matrix(self, inputs_x: Sequence[Any], inputs_y: Sequence[Any]) -> np.ndarray:
        """The +-1 communication matrix ``A_f[x, y] = (-1)^{f(x, y)}``."""
        return np.array(
            [[(-1.0) ** self.evaluate(x, y) for y in inputs_y] for x in inputs_x]
        )

    def boolean_matrix(self, inputs_x: Sequence[Any], inputs_y: Sequence[Any]) -> np.ndarray:
        return np.array([[self.evaluate(x, y) for y in inputs_y] for x in inputs_x])


def _all_bits(n: int) -> list[Bits]:
    return [tuple((i >> (n - 1 - k)) & 1 for k in range(n)) for i in range(1 << n)]


def all_inputs(n: int) -> list[Bits]:
    """All n-bit strings (for exhaustive small-case analysis)."""
    return _all_bits(n)


# -- Equality ----------------------------------------------------------------


def equality(n: int) -> Problem:
    def evaluate(x: Bits, y: Bits) -> int:
        return int(tuple(x) == tuple(y))

    def sample(rng: random.Random) -> tuple[Bits, Bits]:
        x = random_bits(n, rng)
        if rng.random() < 0.5:
            return x, x
        return x, random_bits(n, rng)

    def sample_one(rng: random.Random) -> tuple[Bits, Bits]:
        x = random_bits(n, rng)
        return x, x

    def sample_zero(rng: random.Random) -> tuple[Bits, Bits]:
        while True:
            x, y = random_bits(n, rng), random_bits(n, rng)
            if x != y:
                return x, y

    return Problem(f"Eq_{n}", n, evaluate, sample, sample_one, sample_zero)


# -- Disjointness ------------------------------------------------------------


def disjointness(n: int) -> Problem:
    def evaluate(x: Bits, y: Bits) -> int:
        return int(all(a * b == 0 for a, b in zip(x, y)))

    def sample(rng: random.Random) -> tuple[Bits, Bits]:
        return random_bits(n, rng), random_bits(n, rng)

    def sample_one(rng: random.Random) -> tuple[Bits, Bits]:
        x = random_bits(n, rng)
        y = tuple(0 if a else rng.randrange(2) for a in x)
        return x, y

    def sample_zero(rng: random.Random) -> tuple[Bits, Bits]:
        x = list(random_bits(n, rng))
        y = list(random_bits(n, rng))
        i = rng.randrange(n)
        x[i] = y[i] = 1
        return tuple(x), tuple(y)

    return Problem(f"Disj_{n}", n, evaluate, sample, sample_one, sample_zero)


# -- Inner products ----------------------------------------------------------


def inner_product_mod2(n: int) -> Problem:
    def evaluate(x: Bits, y: Bits) -> int:
        return sum(a * b for a, b in zip(x, y)) % 2

    def sample(rng: random.Random) -> tuple[Bits, Bits]:
        return random_bits(n, rng), random_bits(n, rng)

    return Problem(f"IP_{n}", n, evaluate, sample)


def ipmod3(n: int) -> Problem:
    """Inner Product mod 3 (Section 6): 1 iff ``sum x_i y_i = 0 (mod 3)``."""

    def evaluate(x: Bits, y: Bits) -> int:
        return int(sum(a * b for a, b in zip(x, y)) % 3 == 0)

    def sample(rng: random.Random) -> tuple[Bits, Bits]:
        return random_bits(n, rng), random_bits(n, rng)

    def sample_one(rng: random.Random) -> tuple[Bits, Bits]:
        while True:
            x, y = random_bits(n, rng), random_bits(n, rng)
            if evaluate(x, y) == 1:
                return x, y

    def sample_zero(rng: random.Random) -> tuple[Bits, Bits]:
        while True:
            x, y = random_bits(n, rng), random_bits(n, rng)
            if evaluate(x, y) == 0:
                return x, y

    return Problem(f"IPmod3_{n}", n, evaluate, sample, sample_one, sample_zero)


def ipmod3_promise_inputs(n: int) -> tuple[list[Bits], list[Bits]]:
    """The promise input families of Appendix B.3 (n divisible by 4).

    Alice's blocks of four bits come from {0011, 0101, 1100, 1010} and Bob's
    from {0001, 0010, 1000, 0100}; each block then contributes
    ``g(x_blk, y_blk) = OR_i (x_i AND y_i) in {0, 1}`` to the inner product.
    """
    if n % 4 != 0:
        raise ValueError("n must be divisible by 4")
    alice_blocks = [(0, 0, 1, 1), (0, 1, 0, 1), (1, 1, 0, 0), (1, 0, 1, 0)]
    bob_blocks = [(0, 0, 0, 1), (0, 0, 1, 0), (1, 0, 0, 0), (0, 1, 0, 0)]

    def expand(blocks: list[Bits], count: int) -> list[Bits]:
        strings: list[Bits] = [()]
        for _ in range(count):
            strings = [s + b for s in strings for b in blocks]
        return strings

    return expand(alice_blocks, n // 4), expand(bob_blocks, n // 4)


# -- Gap Equality ------------------------------------------------------------


@dataclass
class GapEquality:
    """``delta``-Eq (Section 6): promise ``x = y`` or ``dist(x, y) > delta``."""

    n: int
    delta: int

    @property
    def name(self) -> str:
        return f"GapEq_{self.n}_{self.delta}"

    def in_promise(self, x: Bits, y: Bits) -> bool:
        d = hamming_distance(x, y)
        return d == 0 or d > self.delta

    def evaluate(self, x: Bits, y: Bits) -> int:
        if not self.in_promise(x, y):
            raise ValueError("input violates the Gap-Eq promise")
        return int(tuple(x) == tuple(y))

    def sample_one_input(self, rng: random.Random) -> tuple[Bits, Bits]:
        x = random_bits(self.n, rng)
        return x, x

    def sample_zero_input(self, rng: random.Random) -> tuple[Bits, Bits]:
        x = list(random_bits(self.n, rng))
        y = list(x)
        flips = rng.sample(range(self.n), min(self.n, self.delta + 1))
        for i in flips:
            y[i] ^= 1
        return tuple(x), tuple(y)

    def sample_input(self, rng: random.Random) -> tuple[Bits, Bits]:
        if rng.random() < 0.5:
            return self.sample_one_input(rng)
        return self.sample_zero_input(rng)


# -- Graph problems (Definition 3.3) ----------------------------------------


Edge = tuple[int, int]


@dataclass
class MatchingGraphInstance:
    """A Server-model graph input: Carol and David each hold a perfect matching."""

    n: int
    carol_edges: list[Edge]
    david_edges: list[Edge]

    def union_graph(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(range(self.n))
        graph.add_edges_from(self.carol_edges)
        graph.add_edges_from(self.david_edges)
        return graph


def is_perfect_matching(n: int, edges: list[Edge]) -> bool:
    seen: set[int] = set()
    for u, v in edges:
        if u == v or u in seen or v in seen:
            return False
        seen.update((u, v))
    return len(seen) == n


def hamiltonian_matching_problem(n: int) -> Problem:
    """``Ham_n`` in the restricted form of Definition 3.3.

    Inputs are perfect matchings on ``n`` (even) nodes; the union of two
    perfect matchings is a disjoint union of even cycles, and the output is 1
    iff it is a single Hamiltonian cycle.
    """
    if n % 2 != 0 or n < 4:
        raise ValueError("Ham_n inputs need even n >= 4")

    def evaluate(carol: list[Edge], david: list[Edge]) -> int:
        if not (is_perfect_matching(n, carol) and is_perfect_matching(n, david)):
            raise ValueError("inputs must be perfect matchings")
        instance = MatchingGraphInstance(n, list(carol), list(david))
        union = instance.union_graph()
        return int(
            nx.is_connected(union) and all(d == 2 for _, d in union.degree())
        )

    def sample(rng: random.Random) -> tuple[list[Edge], list[Edge]]:
        nodes = list(range(n))
        rng.shuffle(nodes)
        carol = [(nodes[2 * i], nodes[2 * i + 1]) for i in range(n // 2)]
        rng.shuffle(nodes)
        david = [(nodes[2 * i], nodes[2 * i + 1]) for i in range(n // 2)]
        return carol, david

    return Problem(f"Ham_{n}", n, evaluate, sample)


# Convenience singletons at a default size used across tests.
EQUALITY = equality(16)
DISJOINTNESS = disjointness(16)
INNER_PRODUCT_MOD2 = inner_product_mod2(16)
IPMOD3 = ipmod3(16)
