"""Classical communication lower-bound tools.

Fooling sets (used by Theorem 6.1 through [KdW12]), log-rank, and
discrepancy.  These operate on explicit (small) communication matrices and
are cross-checked in tests against the known complexities of Eq, Disj and IP.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Callable, Sequence

import numpy as np


def is_fooling_set(
    evaluate: Callable[[Any, Any], int], pairs: Sequence[tuple[Any, Any]], value: int = 1
) -> bool:
    """Check the 1-fooling-set property of Section 6.

    Every pair evaluates to ``value``; for distinct pairs ``(x, y)`` and
    ``(x', y')`` at least one cross input evaluates differently.
    """
    for x, y in pairs:
        if evaluate(x, y) != value:
            return False
    for (x, y), (x2, y2) in itertools.combinations(pairs, 2):
        if evaluate(x, y2) == value and evaluate(x2, y) == value:
            return False
    return True


def greedy_fooling_set(
    evaluate: Callable[[Any, Any], int],
    candidates: Sequence[tuple[Any, Any]],
    value: int = 1,
) -> list[tuple[Any, Any]]:
    """Greedily grow a fooling set from candidate pairs."""
    chosen: list[tuple[Any, Any]] = []
    for x, y in candidates:
        if evaluate(x, y) != value:
            continue
        ok = True
        for cx, cy in chosen:
            if evaluate(x, cy) == value and evaluate(cx, y) == value:
                ok = False
                break
        if ok:
            chosen.append((x, y))
    return chosen


def fooling_set_bound(size: int) -> float:
    """Deterministic communication lower bound ``log2`` of the fooling-set size."""
    if size < 1:
        raise ValueError("fooling set must be nonempty")
    return math.log2(size)


def log_rank_bound(matrix: np.ndarray) -> float:
    """The log-rank lower bound for deterministic communication."""
    rank = np.linalg.matrix_rank(np.asarray(matrix, dtype=float))
    return math.log2(max(1, int(rank)))


def discrepancy(matrix: np.ndarray, distribution: np.ndarray | None = None) -> float:
    """Exact discrepancy under a distribution (exhaustive; tiny matrices only).

    ``disc_pi(f) = max_{S, T} |sum_{x in S, y in T} pi(x,y) (-1)^{f(x,y)}|``.
    """
    a = np.asarray(matrix, dtype=float)
    m, n = a.shape
    if m > 12 or n > 12:
        raise ValueError("exhaustive discrepancy is limited to 12x12 matrices")
    pi = np.full((m, n), 1.0 / (m * n)) if distribution is None else np.asarray(distribution)
    weighted = a * pi
    best = 0.0
    rows = list(range(m))
    cols = list(range(n))
    for r_mask in range(1, 1 << m):
        row_set = [i for i in rows if (r_mask >> i) & 1]
        partial = weighted[row_set, :].sum(axis=0)
        for c_mask in range(1, 1 << n):
            col_set = [j for j in cols if (c_mask >> j) & 1]
            value = abs(partial[col_set].sum())
            if value > best:
                best = value
    return best


def spectral_discrepancy_bound(matrix: np.ndarray) -> float:
    """The spectral upper bound ``disc(A) <= ||A|| / sqrt(mn)`` (uniform pi).

    Tight for the inner-product (Hadamard) matrix, giving its Omega(n)
    discrepancy bound.
    """
    a = np.asarray(matrix, dtype=float)
    m, n = a.shape
    spectral_norm = np.linalg.norm(a, 2)
    return float(spectral_norm / math.sqrt(m * n))


def discrepancy_communication_bound(disc: float) -> float:
    """Randomized communication lower bound ``log2(1 / disc) - O(1)``
    (for constant-bias protocols)."""
    if disc <= 0:
        raise ValueError("discrepancy must be positive")
    return max(0.0, math.log2(1.0 / disc))
