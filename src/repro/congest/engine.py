"""The scheduler layer: pluggable round engines over the transport.

The middle of the three-layer CONGEST stack.  An :class:`Engine` decides
*which* nodes are stepped *when*; the transport (bit accounting) below and
the program API (algorithm logic) above are engine-agnostic, so both
engines produce the same :class:`RunResult` for the same program:

- :class:`DenseEngine` -- the reference semantics: every non-halted node is
  stepped every round.  Cost grows with ``n x rounds`` even when almost
  every node is idle.
- :class:`EventEngine` -- maintains an active-node set and steps a node
  only if it has deliveries this round or its program declared the round
  non-idle (via :meth:`repro.congest.node.NodeProgram.next_active_round`).
  Rounds in which nothing happens are skipped in O(1) by jumping the clock
  to the next delivery or program wake-up, with the transport accounting
  the skipped stretch exactly.
- :class:`ParallelEngine` -- the event engine's active-set semantics with
  the per-round step phase sharded across a thread pool.  Nodes are
  share-nothing within a round (each step touches only its own node, rng
  and staged sends), so shards run concurrently; outboxes are merged at
  the round barrier in node-id order, keeping every metric -- including
  the opt-in message log -- byte-identical to the serial engines.
- :class:`ColumnarEngine` -- the event engine's clock over the
  struct-of-arrays :class:`~repro.congest.columnar.ColumnarTransport`
  (flat staging columns, lazy per-edge head accounting, a completion-clock
  heap) plus the batched :class:`~repro.congest.columnar.MinEdgeIndex`
  reduction service for the Boruvka/GKP fragment-minimum phases.  Engines
  declare their transport via the ``transport_class`` attribute and their
  reduction opt-in via ``uses_min_edge_index``; the network builds both.

All engines express a round's work as a :class:`StepPlan` (the batched step
ABI): the ordered active set plus that round's inboxes.  :func:`step_batch`
is the one inner loop that actually calls ``on_round``; serial engines run
it over the whole plan, the parallel engine over contiguous shards of it.

Equivalence contract: a program's idleness hint must only skip rounds whose
``on_round`` call would have been a no-op (no sends, no halting, no change
to future behaviour) -- the default hint claims no idle rounds, so arbitrary
programs run identically on every engine, and hinted programs are covered
by the cross-engine equivalence suite (``tests/test_engine_equivalence.py``).
"""

from __future__ import annotations

import heapq
import os
import sys
import time
from concurrent.futures import ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable, Sequence

from repro.congest.columnar import ColumnarTransport, _transport_kernels
from repro.congest.kernels import numpy_available
from repro.congest.transport import LinkTransport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.congest.message import Received
    from repro.congest.network import CongestNetwork


@dataclass
class RunResult:
    """Metrics of one distributed execution."""

    rounds: int
    total_messages: int
    total_bits: int
    outputs: dict[Hashable, Any]
    halted: bool
    max_edge_bits_per_round: int = 0
    per_round_bits: list[int] = field(default_factory=list)
    #: Injected-fault counters (see :class:`repro.congest.faults.FaultStats`);
    #: ``None`` for fault-free runs *and* for an empty plan, so an empty
    #: ``FaultPlan`` run stays byte-identical to a no-plan run.
    fault_stats: dict[str, int] | None = None

    def output_values(self) -> set:
        return set(self.outputs.values())

    def unanimous_output(self) -> Any:
        """The common output of all nodes; raises if nodes disagree."""
        values = {repr(v) for v in self.outputs.values()}
        if len(values) != 1:
            raise ValueError(f"nodes disagree: {sorted(values)[:5]}")
        return next(iter(self.outputs.values()))


@dataclass
class StepPlan:
    """One round's batch of node steps: the batched step ABI.

    ``node_ids`` is the active set in canonical (node-id) order, already
    filtered to non-halted nodes; ``inboxes`` maps node id to that round's
    deliveries.  A plan is immutable input to the step phase: any engine --
    serial or sharded -- that executes it via :func:`step_batch` produces
    the same program-visible behaviour.
    """

    round_no: int
    node_ids: list[Hashable]
    inboxes: dict[Hashable, list["Received"]]


def step_batch(
    network: "CongestNetwork", plan: StepPlan, node_ids: Sequence[Hashable] | None = None
) -> int:
    """Step ``node_ids`` (default: the whole plan) serially; returns the
    number of nodes stepped.

    The single ``on_round`` dispatch loop shared by every engine.  A shard
    of a parallel round is just a contiguous slice of ``plan.node_ids``
    passed through ``node_ids``; within the slice nodes step in plan order.
    """
    nodes = network.nodes
    programs = network.programs
    inboxes = plan.inboxes
    round_no = plan.round_no
    stepped = 0
    for nid in plan.node_ids if node_ids is None else node_ids:
        node = nodes[nid]
        if node.halted:
            continue
        programs[nid].on_round(node, round_no, inboxes.get(nid, []))
        stepped += 1
    return stepped


class Engine:
    """Steps node programs against the transport clock.

    Engines are instrumented for :mod:`repro.obs`: hot paths sample one
    ``round`` trace line per executed round (gated on
    ``network.trace.enabled``, so the no-op tracer costs one attribute read
    per round), and :meth:`_result` reports every run's headline metrics
    through :meth:`repro.obs.trace.Tracer.run_summary` unconditionally --
    that once-per-run call is how sweep outcomes learn engine round/skip
    counts even with tracing off.
    """

    name = "abstract"
    #: Transport the network builds for this engine; engines with bespoke
    #: storage layouts (the columnar engine) override it.
    transport_class = LinkTransport
    #: Whether MST-family programs should route fragment-minimum queries
    #: through the network's pre-sorted :class:`MinEdgeIndex` instead of
    #: the legacy per-neighbour scan.  Off for the reference engines so
    #: cross-engine comparisons measure the columnar stack honestly.
    uses_min_edge_index = False
    #: ``on_round`` calls made (all engines) / quiet rounds jumped in O(1)
    #: (event-clock engines; always 0 for the dense engine).
    node_steps = 0
    skipped_rounds = 0

    def run(self, network: "CongestNetwork", max_rounds: int, stop_on_quiescence: bool) -> RunResult:
        raise NotImplementedError

    def build_transport(self, bandwidth: int, strict: bool = False, record_messages: bool = False):
        """Construct this engine's transport.  Engines whose transport takes
        extra configuration (the columnar engine's kernel choice) override
        this instead of making the network aware of it."""
        return self.transport_class(bandwidth, strict=strict, record_messages=record_messages)

    def _execute_plan(self, network: "CongestNetwork", plan: StepPlan) -> None:
        """Run one round's step phase; subclasses may shard or batch it."""
        step_batch(network, plan)

    def _result(self, network: "CongestNetwork", rounds: int) -> RunResult:
        transport = network.transport
        halted = all(node.halted for node in network.nodes.values())
        network.trace.run_summary(
            engine=self.name,
            rounds=rounds,
            skipped_rounds=self.skipped_rounds,
            node_steps=self.node_steps,
            total_bits=transport.total_bits,
            total_msgs=transport.total_messages,
            halted=halted,
        )
        return RunResult(
            rounds=rounds,
            total_messages=transport.total_messages,
            total_bits=transport.total_bits,
            outputs={nid: node.output for nid, node in network.nodes.items()},
            halted=halted,
            max_edge_bits_per_round=transport.max_edge_bits_per_round,
            per_round_bits=transport.per_round_bits,
            fault_stats=getattr(transport, "fault_summary", None),
        )

    @staticmethod
    def _start(network: "CongestNetwork") -> None:
        transport = network.transport
        trace = network.trace
        if trace.enabled:
            pre_msgs, pre_bits = transport.total_messages, transport.total_bits
        for node_id, program in network.programs.items():
            program.on_start(network.nodes[node_id])
        transport.flush()
        if trace.enabled:
            trace.event(
                "start",
                sent_msgs=transport.total_messages - pre_msgs,
                sent_bits=transport.total_bits - pre_bits,
            )


class DenseEngine(Engine):
    """The reference scheduler: every non-halted node steps every round."""

    name = "dense"

    def __init__(self) -> None:
        self.node_steps = 0

    def _execute_plan(self, network: "CongestNetwork", plan: StepPlan) -> None:
        self.node_steps += step_batch(network, plan)

    def run(self, network: "CongestNetwork", max_rounds: int, stop_on_quiescence: bool) -> RunResult:
        transport = network.transport
        trace = network.trace
        tracing = trace.enabled
        fault_plan = network.faults
        # The crash predicate, hoisted so fault-free runs pay one None check.
        crashed = fault_plan.crashed if fault_plan is not None and fault_plan.has_crashes else None
        has_events = fault_plan is not None and (fault_plan.crashes or fault_plan.topology_events)
        self._start(network)

        round_no = 0
        while round_no < max_rounds:
            if all(node.halted for node in network.nodes.values()):
                break
            if (
                stop_on_quiescence
                and round_no > 0
                and transport.per_round_bits
                and transport.per_round_bits[-1] == 0
                and transport.pending_traffic() == 0
                and not transport.has_outgoing()
                # A pending crash/recovery/topology event can re-animate a
                # silent network; keep the clock running until the schedule
                # is exhausted.
                and (not has_events or fault_plan.next_event_round(round_no) is None)
            ):
                round_no -= 1  # the silent probe round does not count
                break
            round_no += 1
            network.current_round = round_no
            if fault_plan is not None and fault_plan.topology_events:
                network.apply_topology_events(round_no)
            if tracing:
                pre_msgs, pre_bits = transport.total_messages, transport.total_bits
            inboxes = transport.deliver_round()
            plan = StepPlan(
                round_no,
                [
                    nid
                    for nid, node in network.nodes.items()
                    if not node.halted and (crashed is None or not crashed(nid, round_no))
                ],
                inboxes,
            )
            self._execute_plan(network, plan)
            transport.flush()
            if tracing:
                trace.emit(
                    "round",
                    round=round_no,
                    active=len(plan.node_ids),
                    delivered=sum(len(msgs) for msgs in inboxes.values()),
                    moved_bits=transport.per_round_bits[-1],
                    sent_msgs=transport.total_messages - pre_msgs,
                    sent_bits=transport.total_bits - pre_bits,
                )

        return self._result(network, round_no)


class EventEngine(Engine):
    """Active-set scheduler with an O(1) fast path over quiet rounds.

    A round is *interesting* if a message completes on some link or some
    program scheduled a wake-up for it.  The engine jumps the clock from
    one interesting round to the next (the transport accounts the skipped
    stretch), delivers, and steps -- in the network's canonical node order,
    so interleavings match the dense engine exactly -- only the nodes that
    received something or asked to be woken.

    ``node_steps`` counts ``on_round`` calls and ``skipped_rounds`` the
    quiet rounds jumped in O(1), both for introspection; on mostly quiet
    workloads ``node_steps`` is far below the dense engine's ``n x rounds``.
    """

    name = "event"

    def __init__(self) -> None:
        self.node_steps = 0
        self.skipped_rounds = 0

    def _execute_plan(self, network: "CongestNetwork", plan: StepPlan) -> None:
        self.node_steps += step_batch(network, plan)

    def _skip(self, network: "CongestNetwork", after_round: int, rounds: int) -> None:
        """Jump ``rounds`` quiet rounds, counting and tracing the stretch."""
        moved = network.transport.skip_rounds(rounds)
        self.skipped_rounds += rounds
        trace = network.trace
        if trace.enabled:
            trace.emit("skip", after_round=after_round, rounds=rounds, moved_bits=moved)

    def run(self, network: "CongestNetwork", max_rounds: int, stop_on_quiescence: bool) -> RunResult:
        transport = network.transport
        trace = network.trace
        tracing = trace.enabled
        fault_plan = network.faults
        crashed = fault_plan.crashed if fault_plan is not None and fault_plan.has_crashes else None
        has_events = fault_plan is not None and (fault_plan.crashes or fault_plan.topology_events)
        forced_wakes = fault_plan.forced_wakes() if has_events else {}
        self._start(network)

        order = {nid: i for i, nid in enumerate(network.nodes)}
        wake: dict[Hashable, int | None] = {}
        heap: list[tuple[int, int, Hashable]] = []

        def schedule(nid: Hashable, after_round: int) -> None:
            node = network.nodes[nid]
            if node.halted:
                wake[nid] = None
                return
            nxt = network.programs[nid].next_active_round(node, after_round)
            if nxt is not None and nxt <= after_round:  # defensive: never stall the clock
                nxt = after_round + 1
            wake[nid] = nxt
            if nxt is not None:
                heapq.heappush(heap, (nxt, order[nid], nid))

        for nid in network.nodes:
            schedule(nid, 0)
        live = sum(1 for node in network.nodes.values() if not node.halted)

        round_no = 0
        while round_no < max_rounds:
            if live == 0:
                break
            if (
                stop_on_quiescence
                and round_no > 0
                and transport.per_round_bits
                and transport.per_round_bits[-1] == 0
                and transport.pending_traffic() == 0
                and not transport.has_outgoing()
                # Match the dense engine: a scheduled crash/recovery/topology
                # event can re-animate a silent network.
                and (not has_events or fault_plan.next_event_round(round_no) is None)
            ):
                round_no -= 1  # the silent probe round does not count
                break

            # Next interesting round: earliest delivery, program wake-up, or
            # scheduled fault event (crash start/recovery, topology change) --
            # the skip fast path must never leap over any of them.
            until = transport.rounds_until_delivery()
            delivery_round = None if until is None else round_no + until
            while heap and (wake.get(heap[0][2]) != heap[0][0] or network.nodes[heap[0][2]].halted):
                heapq.heappop(heap)
            program_round = heap[0][0] if heap else None
            fault_round = fault_plan.next_event_round(round_no) if has_events else None

            if stop_on_quiescence and transport.pending_traffic() == 0:
                # The dense engine probes the very next round and stops on
                # silence; jumping over it would skip that termination point.
                target = round_no + 1
            elif delivery_round is None and program_round is None and fault_round is None:
                # Nothing will ever happen again: idle out the clock.
                self._skip(network, round_no, max_rounds - round_no)
                round_no = max_rounds
                break
            else:
                candidates = [
                    r for r in (delivery_round, program_round, fault_round) if r is not None
                ]
                target = min(candidates)

            if target > max_rounds:
                self._skip(network, round_no, max_rounds - round_no)
                round_no = max_rounds
                break
            if target > round_no + 1:
                self._skip(network, round_no, target - round_no - 1)
            round_no = target
            network.current_round = round_no
            if fault_plan is not None and fault_plan.topology_events:
                network.apply_topology_events(round_no)

            if tracing:
                pre_msgs, pre_bits = transport.total_messages, transport.total_bits
            inboxes = transport.deliver_round()
            step = set(inboxes)
            while heap and heap[0][0] <= round_no:
                rnd, _, nid = heapq.heappop(heap)
                if rnd == round_no and wake.get(nid) == rnd and not network.nodes[nid].halted:
                    step.add(nid)
            if has_events:
                # Recovered nodes and topology-event endpoints must be stepped
                # even without a delivery: their wake entries may have gone
                # stale while they were down, and their neighbourhood changed.
                step.update(
                    nid for nid in forced_wakes.get(round_no, ()) if nid in network.nodes
                )
            plan = StepPlan(
                round_no,
                sorted(
                    (
                        nid
                        for nid in step
                        if not network.nodes[nid].halted
                        and (crashed is None or not crashed(nid, round_no))
                    ),
                    key=order.__getitem__,
                ),
                inboxes,
            )
            # The step phase: share-nothing within the round, so subclasses
            # may shard it across threads.  Bookkeeping (halt accounting and
            # wake-up scheduling) stays serial, after the barrier.
            self._execute_plan(network, plan)
            for nid in plan.node_ids:
                if network.nodes[nid].halted:
                    live -= 1
                    wake[nid] = None
                else:
                    schedule(nid, round_no)
            transport.flush()
            if tracing:
                trace.emit(
                    "round",
                    round=round_no,
                    active=len(plan.node_ids),
                    delivered=sum(len(msgs) for msgs in inboxes.values()),
                    moved_bits=transport.per_round_bits[-1],
                    sent_msgs=transport.total_messages - pre_msgs,
                    sent_bits=transport.total_bits - pre_bits,
                )

        return self._result(network, round_no)


class ParallelEngine(EventEngine):
    """Active-set engine whose step phase is sharded across a thread pool.

    Inherits the event engine's clock (active set, O(1) skips, quiescence
    probing) and replaces only the step phase: each round's plan is
    partitioned into ``threads`` contiguous shards of the node-id-ordered
    active set, shards are stepped concurrently, and each thread's sends are
    staged in a :class:`~repro.congest.transport.ShardOutbox` merged at the
    round barrier in shard (= node-id) order.  Because nodes are
    share-nothing within a round, every ``RunResult`` field -- and the
    opt-in message log -- is identical to the serial engines, regardless of
    thread count or interleaving.

    ``threads`` defaults to the host CPU count.  Rounds whose active set is
    smaller than ``min_parallel_nodes`` are stepped inline: a shard
    dispatch costs more than a handful of node steps, so mostly-quiet
    rounds should not pay for the pool.  The threshold defaults to
    ``4 * threads`` where OS threads can actually run Python bytecode
    concurrently (a free-threaded build), and to "never shard" on
    GIL-serialised builds -- there the shards would serialise on the
    interpreter lock and the dispatch overhead is pure loss, so the engine
    sits at event-engine parity instead.  Pass ``min_parallel_nodes``
    explicitly to force sharding regardless (as the equivalence tests do).
    """

    name = "parallel"

    def __init__(self, threads: int | None = None, min_parallel_nodes: int | None = None) -> None:
        super().__init__()
        if threads is not None and threads < 1:
            raise ValueError("threads must be at least 1")
        self.threads = threads if threads is not None else (os.cpu_count() or 1)
        if min_parallel_nodes is not None:
            self.min_parallel_nodes: float = max(1, min_parallel_nodes)
        elif getattr(sys, "_is_gil_enabled", lambda: True)():
            self.min_parallel_nodes = float("inf")
        else:
            self.min_parallel_nodes = 4 * self.threads
        self._pool: ThreadPoolExecutor | None = None

    def run(self, network: "CongestNetwork", max_rounds: int, stop_on_quiescence: bool) -> RunResult:
        if self.threads == 1 or self.min_parallel_nodes == float("inf"):
            # One shard is the event engine; likewise a threshold no round
            # can reach (the GIL-build default).  Skip the pool entirely.
            return super().run(network, max_rounds, stop_on_quiescence)
        self._pool = ThreadPoolExecutor(
            max_workers=self.threads, thread_name_prefix="congest-shard"
        )
        try:
            return super().run(network, max_rounds, stop_on_quiescence)
        finally:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _execute_plan(self, network: "CongestNetwork", plan: StepPlan) -> None:
        pool = self._pool
        ids = plan.node_ids
        if pool is None or len(ids) < self.min_parallel_nodes:
            self.node_steps += step_batch(network, plan)
            return
        trace = network.trace
        tracing = trace.enabled
        shard_size = -(-len(ids) // self.threads)  # ceil: at most `threads` shards
        shards = [ids[i : i + shard_size] for i in range(0, len(ids), shard_size)]
        transport = network.transport
        transport.begin_shard_staging()
        try:
            # The calling thread works shard 0 itself instead of blocking on
            # the pool -- one fewer dispatch round-trip per round.
            futures = [
                pool.submit(self._step_shard, network, plan, shard, tracing)
                for shard in shards[1:]
            ]
            try:
                first = self._step_shard(network, plan, shards[0], tracing)
            finally:
                # Barrier: every shard must have stopped touching the
                # transport before staging ends, even if one raised.
                wait(futures)
        finally:
            transport.end_shard_staging()
        results = [first] + [future.result() for future in futures]
        # Merge in shard (= node-id) order, stopping at the earliest failed
        # shard: the merged staging -- totals, message log -- then matches
        # what the serial engines would have accumulated up to the failing
        # node's step, and that shard's error propagates as theirs would.
        # (Later shards' *program* state may have advanced concurrently;
        # only an aborting run observes that, and only via node state.)
        merged = []
        error = None
        for outbox, stepped, exc, _ in results:
            merged.append((outbox, stepped))
            if exc is not None:
                error = exc
                break
        merge_t0 = time.perf_counter() if tracing else 0.0
        transport.merge_shard_outboxes(box for box, _ in merged)
        self.node_steps += sum(stepped for _, stepped in merged)
        if tracing:
            trace.emit(
                "event",
                name="shard_round",
                round=plan.round_no,
                shards=len(shards),
                shard_nodes=[len(shard) for shard in shards],
                shard_s=[round(r[3], 6) for r in results],
                merge_s=round(time.perf_counter() - merge_t0, 6),
            )
        if error is not None:
            raise error

    @staticmethod
    def _step_shard(
        network: "CongestNetwork", plan: StepPlan, shard: list[Hashable], timed: bool = False
    ):
        """Step one shard behind a thread-local outbox.

        Failures are returned, not raised: the outbox must survive (it holds
        the sends staged before the failing node, which the serial engines
        would have counted) and the caller decides merge order and which
        error wins.  ``timed`` adds per-shard wall-clock (two clock reads);
        it is passed only when the run is traced so the untraced hot path
        stays clock-free.
        """
        transport = network.transport
        outbox = transport.open_shard_outbox()
        stepped = 0
        error: BaseException | None = None
        t0 = time.perf_counter() if timed else 0.0
        try:
            stepped = step_batch(network, plan, shard)
        except BaseException as exc:  # noqa: BLE001 - re-raised by the caller
            error = exc
        finally:
            transport.close_shard_outbox()
        return outbox, stepped, error, (time.perf_counter() - t0 if timed else 0.0)


class ColumnarEngine(EventEngine):
    """Event-clock engine over the struct-of-arrays transport.

    Scheduling is inherited unchanged from :class:`EventEngine` (active
    set, O(1) quiet-round skips, quiescence probing); what changes is the
    data layout underneath: the network builds a
    :class:`~repro.congest.columnar.ColumnarTransport` (``transport_class``),
    so staging is flat column appends, executed rounds cost O(completing
    edges) instead of O(live edges), and the per-round quiescence probes
    (``pending_traffic`` / ``rounds_until_delivery``) are O(1).  The
    engine also opts in to the network's pre-sorted
    :class:`~repro.congest.columnar.MinEdgeIndex`
    (``uses_min_edge_index``), which the Boruvka/GKP fragment-minimum
    phases consult instead of constructing an edge key per neighbour per
    iteration.

    Equivalence contract unchanged: every ``RunResult`` field and the
    opt-in message log are byte-identical to the dense reference.  When
    tracing is on, the transport emits one ``columnar_batch`` event per
    non-empty flush and the run ends with a ``columnar_summary`` event.
    """

    name = "columnar"
    transport_class = ColumnarTransport
    uses_min_edge_index = True

    def __init__(self, kernels: str | None = "auto") -> None:
        super().__init__()
        #: Kernel implementation, resolved ONCE here (never re-probed per
        #: call): the transport's batch scans, the network's pre-sorted
        #: min-edge index and the kernel-aware reductions all inherit it.
        #: Resolution goes through the columnar module's gate so its
        #: numpy-availability flag is the single source of truth.
        self.kernels = _transport_kernels(kernels)

    def build_transport(self, bandwidth: int, strict: bool = False, record_messages: bool = False):
        return ColumnarTransport(
            bandwidth, strict=strict, record_messages=record_messages, kernels=self.kernels
        )

    def run(self, network: "CongestNetwork", max_rounds: int, stop_on_quiescence: bool) -> RunResult:
        result = super().run(network, max_rounds, stop_on_quiescence)
        # Unwrap the fault seam (if any): the columnar counters live on the
        # inner transport the wrapper re-emits into.
        transport = getattr(network.transport, "inner", network.transport)
        trace = network.trace
        if trace.enabled and isinstance(transport, ColumnarTransport):
            trace.event(
                "columnar_summary",
                kernels=transport.kernels.name,
                flush_batches=transport.flush_batches,
                max_batch=transport.max_flush_messages,
                peak_live_edges=transport.peak_live_edges,
                block_batches=transport.block_batches,
                stage_reuse_ratio=round(transport.stage_reuse_ratio, 4),
            )
        return result


_ENGINES = {
    "dense": DenseEngine,
    "event": EventEngine,
    "parallel": ParallelEngine,
    "columnar": ColumnarEngine,
    # Kernel-pinned columnar variants (lockstep tests, benchmarks, CI legs).
    "columnar-stdlib": lambda: ColumnarEngine(kernels="stdlib"),
    "columnar-numpy": lambda: ColumnarEngine(kernels="numpy"),
    # Resolved from the workload shape in get_engine(); the entry exists so
    # the name appears in listings and in the unknown-engine error.
    "auto": None,
}

#: At or below this node count ``engine="auto"`` picks the dense reference:
#: the event clock's scheduling machinery costs more than stepping a
#: handful of nodes every round.
AUTO_DENSE_NODES = 8


def _auto_engine(graph) -> Engine:
    """Pick an engine from the workload shape and numpy availability.

    Tiny instances run dense (reference semantics, nothing to amortise).
    With numpy importable, everything else runs the columnar engine on the
    numpy kernels.  Without numpy, mid-size instances stay on the event
    engine: the columnar layout's margin over it comes mostly from the
    batch kernels, so there is little to gain by switching layouts.
    """
    if graph is not None and graph.number_of_nodes() <= AUTO_DENSE_NODES:
        return DenseEngine()
    if numpy_available():
        return ColumnarEngine(kernels="numpy")
    return EventEngine()


def get_engine(spec: str | Engine, threads: int | None = None, *, graph=None) -> Engine:
    """Resolve an engine spec: an :class:`Engine` instance or a name.

    ``threads`` sizes the :class:`ParallelEngine` pool; it is ignored for
    engines (and instances) that do not take a thread count.  ``graph``
    (optional) lets ``spec="auto"`` see the workload it is choosing for;
    without it, auto falls back to numpy availability alone.
    """
    if isinstance(spec, Engine):
        return spec
    if spec == "auto":
        return _auto_engine(graph)
    try:
        cls = _ENGINES[spec]
    except KeyError:
        raise ValueError(f"unknown engine {spec!r}; known: {sorted(_ENGINES)}") from None
    if cls is ParallelEngine:
        return ParallelEngine(threads=threads)
    return cls()
