"""The scheduler layer: pluggable round engines over the transport.

The middle of the three-layer CONGEST stack.  An :class:`Engine` decides
*which* nodes are stepped *when*; the transport (bit accounting) below and
the program API (algorithm logic) above are engine-agnostic, so both
engines produce the same :class:`RunResult` for the same program:

- :class:`DenseEngine` -- the reference semantics: every non-halted node is
  stepped every round.  Cost grows with ``n x rounds`` even when almost
  every node is idle.
- :class:`EventEngine` -- maintains an active-node set and steps a node
  only if it has deliveries this round or its program declared the round
  non-idle (via :meth:`repro.congest.node.NodeProgram.next_active_round`).
  Rounds in which nothing happens are skipped in O(1) by jumping the clock
  to the next delivery or program wake-up, with the transport accounting
  the skipped stretch exactly.

Equivalence contract: a program's idleness hint must only skip rounds whose
``on_round`` call would have been a no-op (no sends, no halting, no change
to future behaviour) -- the default hint claims no idle rounds, so arbitrary
programs run identically on both engines, and hinted programs are covered
by the cross-engine equivalence suite (``tests/test_engine_equivalence.py``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.congest.network import CongestNetwork


@dataclass
class RunResult:
    """Metrics of one distributed execution."""

    rounds: int
    total_messages: int
    total_bits: int
    outputs: dict[Hashable, Any]
    halted: bool
    max_edge_bits_per_round: int = 0
    per_round_bits: list[int] = field(default_factory=list)

    def output_values(self) -> set:
        return set(self.outputs.values())

    def unanimous_output(self) -> Any:
        """The common output of all nodes; raises if nodes disagree."""
        values = {repr(v) for v in self.outputs.values()}
        if len(values) != 1:
            raise ValueError(f"nodes disagree: {sorted(values)[:5]}")
        return next(iter(self.outputs.values()))


class Engine:
    """Steps node programs against the transport clock."""

    name = "abstract"

    def run(self, network: "CongestNetwork", max_rounds: int, stop_on_quiescence: bool) -> RunResult:
        raise NotImplementedError

    @staticmethod
    def _result(network: "CongestNetwork", rounds: int) -> RunResult:
        transport = network.transport
        return RunResult(
            rounds=rounds,
            total_messages=transport.total_messages,
            total_bits=transport.total_bits,
            outputs={nid: node.output for nid, node in network.nodes.items()},
            halted=all(node.halted for node in network.nodes.values()),
            max_edge_bits_per_round=transport.max_edge_bits_per_round,
            per_round_bits=transport.per_round_bits,
        )

    @staticmethod
    def _start(network: "CongestNetwork") -> None:
        for node_id, program in network.programs.items():
            program.on_start(network.nodes[node_id])
        network.transport.flush()


class DenseEngine(Engine):
    """The reference scheduler: every non-halted node steps every round."""

    name = "dense"

    def run(self, network: "CongestNetwork", max_rounds: int, stop_on_quiescence: bool) -> RunResult:
        transport = network.transport
        self._start(network)

        round_no = 0
        while round_no < max_rounds:
            if all(node.halted for node in network.nodes.values()):
                break
            if (
                stop_on_quiescence
                and round_no > 0
                and transport.per_round_bits
                and transport.per_round_bits[-1] == 0
                and transport.pending_traffic() == 0
                and not transport.has_outgoing()
            ):
                round_no -= 1  # the silent probe round does not count
                break
            round_no += 1
            network.current_round = round_no
            inboxes = transport.deliver_round()
            for node_id in network.nodes:
                node = network.nodes[node_id]
                if node.halted:
                    continue
                network.programs[node_id].on_round(node, round_no, inboxes.get(node_id, []))
            transport.flush()

        return self._result(network, round_no)


class EventEngine(Engine):
    """Active-set scheduler with an O(1) fast path over quiet rounds.

    A round is *interesting* if a message completes on some link or some
    program scheduled a wake-up for it.  The engine jumps the clock from
    one interesting round to the next (the transport accounts the skipped
    stretch), delivers, and steps -- in the network's canonical node order,
    so interleavings match the dense engine exactly -- only the nodes that
    received something or asked to be woken.

    ``node_steps`` counts ``on_round`` calls for introspection; on mostly
    quiet workloads it is far below the dense engine's ``n x rounds``.
    """

    name = "event"

    def __init__(self) -> None:
        self.node_steps = 0

    def run(self, network: "CongestNetwork", max_rounds: int, stop_on_quiescence: bool) -> RunResult:
        transport = network.transport
        self._start(network)

        order = {nid: i for i, nid in enumerate(network.nodes)}
        wake: dict[Hashable, int | None] = {}
        heap: list[tuple[int, int, Hashable]] = []

        def schedule(nid: Hashable, after_round: int) -> None:
            node = network.nodes[nid]
            if node.halted:
                wake[nid] = None
                return
            nxt = network.programs[nid].next_active_round(node, after_round)
            if nxt is not None and nxt <= after_round:  # defensive: never stall the clock
                nxt = after_round + 1
            wake[nid] = nxt
            if nxt is not None:
                heapq.heappush(heap, (nxt, order[nid], nid))

        for nid in network.nodes:
            schedule(nid, 0)
        live = sum(1 for node in network.nodes.values() if not node.halted)

        round_no = 0
        while round_no < max_rounds:
            if live == 0:
                break
            if (
                stop_on_quiescence
                and round_no > 0
                and transport.per_round_bits
                and transport.per_round_bits[-1] == 0
                and transport.pending_traffic() == 0
                and not transport.has_outgoing()
            ):
                round_no -= 1  # the silent probe round does not count
                break

            # Next interesting round: earliest delivery or program wake-up.
            until = transport.rounds_until_delivery()
            delivery_round = None if until is None else round_no + until
            while heap and (wake.get(heap[0][2]) != heap[0][0] or network.nodes[heap[0][2]].halted):
                heapq.heappop(heap)
            program_round = heap[0][0] if heap else None

            if stop_on_quiescence and transport.pending_traffic() == 0:
                # The dense engine probes the very next round and stops on
                # silence; jumping over it would skip that termination point.
                target = round_no + 1
            elif delivery_round is None and program_round is None:
                # Nothing will ever happen again: idle out the clock.
                transport.skip_rounds(max_rounds - round_no)
                round_no = max_rounds
                break
            else:
                candidates = [r for r in (delivery_round, program_round) if r is not None]
                target = min(candidates)

            if target > max_rounds:
                transport.skip_rounds(max_rounds - round_no)
                round_no = max_rounds
                break
            if target > round_no + 1:
                transport.skip_rounds(target - round_no - 1)
            round_no = target
            network.current_round = round_no

            inboxes = transport.deliver_round()
            step = set(inboxes)
            while heap and heap[0][0] <= round_no:
                rnd, _, nid = heapq.heappop(heap)
                if rnd == round_no and wake.get(nid) == rnd and not network.nodes[nid].halted:
                    step.add(nid)
            for nid in sorted(step, key=order.__getitem__):
                node = network.nodes[nid]
                if node.halted:
                    continue
                self.node_steps += 1
                network.programs[nid].on_round(node, round_no, inboxes.get(nid, []))
                if node.halted:
                    live -= 1
                    wake[nid] = None
                else:
                    schedule(nid, round_no)
            transport.flush()

        return self._result(network, round_no)


_ENGINES = {"dense": DenseEngine, "event": EventEngine}


def get_engine(spec: str | Engine) -> Engine:
    """Resolve an engine spec: an :class:`Engine` instance or a name."""
    if isinstance(spec, Engine):
        return spec
    try:
        return _ENGINES[spec]()
    except KeyError:
        raise ValueError(f"unknown engine {spec!r}; known: {sorted(_ENGINES)}") from None
