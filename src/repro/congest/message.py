"""Message payloads and bit-size accounting.

The CONGEST model charges by the bit, so every payload needs a defensible
size.  We use a simple self-delimiting encoding estimate: integers cost their
two's-complement length, floats a fixed 64 bits, containers the sum of their
parts plus a length header.  Callers may always override with an explicit
``bits=`` argument when a tighter encoding is intended.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, NamedTuple

_FLOAT_BITS = 64
_HEADER_BITS = 8


@dataclass(frozen=True)
class QubitPayload:
    """A payload of ``n_qubits`` qubits travelling over a quantum link.

    The statevector itself is carried out-of-band by the algorithm (exact
    many-node quantum simulation is exponential); the simulator's job is the
    accounting: ``n_qubits`` qubits occupy ``n_qubits`` units of the per-edge
    budget ``B`` (Section 2.1: "at most B qubits can be sent through each
    edge in each direction").
    """

    n_qubits: int
    tag: Any = None

    def __post_init__(self) -> None:
        if self.n_qubits < 1:
            raise ValueError("a qubit payload needs at least one qubit")


def bit_size(payload: Any) -> int:
    """Estimate the size of a payload in bits (qubits for quantum payloads)."""
    if isinstance(payload, QubitPayload):
        return payload.n_qubits
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length() + 1)  # sign bit
    if isinstance(payload, float):
        return _FLOAT_BITS
    if isinstance(payload, str):
        return _HEADER_BITS + 8 * len(payload)
    if isinstance(payload, bytes):
        return _HEADER_BITS + 8 * len(payload)
    if payload is None:
        return 1
    if isinstance(payload, (tuple, list)):
        return _HEADER_BITS + sum(bit_size(item) for item in payload)
    if isinstance(payload, frozenset):
        return _HEADER_BITS + sum(bit_size(item) for item in payload)
    if isinstance(payload, dict):
        return _HEADER_BITS + sum(bit_size(k) + bit_size(v) for k, v in payload.items())
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


class Received(NamedTuple):
    """A message as seen by the receiving node.

    A named tuple rather than a frozen dataclass: one is allocated per
    delivered message on the hottest path of every engine, and tuple
    construction is several times cheaper than ``object.__setattr__``.
    """

    sender: Hashable
    payload: Any
    bits: int


@dataclass
class _InFlight:
    """A message inside a link buffer, possibly mid-transmission."""

    sender: Hashable
    receiver: Hashable
    payload: Any
    bits: int
    remaining: int
