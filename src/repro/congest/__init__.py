"""The CONGEST(B) distributed network simulator (Section 2.1, Appendix A.1).

A synchronous message-passing simulator in which each directed edge carries
at most ``B`` bits (or qubits) per round.  Local computation is free and
unbounded, exactly as in the model; the simulator's job is honest accounting
of rounds, messages and bits.

- :mod:`repro.congest.message`   -- payload bit-size accounting.
- :mod:`repro.congest.node`      -- node handles and the program interface
  (including the idleness hints the event engine exploits).
- :mod:`repro.congest.transport` -- link buffers, chunking, strict-mode
  checks and bit metrics.
- :mod:`repro.congest.engine`    -- pluggable schedulers: the reference
  ``DenseEngine``, the event-driven ``EventEngine`` fast path and the
  thread-sharded ``ParallelEngine``, all over one batched step ABI
  (``StepPlan`` / ``step_batch``).
- :mod:`repro.congest.network`   -- the ``CongestNetwork`` façade tying the
  layers together.
- :mod:`repro.congest.topology`  -- network families, including the
  Simulation-Theorem network of Figs. 8/10/13.
- :mod:`repro.congest.faults`    -- deterministic fault injection: seeded
  ``FaultPlan`` schedules (drops, duplicates, reorders, crash spans, edge
  churn) applied by a ``FaultyTransport`` wrapper under the engine seam.
"""

from repro.congest.engine import (
    DenseEngine,
    Engine,
    EventEngine,
    ParallelEngine,
    StepPlan,
    get_engine,
    step_batch,
)
from repro.congest.faults import (
    CrashSpan,
    FaultPlan,
    FaultStats,
    FaultyTransport,
    TopologyEvent,
)
from repro.congest.message import QubitPayload, Received, bit_size
from repro.congest.network import BandwidthExceeded, CongestNetwork, RunResult, run_program
from repro.congest.node import Node, NodeProgram
from repro.congest.topology import (
    dumbbell_graph,
    simulation_network,
    simulation_network_parameters,
)
from repro.congest.transport import LinkTransport

__all__ = [
    "CongestNetwork",
    "RunResult",
    "BandwidthExceeded",
    "Engine",
    "DenseEngine",
    "EventEngine",
    "ParallelEngine",
    "StepPlan",
    "step_batch",
    "get_engine",
    "LinkTransport",
    "run_program",
    "FaultPlan",
    "FaultyTransport",
    "FaultStats",
    "CrashSpan",
    "TopologyEvent",
    "Node",
    "NodeProgram",
    "Received",
    "QubitPayload",
    "bit_size",
    "simulation_network",
    "simulation_network_parameters",
    "dumbbell_graph",
]
