"""The CONGEST(B) distributed network simulator (Section 2.1, Appendix A.1).

A synchronous message-passing simulator in which each directed edge carries
at most ``B`` bits (or qubits) per round.  Local computation is free and
unbounded, exactly as in the model; the simulator's job is honest accounting
of rounds, messages and bits.

- :mod:`repro.congest.message`  -- payload bit-size accounting.
- :mod:`repro.congest.node`     -- node handles and the program interface.
- :mod:`repro.congest.network`  -- the round scheduler and bandwidth model.
- :mod:`repro.congest.topology` -- network families, including the
  Simulation-Theorem network of Figs. 8/10/13.
"""

from repro.congest.message import QubitPayload, Received, bit_size
from repro.congest.network import BandwidthExceeded, CongestNetwork, RunResult
from repro.congest.node import Node, NodeProgram
from repro.congest.topology import (
    dumbbell_graph,
    simulation_network,
    simulation_network_parameters,
)

__all__ = [
    "CongestNetwork",
    "RunResult",
    "BandwidthExceeded",
    "Node",
    "NodeProgram",
    "Received",
    "QubitPayload",
    "bit_size",
    "simulation_network",
    "simulation_network_parameters",
    "dumbbell_graph",
]
