"""Columnar transport and batched reductions: the struct-of-arrays hot path.

:class:`ColumnarTransport` is a drop-in replacement for
:class:`~repro.congest.transport.LinkTransport` that stores a round's
staged sends as flat parallel columns (sender / receiver / payload lists
plus an ``array('q')`` bits column) instead of one ``_InFlight`` object
per message, and keeps each live directed edge as a small
:class:`_EdgeQueue` whose *head* progress is accounted lazily against an
internal clock -- a busy edge costs nothing per round until its head
message actually completes.  A min-heap keyed on absolute completion
clock makes :meth:`deliver_round` O(completing edges) and
:meth:`rounds_until_delivery` O(1), where the baseline transport pays
O(live edges) per executed round and O(total queued messages) per
quiescence probe.

Column schema (documented order; see also ``docs/architecture.md``):

========  =============  ====================================================
column    type           contents
========  =============  ====================================================
sender    list           sending node id, in ``Node.send`` call order
receiver  list           receiving node id (parallel to ``sender``)
payload   list           payload object reference (parallel)
bits      ``array('q')`` charged message size in bits (parallel)
========  =============  ====================================================

The staging order is exactly the serial engines' send order (node-id
order within a round, program send order within a node), and per-edge
FIFOs are keyed by a monotonically increasing creation sequence, so
deliveries, metrics and the opt-in message log are byte-identical to the
baseline transport -- the cross-engine equivalence suite enforces this.

Numpy policy: the stdlib layout *is* the reference semantics.  When
numpy is importable a few bulk scans (column sums) use it; when it is
absent everything runs on the stdlib ``array``/``list`` columns with
identical results.  Nothing in this module requires numpy.

:class:`MinEdgeIndex` is the batched min-edge reduction service used by
the Boruvka/GKP fragment-minimum phases: incident edges are pre-sorted
once per network by the canonical edge key, so each per-iteration
"lightest outgoing edge" query is a prefix scan over the sorted incident
list instead of a key construction per neighbour per query.  Engines opt
in via ``Engine.uses_min_edge_index``; the legacy per-neighbour loop
remains the reference path.
"""

from __future__ import annotations

import heapq
from array import array
from collections import defaultdict
from typing import Any, Hashable

from repro.congest.message import Received
from repro.congest.transport import BandwidthExceeded, LinkTransport

try:  # optional fast path; the stdlib columns are the reference semantics
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the numpy-absent guard
    _np = None

#: Below this many staged messages a python ``sum`` beats the numpy
#: round-trip; measured crossover is well under this conservative bound.
_NUMPY_MIN_BATCH = 64


def _sum_bits(bits: array) -> int:
    """Total of a staged bits column (numpy when present and worthwhile)."""
    if _np is not None and len(bits) >= _NUMPY_MIN_BATCH:
        return int(_np.frombuffer(bits, dtype=_np.int64).sum())
    return sum(bits)


class _EdgeQueue:
    """One live directed edge: FIFO columns plus lazy head accounting.

    ``head`` indexes the first undelivered message in the ``payloads`` /
    ``bits`` columns; ``head_rem`` is the head's remaining bits as of
    clock ``head_clock`` (the transport does *not* decrement it each
    round -- the remainder at any later clock ``c`` is
    ``head_rem - B * (c - head_clock)``, and the completion clock
    ``head_clock + ceil(head_rem / B)`` is computed once and pushed on
    the transport's delivery heap).  ``seq`` is the edge's creation
    sequence number: it orders same-round completions exactly as the
    baseline transport's insertion-ordered link dict does, including
    drain-then-revive reinsertion at the end.
    """

    __slots__ = ("sender", "receiver", "seq", "payloads", "bits", "head", "head_clock", "head_rem")

    def __init__(self, sender: Hashable, receiver: Hashable, seq: int):
        self.sender = sender
        self.receiver = receiver
        self.seq = seq
        self.payloads: list[Any] = []
        self.bits: list[int] = []
        self.head = 0
        self.head_clock = 0
        self.head_rem = 0


class ColumnarTransport(LinkTransport):
    """Struct-of-arrays transport with event-driven delivery accounting.

    Same public contract as :class:`LinkTransport` (the engines drive it
    through the identical ``enqueue`` / ``flush`` / ``deliver_round`` /
    ``rounds_until_delivery`` / ``skip_rounds`` operations and read the
    identical metrics), different cost model:

    - staging is four column appends, not an object allocation;
    - a quiet live edge costs nothing per round (no per-head decrement);
    - ``deliver_round`` touches only the edges whose head completes;
    - ``rounds_until_delivery`` / ``pending_traffic`` are O(1).

    Shard staging (the parallel engine's thread-local outboxes) is not
    supported: the columnar engine is serial by design, so the staging
    columns are single-writer.
    """

    #: Networks bind their tracer here (see ``CongestNetwork``) so flush
    #: can sample per-round batch sizes without an engine round-trip.
    wants_trace = True

    def __init__(self, bandwidth: int, strict: bool = False, record_messages: bool = False):
        super().__init__(bandwidth, strict=strict, record_messages=record_messages)
        # Staging: parallel struct-of-arrays columns (see module docstring
        # for the documented column order).
        self._stage_senders: list[Hashable] = []
        self._stage_receivers: list[Hashable] = []
        self._stage_payloads: list[Any] = []
        self._stage_bits: array = array("q")
        # Live edges: creation-ordered (sender, receiver) -> _EdgeQueue.
        self._cols: dict[tuple[Hashable, Hashable], _EdgeQueue] = {}
        # (completion clock, edge seq, queue): exactly one entry per live
        # edge, no stale entries -- popped when (and only when) the head
        # completes, pushed when a new head is installed.
        self._heap: list[tuple[int, int, _EdgeQueue]] = []
        self._clock = 0  # rounds executed or skipped so far
        self._seq = 0  # edge creation counter (orders same-round deliveries)
        # Telemetry (read by ColumnarEngine's run-end summary event).
        self.trace = None
        self.flush_batches = 0
        self.max_flush_messages = 0
        self.peak_live_edges = 0

    # -- staging ---------------------------------------------------------------

    def enqueue(self, sender: Hashable, receiver: Hashable, payload: Any, bits: int, round_no: int) -> None:
        """Stage one message as a row across the four columns."""
        if self.strict and bits > self.bandwidth:
            raise BandwidthExceeded(
                f"message of {bits} bits exceeds B={self.bandwidth} on edge "
                f"{sender!r}->{receiver!r}"
            )
        self._stage_senders.append(sender)
        self._stage_receivers.append(receiver)
        self._stage_payloads.append(payload)
        self._stage_bits.append(bits)
        self.total_messages += 1
        self.total_bits += bits
        if self.record_messages:
            self.message_log.append((round_no, sender, receiver, bits))

    def begin_shard_staging(self) -> None:
        raise RuntimeError("columnar transport is single-writer; no shard staging")

    def has_outgoing(self) -> bool:
        return bool(self._stage_senders)

    def flush(self) -> None:
        """Commit the staged columns to the per-edge queues (round barrier)."""
        senders = self._stage_senders
        n = len(senders)
        if n == 0:
            return
        receivers = self._stage_receivers
        payloads = self._stage_payloads
        bits_col = self._stage_bits
        bw = self.bandwidth
        if self.strict:
            # Per-edge budget check as one column scan, raising *before*
            # anything is committed (first offending edge in first-seen
            # order, matching the baseline transport's message exactly).
            per_edge: dict[tuple[Hashable, Hashable], int] = {}
            for i in range(n):
                edge = (senders[i], receivers[i])
                per_edge[edge] = per_edge.get(edge, 0) + bits_col[i]
            for (u, v), bits in per_edge.items():
                if bits > bw:
                    raise BandwidthExceeded(
                        f"{bits} bits queued on edge {u!r}->{v!r} in one round "
                        f"(B={bw})"
                    )
        cols = self._cols
        heap = self._heap
        clock = self._clock
        for i in range(n):
            edge = (senders[i], receivers[i])
            queue = cols.get(edge)
            if queue is None:
                self._seq += 1
                queue = _EdgeQueue(senders[i], receivers[i], self._seq)
                bits = bits_col[i]
                queue.payloads.append(payloads[i])
                queue.bits.append(bits)
                queue.head_clock = clock
                queue.head_rem = bits
                heapq.heappush(heap, (clock + -(-bits // bw), queue.seq, queue))
                cols[edge] = queue
            else:
                queue.payloads.append(payloads[i])
                queue.bits.append(bits_col[i])
        self._pending_bits += _sum_bits(bits_col)
        self.flush_batches += 1
        if n > self.max_flush_messages:
            self.max_flush_messages = n
        live = len(cols)
        if live > self.peak_live_edges:
            self.peak_live_edges = live
        trace = self.trace
        if trace is not None and trace.enabled:
            trace.event("columnar_batch", clock=clock, staged=n, live_edges=live)
        self._stage_senders = []
        self._stage_receivers = []
        self._stage_payloads = []
        self._stage_bits = array("q")

    # -- advancing -------------------------------------------------------------

    def deliver_round(self) -> dict[Hashable, list[Received]]:
        """Advance one round; touch only the edges whose head completes.

        Every live edge moves exactly ``B`` bits this round unless its
        head completes (then it moves its remainder plus any cascade of
        queued messages fitting the leftover budget) -- so the per-round
        bit total is reconstructed from the completing edges alone, and
        the non-completing majority costs O(1) in aggregate.
        """
        self._clock += 1
        clock = self._clock
        bw = self.bandwidth
        cols = self._cols
        heap = self._heap
        inboxes: dict[Hashable, list[Received]] = defaultdict(list)
        live = len(cols)
        completed = 0
        round_bits = 0
        max_used = 0
        while heap and heap[0][0] == clock:
            _, _, queue = heapq.heappop(heap)
            completed += 1
            # Remaining at the start of this round, derived lazily: the
            # head had head_rem bits at head_clock and moved B per round
            # since.  1 <= rem <= B because the heap said "completes now".
            rem = queue.head_rem - bw * (clock - 1 - queue.head_clock)
            budget = bw - rem
            receiver = queue.receiver
            sender = queue.sender
            payloads = queue.payloads
            bits_list = queue.bits
            inbox = inboxes[receiver]
            i = queue.head
            total = len(bits_list)
            inbox.append(Received(sender, payloads[i], bits_list[i]))
            payloads[i] = None  # delivered payloads are dead; free the ref
            i += 1
            while i < total and bits_list[i] <= budget:
                budget -= bits_list[i]
                inbox.append(Received(sender, payloads[i], bits_list[i]))
                payloads[i] = None
                i += 1
            if i < total:
                # New head starts mid-round with the leftover budget
                # already applied; the full B was consumed on this edge.
                used = bw
                queue.head = i
                queue.head_clock = clock
                queue.head_rem = bits_list[i] - budget
                heapq.heappush(heap, (clock + -(-queue.head_rem // bw), queue.seq, queue))
                if i > 32 and 2 * i > total:
                    del payloads[:i]
                    del bits_list[:i]
                    queue.head = 0
            else:
                used = bw - budget
                del cols[(sender, receiver)]
            round_bits += used
            if used > max_used:
                max_used = used
        round_bits += bw * (live - completed)
        if live > completed and bw > max_used:
            max_used = bw
        if max_used > self.max_edge_bits_per_round:
            self.max_edge_bits_per_round = max_used
        self.per_round_bits.append(round_bits)
        self._pending_bits -= round_bits
        return inboxes

    def rounds_until_delivery(self) -> int | None:
        """O(1): the heap's earliest completion clock minus the clock."""
        if not self._cols:
            return None
        return self._heap[0][0] - self._clock

    def skip_rounds(self, rounds: int) -> int:
        """Account a quiet stretch without touching any edge state.

        The lazy head accounting makes this O(1) in the number of live
        edges: advancing the clock *is* the per-head decrement, so only
        the metrics need updating.
        """
        if rounds <= 0:
            return 0
        bw = self.bandwidth
        live = len(self._cols)
        if live:
            head_clock, _, queue = self._heap[0]
            if rounds >= head_clock - self._clock:
                remaining = queue.head_rem - bw * (self._clock - queue.head_clock)
                raise RuntimeError(
                    "skip_rounds crossed a delivery: "
                    f"{rounds} rounds x B={bw} >= {remaining} bits remaining"
                )
            self._clock += rounds
            if bw > self.max_edge_bits_per_round:
                self.max_edge_bits_per_round = bw
            self.per_round_bits.extend([bw * live] * rounds)
            moved = bw * rounds * live
            self._pending_bits -= moved
            return moved
        self._clock += rounds
        self.per_round_bits.extend([0] * rounds)
        return 0

    # -- inspection ------------------------------------------------------------

    @property
    def live_edges(self) -> int:
        """Directed edges currently carrying traffic."""
        return len(self._cols)


class MinEdgeIndex:
    """Pre-sorted incident edges for batched fragment-minimum queries.

    Per node, incident edges are sorted once by the canonical edge key
    ``(float(weight), sorted endpoint reprs)`` -- identical to
    ``repro.algorithms.mst.edge_key``, and unique per node since the key
    embeds both endpoint names.  A "lightest edge leaving my fragment"
    query is then the first sorted entry whose neighbour is eligible,
    with no key construction per neighbour per query: exactly the legacy
    per-neighbour minimum (unique keys make the minimum iteration-order
    independent), at amortised O(edges log edges) total build cost per
    network instead of O(degree) key tuples per node per iteration.
    """

    def __init__(self, graph, weight_key: str = "weight"):
        self._incident: dict[Hashable, list[tuple[tuple, Hashable, str]]] = {}
        edges = graph.edges
        for u in graph.nodes():
            u_repr = repr(u)
            entries = []
            for v in graph.neighbors(u):
                v_repr = repr(v)
                a, b = (u_repr, v_repr) if u_repr <= v_repr else (v_repr, u_repr)
                weight = float(edges[u, v].get(weight_key, 1.0))
                entries.append(((weight, a, b), v, v_repr))
            entries.sort(key=lambda entry: entry[0])
            self._incident[u] = entries

    def min_outgoing(self, node_id: Hashable, label_of: dict, my_label) -> tuple | None:
        """Mirror of ``mst._min_outgoing``: lightest incident edge whose
        neighbour's label differs (labels compared with ``==``; unknown
        neighbours default to ``my_label`` and are skipped).  Returns
        ``(key, node_id, neighbour)`` or ``None``."""
        for key, neighbor, neighbor_repr in self._incident[node_id]:
            if label_of.get(neighbor_repr, my_label) == my_label:
                continue
            return (key, node_id, neighbor)
        return None

    def min_outgoing_by_repr(
        self, node_id: Hashable, label_of: dict, my_label, exclude_reprs: set
    ) -> tuple | None:
        """Mirror of the Phase-B candidate scan: labels compared by repr
        and tree-edge neighbours (``exclude_reprs``) skipped.  Returns
        ``(key, neighbour, neighbour_label)`` or ``None``."""
        my_repr = repr(my_label)
        for key, neighbor, neighbor_repr in self._incident[node_id]:
            other_label = label_of.get(neighbor_repr, my_label)
            if repr(other_label) == my_repr or neighbor_repr in exclude_reprs:
                continue
            return (key, neighbor, other_label)
        return None
