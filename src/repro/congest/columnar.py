"""Columnar transport and batched reductions: the struct-of-arrays hot path.

:class:`ColumnarTransport` is a drop-in replacement for
:class:`~repro.congest.transport.LinkTransport` that stores a round's
staged sends as flat parallel columns (an ``array('q')`` edge-id column,
an ``array('q')`` bits column and a payload list) instead of one
``_InFlight`` object per message, and keeps each directed edge as a
small permanent :class:`_EdgeQueue` whose *head* progress is accounted
lazily against an internal clock -- a busy edge costs nothing per round
until its head message actually completes.

All batch operations go through the kernel seam
(:mod:`repro.congest.kernels`): an implementation --
:class:`~repro.congest.kernels.StdlibKernels` (the reference) or
:class:`~repro.congest.kernels.NumpyKernels` (vectorized ndarray scans)
-- is chosen **once at construction** and held for the transport's
lifetime; the hot path never re-checks availability or batch size.  The
kernel instance owns the edge-clock schedule (a completion-clock heap,
or a dense completion array scanned with ``nonzero``), making
:meth:`deliver_round` O(completing edges) and
:meth:`rounds_until_delivery` O(1), where the baseline transport pays
O(live edges) per executed round and O(total queued messages) per
quiescence probe.

Column schema (documented order; see also ``docs/architecture.md``):

========  =============  ====================================================
column    type           contents
========  =============  ====================================================
eid       ``array('q')`` dense directed-edge id, in ``Node.send`` call order
bits      ``array('q')`` charged message size in bits (parallel to ``eid``)
payload   list           payload object reference (parallel)
========  =============  ====================================================

Edge ids are assigned once, at an edge's first-ever send, and identify
the edge's permanent :class:`_EdgeQueue` (which holds the sender and
receiver, so the columns don't repeat them per message).  Staging
buffers are **cleared in place** after every commit, never reallocated
-- the block fast path ping-pongs two buffer sets, so steady-state runs
allocate staging storage a constant number of times total
(``stage_reuse_ratio`` in the ``columnar_summary`` event tracks it).

**Block fast path.**  When a flush arrives with no edge mid-transmission
and every per-edge sum within ``B`` (the common case for well-behaved
CONGEST programs, which respect the per-round budget), the entire
staged round completes exactly one round later as a single *block*: no
per-message queue appends, no clock installs -- ``deliver_round`` emits
the block straight from the staged columns in first-appearance edge
order, which is precisely the baseline link-dict's insertion order.  A
flush while a block is pending first *materializes* the block into the
per-edge queues (byte-identical to having taken the general path), so
arbitrary flush/deliver/skip interleavings stay exact.

The staging order is exactly the serial engines' send order (node-id
order within a round, program send order within a node), and per-edge
FIFOs are keyed by a monotonically increasing activation sequence, so
deliveries, metrics and the opt-in message log are byte-identical to the
baseline transport -- the cross-engine equivalence suite enforces this.

Numpy policy: the stdlib layout *is* the reference semantics.  When
numpy is importable the numpy kernels are selected by default; when it
is absent everything runs on the stdlib ``array``/``list`` columns with
identical results.  Nothing in this module requires numpy.

:class:`MinEdgeIndex` is the batched min-edge reduction service used by
the Boruvka/GKP fragment-minimum phases: incident edges are pre-sorted
once per network by the canonical edge key, so each per-iteration
"lightest outgoing edge" query is a prefix scan over the sorted incident
list instead of a key construction per neighbour per query; with numpy
kernels, high-degree nodes answer it as a masked first-eligible
reduction over the key-sorted parallel columns.  Engines opt in via
``Engine.uses_min_edge_index``; the legacy per-neighbour loop remains
the reference path.
"""

from __future__ import annotations

from array import array
from collections import defaultdict
from typing import Any, Hashable

from repro.congest.kernels import (
    NUMPY_MIN_DEGREE,
    NumpyKernels,
    RoundGroup,
    StdlibKernels,
    resolve_kernels,
)
from repro.congest.message import Received
from repro.congest.transport import BandwidthExceeded, LinkTransport

try:  # optional fast path; the stdlib columns are the reference semantics
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the numpy-absent guard
    _np = None

#: Below this many staged messages a python ``sum`` beats the numpy
#: round-trip; measured crossover is well under this conservative bound.
_NUMPY_MIN_BATCH = 64

#: Shared ``order`` for the single-message flush fast path.
_RANGE_1 = range(1)


def _sum_bits(bits: array) -> int:
    """Total of a staged bits column (numpy when present and worthwhile)."""
    if _np is not None and len(bits) >= _NUMPY_MIN_BATCH:
        return int(_np.frombuffer(bits, dtype=_np.int64).sum())
    return sum(bits)


def _transport_kernels(spec) -> type[StdlibKernels]:
    """Kernel class for a transport: ``None``/``"auto"`` follows this
    module's numpy guard (so forcing ``columnar._np = None`` flips new
    transports to the stdlib reference); pinned specs go through
    :func:`repro.congest.kernels.resolve_kernels` unchanged."""
    if spec is None or spec == "auto":
        return NumpyKernels if _np is not None else StdlibKernels
    return resolve_kernels(spec)


class _EdgeQueue:
    """One directed edge: FIFO columns plus lazy head accounting.

    Queues are permanent -- created at the edge's first-ever send and
    recycled across drain/revive cycles (columns cleared in place, never
    reallocated).  ``head`` indexes the first undelivered message in the
    ``recs`` / ``bits`` columns; ``head_rem`` is the head's remaining
    bits as of clock ``head_clock`` (the transport does *not* decrement
    it each round -- the remainder at any later clock ``c`` is
    ``head_rem - B * (c - head_clock)``, and the completion clock
    ``head_clock + ceil(head_rem / B)`` is computed once and installed on
    the kernel's edge-clock schedule).  ``seq`` is the edge's *activation*
    sequence number, refreshed each time the edge goes from drained back
    to live: it orders same-round completions exactly as the baseline
    transport's insertion-ordered link dict does, including
    drain-then-revive reinsertion at the end.
    """

    __slots__ = ("sender", "receiver", "seq", "recs", "bits", "head", "head_clock", "head_rem", "live")

    def __init__(self, sender: Hashable, receiver: Hashable):
        self.sender = sender
        self.receiver = receiver
        self.seq = 0
        self.recs: list[Any] = []
        self.bits: list[int] = []
        self.head = 0
        self.head_clock = 0
        self.head_rem = 0
        self.live = False


class ColumnarTransport(LinkTransport):
    """Struct-of-arrays transport with event-driven delivery accounting.

    Same public contract as :class:`LinkTransport` (the engines drive it
    through the identical ``enqueue`` / ``flush`` / ``deliver_round`` /
    ``rounds_until_delivery`` / ``skip_rounds`` operations and read the
    identical metrics), different cost model:

    - staging is three column appends, not an object allocation;
    - a quiet live edge costs nothing per round (no per-head decrement);
    - ``deliver_round`` touches only the edges whose head completes, and
      an all-fitting round with no carry-over traffic is delivered as one
      block straight from the staged columns;
    - ``rounds_until_delivery`` / ``pending_traffic`` are O(1).

    Shard staging (the parallel engine's thread-local outboxes) is not
    supported: the columnar engine is serial by design, so the staging
    columns are single-writer.
    """

    #: Networks bind their tracer here (see ``CongestNetwork``) so flush
    #: can sample per-round batch sizes without an engine round-trip.
    wants_trace = True

    def __init__(
        self,
        bandwidth: int,
        strict: bool = False,
        record_messages: bool = False,
        kernels: Any = None,
    ):
        super().__init__(bandwidth, strict=strict, record_messages=record_messages)
        #: The kernel instance chosen once for this transport's lifetime
        #: (it owns the edge-clock schedule; the batch ops are static).
        self.kernels = _transport_kernels(kernels)()
        #: Pre-bound hottest kernel op (one lookup per flush, not two).
        self._group_round = self.kernels.group_round
        # Staging: parallel struct-of-arrays columns (see module docstring
        # for the documented column order), cleared in place per flush.  A
        # "bundle" carries a buffer set together with its bound appends so
        # the block fast path's ping-pong swap is six attribute writes --
        # no per-flush bound-method creation.
        eids: array = array("q")
        bits: array = array("q")
        recs: list[Any] = []
        self._adopt_stage((eids, bits, recs, eids.append, bits.append, recs.append))
        # Second buffer bundle for the block fast path's ping-pong (the
        # block owns one set while the other stages the next round).
        self._spare: tuple | None = None
        # A committed all-fitting round awaiting its one-round delivery:
        # (eids, bits, recs, RoundGroup, bundle), or None.
        self._block: tuple | None = None
        # Permanent edge identity: sender -> {receiver -> dense eid} (two
        # plain-key lookups beat allocating and hashing an edge tuple per
        # message), and the eid-indexed queue registry (queues are
        # recycled, never dropped).
        self._edge_ids: dict[Hashable, dict[Hashable, int]] = {}
        self._queues: list[_EdgeQueue] = []
        self._live = 0  # queues currently carrying traffic (excludes block)
        self._clock = 0  # rounds executed or skipped so far
        self._seq = 0  # edge activation counter (orders same-round deliveries)
        # Telemetry (read by ColumnarEngine's run-end summary event).
        self.trace = None
        self.flush_batches = 0
        self.max_flush_messages = 0
        self.peak_live_edges = 0
        self.block_batches = 0
        self.stage_allocs = 1  # buffer sets ever allocated (1 = the initial set)

    # -- staging ---------------------------------------------------------------

    def _adopt_stage(self, bundle: tuple) -> None:
        """Make ``bundle`` the active staging set.  The bound appends ride
        in the bundle (``enqueue`` is the highest-call-count method; three
        bound-method calls beat three attribute-chain lookups per message,
        and keeping the bindings with their buffers makes a swap free)."""
        self._bundle = bundle
        (
            self._stage_eids,
            self._stage_bits,
            self._stage_recs,
            self._append_eid,
            self._append_bits,
            self._append_rec,
        ) = bundle

    def enqueue(self, sender: Hashable, receiver: Hashable, payload: Any, bits: int, round_no: int) -> None:
        """Stage one message as a row across the three columns.

        The record column stages the finished :class:`Received` tuple
        (it is immutable and its fields are all known here), so delivery
        appends staged objects instead of constructing per message.
        """
        if self.strict and bits > self.bandwidth:
            # Totals are normally folded in at the flush barrier; an abort
            # mid-round must first account the already-staged messages so
            # the counters match the baseline's per-enqueue accounting.
            self.total_messages += len(self._stage_recs)
            self.total_bits += self.kernels.sum_bits(self._stage_bits)
            raise BandwidthExceeded(
                f"message of {bits} bits exceeds B={self.bandwidth} on edge "
                f"{sender!r}->{receiver!r}"
            )
        try:
            # Steady state: the edge exists, one chained lookup.
            eid = self._edge_ids[sender][receiver]
        except KeyError:
            row = self._edge_ids.setdefault(sender, {})
            eid = row[receiver] = len(self._queues)
            self._queues.append(_EdgeQueue(sender, receiver))
        self._append_eid(eid)
        self._append_bits(bits)
        self._append_rec(Received(sender, payload, bits))
        # total_messages / total_bits are folded in at the flush barrier
        # (one batched update per round instead of two per message).
        if self.record_messages:
            self.message_log.append((round_no, sender, receiver, bits))

    def enqueue_many(self, sender: Hashable, receivers: list[Hashable], payload: Any, bits: int, round_no: int) -> None:
        """Stage one payload to several receivers in a single pass.

        Semantically a loop over :meth:`enqueue` with a shared (payload,
        bits) row; the strict check and all per-message state hoist out of
        the loop, which matters because broadcasts dominate the message
        volume of the GKP phases.  One :class:`Received` instance serves
        every receiver (the tuple is immutable and identical for all of
        them), so a degree-``d`` broadcast stages ``d`` references but
        performs a single construction.
        """
        if self.strict and bits > self.bandwidth:
            if not receivers:
                return
            self.total_messages += len(self._stage_recs)
            self.total_bits += self.kernels.sum_bits(self._stage_bits)
            raise BandwidthExceeded(
                f"message of {bits} bits exceeds B={self.bandwidth} on edge "
                f"{sender!r}->{receivers[0]!r}"
            )
        row = self._edge_ids.get(sender)
        if row is None:
            row = self._edge_ids[sender] = {}
        try:
            # Steady state: every receiver already has an edge id, so the
            # whole id column extends in one C-level pass.
            self._stage_eids.extend([row[receiver] for receiver in receivers])
        except KeyError:
            queues = self._queues
            append_eid = self._append_eid
            for receiver in receivers:
                eid = row.get(receiver)
                if eid is None:
                    eid = len(queues)
                    row[receiver] = eid
                    queues.append(_EdgeQueue(sender, receiver))
                append_eid(eid)
        n = len(receivers)
        self._stage_bits.extend([bits] * n)
        self._stage_recs.extend([Received(sender, payload, bits)] * n)
        if self.record_messages:
            self.message_log.extend(
                (round_no, sender, receiver, bits) for receiver in receivers
            )

    def begin_shard_staging(self) -> None:
        raise RuntimeError("columnar transport is single-writer; no shard staging")

    def has_outgoing(self) -> bool:
        return bool(self._stage_recs)

    def flush(self) -> None:
        """Commit the staged columns (round barrier): as a pending block
        when nothing is mid-transmission and every edge fits its budget,
        otherwise into the per-edge queues."""
        n = len(self._stage_recs)
        if n == 0:
            return
        if self._block is not None:
            # A second flush before the pending block's delivery round:
            # fold the block into the per-edge queues first, exactly as if
            # its flush had taken the general path.
            self._materialize_block()
        bw = self.bandwidth
        eids = self._stage_eids
        bits_col = self._stage_bits
        recs = self._stage_recs
        if n == 1:
            # Single staged message (common in sparse negotiation phases):
            # the grouping is trivial, so build it inline instead of
            # paying two kernel dispatches.  Field-for-field identical to
            # what either kernel's ``group_round`` returns for one row.
            b0 = bits_col[0]
            group = RoundGroup(_RANGE_1, (eids[0],), (b0,), None, b0, b0 <= bw, b0)
        else:
            group = self._group_round(eids, bits_col, bw)
        # Batched totals: the baseline counts per enqueue, but by the time
        # anything can observe them (the flush barrier -- including a
        # strict-mode failure, which counts the whole staged round first,
        # exactly as per-enqueue counting would have) the values agree.
        self.total_messages += n
        self.total_bits += group.total_bits
        if self.strict and not group.all_fit:
            # Raise *before* anything is committed (first offending edge in
            # first-seen order, matching the baseline message exactly).
            for eid, bits in zip(group.edge_order, group.edge_sums):
                if bits > bw:
                    queue = self._queues[eid]
                    raise BandwidthExceeded(
                        f"{bits} bits queued on edge {queue.sender!r}->{queue.receiver!r} "
                        f"in one round (B={bw})"
                    )
        if self._live == 0 and group.all_fit:
            # Block fast path: the whole round completes at clock+1.  The
            # block takes ownership of the staged buffer bundle; staging
            # switches to the spare bundle (recycled from the previous
            # block).
            self._block = (eids, bits_col, recs, group, self._bundle)
            self.block_batches += 1
            live = len(group.edge_order)
            spare = self._spare
            if spare is None:
                e2: array = array("q")
                b2: array = array("q")
                r2: list[Any] = []
                spare = (e2, b2, r2, e2.append, b2.append, r2.append)
                self.stage_allocs += 1
            else:
                self._spare = None
            self._adopt_stage(spare)
            path = "block"
        else:
            self._commit_rows(eids, bits_col, recs)
            live = self._live
            del eids[:]
            del bits_col[:]
            recs.clear()
            path = "grouped"
        self._pending_bits += group.total_bits
        self.flush_batches += 1
        if n > self.max_flush_messages:
            self.max_flush_messages = n
        if live > self.peak_live_edges:
            self.peak_live_edges = live
        trace = self.trace
        if trace is not None and trace.enabled:
            trace.event("columnar_batch", clock=self._clock, staged=n, live_edges=live, path=path)

    def _commit_rows(self, eids: array, bits_col: array, recs: list[Any]) -> None:
        """The general commit: append rows to their edge queues, activating
        drained queues with a fresh sequence number (the baseline link
        dict's drain-then-revive insertion order) and installing their head
        completion on the kernel's edge clock."""
        clock = self._clock
        bw = self.bandwidth
        queues = self._queues
        kernels = self.kernels
        for i, eid in enumerate(eids):
            queue = queues[eid]
            b = bits_col[i]
            queue.recs.append(recs[i])
            queue.bits.append(b)
            if not queue.live:
                queue.live = True
                self._live += 1
                self._seq += 1
                queue.seq = self._seq
                queue.head = 0
                queue.head_clock = clock
                queue.head_rem = b
                kernels.clock_install(eid, clock + -(-b // bw), self._seq)

    def _materialize_block(self) -> None:
        """Convert the pending block into live per-edge queues -- the state
        the general path would have produced at the block's flush (the
        clock has not advanced since: a delivery would have consumed the
        block, and a skip would have raised)."""
        eids, bits_col, recs, _group, bundle = self._block
        self._block = None
        self._commit_rows(eids, bits_col, recs)
        del eids[:]
        del bits_col[:]
        recs.clear()
        self._spare = bundle

    # -- advancing -------------------------------------------------------------

    def deliver_round(self) -> dict[Hashable, list[Received]]:
        """Advance one round; touch only the edges whose head completes.

        A pending block is emitted straight from its staged columns, in
        first-appearance edge order (the baseline link-dict insertion
        order), FIFO within each edge.  On the general path, every live
        edge moves exactly ``B`` bits this round unless its head completes
        (then it moves its remainder plus any cascade of queued messages
        fitting the leftover budget) -- so the per-round bit total is
        reconstructed from the completing edges alone, and the
        non-completing majority costs O(1) in aggregate.
        """
        self._clock += 1
        clock = self._clock
        bw = self.bandwidth
        block = self._block
        if block is not None:
            inboxes: dict[Hashable, list[Received]] = defaultdict(list)
            self._block = None
            eids, bits_col, recs, group, bundle = block
            queues = self._queues
            order = group.order
            if type(order) is range:
                # One message per edge, already in staging order: the
                # staged records land directly, one append per message.
                for eid, rec in zip(eids, recs):
                    inboxes[queues[eid].receiver].append(rec)
            else:
                # Repeated edges: walk the per-edge runs so the queue and
                # inbox lookups happen once per edge rather than once per
                # message; each run lands as one comprehension-built
                # extend of already-staged records.
                pos = 0
                for eid, count in zip(group.edge_order, group.edge_counts):
                    end = pos + count
                    inboxes[queues[eid].receiver].extend(
                        [recs[i] for i in order[pos:end]]
                    )
                    pos = end
            if group.max_sum > self.max_edge_bits_per_round:
                self.max_edge_bits_per_round = group.max_sum
            self.per_round_bits.append(group.total_bits)
            self._pending_bits -= group.total_bits
            del eids[:]
            del bits_col[:]
            recs.clear()
            self._spare = bundle
            return inboxes
        live = self._live
        if live == 0:
            # Quiet round: no allocation beyond the empty result dict.
            self.per_round_bits.append(0)
            return {}
        inboxes = defaultdict(list)
        queues = self._queues
        completed = 0
        round_bits = 0
        max_used = 0
        for eid in self.kernels.clock_due(clock):
            queue = queues[eid]
            completed += 1
            # Remaining at the start of this round, derived lazily: the
            # head had head_rem bits at head_clock and moved B per round
            # since.  1 <= rem <= B because the clock said "completes now".
            rem = queue.head_rem - bw * (clock - 1 - queue.head_clock)
            budget = bw - rem
            recs = queue.recs
            bits_list = queue.bits
            inbox = inboxes[queue.receiver]
            i = queue.head
            total = len(bits_list)
            inbox.append(recs[i])
            recs[i] = None  # delivered records are dead; free the ref
            i += 1
            while i < total and bits_list[i] <= budget:
                budget -= bits_list[i]
                inbox.append(recs[i])
                recs[i] = None
                i += 1
            if i < total:
                # New head starts mid-round with the leftover budget
                # already applied; the full B was consumed on this edge.
                used = bw
                queue.head = i
                queue.head_clock = clock
                queue.head_rem = bits_list[i] - budget
                self.kernels.clock_install(eid, clock + -(-queue.head_rem // bw), queue.seq)
                if i > 32 and 2 * i > total:
                    del recs[:i]
                    del bits_list[:i]
                    queue.head = 0
            else:
                # Drained: recycle the queue in place for the next revival.
                used = bw - budget
                queue.live = False
                queue.head = 0
                recs.clear()
                bits_list.clear()
                self._live -= 1
            round_bits += used
            if used > max_used:
                max_used = used
        round_bits += bw * (live - completed)
        if live > completed and bw > max_used:
            max_used = bw
        if max_used > self.max_edge_bits_per_round:
            self.max_edge_bits_per_round = max_used
        self.per_round_bits.append(round_bits)
        self._pending_bits -= round_bits
        return inboxes

    def rounds_until_delivery(self) -> int | None:
        """O(1): a pending block completes next round; otherwise the
        kernel clock's earliest completion minus the current clock."""
        if self._block is not None:
            return 1
        if self._live == 0:
            return None
        return self.kernels.clock_min() - self._clock

    def skip_rounds(self, rounds: int) -> int:
        """Account a quiet stretch without touching any edge state.

        The lazy head accounting makes this O(1) in the number of live
        edges: advancing the clock *is* the per-head decrement, so only
        the metrics need updating.
        """
        if rounds <= 0:
            return 0
        bw = self.bandwidth
        if self._block is not None:
            # The block completes next round, so any skip crosses it.
            bits_col = self._block[1]
            raise RuntimeError(
                "skip_rounds crossed a delivery: "
                f"{rounds} rounds x B={bw} >= {bits_col[0]} bits remaining"
            )
        live = self._live
        if live:
            completion, eid = self.kernels.clock_min_edge()
            if rounds >= completion - self._clock:
                queue = self._queues[eid]
                remaining = queue.head_rem - bw * (self._clock - queue.head_clock)
                raise RuntimeError(
                    "skip_rounds crossed a delivery: "
                    f"{rounds} rounds x B={bw} >= {remaining} bits remaining"
                )
            self._clock += rounds
            if bw > self.max_edge_bits_per_round:
                self.max_edge_bits_per_round = bw
            self.per_round_bits.extend([bw * live] * rounds)
            moved = bw * rounds * live
            self._pending_bits -= moved
            return moved
        self._clock += rounds
        self.per_round_bits.extend([0] * rounds)
        return 0

    # -- inspection ------------------------------------------------------------

    @property
    def live_edges(self) -> int:
        """Directed edges currently carrying traffic."""
        if self._block is not None:
            return len(self._block[3].edge_order)
        return self._live

    @property
    def stage_reuse_ratio(self) -> float:
        """Fraction of non-empty flushes served by a recycled buffer set
        (1.0 means steady-state staging never allocated)."""
        if self.flush_batches == 0:
            return 1.0
        reused = self.flush_batches - self.stage_allocs
        return max(0.0, reused / self.flush_batches)


class MinEdgeIndex:
    """Pre-sorted incident edges for batched fragment-minimum queries.

    Per node, incident edges are sorted once by the canonical edge key
    ``(float(weight), sorted endpoint reprs)`` -- identical to
    ``repro.algorithms.mst.edge_key``, and unique per node since the key
    embeds both endpoint names.  A "lightest edge leaving my fragment"
    query is then the first sorted entry whose neighbour is eligible,
    with no key construction per neighbour per query: exactly the legacy
    per-neighbour minimum (unique keys make the minimum iteration-order
    independent), at amortised O(edges log edges) total build cost per
    network instead of O(degree) key tuples per node per iteration.

    With numpy kernels, nodes of degree >=
    :data:`~repro.congest.kernels.NUMPY_MIN_DEGREE` answer the query as a
    masked first-eligible reduction over the key-sorted parallel repr
    column (the first eligible entry *is* the argmin, keys being sorted
    and unique); smaller nodes keep the early-exit prefix scan, which
    wins below that size.  Both paths return identical results.
    """

    def __init__(self, graph, weight_key: str = "weight", kernels: Any = None):
        self._kernels = kernels if kernels is not None else StdlibKernels
        use_numpy = getattr(self._kernels, "name", "stdlib") == "numpy"
        self._incident: dict[Hashable, list[tuple[tuple, Hashable, str]]] = {}
        #: Key-sorted neighbour-repr column per node (parallel to
        #: ``_incident[u]``), the input to the masked reduction.
        self._reprs: dict[Hashable, list[str]] = {}
        #: Nodes answered by the kernel reduction instead of the scan.
        self._vector_nodes: set = set()
        edges = graph.edges
        for u in graph.nodes():
            u_repr = repr(u)
            entries = []
            for v in graph.neighbors(u):
                v_repr = repr(v)
                a, b = (u_repr, v_repr) if u_repr <= v_repr else (v_repr, u_repr)
                weight = float(edges[u, v].get(weight_key, 1.0))
                entries.append(((weight, a, b), v, v_repr))
            entries.sort(key=lambda entry: entry[0])
            self._incident[u] = entries
            self._reprs[u] = [entry[2] for entry in entries]
            if use_numpy and len(entries) >= NUMPY_MIN_DEGREE:
                self._vector_nodes.add(u)

    def min_outgoing(self, node_id: Hashable, label_of: dict, my_label) -> tuple | None:
        """Mirror of ``mst._min_outgoing``: lightest incident edge whose
        neighbour's label differs (labels compared with ``==``; unknown
        neighbours default to ``my_label`` and are skipped).  Returns
        ``(key, node_id, neighbour)`` or ``None``."""
        entries = self._incident[node_id]
        if node_id in self._vector_nodes:
            get = label_of.get
            flags = [get(r, my_label) != my_label for r in self._reprs[node_id]]
            i = self._kernels.first_eligible(flags)
            if i < 0:
                return None
            key, neighbor, _ = entries[i]
            return (key, node_id, neighbor)
        for key, neighbor, neighbor_repr in entries:
            if label_of.get(neighbor_repr, my_label) == my_label:
                continue
            return (key, node_id, neighbor)
        return None

    def min_outgoing_by_repr(
        self, node_id: Hashable, label_of: dict, my_label, exclude_reprs: set
    ) -> tuple | None:
        """Mirror of the Phase-B candidate scan: labels compared by repr
        and tree-edge neighbours (``exclude_reprs``) skipped.  Returns
        ``(key, neighbour, neighbour_label)`` or ``None``."""
        my_repr = repr(my_label)
        entries = self._incident[node_id]
        if node_id in self._vector_nodes:
            get = label_of.get
            flags = [
                r not in exclude_reprs and repr(get(r, my_label)) != my_repr
                for r in self._reprs[node_id]
            ]
            i = self._kernels.first_eligible(flags)
            if i < 0:
                return None
            key, neighbor, neighbor_repr = entries[i]
            return (key, neighbor, label_of.get(neighbor_repr, my_label))
        for key, neighbor, neighbor_repr in entries:
            other_label = label_of.get(neighbor_repr, my_label)
            if repr(other_label) == my_repr or neighbor_repr in exclude_reprs:
                continue
            return (key, neighbor, other_label)
        return None
