"""The CONGEST(B) network façade over the layered engine stack.

Execution model (Appendix A.1): all nodes wake simultaneously; in each round
every node may place at most ``B`` bits on each incident directed edge;
messages arrive at the end of the round; local computation is free.

Messages larger than ``B`` bits are legal at the API level and are
transmitted over ``ceil(bits/B)`` consecutive rounds, arriving atomically --
this models the standard pipelining argument and keeps round counts honest.
In ``strict`` mode oversized sends raise instead, for algorithms that want to
certify they never exceed the per-round budget.

The implementation is split into three layers (see each module's docstring):

- :mod:`repro.congest.transport` -- per-edge bit accounting, chunking,
  strict-mode checks, metrics (:class:`LinkTransport`);
- :mod:`repro.congest.engine` -- pluggable round schedulers: the reference
  :class:`~repro.congest.engine.DenseEngine` (every node, every round), the
  default :class:`~repro.congest.engine.EventEngine` (active-node set,
  O(1) skips over quiet rounds),
  :class:`~repro.congest.engine.ParallelEngine` (the event clock with the
  step phase sharded across a thread pool) and
  :class:`~repro.congest.engine.ColumnarEngine` (the event clock over the
  struct-of-arrays :mod:`repro.congest.columnar` transport with batched
  min-edge reductions);
- :mod:`repro.congest.node` -- the program API, including the idleness
  hints (``next_active_round`` / phase-level ``idle_until``) the event
  engine exploits.

:class:`CongestNetwork` wires the three together; pick the engine with the
``engine="event"|"dense"|"parallel"|"columnar"`` kwarg (``engine_threads``
sizes the parallel pool).  All engines produce identical
:class:`RunResult`\\ s for the same program -- ``dense`` is the reference
to cross-check against, ``event`` the fast default, ``parallel`` the
sharded stepper for hardware with real thread parallelism, ``columnar``
the struct-of-arrays hot path for big message-heavy runs.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Hashable

import networkx as nx

from repro.congest.columnar import MinEdgeIndex
from repro.congest.engine import Engine, RunResult, get_engine
from repro.congest.faults import FaultPlan, FaultyTransport, apply_topology_event
from repro.congest.node import Node, NodeProgram
from repro.congest.topology import build_adjacency, invalidate_adjacency
from repro.congest.transport import BandwidthExceeded, LinkTransport
from repro.obs.trace import Tracer, current_tracer

__all__ = ["BandwidthExceeded", "CongestNetwork", "RunResult", "run_program"]


class CongestNetwork:
    """A CONGEST(B) network over an undirected connected graph."""

    def __init__(
        self,
        graph: nx.Graph,
        program_factory: Callable[[], NodeProgram],
        bandwidth: int = 32,
        strict: bool = False,
        seed: int | None = None,
        inputs: dict[Hashable, Any] | None = None,
        weight: str = "weight",
        engine: str | Engine = "event",
        engine_threads: int | None = None,
        record_messages: bool = False,
        trace: Tracer | None = None,
        faults: FaultPlan | None = None,
        fault_seed: int | None = None,
    ):
        if graph.number_of_nodes() == 0:
            raise ValueError("network must have at least one node")
        if bandwidth < 1:
            raise ValueError("bandwidth must be at least 1")
        if fault_seed is not None:
            if faults is None:
                raise ValueError("fault_seed requires a FaultPlan (faults=...)")
            faults = faults.with_seed(fault_seed)
        if faults is not None and faults.topology_events:
            # The plan will mutate edges mid-run: work on a private copy so
            # the caller's graph (and its cached adjacency) stay pristine.
            graph = graph.copy()
        self.graph = graph
        self.faults = faults
        self._fault_events_applied = 0
        self.bandwidth = bandwidth
        self.strict = strict
        self.weight_key = weight
        # ``trace=None`` means "whatever tracer is ambient" (the null tracer
        # unless a ``repro.obs.use_tracer`` block is active), so sweeps can
        # trace scenario-internal networks without new plumbing.
        self.trace = trace if trace is not None else current_tracer()
        self._rng = random.Random(seed)
        self.n_nodes = graph.number_of_nodes()
        # Engine first: it declares the transport layout it runs against
        # (LinkTransport by default, the struct-of-arrays ColumnarTransport
        # for the columnar engine).
        self.engine = get_engine(engine, threads=engine_threads, graph=graph)
        self.transport = self.engine.build_transport(
            bandwidth, strict=strict, record_messages=record_messages
        )
        if faults is not None:
            # The fault seam sits between the engine and the transport it
            # asked for; even an empty plan goes through the wrapper so the
            # equivalence suite can assert the wrapper itself is transparent.
            self.transport = FaultyTransport(self.transport, faults, trace=self.trace)
        if getattr(type(self.transport), "wants_trace", False):
            self.transport.trace = self.trace
        self._min_edge_index: MinEdgeIndex | None = None
        if faults is not None and self.trace.enabled:
            for span in faults.crashes:
                self.trace.event(
                    "fault_crash_span", node=repr(span.node), start=span.start, stop=span.stop
                )

        # Canonical node order + per-node neighbour tuples, sorted by repr
        # and cached per graph (repeated builds over one instance reuse
        # them; see topology.build_adjacency).
        node_order, adjacency = build_adjacency(graph)
        self.nodes: dict[Hashable, Node] = {}
        self.programs: dict[Hashable, NodeProgram] = {}
        for node_id in node_order:
            node = Node(node_id, adjacency[node_id], self, random.Random(self._rng.random()))
            if inputs is not None and node_id in inputs:
                node.input = inputs[node_id]
            self.nodes[node_id] = node
            self.programs[node_id] = program_factory()

        self.current_round = 0

    def edge_weight(self, u: Hashable, v: Hashable) -> float:
        return self.graph.edges[u, v].get(self.weight_key, 1.0)

    def min_edge_index(self) -> MinEdgeIndex:
        """The batched fragment-minimum service: incident edges pre-sorted
        by canonical edge key, built lazily once per network.  Engines opt
        in via ``uses_min_edge_index`` (see the MST programs)."""
        index = self._min_edge_index
        if index is None:
            index = self._min_edge_index = MinEdgeIndex(
                self.graph, self.weight_key, kernels=getattr(self.engine, "kernels", None)
            )
        return index

    # -- metrics (owned by the transport) --------------------------------------

    @property
    def total_messages(self) -> int:
        return self.transport.total_messages

    @property
    def total_bits(self) -> int:
        return self.transport.total_bits

    @property
    def max_edge_bits_per_round(self) -> int:
        return self.transport.max_edge_bits_per_round

    @property
    def per_round_bits(self) -> list[int]:
        return self.transport.per_round_bits

    @property
    def message_log(self) -> list[tuple[int, Hashable, Hashable, int]]:
        """(round_sent, sender, receiver, bits) per message; requires
        ``record_messages=True`` (off by default -- it grows unboundedly)."""
        return self.transport.message_log

    @property
    def record_messages(self) -> bool:
        return self.transport.record_messages

    # -- plumbing used by Node.send ------------------------------------------

    def _enqueue(self, sender: Hashable, receiver: Hashable, payload: Any, bits: int) -> None:
        self.transport.enqueue(sender, receiver, payload, bits, self.current_round)

    def _enqueue_many(self, sender: Hashable, receivers: list[Hashable], payload: Any, bits: int) -> None:
        self.transport.enqueue_many(sender, receivers, payload, bits, self.current_round)

    def _drop_stale_send(self, sender: Hashable, receiver: Hashable) -> bool:
        """Whether a send to a non-neighbour should be silently lost.

        True only under a fault plan whose timeline says the link was
        deleted -- the stale-reference case (a program still addressing a
        BFS-tree child after churn removed the edge).  Everything else
        stays a programming error raised by the node handle.
        """
        if self.faults is None:
            return False
        return self.transport.lost_link_send(sender, receiver, self.current_round)

    # -- fault dynamism --------------------------------------------------------

    def apply_topology_events(self, round_no: int) -> None:
        """Apply every scheduled edge event with ``event.round <= round_no``.

        Engines call this at the start of each executed round (the event
        engines never skip past a scheduled round, so catch-up is a safety
        net, not the normal path).  Applying an event splices the endpoints'
        neighbour tuples in repr-sorted order, invalidates the graph's
        cached adjacency (a paired insert+delete keeps the edge count
        unchanged, defeating the cache's size signature), and drops the
        lazily built min-edge index so fragment-minimum queries see the new
        topology.
        """
        faults = self.faults
        if faults is None:
            return
        events = faults.topology_events
        i = self._fault_events_applied
        mutated = False
        while i < len(events) and events[i].round <= round_no:
            event = events[i]
            i += 1
            if not apply_topology_event(self.graph, event, weight=self.weight_key):
                continue
            mutated = True
            if event.action == "insert":
                self.nodes[event.u]._insert_neighbor(event.v)
                self.nodes[event.v]._insert_neighbor(event.u)
            else:
                self.nodes[event.u]._remove_neighbor(event.v)
                self.nodes[event.v]._remove_neighbor(event.u)
            stats = getattr(self.transport, "stats", None)
            if stats is not None:
                stats.topology_applied += 1
            if self.trace.enabled:
                self.trace.event(
                    "fault_topology",
                    round=round_no,
                    action=event.action,
                    u=repr(event.u),
                    v=repr(event.v),
                )
        self._fault_events_applied = i
        if mutated:
            invalidate_adjacency(self.graph)
            self._min_edge_index = None

    # -- execution -------------------------------------------------------------

    def run(self, max_rounds: int = 100_000, stop_on_quiescence: bool = False) -> RunResult:
        """Run until every node halts (or ``max_rounds`` elapse).

        With ``stop_on_quiescence`` the run also ends once a round passes
        with no deliveries, no sends and no traffic in flight -- the
        termination model for self-stabilising programs (e.g. Bellman-Ford)
        whose nodes cannot detect termination locally.
        """
        return self.engine.run(self, max_rounds=max_rounds, stop_on_quiescence=stop_on_quiescence)

    def pending_traffic(self) -> int:
        """Bits still in flight (useful for quiescence assertions in tests)."""
        return self.transport.pending_traffic()


def run_program(
    graph: nx.Graph,
    program_factory: Callable[[], NodeProgram],
    bandwidth: int = 32,
    inputs: dict[Hashable, Any] | None = None,
    seed: int | None = None,
    max_rounds: int = 100_000,
    strict: bool = False,
    engine: str | Engine = "event",
    engine_threads: int | None = None,
    record_messages: bool = False,
    trace: Tracer | None = None,
    faults: FaultPlan | None = None,
    fault_seed: int | None = None,
) -> RunResult:
    """Convenience wrapper: build a network, run it, return the result."""
    network = CongestNetwork(
        graph,
        program_factory,
        bandwidth=bandwidth,
        strict=strict,
        seed=seed,
        inputs=inputs,
        engine=engine,
        engine_threads=engine_threads,
        record_messages=record_messages,
        trace=trace,
        faults=faults,
        fault_seed=fault_seed,
    )
    return network.run(max_rounds=max_rounds)
