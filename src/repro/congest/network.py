"""The synchronous round scheduler and bandwidth model.

Execution model (Appendix A.1): all nodes wake simultaneously; in each round
every node may place at most ``B`` bits on each incident directed edge;
messages arrive at the end of the round; local computation is free.

Messages larger than ``B`` bits are legal at the API level and are
transmitted over ``ceil(bits/B)`` consecutive rounds, arriving atomically --
this models the standard pipelining argument and keeps round counts honest.
In ``strict`` mode oversized sends raise instead, for algorithms that want to
certify they never exceed the per-round budget.
"""

from __future__ import annotations

import random
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

import networkx as nx

from repro.congest.message import Received, _InFlight
from repro.congest.node import Node, NodeProgram


class BandwidthExceeded(RuntimeError):
    """Raised in strict mode when a round's traffic on an edge exceeds B."""


@dataclass
class RunResult:
    """Metrics of one distributed execution."""

    rounds: int
    total_messages: int
    total_bits: int
    outputs: dict[Hashable, Any]
    halted: bool
    max_edge_bits_per_round: int = 0
    per_round_bits: list[int] = field(default_factory=list)

    def output_values(self) -> set:
        return set(self.outputs.values())

    def unanimous_output(self) -> Any:
        """The common output of all nodes; raises if nodes disagree."""
        values = {repr(v) for v in self.outputs.values()}
        if len(values) != 1:
            raise ValueError(f"nodes disagree: {sorted(values)[:5]}")
        return next(iter(self.outputs.values()))


class CongestNetwork:
    """A CONGEST(B) network over an undirected connected graph."""

    def __init__(
        self,
        graph: nx.Graph,
        program_factory: Callable[[], NodeProgram],
        bandwidth: int = 32,
        strict: bool = False,
        seed: int | None = None,
        inputs: dict[Hashable, Any] | None = None,
        weight: str = "weight",
    ):
        if graph.number_of_nodes() == 0:
            raise ValueError("network must have at least one node")
        if bandwidth < 1:
            raise ValueError("bandwidth must be at least 1")
        self.graph = graph
        self.bandwidth = bandwidth
        self.strict = strict
        self.weight_key = weight
        self._rng = random.Random(seed)
        self.n_nodes = graph.number_of_nodes()

        self.nodes: dict[Hashable, Node] = {}
        self.programs: dict[Hashable, NodeProgram] = {}
        for node_id in sorted(graph.nodes(), key=repr):
            neighbors = sorted(graph.neighbors(node_id), key=repr)
            node = Node(node_id, neighbors, self, random.Random(self._rng.random()))
            if inputs is not None and node_id in inputs:
                node.input = inputs[node_id]
            self.nodes[node_id] = node
            self.programs[node_id] = program_factory()

        # Per directed edge: FIFO of in-flight messages.
        self._links: dict[tuple[Hashable, Hashable], deque[_InFlight]] = defaultdict(deque)
        # Messages queued by sends during the current round.
        self._outgoing: list[_InFlight] = []
        self.total_messages = 0
        self.total_bits = 0
        self.max_edge_bits_per_round = 0
        self.per_round_bits: list[int] = []
        #: (round_sent, sender, receiver, bits) for every message.
        self.message_log: list[tuple[int, Hashable, Hashable, int]] = []
        self.current_round = 0

    def edge_weight(self, u: Hashable, v: Hashable) -> float:
        return self.graph.edges[u, v].get(self.weight_key, 1.0)

    # -- plumbing used by Node.send ------------------------------------------

    def _enqueue(self, sender: Hashable, receiver: Hashable, payload: Any, bits: int) -> None:
        if self.strict and bits > self.bandwidth:
            raise BandwidthExceeded(
                f"message of {bits} bits exceeds B={self.bandwidth} on edge "
                f"{sender!r}->{receiver!r}"
            )
        self._outgoing.append(_InFlight(sender, receiver, payload, bits, bits))
        self.total_messages += 1
        self.total_bits += bits
        self.message_log.append((self.current_round, sender, receiver, bits))

    # -- execution -------------------------------------------------------------

    def run(self, max_rounds: int = 100_000, stop_on_quiescence: bool = False) -> RunResult:
        """Run until every node halts (or ``max_rounds`` elapse).

        With ``stop_on_quiescence`` the run also ends once a round passes
        with no deliveries, no sends and no traffic in flight -- the
        termination model for self-stabilising programs (e.g. Bellman-Ford)
        whose nodes cannot detect termination locally.
        """
        for node_id, program in self.programs.items():
            program.on_start(self.nodes[node_id])
        self._flush_outgoing()

        round_no = 0
        while round_no < max_rounds:
            if all(node.halted for node in self.nodes.values()):
                break
            if (
                stop_on_quiescence
                and round_no > 0
                and self.per_round_bits
                and self.per_round_bits[-1] == 0
                and self.pending_traffic() == 0
                and not self._outgoing
            ):
                round_no -= 1  # the silent probe round does not count
                break
            round_no += 1
            self.current_round = round_no
            inboxes = self._advance_links()
            for node_id in self.nodes:
                node = self.nodes[node_id]
                if node.halted:
                    continue
                self.programs[node_id].on_round(node, round_no, inboxes.get(node_id, []))
            self._flush_outgoing()

        halted = all(node.halted for node in self.nodes.values())
        return RunResult(
            rounds=round_no,
            total_messages=self.total_messages,
            total_bits=self.total_bits,
            outputs={nid: node.output for nid, node in self.nodes.items()},
            halted=halted,
            max_edge_bits_per_round=self.max_edge_bits_per_round,
            per_round_bits=self.per_round_bits,
        )

    def _flush_outgoing(self) -> None:
        if self.strict:
            per_edge: dict[tuple[Hashable, Hashable], int] = defaultdict(int)
            for msg in self._outgoing:
                per_edge[(msg.sender, msg.receiver)] += msg.bits
            for (u, v), bits in per_edge.items():
                if bits > self.bandwidth:
                    raise BandwidthExceeded(
                        f"{bits} bits queued on edge {u!r}->{v!r} in one round "
                        f"(B={self.bandwidth})"
                    )
        for msg in self._outgoing:
            self._links[(msg.sender, msg.receiver)].append(msg)
        self._outgoing = []

    def _advance_links(self) -> dict[Hashable, list[Received]]:
        """Move B bits along every directed edge; collect completed messages."""
        inboxes: dict[Hashable, list[Received]] = defaultdict(list)
        round_bits = 0
        drained: list[tuple[Hashable, Hashable]] = []
        for (sender, receiver), queue in self._links.items():
            budget = self.bandwidth
            while queue and budget > 0:
                msg = queue[0]
                moved = min(budget, msg.remaining)
                msg.remaining -= moved
                budget -= moved
                round_bits += moved
                if msg.remaining == 0:
                    queue.popleft()
                    inboxes[receiver].append(Received(sender, msg.payload, msg.bits))
            used = self.bandwidth - budget
            if used > self.max_edge_bits_per_round:
                self.max_edge_bits_per_round = used
            if not queue:
                drained.append((sender, receiver))
        # Drop drained queues so quiet links cost nothing: without this, a
        # long run pays O(every directed edge ever used) per round even
        # after all traffic has ceased.
        for key in drained:
            del self._links[key]
        self.per_round_bits.append(round_bits)
        return inboxes

    def pending_traffic(self) -> int:
        """Bits still in flight (useful for quiescence assertions in tests)."""
        return sum(msg.remaining for queue in self._links.values() for msg in queue)


def run_program(
    graph: nx.Graph,
    program_factory: Callable[[], NodeProgram],
    bandwidth: int = 32,
    inputs: dict[Hashable, Any] | None = None,
    seed: int | None = None,
    max_rounds: int = 100_000,
    strict: bool = False,
) -> RunResult:
    """Convenience wrapper: build a network, run it, return the result."""
    network = CongestNetwork(
        graph,
        program_factory,
        bandwidth=bandwidth,
        strict=strict,
        seed=seed,
        inputs=inputs,
    )
    return network.run(max_rounds=max_rounds)
