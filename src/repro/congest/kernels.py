"""Kernel-dispatch seam for the columnar CONGEST hot loops.

The columnar engine's batch operations -- staging-column scans, per-edge
grouping with strict bandwidth accounting, the delivery-cascade
completion scan, fragment-minimum reductions and the union-find edge
sweep -- are expressed against a small *kernel* interface with two
implementations:

- :class:`StdlibKernels` -- the reference semantics, pure stdlib
  (``heapq`` / ``dict`` / ``list``).  Always available; every numpy
  kernel is defined as "byte-identical to this".
- :class:`NumpyKernels` -- the same operations as vectorized ndarray
  scans (``np.unique`` grouping, ``bincount`` per-edge sums, a dense
  completion-clock array scanned with ``nonzero`` instead of a heap).

Selection happens **once, at construction** (:func:`resolve_kernels`
maps a spec string to a kernel class; transports/engines instantiate
it), never per call -- the per-call ``len() >= threshold`` checks of the
PR 7 columnar module are gone from the hot path.  The batch operations
are ``@staticmethod``\\ s so the *class* doubles as a stateless kernel
handle (``MinEdgeIndex``, ``component_count_mst_weight``); only the
edge-clock state (the delivery heap / the dense completion array) lives
on instances, one per transport.

Dtype contract (see also ``docs/architecture.md``): staged bit counts
and edge ids are 64-bit signed integers staged in ``array('q')`` columns
-- ``np.frombuffer`` gives the numpy kernels zero-copy ``int64`` views
of exactly the bytes the stdlib kernels iterate.  Completion clocks and
creation sequence numbers are ``int64``; the idle sentinel ``_IDLE`` is
``2**62`` (no simulated clock gets within a factor of two of it).
"""

from __future__ import annotations

import heapq
from array import array
from typing import Any, NamedTuple

try:  # optional fast path; the stdlib kernels are the reference semantics
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

#: Completion-clock value of an idle edge in the dense numpy clock array.
_IDLE = 1 << 62

#: Minimum sorted-incident-list length before the numpy fragment-minimum
#: mask-and-reduce beats the stdlib prefix scan (which exits at the first
#: eligible edge); below it both kernel classes use the prefix scan.
NUMPY_MIN_DEGREE = 32

#: Minimum staged-round size before the ndarray grouping beats the dict
#: loop: ``np.unique`` sorts, so its advantage only shows once the batch
#: is big enough to amortise the fixed ndarray setup (measured crossover
#: ~100-130 rows; a two-message flush never gets close).  This is a
#: size-adaptive *algorithm* inside the numpy kernel, not a per-call
#: availability check: the kernel class is still chosen once at
#: construction.
NUMPY_MIN_GROUP = 128


def numpy_available() -> bool:
    """Whether the numpy kernels can be selected in this process."""
    return _np is not None


class RoundGroup(NamedTuple):
    """One staged round grouped by directed edge (the flush kernel output).

    ``order`` lists message indices grouped by edge -- edges in
    first-appearance order, FIFO within each edge -- which is exactly the
    insertion order of the baseline transport's link dict; when every
    staged message sits on a distinct edge it is simply ``range(n)``.
    ``edge_order`` / ``edge_sums`` are parallel per-edge columns in that
    same first-appearance order (list or int64 ndarray -- consumers only
    ``len``/iterate them, and only off the hot path).  ``edge_counts``
    carries the per-edge message counts (the run lengths of ``order``)
    whenever ``order`` is a materialised list -- the block delivery loop
    uses the runs to hoist its per-edge lookups out of the per-message
    loop; when ``order`` is a ``range`` every count is 1 and the field is
    ``None``.
    """

    order: Any  # list[int] | range
    edge_order: Any  # list[int] | int64 ndarray
    edge_sums: Any  # list[int] | int64 ndarray
    edge_counts: Any  # list[int] | None (None iff order is a range)
    total_bits: int
    all_fit: bool  # every per-edge sum <= bandwidth
    max_sum: int  # the largest per-edge sum (0 for an empty round)


class StdlibKernels:
    """Reference kernels: stdlib containers, loops in staging order."""

    name = "stdlib"

    # -- stateless batch ops ------------------------------------------------

    @staticmethod
    def sum_bits(bits: array) -> int:
        """Total of a staged bits column."""
        return sum(bits)

    @staticmethod
    def group_round(eids: array, bits: array, bandwidth: int) -> RoundGroup:
        """Group one staged round by directed edge (see :class:`RoundGroup`)."""
        n = len(eids)
        if n == 0:
            return RoundGroup(range(0), [], [], None, 0, True, 0)
        if n == 1:
            b = bits[0]
            return RoundGroup(range(1), [eids[0]], [b], None, b, b <= bandwidth, b)
        if n == 2:
            b0, b1 = bits[0], bits[1]
            e0, e1 = eids[0], eids[1]
            if e0 == e1:
                s = b0 + b1
                return RoundGroup(range(2), [e0], [s], None, s, s <= bandwidth, s)
            m = b0 if b0 >= b1 else b1
            return RoundGroup(range(2), [e0, e1], [b0, b1], None, b0 + b1, m <= bandwidth, m)
        groups: dict[int, list[int]] = {}
        sums: dict[int, int] = {}
        total = 0
        for i, eid in enumerate(eids):
            b = bits[i]
            total += b
            bucket = groups.get(eid)
            if bucket is None:
                groups[eid] = [i]
                sums[eid] = b
            else:
                bucket.append(i)
                sums[eid] += b
        edge_order = list(groups)
        edge_sums = [sums[eid] for eid in edge_order]
        if len(edge_order) == n:
            order: Any = range(n)  # one message per edge: already grouped
            edge_counts = None
        else:
            buckets = list(groups.values())
            order = [i for bucket in buckets for i in bucket]
            edge_counts = [len(bucket) for bucket in buckets]
        max_sum = max(edge_sums)
        return RoundGroup(
            order, edge_order, edge_sums, edge_counts, total, max_sum <= bandwidth, max_sum
        )

    @staticmethod
    def sort_edges_by_class(classes: list[int], us: list[int], vs: list[int]):
        """Stable sort of integer edge triples by class (union-find sweep
        order; stability keeps the stdlib/numpy union sequences identical)."""
        order = sorted(range(len(classes)), key=classes.__getitem__)
        return (
            [classes[i] for i in order],
            [us[i] for i in order],
            [vs[i] for i in order],
        )

    @staticmethod
    def first_eligible(flags) -> int:
        """Index of the first truthy flag, or -1.  ``flags`` is an iterable
        of eligibility booleans for a key-sorted incident edge list; the
        first eligible entry *is* the fragment minimum (keys are unique)."""
        for i, flag in enumerate(flags):
            if flag:
                return i
        return -1

    # -- edge-clock state (the delivery schedule) ---------------------------

    def __init__(self) -> None:
        # (completion clock, edge seq, eid): exactly one entry per live
        # edge, no stale entries -- popped when (and only when) the head
        # completes, pushed when a new head is installed.
        self._heap: list[tuple[int, int, int]] = []

    def clock_install(self, eid: int, completion: int, seq: int) -> None:
        heapq.heappush(self._heap, (completion, seq, eid))

    def clock_due(self, clock: int) -> list[int]:
        """Pop and return the edges completing at ``clock``, in creation-
        sequence order (the heap orders ties by seq)."""
        heap = self._heap
        due: list[int] = []
        while heap and heap[0][0] == clock:
            due.append(heapq.heappop(heap)[2])
        return due

    def clock_min(self) -> int | None:
        """Earliest scheduled completion clock, or None when idle."""
        return self._heap[0][0] if self._heap else None

    def clock_min_edge(self) -> tuple[int, int] | None:
        """(earliest completion clock, its lowest-seq edge), or None."""
        if not self._heap:
            return None
        completion, _seq, eid = self._heap[0]
        return completion, eid


class NumpyKernels(StdlibKernels):
    """Vectorized kernels; every result is byte-identical to the stdlib
    reference (the randomized lockstep suite in ``tests/test_kernels.py``
    enforces it).  Raises at construction/selection when numpy is absent.
    """

    name = "numpy"

    @staticmethod
    def sum_bits(bits: array) -> int:
        if not bits:
            return 0
        return int(_np.frombuffer(bits, dtype=_np.int64).sum())

    @staticmethod
    def group_round(eids: array, bits: array, bandwidth: int) -> RoundGroup:
        # Delegate below the measured crossover -- and always for an empty
        # column, which the reductions below cannot represent.
        if len(eids) < NUMPY_MIN_GROUP or not eids:
            return StdlibKernels.group_round(eids, bits, bandwidth)
        keys = _np.frombuffer(eids, dtype=_np.int64)
        b = _np.frombuffer(bits, dtype=_np.int64)
        uniq, first, inverse = _np.unique(keys, return_index=True, return_inverse=True)
        k = len(uniq)
        n = len(keys)
        # Per-edge sums over the sorted-unique axis.  float64 sums of int
        # bit counts are exact far beyond any simulated budget (< 2^53).
        sums = _np.bincount(inverse, weights=b, minlength=k).astype(_np.int64)
        # Rank each unique edge by first appearance in the staging order --
        # the baseline link dict's insertion order.
        appearance = _np.argsort(first, kind="stable")
        if k == n:
            order: Any = range(n)
            edge_order: Any = uniq[appearance]
            edge_counts = None
        else:
            rank = _np.empty(k, dtype=_np.int64)
            rank[appearance] = _np.arange(k)
            order = _np.argsort(rank[inverse], kind="stable").tolist()
            # The delivery loop walks these per-edge runs with plain-int
            # indexing, so hand them over as lists (one C conversion here
            # beats per-element ndarray boxing there).
            edge_order = uniq[appearance].tolist()
            edge_counts = _np.bincount(inverse, minlength=k)[appearance].tolist()
        max_sum = int(sums.max())
        return RoundGroup(
            order,
            edge_order,
            sums[appearance],
            edge_counts,
            int(b.sum()),
            max_sum <= bandwidth,
            max_sum,
        )

    @staticmethod
    def sort_edges_by_class(classes: list[int], us: list[int], vs: list[int]):
        order = _np.argsort(_np.asarray(classes, dtype=_np.int64), kind="stable")
        cls = _np.asarray(classes, dtype=_np.int64)[order]
        u_arr = _np.asarray(us, dtype=_np.int64)[order]
        v_arr = _np.asarray(vs, dtype=_np.int64)[order]
        return cls.tolist(), u_arr.tolist(), v_arr.tolist()

    @staticmethod
    def first_eligible(flags) -> int:
        mask = _np.fromiter(flags, dtype=bool)
        if not mask.any():
            return -1
        return int(mask.argmax())

    # -- edge-clock state: dense completion/seq arrays ----------------------

    def __init__(self) -> None:
        if _np is None:  # pragma: no cover - guarded by resolve_kernels
            raise ImportError("numpy kernels selected but numpy is not importable")
        self._completion = _np.full(256, _IDLE, dtype=_np.int64)
        self._seqs = _np.zeros(256, dtype=_np.int64)
        self._hi = 0  # registered edge ids are < _hi
        # Min over live completions, maintained incrementally: installs can
        # only lower it (O(1) update) and pops happen only in clock_due,
        # which refreshes it with one vectorised pass.  Keeps clock_min()
        # O(1) -- the engine probes it once per executed round.
        self._cached_min = _IDLE

    def _ensure(self, eid: int) -> None:
        if eid >= self._hi:
            self._hi = eid + 1
        cap = len(self._completion)
        if eid >= cap:
            while cap <= eid:
                cap *= 2
            completion = _np.full(cap, _IDLE, dtype=_np.int64)
            completion[: len(self._completion)] = self._completion
            seqs = _np.zeros(cap, dtype=_np.int64)
            seqs[: len(self._seqs)] = self._seqs
            self._completion = completion
            self._seqs = seqs

    def clock_install(self, eid: int, completion: int, seq: int) -> None:
        self._ensure(eid)
        self._completion[eid] = completion
        self._seqs[eid] = seq
        if completion < self._cached_min:
            self._cached_min = completion

    def clock_due(self, clock: int) -> list[int]:
        live = self._completion[: self._hi]
        due = (live == clock).nonzero()[0]
        if len(due) == 0:
            return []
        if len(due) > 1:
            due = due[_np.argsort(self._seqs[due], kind="stable")]
        self._completion[due] = _IDLE  # pop semantics, like the heap
        self._cached_min = int(live.min()) if len(live) else _IDLE
        return due.tolist()

    def clock_min(self) -> int | None:
        m = self._cached_min
        return None if m == _IDLE else m

    def clock_min_edge(self) -> tuple[int, int] | None:
        m = self._cached_min
        if m == _IDLE:
            return None
        live = self._completion[: self._hi]
        ties = (live == m).nonzero()[0]
        eid = int(ties[self._seqs[ties].argmin()]) if len(ties) > 1 else int(ties[0])
        return m, eid


def resolve_kernels(spec: str | type[StdlibKernels] | None) -> type[StdlibKernels]:
    """Map a kernel spec to a kernel class -- the construction-time choice.

    ``"auto"`` (and ``None``) picks :class:`NumpyKernels` when numpy is
    importable and :class:`StdlibKernels` otherwise; ``"stdlib"`` and
    ``"numpy"`` pin the implementation (``"numpy"`` raises if unavailable,
    so a pinned benchmark leg cannot silently fall back).
    """
    if spec is None or spec == "auto":
        return NumpyKernels if _np is not None else StdlibKernels
    if isinstance(spec, type) and issubclass(spec, StdlibKernels):
        return spec
    if spec == "stdlib":
        return StdlibKernels
    if spec == "numpy":
        if _np is None:
            raise ImportError("kernels='numpy' requested but numpy is not importable")
        return NumpyKernels
    raise ValueError(f"unknown kernels spec {spec!r}; known: auto, stdlib, numpy")
