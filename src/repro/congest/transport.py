"""The transport layer: per-edge bit accounting, chunking and metrics.

This is the bottom of the three-layer CONGEST engine stack
(transport -> scheduler -> program API).  A :class:`LinkTransport` owns the
per-directed-edge FIFO link buffers and everything that is charged by the
bit: strict-mode bandwidth checks, message chunking over ``ceil(bits/B)``
rounds, the run metrics (``total_bits``, ``per_round_bits``,
``max_edge_bits_per_round``) and the optional per-message log.

Engines drive it through four operations:

- :meth:`enqueue` / :meth:`flush` -- stage a round's sends, then commit them
  to the link buffers (strict mode validates the per-edge round budget at
  the flush barrier, exactly as the synchronous model requires);
- :meth:`deliver_round` -- advance every link by one round's budget and
  collect the messages that completed (the dense per-round path);
- :meth:`rounds_until_delivery` / :meth:`skip_rounds` -- the event-driven
  fast path: because links drain deterministically at ``B`` bits per round,
  a stretch of rounds in which no message completes can be accounted in one
  call (each busy link moves exactly ``B`` bits per skipped round), keeping
  the metrics bit-identical to a round-by-round advance;
- :meth:`begin_shard_staging` / :meth:`open_shard_outbox` /
  :meth:`merge_shard_outboxes` -- the parallel-stepping path: while a round's
  node shards run on worker threads, each thread's sends are staged in a
  thread-local :class:`ShardOutbox` instead of the shared structures, then
  merged at the round barrier in an engine-chosen deterministic order.  The
  strict per-message check still fires inside the sending node's step; the
  totals, the per-edge flush check and the opt-in message log are applied at
  the merge, so they are byte-identical to a serial execution.
"""

from __future__ import annotations

import threading
from collections import defaultdict, deque
from typing import Any, Hashable, Iterable

from repro.congest.message import Received, _InFlight


class BandwidthExceeded(RuntimeError):
    """Raised in strict mode when a round's traffic on an edge exceeds B."""


class ShardOutbox:
    """Thread-local staging for one shard of a parallel round.

    Worker threads append here instead of touching the transport's shared
    counters; :meth:`LinkTransport.merge_shard_outboxes` folds the boxes back
    in at the round barrier.  Messages keep their per-node send order, so a
    merge in node-id order reproduces the serial engines' state exactly.
    """

    __slots__ = ("messages", "log", "n_messages", "bits")

    def __init__(self) -> None:
        self.messages: list[_InFlight] = []
        self.log: list[tuple[int, Hashable, Hashable, int]] = []
        self.n_messages = 0
        self.bits = 0


class LinkTransport:
    """Link buffers and bit accounting for one CONGEST(B) execution."""

    def __init__(self, bandwidth: int, strict: bool = False, record_messages: bool = False):
        if bandwidth < 1:
            raise ValueError("bandwidth must be at least 1")
        self.bandwidth = bandwidth
        self.strict = strict
        self.record_messages = record_messages
        # Per directed edge: FIFO of in-flight messages.  Invariant: only
        # edges with traffic have an entry (drained queues are dropped), so
        # quiet links cost nothing and ``len(_links)`` is the live-edge count.
        self._links: dict[tuple[Hashable, Hashable], deque[_InFlight]] = {}
        # Messages queued by sends during the current round.
        self._outgoing: list[_InFlight] = []
        self.total_messages = 0
        self.total_bits = 0
        self.max_edge_bits_per_round = 0
        self.per_round_bits: list[int] = []
        # Bits still in flight (committed to link buffers, not yet moved),
        # kept incrementally: += at the flush commit, -= exactly the bits a
        # round (or skipped stretch) moves.  Makes pending_traffic() O(1)
        # -- the event engine probes it every executed round.
        self._pending_bits = 0
        #: (round_sent, sender, receiver, bits) per message; only populated
        #: when ``record_messages`` is set (the list grows unboundedly).
        self.message_log: list[tuple[int, Hashable, Hashable, int]] = []
        # Non-None only while a parallel engine steps a round's shards on
        # worker threads; each thread's ShardOutbox hangs off this local.
        self._shard_staging: threading.local | None = None

    # -- staging ---------------------------------------------------------------

    def enqueue(self, sender: Hashable, receiver: Hashable, payload: Any, bits: int, round_no: int) -> None:
        """Stage one message for the current round's flush."""
        if self.strict and bits > self.bandwidth:
            raise BandwidthExceeded(
                f"message of {bits} bits exceeds B={self.bandwidth} on edge "
                f"{sender!r}->{receiver!r}"
            )
        staging = self._shard_staging
        if staging is not None:
            box = getattr(staging, "box", None)
            if box is not None:
                box.messages.append(_InFlight(sender, receiver, payload, bits, bits))
                box.n_messages += 1
                box.bits += bits
                if self.record_messages:
                    box.log.append((round_no, sender, receiver, bits))
                return
        self._outgoing.append(_InFlight(sender, receiver, payload, bits, bits))
        self.total_messages += 1
        self.total_bits += bits
        if self.record_messages:
            self.message_log.append((round_no, sender, receiver, bits))

    def enqueue_many(self, sender: Hashable, receivers: Iterable[Hashable], payload: Any, bits: int, round_no: int) -> None:
        """Stage one payload to several receivers (the broadcast path).

        The reference semantics are exactly a loop over :meth:`enqueue`
        (same strict checks, same staging order, same log entries); bulk
        transports override this to amortise the per-message staging work.
        """
        for receiver in receivers:
            self.enqueue(sender, receiver, payload, bits, round_no)

    # -- parallel staging (thread-sharded engines) -----------------------------

    def begin_shard_staging(self) -> None:
        """Enter parallel-staging mode: sends from threads that opened a
        :class:`ShardOutbox` are staged there instead of the shared state."""
        self._shard_staging = threading.local()

    def open_shard_outbox(self) -> ShardOutbox:
        """Bind a fresh outbox to the calling thread; returns it for merging."""
        staging = self._shard_staging
        if staging is None:
            raise RuntimeError("open_shard_outbox outside begin/end_shard_staging")
        box = ShardOutbox()
        staging.box = box
        return box

    def close_shard_outbox(self) -> None:
        """Unbind the calling thread's outbox (its contents stay mergeable)."""
        if self._shard_staging is not None:
            self._shard_staging.box = None

    def end_shard_staging(self) -> None:
        """Leave parallel-staging mode (all shard threads must have finished)."""
        self._shard_staging = None

    def merge_shard_outboxes(self, outboxes: Iterable[ShardOutbox]) -> None:
        """Fold shard outboxes into the shared staging state, in the given
        order.  Engines pass shards in node-id order, which makes the
        ``_outgoing`` sequence -- and therefore the strict flush check and
        the opt-in message log -- byte-identical to a serial round."""
        for box in outboxes:
            self._outgoing.extend(box.messages)
            self.total_messages += box.n_messages
            self.total_bits += box.bits
            if self.record_messages:
                self.message_log.extend(box.log)

    def flush(self) -> None:
        """Commit the staged sends to the link buffers (round barrier)."""
        if self.strict:
            per_edge: dict[tuple[Hashable, Hashable], int] = defaultdict(int)
            for msg in self._outgoing:
                per_edge[(msg.sender, msg.receiver)] += msg.bits
            for (u, v), bits in per_edge.items():
                if bits > self.bandwidth:
                    raise BandwidthExceeded(
                        f"{bits} bits queued on edge {u!r}->{v!r} in one round "
                        f"(B={self.bandwidth})"
                    )
        committed = 0
        for msg in self._outgoing:
            queue = self._links.get((msg.sender, msg.receiver))
            if queue is None:
                queue = self._links[(msg.sender, msg.receiver)] = deque()
            queue.append(msg)
            committed += msg.bits
        self._pending_bits += committed
        self._outgoing = []

    def has_outgoing(self) -> bool:
        return bool(self._outgoing)

    # -- advancing -------------------------------------------------------------

    def deliver_round(self) -> dict[Hashable, list[Received]]:
        """Move B bits along every directed edge; collect completed messages."""
        inboxes: dict[Hashable, list[Received]] = defaultdict(list)
        round_bits = 0
        drained: list[tuple[Hashable, Hashable]] = []
        for (sender, receiver), queue in self._links.items():
            budget = self.bandwidth
            while queue and budget > 0:
                msg = queue[0]
                moved = min(budget, msg.remaining)
                msg.remaining -= moved
                budget -= moved
                round_bits += moved
                if msg.remaining == 0:
                    queue.popleft()
                    inboxes[receiver].append(Received(sender, msg.payload, msg.bits))
            used = self.bandwidth - budget
            if used > self.max_edge_bits_per_round:
                self.max_edge_bits_per_round = used
            if not queue:
                drained.append((sender, receiver))
        # Drop drained queues so quiet links cost nothing: without this, a
        # long run pays O(every directed edge ever used) per round even
        # after all traffic has ceased.
        for key in drained:
            del self._links[key]
        self.per_round_bits.append(round_bits)
        self._pending_bits -= round_bits
        return inboxes

    def rounds_until_delivery(self) -> int | None:
        """Rounds until the next message completes; None if nothing in flight.

        The head of each link FIFO gets the full budget every round, so it
        completes in exactly ``ceil(remaining / B)`` rounds -- the earliest
        delivery anywhere is the minimum of that over live links.
        """
        if not self._links:
            return None
        bw = self.bandwidth
        return min(
            -(-queue[0].remaining // bw) for queue in self._links.values()
        )

    def skip_rounds(self, rounds: int) -> int:
        """Account ``rounds`` quiet rounds (no deliveries) in one call.

        Callers must guarantee ``rounds < rounds_until_delivery()`` (or that
        no traffic is in flight).  Under that precondition every link head
        still has more than ``rounds * B`` bits remaining, so each busy link
        moves exactly ``B`` bits in each skipped round and no queue changes
        shape -- which is what makes the per-round metrics below exact.

        Returns the total bits moved across the skipped stretch, so tracers
        can attribute the stretch without re-deriving it from link state.
        """
        if rounds <= 0:
            return 0
        bw = self.bandwidth
        moved = bw * rounds
        for queue in self._links.values():
            head = queue[0]
            if head.remaining <= moved:
                raise RuntimeError(
                    "skip_rounds crossed a delivery: "
                    f"{rounds} rounds x B={bw} >= {head.remaining} bits remaining"
                )
            head.remaining -= moved
        if self._links:
            if bw > self.max_edge_bits_per_round:
                self.max_edge_bits_per_round = bw
            self.per_round_bits.extend([bw * len(self._links)] * rounds)
            self._pending_bits -= moved * len(self._links)
            return moved * len(self._links)
        self.per_round_bits.extend([0] * rounds)
        return 0

    # -- inspection ------------------------------------------------------------

    def pending_traffic(self) -> int:
        """Bits still in flight, O(1) (the incremental counter; quiescence
        probes used to rescan every queued message per quiet round)."""
        return self._pending_bits
