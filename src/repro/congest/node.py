"""Node handles and the node-program interface."""

from __future__ import annotations

import bisect
import random
from typing import TYPE_CHECKING, Any, Hashable, Iterable

from repro.congest.message import Received, bit_size

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.congest.network import CongestNetwork


class Node:
    """A processor in the network.

    Exposes exactly the local knowledge the model grants (Section 2.1): its
    own id, the ids of its neighbours, any problem-specific input, and a
    source of randomness.  Everything else must arrive by message.
    """

    def __init__(
        self,
        node_id: Hashable,
        neighbors: list[Hashable],
        network: "CongestNetwork",
        rng: random.Random,
    ):
        self.id = node_id
        self.neighbors = neighbors
        self._neighbors_cached = set(neighbors)
        self.input: Any = None
        self.rng = rng
        self.output: Any = None
        self.halted = False
        self._network = network

    # -- knowledge ----------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the network (standard CONGEST assumption)."""
        return self._network.n_nodes

    @property
    def bandwidth(self) -> int:
        """The per-edge bandwidth ``B``."""
        return self._network.bandwidth

    def edge_weight(self, neighbor: Hashable) -> float:
        """Weight of the incident edge (each node knows incident weights)."""
        return self._network.edge_weight(self.id, neighbor)

    # -- actions ------------------------------------------------------------

    def send(self, neighbor: Hashable, payload: Any, bits: int | None = None) -> None:
        """Queue a message on the link to ``neighbor``.

        ``bits`` overrides the automatic size estimate; a message of more
        than ``B`` bits is transmitted over ``ceil(bits / B)`` consecutive
        rounds (honest pipelining) and delivered atomically.
        """
        if self.halted:
            raise RuntimeError(f"halted node {self.id!r} cannot send")
        if neighbor not in self._neighbors_cached:
            if self._network._drop_stale_send(self.id, neighbor):
                return
            raise ValueError(f"{neighbor!r} is not a neighbor of {self.id!r}")
        size = bit_size(payload) if bits is None else bits
        if size < 1:
            raise ValueError("messages cost at least one bit")
        self._network._enqueue(self.id, neighbor, payload, size)

    def broadcast(self, payload: Any, bits: int | None = None) -> None:
        """Send the same payload to every neighbour.

        The automatic size estimate is computed once, not per neighbour
        (the payload is shared, so its size is too), and the whole batch is
        staged through the transport's bulk path in one call.
        """
        if self.halted:
            raise RuntimeError(f"halted node {self.id!r} cannot send")
        if not self.neighbors:
            return
        size = bit_size(payload) if bits is None else bits
        if size < 1:
            raise ValueError("messages cost at least one bit")
        self._network._enqueue_many(self.id, self.neighbors, payload, size)

    def send_many(self, pairs: Iterable[tuple[Hashable, Any]]) -> None:
        for neighbor, payload in pairs:
            self.send(neighbor, payload)

    def halt(self, output: Any = None) -> None:
        """Stop participating; record the node's output."""
        self.output = output
        self.halted = True

    def _neighbor_set(self) -> set:
        return self._neighbors_cached

    # -- topology events (network-internal) ---------------------------------

    def _insert_neighbor(self, neighbor: Hashable) -> None:
        """Splice ``neighbor`` into the repr-sorted neighbour tuple (the
        network's edge-insertion hook; programs never call this)."""
        if neighbor in self._neighbors_cached:
            return
        neighbors = list(self.neighbors)
        bisect.insort(neighbors, neighbor, key=repr)
        self.neighbors = tuple(neighbors)
        self._neighbors_cached.add(neighbor)

    def _remove_neighbor(self, neighbor: Hashable) -> None:
        """Drop ``neighbor`` from the neighbour tuple (edge-deletion hook)."""
        if neighbor not in self._neighbors_cached:
            return
        self.neighbors = tuple(nid for nid in self.neighbors if nid != neighbor)
        self._neighbors_cached.discard(neighbor)


class NodeProgram:
    """Base class for per-node algorithm logic.

    One instance is created per node; instance attributes are the node's
    local state.  Override :meth:`on_start` (runs before round 1; may send)
    and :meth:`on_round` (runs every round with that round's inbox).

    **Idleness hints.**  The event-driven engine steps a node only when a
    message arrives or the program declares a round non-idle.  Programs with
    silent stretches advertise them by overriding :meth:`next_active_round`
    (and get :meth:`wants_round` for free).  The contract: for every round
    the hint skips, ``on_round`` with an empty inbox must be a no-op -- no
    sends, no halting, no change that affects future behaviour.  The default
    (every round is active) makes unhinted programs run identically on both
    engines.
    """

    def on_start(self, node: Node) -> None:  # pragma: no cover - default no-op
        pass

    def on_round(self, node: Node, round_no: int, inbox: list[Received]) -> None:
        raise NotImplementedError

    def next_active_round(self, node: Node, after_round: int) -> int | None:
        """Earliest round after ``after_round`` needing a step without a
        delivery; ``None`` means the program only reacts to messages (and to
        the hints it re-declares each time it is stepped)."""
        return after_round + 1

    def wants_round(self, node: Node, round_no: int) -> bool:
        """Whether ``round_no`` must be stepped even with an empty inbox.

        Derived from :meth:`next_active_round`; override that instead.
        """
        nxt = self.next_active_round(node, round_no - 1)
        return nxt is not None and nxt <= round_no
