"""Network families, including the Simulation-Theorem network of Theorem 3.5.

Node naming convention for the simulation network (Figs. 8, 10, 13):

- ``("v", i, j)`` -- node ``v^i_j``: path ``i`` (1-based), position ``j`` in
  ``1..L``.
- ``("h", i, j)`` -- node ``h^i_j``: highway ``i`` in ``1..k``, position ``j``
  (highway ``i`` has nodes at positions ``1 + a * 2^i``).

The leftmost column (all ``v^i_1`` and ``h^i_1``) forms a clique, as does the
rightmost column -- these cliques carry the Server-model input graph ``G`` on
``Gamma + k`` nodes (Section 8).
"""

from __future__ import annotations

import math
import weakref
from typing import Hashable, Sequence

import networkx as nx

VNode = tuple[str, int, int]

# graph -> ((n_nodes, n_edges), (node_order, adjacency)); weak keys so
# cached adjacency dies with its graph, the signature guards against a
# graph mutated after its first network build.
_ADJACENCY_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def build_adjacency(
    graph: nx.Graph,
) -> tuple[tuple[Hashable, ...], dict[Hashable, tuple[Hashable, ...]]]:
    """The canonical node order and per-node neighbour tuples of ``graph``.

    Both are sorted by ``repr`` -- the order every engine steps nodes in
    and the order ``Node.neighbors`` (and therefore broadcasts, and the
    columnar transport's staging columns) iterates.  Computed once per
    graph and cached on a weak reference: repeated network builds over
    the same instance (engine-equivalence runs, benchmark repeats) reuse
    the tuples instead of re-sorting every adjacency list per build.  A
    graph that changed size since it was cached is re-derived.
    """
    signature = (graph.number_of_nodes(), graph.number_of_edges())
    cached = _ADJACENCY_CACHE.get(graph)
    if cached is not None and cached[0] == signature:
        return cached[1]
    node_order = tuple(sorted(graph.nodes(), key=repr))
    adjacency = {
        node: tuple(sorted(graph.neighbors(node), key=repr)) for node in node_order
    }
    result = (node_order, adjacency)
    _ADJACENCY_CACHE[graph] = (signature, result)
    return result


def invalidate_adjacency(graph: nx.Graph) -> None:
    """Drop ``graph``'s cached adjacency (if any).

    The cache's ``(n_nodes, n_edges)`` signature catches most mutations,
    but not all: a paired edge insert+delete (a fault plan's churn round)
    leaves the counts unchanged while the adjacency differs.  Callers that
    mutate edges must invalidate explicitly; the network's topology-event
    application does.
    """
    _ADJACENCY_CACHE.pop(graph, None)


def add_clique(graph: nx.Graph, members: Sequence[Hashable]) -> None:
    """Add all pairwise edges among ``members`` (the one clique builder --
    the simulation network's boundary columns and the dumbbell's end
    cliques previously each open-coded this double loop)."""
    for a in range(len(members)):
        for b in range(a + 1, len(members)):
            graph.add_edge(members[a], members[b])


def highway_positions(level: int, length: int) -> list[int]:
    """Positions ``1 + a * 2^level <= length`` occupied by highway ``level``."""
    step = 1 << level
    return list(range(1, length + 1, step))


def simulation_network_parameters(length: int) -> tuple[int, int]:
    """Normalise ``L`` to the form ``2^i + 1`` and return ``(L, k)``.

    The construction assumes ``L = 2^i + 1`` (Appendix D.1); the number of
    highways is ``k = log2(L - 1)``.
    """
    if length < 3:
        raise ValueError("L must be at least 3")
    i = math.ceil(math.log2(length - 1))
    normalised = (1 << i) + 1
    return normalised, i


def simulation_network(n_paths: int, length: int) -> nx.Graph:
    """Build the network ``N`` of Theorem 3.5 with ``Gamma`` paths of ``L`` nodes.

    ``length`` is rounded up to the nearest ``2^i + 1``.  The graph has
    ``Theta(Gamma * L)`` nodes and diameter ``Theta(log L)``.
    """
    if n_paths < 1:
        raise ValueError("need at least one path")
    length, k = simulation_network_parameters(length)
    graph = nx.Graph()

    # Paths P^1 .. P^Gamma.
    for i in range(1, n_paths + 1):
        for j in range(1, length + 1):
            graph.add_node(("v", i, j))
        for j in range(1, length):
            graph.add_edge(("v", i, j), ("v", i, j + 1))

    # Highways H^1 .. H^k.
    for level in range(1, k + 1):
        positions = highway_positions(level, length)
        for j in positions:
            graph.add_node(("h", level, j))
        for a in range(len(positions) - 1):
            graph.add_edge(("h", level, positions[a]), ("h", level, positions[a + 1]))
        if level == 1:
            # h^1_j connects to v^i_j on every path.
            for j in positions:
                for i in range(1, n_paths + 1):
                    graph.add_edge(("h", 1, j), ("v", i, j))
        else:
            # h^i_j connects down to h^{i-1}_j.
            for j in positions:
                graph.add_edge(("h", level, j), ("h", level - 1, j))

    # Leftmost / rightmost cliques carrying the Server-model input graph.
    left = boundary_nodes(n_paths, length, side="left")
    right = boundary_nodes(n_paths, length, side="right")
    for column in (left, right):
        add_clique(graph, column)
    return graph


def boundary_nodes(n_paths: int, length: int, side: str) -> list[VNode]:
    """The clique column at the left or right end, ordered as ``u_1..u_{Gamma+k}``.

    Path endpoints come first (``u_1..u_Gamma``), then highway endpoints
    (``u_{Gamma+j} = h^j_1`` or ``h^j_L``), matching Section D.2's convention
    ``v^{Gamma+j}_1 = h^j_1`` and ``v^{Gamma+j}_L = h^j_L``.
    """
    length, k = simulation_network_parameters(length)
    j = 1 if side == "left" else length
    column: list[VNode] = [("v", i, j) for i in range(1, n_paths + 1)]
    column += [("h", level, j) for level in range(1, k + 1)]
    return column


def dumbbell_graph(clique_size: int, path_length: int) -> nx.Graph:
    """Two cliques joined by a path -- the classic limited-sight topology.

    Used for the Example 1.1 setting: two far-apart nodes ``u`` and ``v``
    holding the Disjointness inputs, at distance ``~ path_length``.
    """
    if clique_size < 1 or path_length < 1:
        raise ValueError("sizes must be positive")
    graph = nx.Graph()
    left = [("L", i) for i in range(clique_size)]
    right = [("R", i) for i in range(clique_size)]
    for group in (left, right):
        graph.add_nodes_from(group)
        add_clique(graph, group)
    previous: Hashable = left[0]
    for i in range(path_length):
        node = ("P", i)
        graph.add_edge(previous, node)
        previous = node
    graph.add_edge(previous, right[0])
    return graph


def low_diameter_pair_graph(n: int) -> nx.Graph:
    """A Theta(log n)-diameter graph with designated far-apart nodes 0 and 1.

    A balanced binary tree plus leaf cross-links; nodes 0 and 1 are distinct
    leaves at maximum distance.  This is the "diameter O(log n)" setting in
    which the paper's Omega(sqrt(n)) bounds bite.
    """
    if n < 4:
        raise ValueError("need at least 4 nodes")
    graph = nx.balanced_tree(2, max(1, math.ceil(math.log2(n)) - 1))
    mapping = {node: idx for idx, node in enumerate(sorted(graph.nodes()))}
    graph = nx.relabel_nodes(graph, mapping)
    return graph
