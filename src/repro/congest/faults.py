"""Deterministic fault injection under the engine seam.

Every scenario used to run on a static, reliable network; this module makes
adversity a first-class, *reproducible* input.  A :class:`FaultPlan` is a
pure value describing the adversary -- per-edge message drop / duplication /
reorder probabilities, node crash+recovery spans, and scheduled edge
insertion/deletion events -- and a :class:`FaultyTransport` wraps any
transport (``LinkTransport`` or ``ColumnarTransport``) and applies the plan
at the flush barrier.

**Determinism contract.**  Every message-fault decision is a pure function
of ``(plan seed, round, directed edge, per-edge message index)`` via a
:func:`hash <FaultPlan.decision>` -- no RNG state, no engine state.  The
wrapper stages each round's sends itself, applies the faults to the staged
sequence (which every engine produces in the same canonical order), and
re-emits the survivors into the wrapped transport in the original global
staging order.  Since all transports are already proven byte-identical for
identical enqueue sequences, every engine (dense / event / parallel /
columnar) produces **byte-identical faulted runs** for the same plan.

**Fault semantics.**

- *Drops / duplications* happen "on the wire": the send is still charged to
  the run totals and the opt-in message log (the sender paid), but a dropped
  message never enters the link buffer, and a duplicate traverses it twice
  (visible in ``per_round_bits``).
- *Reordering* permutes messages within one directed edge's staged run for
  the round (adjacent hash-seeded transpositions), never across edges and
  never across round barriers -- per-link FIFO chunking stays well-defined.
- *Crashes* are "napping" faults: a crashed node is not stepped, and
  deliveries addressed to it while down are discarded (counted as
  ``crash_lost``).  Program state survives; recovery forcibly re-steps the
  node with an empty inbox so reactive programs can resume.
- *Topology events* insert or delete edges at scheduled rounds.  Deleting
  a link kills it outright: messages still in flight on it are lost
  (counted as ``link_lost``) and the endpoints' neighbour lists shrink, so
  programs never observe a delivery from an edge that no longer exists.

The engines cooperate through two hooks: :meth:`FaultPlan.next_event_round`
joins the event engine's skip-target candidates so O(1) jumps never leap
past a scheduled crash, recovery, or topology event (the wrapper's
:meth:`FaultyTransport.skip_rounds` guard enforces this), and
:meth:`FaultPlan.forced_wakes` tells it which nodes must be stepped at
recovery/topology rounds even without a delivery.

Telemetry: the wrapper emits ``fault_flush`` / ``fault_crash_lost`` events
through :mod:`repro.obs` (gated on ``trace.enabled``), the network emits
``fault_crash_span`` / ``fault_topology``, and the accumulated
:class:`FaultStats` ride on ``transport.stats`` for scenario reporting.
"""

from __future__ import annotations

import hashlib
import random
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Hashable, Iterable, NamedTuple

import networkx as nx

from repro.congest.transport import BandwidthExceeded
from repro.obs.trace import Tracer, current_tracer

__all__ = [
    "CrashSpan",
    "TopologyEvent",
    "FaultPlan",
    "FaultStats",
    "FaultyTransport",
    "apply_topology_event",
]


class CrashSpan(NamedTuple):
    """One node's crash window: down during rounds ``[start, stop)``.

    The node is not stepped and receives nothing while down; it is forcibly
    re-stepped (with an empty inbox) at round ``stop``.
    """

    node: Hashable
    start: int
    stop: int


class TopologyEvent(NamedTuple):
    """One scheduled edge mutation, applied at the start of ``round``."""

    round: int
    #: ``"insert"`` or ``"delete"``.
    action: str
    u: Hashable
    v: Hashable
    #: Weight attached to an inserted edge (ignored for deletions).
    weight: float = 1.0


def apply_topology_event(graph: nx.Graph, event: TopologyEvent, weight: str = "weight") -> bool:
    """Apply one event to ``graph`` in place; returns whether it applied.

    Impossible events -- inserting an existing edge or a self-loop, deleting
    an absent edge, touching unknown nodes -- are skipped, not errors: a
    generated plan stays applicable even if an earlier event already changed
    the graph.  This helper is the single source of the skip rules, shared
    by the live network and :meth:`FaultPlan.final_graph`.
    """
    u, v = event.u, event.v
    if event.action == "insert":
        if u == v or u not in graph or v not in graph or graph.has_edge(u, v):
            return False
        graph.add_edge(u, v, **{weight: event.weight})
        return True
    if event.action == "delete":
        if not graph.has_edge(u, v):
            return False
        graph.remove_edge(u, v)
        return True
    raise ValueError(f"unknown topology action {event.action!r}; known: insert, delete")


def _derive_int_seed(seed: int, salt: str) -> int:
    """A stable 64-bit integer from ``(seed, salt)`` (process-independent)."""
    digest = hashlib.sha256(f"{salt}|{seed}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


_HASH_DENOM = float(1 << 64)


@dataclass
class FaultPlan:
    """A seeded, declarative adversary for one CONGEST run.

    The plan is a *value*: two plans constructed with equal fields make
    identical decisions on every engine, thread count, and backend, because
    each decision hashes ``(seed, kind, round, edge, msg_index)`` and
    nothing else.  ``window`` bounds the rounds (inclusive) in which the
    probabilistic message faults fire; crash spans and topology events
    carry their own schedule.
    """

    seed: int = 0
    #: Per-message probability that a staged message is dropped on the wire.
    drop_prob: float = 0.0
    #: Per-message probability that a staged message is duplicated.
    dup_prob: float = 0.0
    #: Per-position probability of an adjacent transposition within one
    #: edge's surviving per-round run.
    reorder_prob: float = 0.0
    crashes: tuple[CrashSpan, ...] = ()
    topology_events: tuple[TopologyEvent, ...] = ()
    #: Inclusive round window for the probabilistic message faults;
    #: ``None`` means every round (then :meth:`last_fault_round` is None).
    window: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        for name in ("drop_prob", "dup_prob", "reorder_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p!r}")
        self.crashes = tuple(
            span if isinstance(span, CrashSpan) else CrashSpan(*span) for span in self.crashes
        )
        for span in self.crashes:
            if span.start < 1 or span.stop <= span.start:
                raise ValueError(f"crash span needs 1 <= start < stop, got {span!r}")
        self.topology_events = tuple(
            ev if isinstance(ev, TopologyEvent) else TopologyEvent(*ev)
            for ev in self.topology_events
        )
        for ev in self.topology_events:
            if ev.action not in ("insert", "delete"):
                raise ValueError(f"unknown topology action {ev.action!r} in {ev!r}")
            if ev.round < 1:
                raise ValueError(f"topology events start at round 1, got {ev!r}")
        # Stable apply order: by round, ties in declaration order.
        self.topology_events = tuple(sorted(self.topology_events, key=lambda e: e.round))
        if self.window is not None:
            lo, hi = self.window
            if lo < 0 or hi < lo:
                raise ValueError(f"window must be (lo, hi) with 0 <= lo <= hi, got {self.window!r}")
            self.window = (int(lo), int(hi))
        # Derived lookups (value-semantics: rebuilt whenever replace() runs).
        spans: dict[Hashable, list[tuple[int, int]]] = {}
        for span in self.crashes:
            spans.setdefault(span.node, []).append((span.start, span.stop))
        self._crash_spans = {node: tuple(sorted(windows)) for node, windows in spans.items()}
        rounds: set[int] = set()
        forced: dict[int, list[Hashable]] = {}
        for span in self.crashes:
            rounds.add(span.start)
            rounds.add(span.stop)
            forced.setdefault(span.stop, []).append(span.node)
        for ev in self.topology_events:
            rounds.add(ev.round)
            bucket = forced.setdefault(ev.round, [])
            for endpoint in (ev.u, ev.v):
                if endpoint not in bucket:
                    bucket.append(endpoint)
        self._event_rounds = tuple(sorted(rounds))
        self._forced = {rnd: tuple(nodes) for rnd, nodes in forced.items()}
        # Per-undirected-edge event timeline, for the in-flight loss rule:
        # a message delivered while its link is down is lost.
        timeline: dict[frozenset, list[tuple[int, str]]] = {}
        for ev in self.topology_events:
            timeline.setdefault(frozenset((ev.u, ev.v)), []).append((ev.round, ev.action))
        self._edge_timeline = {pair: tuple(evs) for pair, evs in timeline.items()}
        self._has_deletes = any(ev.action == "delete" for ev in self.topology_events)

    # -- introspection ---------------------------------------------------------

    @property
    def has_message_faults(self) -> bool:
        """Whether any probabilistic message fault can ever fire."""
        return self.drop_prob > 0.0 or self.dup_prob > 0.0 or self.reorder_prob > 0.0

    @property
    def has_crashes(self) -> bool:
        """Whether the plan schedules any crash span."""
        return bool(self.crashes)

    def is_empty(self) -> bool:
        """True when the plan injects nothing (a transparent wrapper)."""
        return not (self.has_message_faults or self.crashes or self.topology_events)

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same fault model under a different decision seed."""
        return replace(self, seed=seed)

    def last_fault_round(self) -> int | None:
        """The last round at which this plan can still inject anything.

        After this round the network behaves fault-free, so scenarios
        measure rounds-to-restabilize from here.  ``None`` when message
        faults are unbounded (``window is None`` with a positive
        probability).
        """
        last = 0
        if self.has_message_faults:
            if self.window is None:
                return None
            last = self.window[1]
        for span in self.crashes:
            last = max(last, span.stop)
        for ev in self.topology_events:
            last = max(last, ev.round)
        return last

    # -- message-fault decisions (pure hashes) ---------------------------------

    def decision(self, kind: str, round_no: int, sender: Hashable, receiver: Hashable, index: int) -> float:
        """The uniform [0, 1) draw for one fault decision.

        Pure in ``(seed, kind, round, edge, index)``: blake2b of the tuple's
        canonical encoding, so the decision is identical regardless of
        engine, thread count, claim batching, or process.
        """
        digest = hashlib.blake2b(
            f"{self.seed}|{kind}|{round_no}|{sender!r}|{receiver!r}|{index}".encode(),
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "big") / _HASH_DENOM

    def message_faults_active(self, round_no: int) -> bool:
        """Whether probabilistic message faults may fire at ``round_no``."""
        if not self.has_message_faults:
            return False
        window = self.window
        return window is None or window[0] <= round_no <= window[1]

    def drop(self, round_no: int, sender: Hashable, receiver: Hashable, index: int) -> bool:
        """Whether to drop the ``index``-th message staged on the edge."""
        if self.drop_prob <= 0.0 or not self.message_faults_active(round_no):
            return False
        return self.decision("drop", round_no, sender, receiver, index) < self.drop_prob

    def duplicate(self, round_no: int, sender: Hashable, receiver: Hashable, index: int) -> bool:
        """Whether to duplicate the ``index``-th message staged on the edge."""
        if self.dup_prob <= 0.0 or not self.message_faults_active(round_no):
            return False
        return self.decision("dup", round_no, sender, receiver, index) < self.dup_prob

    def reorder(self, round_no: int, sender: Hashable, receiver: Hashable, index: int) -> bool:
        """Whether to transpose positions ``index-1`` and ``index`` of the
        edge's surviving per-round run."""
        if self.reorder_prob <= 0.0 or not self.message_faults_active(round_no):
            return False
        return self.decision("reorder", round_no, sender, receiver, index) < self.reorder_prob

    # -- schedule queries (engine hooks) ---------------------------------------

    def crashed(self, node: Hashable, round_no: int) -> bool:
        """Whether ``node`` is down at ``round_no`` (down in [start, stop))."""
        spans = self._crash_spans.get(node)
        if spans is None:
            return False
        for start, stop in spans:
            if start <= round_no < stop:
                return True
            if start > round_no:
                break
        return False

    def edge_down(self, u: Hashable, v: Hashable, round_no: int) -> bool:
        """Whether the link ``{u, v}`` is deleted (and not re-inserted) as of
        ``round_no``, per the plan's event timeline.

        Used for the in-flight loss rule at delivery: the timeline view is
        engine-independent, unlike the live graph, whose catch-up state could
        differ between engines mid-skip.
        """
        if not self._has_deletes:
            return False
        events = self._edge_timeline.get(frozenset((u, v)))
        if not events:
            return False
        down = False
        for rnd, action in events:
            if rnd > round_no:
                break
            down = action == "delete"
        return down

    def next_event_round(self, after_round: int) -> int | None:
        """The first scheduled fault round strictly after ``after_round``.

        Covers crash starts, recoveries, and topology events -- the rounds
        the event engine must execute (never skip over); probabilistic
        message faults need no wake-up because they fire only at flushes
        that execute anyway.
        """
        import bisect

        rounds = self._event_rounds
        i = bisect.bisect_right(rounds, after_round)
        return rounds[i] if i < len(rounds) else None

    def forced_wakes(self) -> dict[int, tuple[Hashable, ...]]:
        """Round -> nodes that must be stepped there without a delivery:
        recovered nodes at their recovery round and the endpoints of each
        topology event at its round."""
        return self._forced

    # -- derived artefacts -----------------------------------------------------

    def final_graph(self, graph: nx.Graph, weight: str = "weight") -> nx.Graph:
        """A copy of ``graph`` with every topology event applied -- the
        topology the network has after the churn, which centralized
        recomputes (restabilization correctness checks) should target."""
        final = graph.copy()
        for event in self.topology_events:
            apply_topology_event(final, event, weight=weight)
        return final

    @classmethod
    def generate(
        cls,
        graph: nx.Graph,
        *,
        seed: int = 0,
        drop_prob: float = 0.0,
        dup_prob: float = 0.0,
        reorder_prob: float = 0.0,
        n_crashes: int = 0,
        crash_length: int = 8,
        n_edge_deletes: int = 0,
        n_edge_inserts: int = 0,
        window: tuple[int, int] = (1, 40),
        insert_weight_range: tuple[float, float] = (1.0, 1.0),
        protect: Iterable[Hashable] = (),
    ) -> "FaultPlan":
        """Derive a concrete schedule for ``graph`` from ``seed``.

        Crash spans pick distinct nodes (never the ``protect`` set -- e.g. a
        BFS source) with start rounds in ``window``; edge deletions pick
        non-bridge edges one at a time so the graph stays connected; edge
        insertions pick absent node pairs with weights in
        ``insert_weight_range``.  Everything derives from a sha256-seeded
        :class:`random.Random`, so the same arguments yield the same plan
        in any process.
        """
        rng = random.Random(_derive_int_seed(seed, "faultplan"))
        lo, hi = int(window[0]), int(window[1])
        if lo < 1 or hi < lo:
            raise ValueError(f"window must be (lo, hi) with 1 <= lo <= hi, got {window!r}")

        nodes = sorted(graph.nodes(), key=repr)
        protected = set(protect)
        crashes = []
        candidates = [node for node in nodes if node not in protected]
        for node in rng.sample(candidates, min(n_crashes, len(candidates))):
            start = rng.randint(lo, hi)
            crashes.append(CrashSpan(node, start, start + max(1, crash_length)))

        events: list[TopologyEvent] = []
        scratch = graph.copy()
        for _ in range(n_edge_deletes):
            bridges = set(frozenset(edge) for edge in nx.bridges(scratch))
            deletable = [
                (u, v)
                for u, v in sorted(scratch.edges(), key=lambda e: (repr(e[0]), repr(e[1])))
                if frozenset((u, v)) not in bridges
            ]
            if not deletable:
                break
            u, v = rng.choice(deletable)
            scratch.remove_edge(u, v)
            events.append(TopologyEvent(rng.randint(lo, hi), "delete", u, v))
        for _ in range(n_edge_inserts):
            absent = [
                (nodes[i], nodes[j])
                for i in range(len(nodes))
                for j in range(i + 1, len(nodes))
                if not scratch.has_edge(nodes[i], nodes[j])
            ]
            if not absent:
                break
            u, v = rng.choice(absent)
            w_lo, w_hi = insert_weight_range
            w = w_lo if w_lo == w_hi else rng.uniform(w_lo, w_hi)
            scratch.add_edge(u, v)
            events.append(TopologyEvent(rng.randint(lo, hi), "insert", u, v, float(w)))

        return cls(
            seed=seed,
            drop_prob=drop_prob,
            dup_prob=dup_prob,
            reorder_prob=reorder_prob,
            crashes=tuple(crashes),
            topology_events=tuple(events),
            window=(lo, hi),
        )


@dataclass
class FaultStats:
    """Counters accumulated by one :class:`FaultyTransport` over a run."""

    drops: int = 0
    duplicates: int = 0
    reorder_swaps: int = 0
    #: Largest per-edge position displacement any reordered message saw.
    max_reorder_depth: int = 0
    #: Messages discarded because their receiver was down at delivery.
    crash_lost: int = 0
    #: In-flight messages lost because their link was deleted under them.
    link_lost: int = 0
    #: Flushes in which at least one message fault fired.
    faulted_flushes: int = 0
    #: Topology events that actually mutated the graph.
    topology_applied: int = 0

    def as_dict(self) -> dict[str, int]:
        """A plain-dict view for scenario result payloads."""
        return {
            "drops": self.drops,
            "duplicates": self.duplicates,
            "reorder_swaps": self.reorder_swaps,
            "max_reorder_depth": self.max_reorder_depth,
            "crash_lost": self.crash_lost,
            "link_lost": self.link_lost,
            "faulted_flushes": self.faulted_flushes,
            "topology_applied": self.topology_applied,
        }


class _FaultShardOutbox:
    """Thread-local staging for one shard of a parallel round (the
    wrapper's analogue of :class:`~repro.congest.transport.ShardOutbox`)."""

    __slots__ = ("staged", "log", "n_messages", "bits")

    def __init__(self) -> None:
        self.staged: list[tuple[Hashable, Hashable, Any, int, int]] = []
        self.log: list[tuple[int, Hashable, Hashable, int]] = []
        self.n_messages = 0
        self.bits = 0


class FaultyTransport:
    """A transport wrapper that injects a :class:`FaultPlan` at the flush.

    Implements the full transport API (staging, delivery, skip accounting,
    parallel shard staging) by staging each round's sends itself, applying
    the plan's message faults to the staged sequence at :meth:`flush`, and
    re-emitting the survivors -- in the original global staging order -- into
    the wrapped transport.  ``total_messages`` / ``total_bits`` / the opt-in
    message log count what the *programs* sent (drops included, duplicates
    not); the wire-level metrics (``per_round_bits``,
    ``max_edge_bits_per_round``) come from the inner transport and therefore
    reflect the faulted stream.

    With an empty plan the wrapper is transparent: every metric, trace
    line, and delivery is byte-identical to running on the inner transport
    directly (asserted by the engine-equivalence suite).

    In strict mode the per-message bandwidth check fires at the wrapper's
    enqueue (identically to the bare transport); the per-edge flush check
    runs in the inner transport on the *faulted* stream, so duplicates can
    legitimately trip it -- strict runs should keep ``dup_prob`` at zero.
    """

    #: The network forwards its tracer to transports advertising this.
    wants_trace = True

    def __init__(self, inner, plan: FaultPlan, trace: Tracer | None = None):
        self.inner = inner
        self.plan = plan
        self.stats = FaultStats()
        self.trace = trace if trace is not None else current_tracer()
        if getattr(type(inner), "wants_trace", False):
            inner.trace = self.trace
        self.record_messages = inner.record_messages
        # The wrapper owns the program-send log; stop the inner transport
        # from duplicating it for the post-fault stream.
        inner.record_messages = False
        self.total_messages = 0
        self.total_bits = 0
        self.message_log: list[tuple[int, Hashable, Hashable, int]] = []
        self._staged: list[tuple[Hashable, Hashable, Any, int, int]] = []
        self._round = 0
        self._shard_staging: threading.local | None = None

    # -- delegated configuration / metrics -------------------------------------

    @property
    def bandwidth(self) -> int:
        """The per-edge bandwidth B (owned by the inner transport)."""
        return self.inner.bandwidth

    @property
    def strict(self) -> bool:
        """Whether strict-mode bandwidth checks are on."""
        return self.inner.strict

    @property
    def max_edge_bits_per_round(self) -> int:
        """Wire-level peak per-edge bits per round (post-fault stream)."""
        return self.inner.max_edge_bits_per_round

    @property
    def per_round_bits(self) -> list[int]:
        """Wire-level bits moved per round (post-fault stream)."""
        return self.inner.per_round_bits

    @property
    def fault_summary(self) -> dict[str, int] | None:
        """The accumulated fault counters for ``RunResult.fault_stats``.

        ``None`` for an empty plan: an all-zero dict would make an
        empty-plan ``RunResult`` distinguishable from a bare run, which the
        transparency contract forbids.
        """
        if self.plan.is_empty():
            return None
        return self.stats.as_dict()

    # -- staging ---------------------------------------------------------------

    def enqueue(self, sender: Hashable, receiver: Hashable, payload: Any, bits: int, round_no: int) -> None:
        """Stage one program send for the current round's faulted flush."""
        if self.strict and bits > self.bandwidth:
            raise BandwidthExceeded(
                f"message of {bits} bits exceeds B={self.bandwidth} on edge "
                f"{sender!r}->{receiver!r}"
            )
        staging = self._shard_staging
        if staging is not None:
            box = getattr(staging, "box", None)
            if box is not None:
                box.staged.append((sender, receiver, payload, bits, round_no))
                box.n_messages += 1
                box.bits += bits
                if self.record_messages:
                    box.log.append((round_no, sender, receiver, bits))
                return
        self._staged.append((sender, receiver, payload, bits, round_no))
        self.total_messages += 1
        self.total_bits += bits
        if self.record_messages:
            self.message_log.append((round_no, sender, receiver, bits))

    def enqueue_many(self, sender: Hashable, receivers: Iterable[Hashable], payload: Any, bits: int, round_no: int) -> None:
        """Stage one payload to several receivers (the broadcast path)."""
        for receiver in receivers:
            self.enqueue(sender, receiver, payload, bits, round_no)

    def has_outgoing(self) -> bool:
        """Whether anything is staged but not yet flushed."""
        return bool(self._staged) or self.inner.has_outgoing()

    # -- parallel staging (thread-sharded engines) -----------------------------

    def begin_shard_staging(self) -> None:
        """Enter parallel-staging mode (see ``LinkTransport``)."""
        self._shard_staging = threading.local()

    def open_shard_outbox(self) -> _FaultShardOutbox:
        """Bind a fresh outbox to the calling thread; returns it for merging."""
        staging = self._shard_staging
        if staging is None:
            raise RuntimeError("open_shard_outbox outside begin/end_shard_staging")
        box = _FaultShardOutbox()
        staging.box = box
        return box

    def close_shard_outbox(self) -> None:
        """Unbind the calling thread's outbox (contents stay mergeable)."""
        if self._shard_staging is not None:
            self._shard_staging.box = None

    def end_shard_staging(self) -> None:
        """Leave parallel-staging mode."""
        self._shard_staging = None

    def merge_shard_outboxes(self, outboxes: Iterable[_FaultShardOutbox]) -> None:
        """Fold shard outboxes into the staged sequence in the given (node-id)
        order, so fault decisions see the same per-edge indices as a serial
        round would."""
        for box in outboxes:
            self._staged.extend(box.staged)
            self.total_messages += box.n_messages
            self.total_bits += box.bits
            if self.record_messages:
                self.message_log.extend(box.log)

    # -- the fault seam --------------------------------------------------------

    def flush(self) -> None:
        """Apply the plan's message faults to the staged round, then commit
        the surviving stream through the inner transport."""
        staged = self._staged
        if staged:
            self._staged = []
            if self.plan.has_message_faults:
                staged = self._apply_message_faults(staged)
            inner = self.inner
            for sender, receiver, payload, bits, round_no in staged:
                inner.enqueue(sender, receiver, payload, bits, round_no)
        self.inner.flush()

    def _apply_message_faults(
        self, staged: list[tuple[Hashable, Hashable, Any, int, int]]
    ) -> list[tuple[Hashable, Hashable, Any, int, int]]:
        """Drop, duplicate, then reorder the staged round.

        Drop/duplicate decisions index the *original* per-edge staging
        order; reorder transpositions index the surviving run.  Survivors
        keep their global staging positions (duplicates slot in directly
        after their original), so an all-zero plan is the identity.
        """
        plan = self.plan
        round_no = staged[0][4]
        if not plan.message_faults_active(round_no):
            return staged
        counts: dict[tuple[Hashable, Hashable], int] = {}
        positions: dict[tuple[Hashable, Hashable], list[int]] = {}
        out: list[tuple[Hashable, Hashable, Any, int, int]] = []
        drops = dups = 0
        for msg in staged:
            edge = (msg[0], msg[1])
            index = counts.get(edge, 0)
            counts[edge] = index + 1
            if plan.drop(msg[4], msg[0], msg[1], index):
                drops += 1
                continue
            positions.setdefault(edge, []).append(len(out))
            out.append(msg)
            if plan.duplicate(msg[4], msg[0], msg[1], index):
                dups += 1
                positions[edge].append(len(out))
                out.append(msg)
        swaps = 0
        depth = 0
        if plan.reorder_prob > 0.0:
            for (sender, receiver), slots in positions.items():
                k = len(slots)
                if k < 2:
                    continue
                order = list(range(k))
                swapped = False
                for i in range(1, k):
                    if plan.reorder(round_no, sender, receiver, i):
                        order[i - 1], order[i] = order[i], order[i - 1]
                        swaps += 1
                        swapped = True
                if swapped:
                    originals = [out[slot] for slot in slots]
                    for slot, source in zip(slots, order):
                        out[slot] = originals[source]
                    depth = max(depth, max(abs(i - src) for i, src in enumerate(order)))
        if drops or dups or swaps:
            stats = self.stats
            stats.drops += drops
            stats.duplicates += dups
            stats.reorder_swaps += swaps
            if depth > stats.max_reorder_depth:
                stats.max_reorder_depth = depth
            stats.faulted_flushes += 1
            trace = self.trace
            if trace.enabled:
                trace.event(
                    "fault_flush",
                    round=round_no,
                    drops=drops,
                    dups=dups,
                    reorder_swaps=swaps,
                    reorder_depth=depth,
                )
        return out

    # -- advancing -------------------------------------------------------------

    def deliver_round(self) -> dict[Hashable, list]:
        """Advance one round; discard deliveries the plan makes impossible.

        Two discard rules apply here, both functions of ``(plan, round)``
        alone so every engine discards identically: inboxes addressed to a
        crashed node are lost (``crash_lost``), and messages whose link was
        deleted while they were in flight are lost (``link_lost``).
        """
        self._round += 1
        inboxes = self.inner.deliver_round()
        plan = self.plan
        round_no = self._round
        if plan.has_crashes:
            downed = [nid for nid in inboxes if plan.crashed(nid, round_no)]
            for nid in downed:
                lost = inboxes.pop(nid)
                self.stats.crash_lost += len(lost)
                trace = self.trace
                if trace.enabled:
                    trace.event(
                        "fault_crash_lost", round=round_no, node=repr(nid), messages=len(lost)
                    )
        if plan._has_deletes and inboxes:
            for nid in list(inboxes):
                msgs = inboxes[nid]
                kept = [msg for msg in msgs if not plan.edge_down(msg.sender, nid, round_no)]
                dropped = len(msgs) - len(kept)
                if dropped:
                    self.stats.link_lost += dropped
                    trace = self.trace
                    if trace.enabled:
                        trace.event(
                            "fault_link_lost", round=round_no, node=repr(nid), messages=dropped
                        )
                    if kept:
                        inboxes[nid] = kept
                    else:
                        del inboxes[nid]
        return inboxes

    def lost_link_send(self, sender: Hashable, receiver: Hashable, round_no: int) -> bool:
        """Whether a send on ``{sender, receiver}`` is silently lost.

        A program holding a stale neighbour reference (e.g. a BFS-tree child
        recorded before the plan deleted the link) may still attempt the
        send; the plan's timeline decides -- engine-independently -- that
        the message vanishes (``link_lost``) instead of the node-handle
        neighbour check raising.  Sends to pairs that were never linked
        still raise as usual.
        """
        if not self.plan._has_deletes:
            return False
        if not self.plan.edge_down(sender, receiver, round_no):
            return False
        self.stats.link_lost += 1
        trace = self.trace
        if trace.enabled:
            trace.event(
                "fault_lost_send",
                round=round_no,
                sender=repr(sender),
                receiver=repr(receiver),
            )
        return True

    def rounds_until_delivery(self) -> int | None:
        """Rounds until the next message completes (inner transport's view)."""
        return self.inner.rounds_until_delivery()

    def skip_rounds(self, rounds: int) -> int:
        """Account a quiet stretch; refuses to cross a scheduled fault round.

        The event engines include :meth:`FaultPlan.next_event_round` in
        their skip-target candidates, so a correct engine never trips this
        guard -- it exists to turn a missed wake-up hook into a loud error
        instead of a silently unfaulted run.
        """
        if rounds > 0:
            upcoming = self.plan.next_event_round(self._round)
            if upcoming is not None and upcoming <= self._round + rounds:
                raise RuntimeError(
                    f"skip_rounds crossed a scheduled fault event: skipping "
                    f"{rounds} round(s) past round {self._round} leaps over round {upcoming}"
                )
            self._round += rounds
        return self.inner.skip_rounds(rounds)

    def pending_traffic(self) -> int:
        """Bits still in flight on the inner transport."""
        return self.inner.pending_traffic()
