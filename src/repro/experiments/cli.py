"""``python -m repro.experiments`` -- list, run, report, worker, merge.

Examples::

    python -m repro.experiments list
    python -m repro.experiments run fig3-mst-tradeoff --workers 4
    python -m repro.experiments run chsh-gamma2 --set restarts=1,4,16 --replicates 3
    python -m repro.experiments run boruvka-mst-sweep --engine parallel --engine-threads 4
    python -m repro.experiments run fig3-mst-tradeoff --backend queue \\
        --queue-dir /shared/q --workers 0          # external daemons drain it
    python -m repro.experiments worker /shared/q --store worker-shard
    python -m repro.experiments merge experiment-results worker-shard
    python -m repro.experiments report fig3-mst-tradeoff
    python -m repro.experiments report --format json | jq '.[].result'
    python -m repro.experiments report --html report-site --bench 'BENCH_*.json'
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from pathlib import Path

from repro.experiments.backends import BACKEND_NAMES, run_worker
from repro.experiments.registry import ScenarioNotFound, get_scenario, list_scenarios
from repro.experiments.runner import run_sweep
from repro.experiments.store import DEFAULT_STORE, ResultStore
from repro.experiments.sweep import expand_grid, parse_axis_overrides


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Experiment harness: scenario registry, sweep runner, result store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the scenario catalog")

    run = sub.add_parser("run", help="expand a sweep and run it")
    run.add_argument("scenario", help="scenario name (see `list`)")
    run.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=V1[,V2,...]",
        help="grid axis override; repeatable; multiple values sweep that axis",
    )
    run.add_argument("--workers", type=int, default=1, help="process-pool size (1 = serial)")
    run.add_argument(
        "--engine",
        choices=("event", "dense", "parallel"),
        default=None,
        help="CONGEST engine axis (scenarios declaring an `engine` param only)",
    )
    run.add_argument(
        "--engine-threads",
        type=int,
        default=None,
        metavar="N",
        help="shard threads for --engine parallel (0 = cpu count)",
    )
    run.add_argument("--replicates", type=int, default=1, help="seeded replicates per grid point")
    run.add_argument("--base-seed", type=int, default=0, help="base seed for per-point derivation")
    run.add_argument("--timeout", type=float, default=None, help="per-task timeout in seconds")
    run.add_argument(
        "--mp-start",
        choices=("spawn", "fork", "forkserver"),
        default="spawn",
        help="multiprocessing start method for the worker pool",
    )
    run.add_argument(
        "--maxtasksperchild",
        type=int,
        default=16,
        help="recycle each worker after this many tasks (0 = never)",
    )
    run.add_argument("--store", default=str(DEFAULT_STORE), help="result-store directory")
    run.add_argument("--no-store", action="store_true", help="run without persisting results")
    run.add_argument("--force", action="store_true", help="ignore cached records and re-run")
    run.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="auto",
        help="execution backend (auto = serial unless --workers/--timeout ask for a pool)",
    )
    run.add_argument(
        "--queue-dir",
        default=None,
        help="spool directory for --backend queue (defaults to <store>/.queue)",
    )
    run.add_argument(
        "--claim-batch",
        type=int,
        default=1,
        metavar="N",
        help="tickets a spawned queue daemon claims per spool scan (--backend queue)",
    )

    report = sub.add_parser(
        "report", help="summarise stored records (text, json, or an HTML site)"
    )
    report.add_argument("scenario", nargs="?", default=None, help="restrict to one scenario")
    report.add_argument("--store", default=str(DEFAULT_STORE), help="result-store directory")
    report.add_argument(
        "--format",
        choices=("text", "json", "html"),
        default="text",
        help="text summary (default), raw records as JSON, or a static HTML site",
    )
    report.add_argument(
        "--html",
        dest="html_dir",
        metavar="OUT_DIR",
        default=None,
        help="render the HTML site into OUT_DIR (implies --format html; "
        "--format html alone writes ./report-site)",
    )
    report.add_argument(
        "--bench",
        action="append",
        default=[],
        metavar="GLOB",
        help="benchmark JSON files/globs (e.g. 'BENCH_*.json') charted on the "
        "HTML index page; repeatable",
    )

    worker = sub.add_parser(
        "worker", help="daemon: claim and execute tickets from a work-queue spool"
    )
    worker.add_argument("queue_dir", help="spool directory (see `run --backend queue`)")
    worker.add_argument(
        "--store",
        default=None,
        help="also persist full records to this local store shard (merge later)",
    )
    worker.add_argument(
        "--max-idle",
        type=float,
        default=None,
        help="exit after this many seconds without work (default: run until STOP)",
    )
    worker.add_argument(
        "--poll-interval", type=float, default=0.2, help="queue scan period in seconds"
    )
    worker.add_argument(
        "--mp-start",
        choices=("spawn", "fork", "forkserver"),
        default="spawn",
        help="start method for the per-task watchdog subprocess",
    )
    worker.add_argument(
        "--stop-file",
        default=None,
        help="extra stop sentinel (used by sweeps to dismiss the daemons they spawned)",
    )
    worker.add_argument(
        "--claim-batch",
        type=int,
        default=1,
        metavar="N",
        help="tickets to claim per spool scan (amortises listing on large grids)",
    )

    merge = sub.add_parser("merge", help="import records from store shards into one store")
    merge.add_argument("dest", help="destination store directory")
    merge.add_argument("sources", nargs="+", help="source store directories (worker shards)")
    merge.add_argument(
        "--overwrite", action="store_true", help="let source records replace existing keys"
    )
    return parser


def _cmd_list() -> int:
    print(f"{'scenario':26s} {'params':44s} description")
    print("-" * 110)
    for scn in list_scenarios():
        axes = ", ".join(
            f"{p.name}={scn.default_grid[p.name]}" if p.name in scn.default_grid
            else f"{p.name}={p.default}"
            for p in scn.params
        )
        print(f"{scn.name:26s} {axes:44s} {scn.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scn = get_scenario(args.scenario)
    grid = parse_axis_overrides(args.overrides)
    # --engine/--engine-threads are sugar for grid axes; expand_grid rejects
    # them with a clean error if the scenario does not declare the params.
    if args.engine is not None:
        grid["engine"] = [args.engine]
    if args.engine_threads is not None:
        grid["engine_threads"] = [args.engine_threads]
    points = expand_grid(scn, grid, replicates=args.replicates, base_seed=args.base_seed)
    store = None if args.no_store else ResultStore(args.store)
    queue_dir = args.queue_dir
    if args.backend == "queue" and queue_dir is None:
        queue_dir = str((store.root if store is not None else DEFAULT_STORE) / ".queue")
    print(
        f"sweep {scn.name}: {len(points)} point(s), backend={args.backend}, "
        f"workers={args.workers}, store={'<none>' if store is None else store.root}"
    )
    report = run_sweep(
        points,
        store=store,
        workers=args.workers,
        task_timeout=args.timeout,
        force=args.force,
        progress=print,
        mp_start_method=args.mp_start,
        maxtasksperchild=args.maxtasksperchild,
        backend=args.backend,
        queue_dir=queue_dir,
        claim_batch=args.claim_batch,
    )
    print(
        f"done: {report.cached} cached, {report.executed} executed, {report.failed} failed"
    )
    for record in report.records:
        if record.status == "ok":
            print(f"  #{record.replicate} {record.params} -> {record.result}")
        else:
            print(f"  #{record.replicate} {record.params} -> {record.status.upper()}")
    return 0 if report.ok else 1


def _cmd_worker(args: argparse.Namespace) -> int:
    shard = None if args.store is None else ResultStore(args.store)
    print(
        f"worker: draining {args.queue_dir}"
        + (f", shard -> {shard.root}" if shard is not None else "")
    )
    n_done = run_worker(
        args.queue_dir,
        store=shard,
        max_idle=args.max_idle,
        poll_interval=args.poll_interval,
        mp_start_method=args.mp_start,
        progress=print,
        stop_file=args.stop_file,
        claim_batch=args.claim_batch,
    )
    print(f"worker: executed {n_done} task(s)")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    dest = ResultStore(args.dest)
    total = 0
    for source in args.sources:
        imported = dest.merge(source, overwrite=args.overwrite)
        total += imported
        print(f"merged {imported} record(s) from {source}")
    print(f"{dest.root}: {total} imported, {dest.count()} total record(s)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    fmt = "html" if args.html_dir is not None else args.format
    records = list(store.iter_records(args.scenario))
    if not records:
        # Same outcome (exit 1, not a usage error) for every format.
        print(f"no records in {store.root}" + (f" for {args.scenario!r}" if args.scenario else ""))
        return 1
    if fmt == "html":
        from repro.experiments.reporting import build_site

        bench_paths: list = []
        for pattern in args.bench:
            path = Path(pattern)
            # A literal path beats glob expansion ('[' in a filename).
            matches = [path] if path.is_file() else sorted(path.parent.glob(path.name))
            bench_paths.extend(matches)
        index = build_site(
            store,
            args.html_dir or "report-site",
            scenario=args.scenario,
            bench_paths=bench_paths,
        )
        print(f"report site: {index}")
        return 0
    if fmt == "json":
        print(json.dumps([asdict(r) for r in records], sort_keys=True, indent=2))
        return 0
    print(f"{len(records)} record(s) in {store.root}")
    by_scenario: dict[str, list] = {}
    for record in records:
        by_scenario.setdefault(record.scenario, []).append(record)
    for name in sorted(by_scenario):
        group = by_scenario[name]
        ok = sum(1 for r in group if r.status == "ok")
        print(f"\n== {name}: {len(group)} record(s), {ok} ok ==")
        for record in group:
            status = "" if record.status == "ok" else f"  [{record.status.upper()}]"
            if record.status == "ok":
                payload = record.result
            else:
                error_lines = (record.error or "").strip().splitlines()
                payload = error_lines[-1] if error_lines else record.status
            print(f"  {record.params} seed={record.seed}{status}")
            print(f"    -> {payload}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code (0 ok, 1 failed sweep/empty report, 2 usage)."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "worker":
            return _cmd_worker(args)
        if args.command == "merge":
            return _cmd_merge(args)
        return _cmd_report(args)
    except BrokenPipeError:
        # Output piped into e.g. `head`; not an error.
        return 0
    except (ScenarioNotFound, KeyError, ValueError) as exc:
        # Bad scenario name, unknown axis, malformed --set, ...: a clean
        # one-line error beats a traceback at the command line.
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
