"""``python -m repro.experiments`` -- list, run, report, worker, fleet, merge, trace.

Examples::

    python -m repro.experiments list
    python -m repro.experiments run fig3-mst-tradeoff --workers 4
    python -m repro.experiments run chsh-gamma2 --set restarts=1,4,16 --replicates 3
    python -m repro.experiments run boruvka-mst-sweep --engine parallel --engine-threads 4
    python -m repro.experiments run fig3-mst-tradeoff --backend queue \\
        --queue-dir /shared/q --workers 0          # external daemons drain it
    python -m repro.experiments worker /shared/q --store worker-shard
    python -m repro.experiments fleet /shared/q --max-workers 8 --drain \\
        --store-prefix worker-shard                # elastic local fleet
    python -m repro.experiments merge experiment-results worker-shard
    python -m repro.experiments report fig3-mst-tradeoff
    python -m repro.experiments report --format json | jq '.[].result'
    python -m repro.experiments report --html report-site --bench 'BENCH_*.json'

Telemetry (see ``docs/observability.md``)::

    python -m repro.experiments run spanner-skeleton --trace traces/
    python -m repro.experiments trace summarize traces/
    python -m repro.experiments trace timeline traces/ --out timeline.html
    python -m repro.experiments report --html report-site --trace traces/

``-v``/``-q`` (repeatable, before the subcommand) raise or lower the
verbosity of the harness's ``repro.*`` loggers.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
from dataclasses import asdict
from pathlib import Path

from repro.experiments.backends import BACKEND_NAMES, run_fleet, run_worker
from repro.experiments.registry import ScenarioNotFound, get_scenario, list_scenarios
from repro.experiments.runner import run_sweep
from repro.experiments.store import DEFAULT_STORE, ResultStore
from repro.experiments.sweep import expand_grid, parse_axis_overrides
from repro.obs.trace import TRACE_DIR_ENV, TraceWriter, read_trace, summarize_trace, trace_files

logger = logging.getLogger("repro.experiments.cli")


def _configure_logging(verbose: int, quiet: int) -> None:
    """Configure the ``repro.*`` logger namespace from ``-v``/``-q`` counts.

    One switch for daemon telemetry and human logs: INFO by default (the
    worker daemon's progress lines), DEBUG with ``-v``, WARNING and up
    with ``-q``.  Installs a stderr handler only on the ``repro`` logger,
    so embedding applications keep their own logging setup.
    """
    level = logging.INFO + 10 * (quiet - verbose)
    level = max(logging.DEBUG, min(logging.CRITICAL, level))
    root = logging.getLogger("repro")
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
    root.handlers[:] = [handler]
    root.setLevel(level)
    root.propagate = False


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Experiment harness: scenario registry, sweep runner, result store.",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more diagnostics from repro.* loggers (repeatable)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="count",
        default=0,
        help="fewer diagnostics from repro.* loggers (repeatable)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the scenario catalog")

    run = sub.add_parser("run", help="expand a sweep and run it")
    run.add_argument("scenario", help="scenario name (see `list`)")
    run.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=V1[,V2,...]",
        help="grid axis override; repeatable; multiple values sweep that axis",
    )
    run.add_argument("--workers", type=int, default=1, help="process-pool size (1 = serial)")
    run.add_argument(
        "--engine",
        choices=(
            "event",
            "dense",
            "parallel",
            "columnar",
            "columnar-stdlib",
            "columnar-numpy",
            "auto",
        ),
        default=None,
        help="CONGEST engine axis (scenarios declaring an `engine` param only); "
        "`auto` picks from the instance size and numpy availability",
    )
    run.add_argument(
        "--engine-threads",
        type=int,
        default=None,
        metavar="N",
        help="shard threads for --engine parallel (0 = cpu count)",
    )
    run.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        metavar="S",
        help="fault-plan decision seed axis (scenarios declaring a `fault_seed` param only)",
    )
    run.add_argument("--replicates", type=int, default=1, help="seeded replicates per grid point")
    run.add_argument("--base-seed", type=int, default=0, help="base seed for per-point derivation")
    run.add_argument("--timeout", type=float, default=None, help="per-task timeout in seconds")
    run.add_argument(
        "--mp-start",
        choices=("spawn", "fork", "forkserver"),
        default="spawn",
        help="multiprocessing start method for the worker pool",
    )
    run.add_argument(
        "--maxtasksperchild",
        type=int,
        default=16,
        help="recycle each worker after this many tasks (0 = never)",
    )
    run.add_argument("--store", default=str(DEFAULT_STORE), help="result-store directory")
    run.add_argument("--no-store", action="store_true", help="run without persisting results")
    run.add_argument("--force", action="store_true", help="ignore cached records and re-run")
    run.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="auto",
        help="execution backend (auto = serial unless --workers/--timeout ask for a pool)",
    )
    run.add_argument(
        "--queue-dir",
        default=None,
        help="spool directory for --backend queue (defaults to <store>/.queue)",
    )
    run.add_argument(
        "--claim-batch",
        type=int,
        default=1,
        metavar="N",
        help="tickets a spawned queue daemon claims per spool scan (--backend queue)",
    )
    run.add_argument(
        "--points-per-ticket",
        type=int,
        default=1,
        metavar="N",
        help="group N consecutive sweep points into one block ticket "
        "(--backend queue; block tickets are the unit work stealing splits)",
    )
    run.add_argument(
        "--trace",
        dest="trace_dir",
        metavar="DIR",
        default=None,
        help="write JSONL telemetry traces into DIR (a sweep trace plus one "
        "per-task trace; workers inherit the switch via the environment)",
    )

    report = sub.add_parser(
        "report", help="summarise stored records (text, json, or an HTML site)"
    )
    report.add_argument("scenario", nargs="?", default=None, help="restrict to one scenario")
    report.add_argument("--store", default=str(DEFAULT_STORE), help="result-store directory")
    report.add_argument(
        "--format",
        choices=("text", "json", "html"),
        default="text",
        help="text summary (default), raw records as JSON, or a static HTML site",
    )
    report.add_argument(
        "--html",
        dest="html_dir",
        metavar="OUT_DIR",
        default=None,
        help="render the HTML site into OUT_DIR (implies --format html; "
        "--format html alone writes ./report-site)",
    )
    report.add_argument(
        "--bench",
        action="append",
        default=[],
        metavar="GLOB",
        help="benchmark JSON files/globs (e.g. 'BENCH_*.json') charted on the "
        "HTML index page; repeatable (two or more files add a trends page)",
    )
    report.add_argument(
        "--trace",
        action="append",
        default=[],
        metavar="PATH",
        help="JSONL trace files or directories rendered as a timeline page "
        "in the HTML site; repeatable",
    )

    trace = sub.add_parser("trace", help="inspect JSONL telemetry traces")
    trace.add_argument(
        "action", choices=("summarize", "timeline"), help="what to do with the traces"
    )
    trace.add_argument(
        "paths", nargs="+", help="trace files, or directories of *.jsonl traces"
    )
    trace.add_argument(
        "--out",
        default="timeline.html",
        help="output HTML file for `timeline` (default ./timeline.html)",
    )
    trace.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="summary output format for `summarize`",
    )

    worker = sub.add_parser(
        "worker", help="daemon: claim and execute tickets from a work-queue spool"
    )
    worker.add_argument("queue_dir", help="spool directory (see `run --backend queue`)")
    worker.add_argument(
        "--store",
        default=None,
        help="also persist full records to this local store shard (merge later)",
    )
    worker.add_argument(
        "--max-idle",
        type=float,
        default=None,
        help="exit after this many seconds without work (default: run until STOP)",
    )
    worker.add_argument(
        "--poll-interval", type=float, default=0.2, help="queue scan period in seconds"
    )
    worker.add_argument(
        "--mp-start",
        choices=("spawn", "fork", "forkserver"),
        default="spawn",
        help="start method for the per-task watchdog subprocess",
    )
    worker.add_argument(
        "--stop-file",
        default=None,
        help="extra stop sentinel (used by sweeps to dismiss the daemons they spawned)",
    )
    worker.add_argument(
        "--claim-batch",
        type=int,
        default=1,
        metavar="N",
        help="tickets to claim per spool scan (amortises listing on large grids)",
    )
    worker.add_argument(
        "--inline",
        action="store_true",
        help="execute timeout-less tickets in-process instead of in a watchdog "
        "subprocess (faster for short tasks; a crash takes the daemon down)",
    )
    worker.add_argument(
        "--no-steal",
        dest="steal",
        action="store_false",
        help="never carve points off other workers' leased block tickets",
    )

    fleet = sub.add_parser(
        "fleet",
        help="supervisor: launch/retire local worker daemons from spool depth",
    )
    fleet.add_argument("queue_dir", help="spool directory (see `run --backend queue`)")
    fleet.add_argument(
        "--min-workers", type=int, default=0, help="never retire below this many daemons"
    )
    fleet.add_argument(
        "--max-workers", type=int, default=4, help="hard cap on live daemons"
    )
    fleet.add_argument(
        "--backlog-per-worker",
        type=int,
        default=4,
        metavar="N",
        help="target spool depth per live worker (scale-up trigger)",
    )
    fleet.add_argument(
        "--interval", type=float, default=0.5, help="control-loop tick period in seconds"
    )
    fleet.add_argument(
        "--cooldown",
        type=float,
        default=2.0,
        help="seconds the backlog must stay low before a worker is retired",
    )
    fleet.add_argument(
        "--drain",
        action="store_true",
        help="exit once the spool is empty and all claims resolved "
        "(default: run until the STOP sentinel appears)",
    )
    fleet.add_argument(
        "--max-runtime",
        type=float,
        default=None,
        help="hard wall-clock bound on the controller in seconds",
    )
    fleet.add_argument(
        "--store-prefix",
        default=None,
        metavar="PREFIX",
        help="give each worker its own store shard PREFIX-<n> (merge later)",
    )
    fleet.add_argument(
        "--claim-batch",
        type=int,
        default=1,
        metavar="N",
        help="tickets each worker claims per spool scan",
    )
    fleet.add_argument(
        "--max-idle",
        type=float,
        default=None,
        help="workers exit on their own after this many idle seconds",
    )
    fleet.add_argument(
        "--inline",
        action="store_true",
        help="workers execute timeout-less tickets in-process (see `worker --inline`)",
    )
    fleet.add_argument(
        "--mp-start",
        choices=("spawn", "fork", "forkserver"),
        default="spawn",
        help="start method for the workers' watchdog subprocesses",
    )

    merge = sub.add_parser("merge", help="import records from store shards into one store")
    merge.add_argument("dest", help="destination store directory")
    merge.add_argument("sources", nargs="+", help="source store directories (worker shards)")
    merge.add_argument(
        "--overwrite", action="store_true", help="let source records replace existing keys"
    )
    return parser


def _cmd_list() -> int:
    print(f"{'scenario':26s} {'params':44s} description")
    print("-" * 110)
    for scn in list_scenarios():
        axes = ", ".join(
            f"{p.name}={scn.default_grid[p.name]}" if p.name in scn.default_grid
            else f"{p.name}={p.default}"
            for p in scn.params
        )
        print(f"{scn.name:26s} {axes:44s} {scn.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scn = get_scenario(args.scenario)
    grid = parse_axis_overrides(args.overrides)
    # --engine/--engine-threads are sugar for grid axes; expand_grid rejects
    # them with a clean error if the scenario does not declare the params.
    if args.engine is not None:
        grid["engine"] = [args.engine]
    if args.engine_threads is not None:
        grid["engine_threads"] = [args.engine_threads]
    if args.fault_seed is not None:
        grid["fault_seed"] = [args.fault_seed]
    points = expand_grid(scn, grid, replicates=args.replicates, base_seed=args.base_seed)
    store = None if args.no_store else ResultStore(args.store)
    queue_dir = args.queue_dir
    if args.backend == "queue" and queue_dir is None:
        queue_dir = str((store.root if store is not None else DEFAULT_STORE) / ".queue")
    print(
        f"sweep {scn.name}: {len(points)} point(s), backend={args.backend}, "
        f"workers={args.workers}, store={'<none>' if store is None else store.root}"
    )
    tracer = None
    saved_env = os.environ.get(TRACE_DIR_ENV)
    if args.trace_dir is not None:
        trace_root = Path(args.trace_dir)
        trace_root.mkdir(parents=True, exist_ok=True)
        # The env var is how the switch reaches pool workers and queue
        # daemons: they inherit the environment, and execute_point opens a
        # per-task writer whenever it is set.
        os.environ[TRACE_DIR_ENV] = str(trace_root)
        tracer = TraceWriter(
            trace_root / f"sweep-{scn.name}.jsonl", source="sweep", scenario=scn.name
        )
    try:
        report = run_sweep(
            points,
            store=store,
            workers=args.workers,
            task_timeout=args.timeout,
            force=args.force,
            progress=print,
            mp_start_method=args.mp_start,
            maxtasksperchild=args.maxtasksperchild,
            backend=args.backend,
            queue_dir=queue_dir,
            claim_batch=args.claim_batch,
            points_per_ticket=args.points_per_ticket,
            trace=tracer,
        )
    finally:
        if tracer is not None:
            tracer.close()
            print(f"traces: {args.trace_dir}")
        if args.trace_dir is not None:
            if saved_env is None:
                os.environ.pop(TRACE_DIR_ENV, None)
            else:
                os.environ[TRACE_DIR_ENV] = saved_env
    print(
        f"done: {report.cached} cached, {report.executed} executed, {report.failed} failed"
    )
    for record in report.records:
        if record.status == "ok":
            print(f"  #{record.replicate} {record.params} -> {record.result}")
        else:
            print(f"  #{record.replicate} {record.params} -> {record.status.upper()}")
    return 0 if report.ok else 1


def _cmd_worker(args: argparse.Namespace) -> int:
    shard = None if args.store is None else ResultStore(args.store)
    logger.info(
        "worker: draining %s%s",
        args.queue_dir,
        f", shard -> {shard.root}" if shard is not None else "",
    )
    n_done = run_worker(
        args.queue_dir,
        store=shard,
        max_idle=args.max_idle,
        poll_interval=args.poll_interval,
        mp_start_method=args.mp_start,
        stop_file=args.stop_file,
        claim_batch=args.claim_batch,
        inline=args.inline,
        steal=args.steal,
    )
    logger.info("worker: executed %d point(s)", n_done)
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    report = run_fleet(
        args.queue_dir,
        drain=args.drain,
        max_runtime=args.max_runtime,
        min_workers=args.min_workers,
        max_workers=args.max_workers,
        backlog_per_worker=args.backlog_per_worker,
        interval=args.interval,
        cooldown=args.cooldown,
        store_prefix=args.store_prefix,
        inline=args.inline,
        claim_batch=args.claim_batch,
        max_idle=args.max_idle,
        mp_start_method=args.mp_start,
        progress=logger.info,
    )
    print(
        f"fleet: spawned {report.spawned}, retired {report.retired}, "
        f"peak {report.peak_workers}, {report.ticks} tick(s), "
        f"final depth {report.final_depth}"
    )
    crashed = sum(1 for code in report.exit_codes if code not in (0, None))
    if crashed:
        print(f"fleet: {crashed} worker(s) exited non-zero", file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    files = [f for spec in args.paths for f in trace_files(spec)]
    if not files:
        print("no trace files found", file=sys.stderr)
        return 1
    if args.action == "timeline":
        from repro.experiments.reporting.timeline import render_timeline_page

        traces = [(f.name, read_trace(f)) for f in files]
        out = Path(args.out)
        out.write_text(render_timeline_page(traces), encoding="utf-8")
        print(f"timeline: {out}")
        return 0
    summaries = {str(f): summarize_trace(read_trace(f)) for f in files}
    if args.format == "json":
        print(json.dumps(summaries, sort_keys=True, indent=2))
        return 0
    for name in sorted(summaries):
        s = summaries[name]
        print(f"== {name} ==")
        print(
            f"  source={s['source']} lines={s['lines']} "
            f"rounds={s['rounds_sampled']} (+{s['rounds_skipped']} skipped)"
        )
        print(
            f"  sent: {s['sent_messages']} msg / {s['sent_bits']} bits; "
            f"moved: {s['moved_bits']} bits; node steps: {s['active_steps']}"
        )
        for run in s["runs"]:
            print(
                f"  run[{run['engine']}]: rounds={run['rounds']} "
                f"skipped={run['skipped_rounds']} steps={run['node_steps']} "
                f"bits={run['total_bits']} halted={run['halted']}"
            )
        for span, stat in s["spans"].items():
            print(f"  span {span}: n={stat['count']} total={stat['total_s']:.4f}s")
        if s["task_states"]:
            states = ", ".join(f"{k}={v}" for k, v in s["task_states"].items())
            print(f"  tasks: {states}")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    dest = ResultStore(args.dest)
    total = 0
    for source in args.sources:
        summary = dest.merge(source, overwrite=args.overwrite)
        total += summary.imported
        detail = f"{summary.imported}/{summary.scanned} record(s)"
        if summary.skipped:
            detail += f", {summary.skipped} already present"
        if summary.replaced:
            detail += f", {summary.replaced} replaced"
        print(f"merged {detail} from {source} in {summary.duration_s:.2f}s")
    print(f"{dest.root}: {total} imported, {dest.count()} total record(s)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    fmt = "html" if args.html_dir is not None else args.format
    records = list(store.iter_records(args.scenario))
    if not records:
        # Same outcome (exit 1, not a usage error) for every format.
        print(f"no records in {store.root}" + (f" for {args.scenario!r}" if args.scenario else ""))
        return 1
    if fmt == "html":
        from repro.experiments.reporting import build_site

        bench_paths: list = []
        for pattern in args.bench:
            path = Path(pattern)
            # A literal path beats glob expansion ('[' in a filename).
            matches = [path] if path.is_file() else sorted(path.parent.glob(path.name))
            bench_paths.extend(matches)
        index = build_site(
            store,
            args.html_dir or "report-site",
            scenario=args.scenario,
            bench_paths=bench_paths,
            trace_paths=list(args.trace),
        )
        print(f"report site: {index}")
        return 0
    if fmt == "json":
        print(json.dumps([asdict(r) for r in records], sort_keys=True, indent=2))
        return 0
    print(f"{len(records)} record(s) in {store.root}")
    by_scenario: dict[str, list] = {}
    for record in records:
        by_scenario.setdefault(record.scenario, []).append(record)
    for name in sorted(by_scenario):
        group = by_scenario[name]
        ok = sum(1 for r in group if r.status == "ok")
        print(f"\n== {name}: {len(group)} record(s), {ok} ok ==")
        for record in group:
            status = "" if record.status == "ok" else f"  [{record.status.upper()}]"
            if record.status == "ok":
                payload = record.result
            else:
                error_lines = (record.error or "").strip().splitlines()
                payload = error_lines[-1] if error_lines else record.status
            print(f"  {record.params} seed={record.seed}{status}")
            print(f"    -> {payload}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code (0 ok, 1 failed sweep/empty report, 2 usage)."""
    args = _build_parser().parse_args(argv)
    _configure_logging(args.verbose, args.quiet)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "worker":
            return _cmd_worker(args)
        if args.command == "fleet":
            return _cmd_fleet(args)
        if args.command == "merge":
            return _cmd_merge(args)
        if args.command == "trace":
            return _cmd_trace(args)
        return _cmd_report(args)
    except BrokenPipeError:
        # Output piped into e.g. `head`; not an error.
        return 0
    except (ScenarioNotFound, KeyError, ValueError) as exc:
        # Bad scenario name, unknown axis, malformed --set, ...: a clean
        # one-line error beats a traceback at the command line.
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
