"""Sweep execution: serial or process-pool, with caching and failure capture.

The runner resolves each sweep point against the result store first
(skip-if-cached), ships the misses to a process pool (workers re-import
the scenario modules, so only names and plain params cross the pipe),
captures failures as records instead of crashing the sweep, enforces a
per-task timeout, and returns records in deterministic grid order
regardless of completion order.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

import repro
from repro.experiments.registry import (
    BUILTIN_SCENARIO_MODULES,
    get_scenario,
    load_builtin_scenarios,
)
from repro.experiments.store import ResultRecord, ResultStore, cache_key
from repro.experiments.sweep import SweepPoint


@dataclass
class SweepReport:
    """Outcome of one sweep: records in grid order plus cache accounting."""

    scenario: str
    records: list[ResultRecord] = field(default_factory=list)
    cached: int = 0
    executed: int = 0
    failed: int = 0

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def results(self) -> list[dict]:
        """The per-point result payloads, grid-ordered (None for failures)."""
        return [r.result for r in self.records]


def _execute_point(
    scenario_name: str,
    params: dict[str, Any],
    seed: int,
    scenario_modules: tuple[str, ...],
) -> dict:
    """Worker entry: run one point, capture success or failure as a dict."""
    load_builtin_scenarios(tuple(m for m in scenario_modules if m not in BUILTIN_SCENARIO_MODULES))
    start = time.perf_counter()
    try:
        scn = get_scenario(scenario_name)
        result = scn.run(params, seed)
        if not isinstance(result, dict):
            raise TypeError(
                f"scenario {scenario_name!r} must return a dict, got {type(result).__name__}"
            )
        return {"status": "ok", "result": result, "duration_s": time.perf_counter() - start}
    except Exception:
        return {
            "status": "error",
            "error": traceback.format_exc(),
            "duration_s": time.perf_counter() - start,
        }


def run_sweep(
    points: list[SweepPoint],
    store: ResultStore | None = None,
    workers: int = 1,
    task_timeout: float | None = None,
    force: bool = False,
    scenario_modules: tuple[str, ...] = (),
    progress: Callable[[str], None] | None = None,
) -> SweepReport:
    """Run a sweep; returns records in the order of ``points``.

    ``workers <= 1`` runs inline (same code path workers execute, so a
    serial run is bit-identical to a parallel one).  With a store, points
    whose cache key already has a record are served from cache unless
    ``force``; fresh records are persisted as they complete.

    ``task_timeout`` bounds the *additional* wall-clock wait per point:
    the runner collects results in grid order, so waiting on point k
    also buys running time for every point behind it in the queue.
    Setting it forces pool execution even with ``workers=1`` (a timeout
    cannot be enforced on in-process execution), and a pool with a hung
    worker is terminated rather than joined, so ``run_sweep`` returns.
    """
    if not points:
        raise ValueError("empty sweep")
    names = {p.scenario for p in points}
    if len(names) != 1:
        raise ValueError(f"sweep mixes scenarios {sorted(names)}; run them separately")
    scenario = get_scenario(points[0].scenario)
    report = SweepReport(scenario=scenario.name)
    say = progress or (lambda _msg: None)

    keys = {
        p.index: cache_key(p.scenario, p.params, p.seed, scenario_version=scenario.version)
        for p in points
    }
    slots: dict[int, ResultRecord] = {}
    pending: list[SweepPoint] = []
    for point in points:
        cached = None if (force or store is None) else store.get(scenario.name, keys[point.index])
        if cached is not None:
            slots[point.index] = cached
            report.cached += 1
            if cached.status != "ok":
                # A persisted failure served from cache still fails the
                # sweep -- callers gating on report.ok must see it.
                report.failed += 1
            say(f"[cache:{cached.status}] {scenario.name} #{point.index} {point.params}")
        else:
            pending.append(point)

    def finish(point: SweepPoint, outcome: dict) -> None:
        record = ResultRecord(
            key=keys[point.index],
            scenario=point.scenario,
            params=point.params,
            seed=point.seed,
            replicate=point.replicate,
            status=outcome["status"],
            result=outcome.get("result"),
            error=outcome.get("error"),
            duration_s=outcome.get("duration_s", 0.0),
            scenario_version=scenario.version,
            code_version=repro.__version__,
        )
        slots[point.index] = record
        report.executed += 1
        if record.status != "ok":
            report.failed += 1
            say(f"[{record.status}] {scenario.name} #{point.index} {point.params}")
        else:
            say(
                f"[done] {scenario.name} #{point.index} {point.params} "
                f"({record.duration_s:.2f}s)"
            )
        # Failures are persisted too: a sweep that died at point 37 resumes
        # there, and `report` can show what broke.  `force` re-runs them.
        if store is not None:
            store.put(record)

    # Ship the scenario's defining module to workers so pools work under
    # spawn/forkserver too, where the parent's registry is not inherited.
    # (A __main__ registration can't be re-imported by name; it still works
    # under fork, the Linux default.)
    if scenario.fn.__module__ not in ("__main__", None):
        scenario_modules = tuple(dict.fromkeys((*scenario_modules, scenario.fn.__module__)))

    use_pool = pending and (workers > 1 or task_timeout is not None)
    if not use_pool:
        for point in pending:
            finish(
                point,
                _execute_point(point.scenario, point.params, point.seed, scenario_modules),
            )
    else:
        pool = multiprocessing.get_context().Pool(processes=min(max(workers, 1), len(pending)))
        timed_out = False
        try:
            asyncs = {
                point.index: pool.apply_async(
                    _execute_point,
                    (point.scenario, point.params, point.seed, scenario_modules),
                )
                for point in pending
            }
            for point in pending:
                try:
                    outcome = asyncs[point.index].get(timeout=task_timeout)
                except multiprocessing.TimeoutError:
                    timed_out = True
                    outcome = {
                        "status": "timeout",
                        "error": f"task exceeded {task_timeout}s",
                        "duration_s": float(task_timeout or 0.0),
                    }
                except Exception:
                    # Worker crashed (e.g. killed mid-task): capture, don't
                    # lose the rest of the sweep's bookkeeping.
                    outcome = {
                        "status": "error",
                        "error": traceback.format_exc(),
                        "duration_s": 0.0,
                    }
                finish(point, outcome)
        finally:
            if timed_out:
                # A hung worker would make close()+join() block forever.
                pool.terminate()
            else:
                pool.close()
            pool.join()

    report.records = [slots[p.index] for p in points]
    return report
