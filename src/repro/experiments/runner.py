"""Sweep execution: serial or process-pool, with caching and failure capture.

The runner resolves each sweep point against the result store first
(skip-if-cached), ships the misses to a process pool (workers re-import
the scenario modules, so only names and plain params cross the pipe),
captures failures as records instead of crashing the sweep, enforces a
per-task timeout, and returns records in deterministic grid order
regardless of completion order.

Pool hygiene: workers come from an explicit ``spawn`` context by default
(no fork-inherited state; scenario modules are shipped by name and
re-imported, so registrations survive the spawn) and are recycled after
``maxtasksperchild`` tasks, so long sweeps cannot accumulate per-worker
state or leak memory.  Futures are collected as they complete -- not in
grid order -- so one slow point never delays timeout detection for the
points behind it; records are reordered into grid order at the end.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

#: How often the collector polls outstanding futures, in seconds.
_POLL_INTERVAL = 0.02

import repro
from repro.experiments.registry import (
    BUILTIN_SCENARIO_MODULES,
    get_scenario,
    load_builtin_scenarios,
)
from repro.experiments.store import ResultRecord, ResultStore, cache_key
from repro.experiments.sweep import SweepPoint


@dataclass
class SweepReport:
    """Outcome of one sweep: records in grid order plus cache accounting."""

    scenario: str
    records: list[ResultRecord] = field(default_factory=list)
    cached: int = 0
    executed: int = 0
    failed: int = 0

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def results(self) -> list[dict]:
        """The per-point result payloads, grid-ordered (None for failures)."""
        return [r.result for r in self.records]


def _execute_point(
    scenario_name: str,
    params: dict[str, Any],
    seed: int,
    scenario_modules: tuple[str, ...],
) -> dict:
    """Worker entry: run one point, capture success or failure as a dict."""
    load_builtin_scenarios(tuple(m for m in scenario_modules if m not in BUILTIN_SCENARIO_MODULES))
    start = time.perf_counter()
    try:
        scn = get_scenario(scenario_name)
        result = scn.run(params, seed)
        if not isinstance(result, dict):
            raise TypeError(
                f"scenario {scenario_name!r} must return a dict, got {type(result).__name__}"
            )
        return {"status": "ok", "result": result, "duration_s": time.perf_counter() - start}
    except Exception:
        return {
            "status": "error",
            "error": traceback.format_exc(),
            "duration_s": time.perf_counter() - start,
        }


def run_sweep(
    points: list[SweepPoint],
    store: ResultStore | None = None,
    workers: int = 1,
    task_timeout: float | None = None,
    force: bool = False,
    scenario_modules: tuple[str, ...] = (),
    progress: Callable[[str], None] | None = None,
    mp_start_method: str = "spawn",
    maxtasksperchild: int | None = 16,
) -> SweepReport:
    """Run a sweep; returns records in the order of ``points``.

    ``workers <= 1`` runs inline (same code path workers execute, so a
    serial run is bit-identical to a parallel one).  With a store, points
    whose cache key already has a record are served from cache unless
    ``force``; fresh records are persisted as they complete.

    ``task_timeout`` bounds the wall-clock runtime per point, measured
    from when a worker slot becomes available for it (completed futures
    are collected out of grid order, so a slow point in front never
    delays timeout detection for the points behind it).  Setting it
    forces pool execution even with ``workers=1`` (a timeout cannot be
    enforced on in-process execution), and a pool with a hung worker is
    terminated rather than joined, so ``run_sweep`` returns.

    ``mp_start_method`` picks the multiprocessing context (``spawn`` by
    default: clean workers, no fork-inherited state) and
    ``maxtasksperchild`` recycles workers so long sweeps cannot
    accumulate per-worker state.
    """
    if not points:
        raise ValueError("empty sweep")
    names = {p.scenario for p in points}
    if len(names) != 1:
        raise ValueError(f"sweep mixes scenarios {sorted(names)}; run them separately")
    scenario = get_scenario(points[0].scenario)
    report = SweepReport(scenario=scenario.name)
    say = progress or (lambda _msg: None)

    keys = {
        p.index: cache_key(p.scenario, p.params, p.seed, scenario_version=scenario.version)
        for p in points
    }
    slots: dict[int, ResultRecord] = {}
    pending: list[SweepPoint] = []
    for point in points:
        cached = None if (force or store is None) else store.get(scenario.name, keys[point.index])
        if cached is not None:
            slots[point.index] = cached
            report.cached += 1
            if cached.status != "ok":
                # A persisted failure served from cache still fails the
                # sweep -- callers gating on report.ok must see it.
                report.failed += 1
            say(f"[cache:{cached.status}] {scenario.name} #{point.index} {point.params}")
        else:
            pending.append(point)

    def finish(point: SweepPoint, outcome: dict) -> None:
        record = ResultRecord(
            key=keys[point.index],
            scenario=point.scenario,
            params=point.params,
            seed=point.seed,
            replicate=point.replicate,
            status=outcome["status"],
            result=outcome.get("result"),
            error=outcome.get("error"),
            duration_s=outcome.get("duration_s", 0.0),
            scenario_version=scenario.version,
            code_version=repro.__version__,
        )
        slots[point.index] = record
        report.executed += 1
        if record.status != "ok":
            report.failed += 1
            say(f"[{record.status}] {scenario.name} #{point.index} {point.params}")
        else:
            say(
                f"[done] {scenario.name} #{point.index} {point.params} "
                f"({record.duration_s:.2f}s)"
            )
        # Failures are persisted too: a sweep that died at point 37 resumes
        # there, and `report` can show what broke.  `force` re-runs them.
        if store is not None:
            store.put(record)

    # Ship the scenario's defining module to workers so pools work under
    # spawn/forkserver too, where the parent's registry is not inherited.
    # (A __main__ registration can't be re-imported by name; it still works
    # under fork, the Linux default.)
    if scenario.fn.__module__ not in ("__main__", None):
        scenario_modules = tuple(dict.fromkeys((*scenario_modules, scenario.fn.__module__)))

    use_pool = pending and (workers > 1 or task_timeout is not None)
    if not use_pool:
        for point in pending:
            finish(
                point,
                _execute_point(point.scenario, point.params, point.seed, scenario_modules),
            )
    else:
        n_workers = min(max(workers, 1), len(pending))
        ctx = multiprocessing.get_context(mp_start_method)
        pool = ctx.Pool(processes=n_workers, maxtasksperchild=maxtasksperchild)
        timed_out = False
        try:
            asyncs = {
                point.index: pool.apply_async(
                    _execute_point,
                    (point.scenario, point.params, point.seed, scenario_modules),
                )
                for point in pending
            }
            remaining = {point.index: point for point in pending}
            # Per-task deadlines approximate "timeout from actual start":
            # at most n_workers tasks hold a deadline at once; a new one is
            # armed (in grid order) whenever a slot resolves.
            deadlines: dict[int, float] = {}

            def rearm_deadlines() -> None:
                if task_timeout is None:
                    return
                armed = sum(1 for idx in deadlines if idx in remaining)
                for point in pending:
                    if armed >= n_workers:
                        break
                    if point.index in remaining and point.index not in deadlines:
                        deadlines[point.index] = time.monotonic() + task_timeout
                        armed += 1

            rearm_deadlines()
            while remaining:
                progressed = False
                for idx in list(remaining):
                    if not asyncs[idx].ready():
                        continue
                    point = remaining.pop(idx)
                    try:
                        outcome = asyncs[idx].get()
                    except Exception:
                        # Worker crashed (e.g. killed mid-task): capture,
                        # don't lose the rest of the sweep's bookkeeping.
                        outcome = {
                            "status": "error",
                            "error": traceback.format_exc(),
                            "duration_s": 0.0,
                        }
                    finish(point, outcome)
                    progressed = True
                if task_timeout is not None:
                    now = time.monotonic()
                    for idx in list(remaining):
                        if idx in deadlines and now > deadlines[idx]:
                            timed_out = True
                            point = remaining.pop(idx)
                            finish(
                                point,
                                {
                                    "status": "timeout",
                                    "error": f"task exceeded {task_timeout}s",
                                    "duration_s": float(task_timeout),
                                },
                            )
                            progressed = True
                if progressed:
                    rearm_deadlines()
                elif remaining:
                    time.sleep(_POLL_INTERVAL)
        finally:
            if timed_out:
                # A hung worker would make close()+join() block forever.
                pool.terminate()
            else:
                pool.close()
            pool.join()

    report.records = [slots[p.index] for p in points]
    return report
