"""Sweep orchestration: cache resolution + backend dispatch + reassembly.

The runner resolves each sweep point against the result store first
(skip-if-cached), hands the misses to an execution backend
(:mod:`repro.experiments.backends`: serial inline, local process pool, or
a shared work-queue spool drained by worker daemons), captures failures
as records instead of crashing the sweep, and returns records in
deterministic grid order regardless of completion order.

Which backend runs the tasks is a dispatch detail: all of them execute
:func:`~repro.experiments.backends.base.execute_point`, so the records a
sweep produces are field-identical (modulo ``duration_s``) across
backends -- ``tests/test_backends.py`` asserts exactly that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

#: How often the collector polls an idle backend, in seconds.
_POLL_INTERVAL = 0.02

import repro
from repro.experiments.backends import ExecutionBackend, Task, resolve_backend
from repro.experiments.registry import get_scenario
from repro.experiments.store import ResultRecord, ResultStore, cache_key
from repro.experiments.sweep import SweepPoint
from repro.obs.trace import Tracer, current_tracer


@dataclass
class SweepReport:
    """Outcome of one sweep: records in grid order plus cache accounting."""

    scenario: str
    records: list[ResultRecord] = field(default_factory=list)
    cached: int = 0
    executed: int = 0
    failed: int = 0

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def results(self) -> list[dict]:
        """The per-point result payloads, grid-ordered (None for failures)."""
        return [r.result for r in self.records]


def run_sweep(
    points: list[SweepPoint],
    store: ResultStore | None = None,
    workers: int = 1,
    task_timeout: float | None = None,
    force: bool = False,
    scenario_modules: tuple[str, ...] = (),
    progress: Callable[[str], None] | None = None,
    mp_start_method: str = "spawn",
    maxtasksperchild: int | None = 16,
    backend: str | ExecutionBackend = "auto",
    queue_dir: str | None = None,
    claim_batch: int = 1,
    points_per_ticket: int = 1,
    trace: Tracer | None = None,
) -> SweepReport:
    """Run a sweep; returns records in the order of ``points``.

    ``backend`` picks the execution backend: ``"auto"`` (serial for a
    single worker with no timeout, else a process pool -- the historical
    behaviour), ``"serial"``, ``"pool"``, or ``"queue"`` (a spool at
    ``queue_dir`` drained by ``workers`` spawned daemons, or by external
    ``python -m repro.experiments worker`` daemons when ``workers=0`` --
    note an external-drain sweep waits indefinitely for the fleet, there
    is no collector-side deadline on unclaimed tickets).  An
    :class:`ExecutionBackend` instance is used as-is and left open for
    the caller; named backends are constructed and shut down here.

    With a store, points whose cache key already has a record are served
    from cache unless ``force``; fresh records are persisted as they
    complete.

    ``task_timeout`` bounds the wall-clock runtime per point.  The pool
    backend approximates it with per-task deadlines measured from when a
    worker slot becomes available (a hung worker is terminated rather
    than joined, so ``run_sweep`` returns); the queue backend enforces it
    worker-side, killing the over-budget task subprocess.

    ``mp_start_method`` picks the multiprocessing context (``spawn`` by
    default: clean workers, no fork-inherited state) and
    ``maxtasksperchild`` recycles pool workers so long sweeps cannot
    accumulate per-worker state (``0`` means never recycle, for
    ``multiprocessing.Pool`` parity).

    ``claim_batch`` makes the queue backend's spawned daemons claim up to
    that many tickets per spool scan, amortising the directory listing on
    very large grids, and ``points_per_ticket`` groups consecutive points
    into block tickets (the unit work stealing splits -- see
    ``docs/architecture.md``); other backends ignore both.

    ``trace`` receives sweep telemetry (``task`` lifecycle lines:
    submitted, cached, ok/error/timeout) and is handed to the backend for
    its internal spans; defaults to the ambient tracer (the no-op null
    tracer unless a ``repro.obs.use_tracer`` block is active).
    """
    if not points:
        raise ValueError("empty sweep")
    names = {p.scenario for p in points}
    if len(names) != 1:
        raise ValueError(f"sweep mixes scenarios {sorted(names)}; run them separately")
    if maxtasksperchild == 0:
        # Pool parity for library callers: 0 is a natural "never recycle"
        # spelling but an invalid multiprocessing.Pool argument.
        maxtasksperchild = None
    scenario = get_scenario(points[0].scenario)
    report = SweepReport(scenario=scenario.name)
    say = progress or (lambda _msg: None)
    tracer = trace if trace is not None else current_tracer()
    tracer.event("sweep_start", scenario=scenario.name, points=len(points))

    keys = {
        p.index: cache_key(p.scenario, p.params, p.seed, scenario_version=scenario.version)
        for p in points
    }
    slots: dict[int, ResultRecord] = {}
    pending: list[SweepPoint] = []
    for point in points:
        cached = None if (force or store is None) else store.get(scenario.name, keys[point.index])
        if cached is not None:
            slots[point.index] = cached
            report.cached += 1
            if cached.status != "ok":
                # A persisted failure served from cache still fails the
                # sweep -- callers gating on report.ok must see it.
                report.failed += 1
            say(f"[cache:{cached.status}] {scenario.name} #{point.index} {point.params}")
            tracer.task("cached", point.index, status=cached.status)
        else:
            pending.append(point)

    def finish(point: SweepPoint, outcome: dict) -> None:
        record = ResultRecord(
            key=keys[point.index],
            scenario=point.scenario,
            params=point.params,
            seed=point.seed,
            replicate=point.replicate,
            status=outcome["status"],
            result=outcome.get("result"),
            error=outcome.get("error"),
            duration_s=outcome.get("duration_s", 0.0),
            scenario_version=scenario.version,
            code_version=repro.__version__,
            meta=outcome.get("meta") or {},
        )
        slots[point.index] = record
        report.executed += 1
        tracer.task(record.status, point.index, duration_s=record.duration_s)
        if record.status != "ok":
            report.failed += 1
            say(f"[{record.status}] {scenario.name} #{point.index} {point.params}")
        else:
            say(
                f"[done] {scenario.name} #{point.index} {point.params} "
                f"({record.duration_s:.2f}s)"
            )
        # Failures are persisted too: a sweep that died at point 37 resumes
        # there, and `report` can show what broke.  `force` re-runs them.
        if store is not None:
            store.put(record)

    # Ship the scenario's defining module to workers so pools and queue
    # daemons work under spawn/forkserver too, where the parent's registry
    # is not inherited.  (A __main__ registration can't be re-imported by
    # name; it still works under fork, the Linux default.)
    if scenario.fn.__module__ not in ("__main__", None):
        scenario_modules = tuple(dict.fromkeys((*scenario_modules, scenario.fn.__module__)))

    if pending:
        owned = not isinstance(backend, ExecutionBackend)
        engine = (
            resolve_backend(
                backend,
                workers=workers,
                n_tasks=len(pending),
                task_timeout=task_timeout,
                mp_start_method=mp_start_method,
                maxtasksperchild=maxtasksperchild,
                queue_dir=queue_dir,
                claim_batch=claim_batch,
                points_per_ticket=points_per_ticket,
            )
            if owned
            else backend
        )
        engine.trace = tracer
        tasks = [
            Task(
                point=point,
                key=keys[point.index],
                scenario_version=scenario.version,
                code_version=repro.__version__,
                scenario_modules=scenario_modules,
                timeout=task_timeout,
            )
            for point in pending
        ]
        outstanding = 0
        try:
            for task in tasks:
                tracer.task("submitted", task.index, backend=engine.name)
                engine.submit(task)
                outstanding += 1
                if not engine.synchronous:
                    continue
                # Serial execution finished the point inside submit();
                # drain now so progress streams instead of batching.
                for done_task, outcome in engine.poll():
                    finish(done_task.point, outcome)
                    outstanding -= 1
            while outstanding:
                batch = engine.poll()
                if not batch:
                    time.sleep(_POLL_INTERVAL)
                    continue
                for done_task, outcome in batch:
                    finish(done_task.point, outcome)
                    outstanding -= 1
        finally:
            if owned:
                engine.shutdown()

    report.records = [slots[p.index] for p in points]
    tracer.event(
        "sweep_end",
        scenario=scenario.name,
        cached=report.cached,
        executed=report.executed,
        failed=report.failed,
    )
    return report
