"""The scenario registry: declarative experiment registration.

A *scenario* is a callable ``fn(*, seed, **params) -> dict`` plus typed
parameter specs and a default sweep grid.  Registering one makes it
discoverable by the CLI (``python -m repro.experiments list``), sweepable
by the grid expander, runnable by the parallel runner, and cacheable by
the result store -- so reproducing a new figure or ablation is a ~20-line
``@scenario`` registration rather than a new benchmark script.

Scenario functions must be module-level (picklable by reference) so the
process-pool runner can ship them to workers.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable

#: Modules imported by default to populate the registry (workers and the
#: CLI both import these before resolving scenario names).
BUILTIN_SCENARIO_MODULES = ("repro.experiments.scenarios",)


class ScenarioNotFound(KeyError):
    """Raised when a scenario name is not in the registry."""


@dataclass(frozen=True)
class ParamSpec:
    """One typed scenario parameter."""

    name: str
    type: type = float
    default: Any = None
    help: str = ""

    def coerce(self, raw: Any) -> Any:
        """Coerce a raw (possibly string, e.g. CLI) value to the spec type."""
        if raw is None:
            return self.default
        if isinstance(raw, self.type):
            return raw
        if self.type is bool and isinstance(raw, str):
            if raw.lower() in ("1", "true", "yes", "on"):
                return True
            if raw.lower() in ("0", "false", "no", "off"):
                return False
            raise ValueError(f"cannot parse {raw!r} as bool for {self.name!r}")
        return self.type(raw)


@dataclass(frozen=True)
class PlotSpec:
    """A declarative plot over a scenario's stored records.

    The HTML report subsystem (:mod:`repro.experiments.reporting`) turns
    each spec into an embedded SVG chart on the scenario's page: ``x``
    names the horizontal axis and each entry of ``ys`` one series, both
    resolved per record against the result payload first and the resolved
    params second.  ``group_by`` splits every series by the distinct
    values of a (typically categorical) key, e.g. one Borůvka exactness
    curve per topology generator.  Specs carry no data -- they are pure
    registry metadata, so ``@scenario(plots=...)`` keeps figure layout
    next to the code that produces the numbers.
    """

    name: str
    title: str
    x: str
    ys: tuple[str, ...]
    #: "line" | "scatter" | "bar" (bar treats ``x`` as categorical).
    kind: str = "line"
    logx: bool = False
    logy: bool = False
    group_by: str | None = None
    x_label: str = ""
    y_label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("line", "scatter", "bar"):
            raise ValueError(f"unknown plot kind {self.kind!r}; known: line, scatter, bar")
        if not self.ys:
            raise ValueError(f"plot {self.name!r} declares no y series")


@dataclass(frozen=True)
class Scenario:
    """A registered experiment scenario."""

    name: str
    fn: Callable[..., dict]
    params: tuple[ParamSpec, ...] = ()
    description: str = ""
    #: Bumped when the scenario's semantics change; part of the cache key.
    version: str = "1"
    #: Default sweep grid: param name -> list of values (single values are
    #: fixed axes).  ``run NAME`` with no --set sweeps this grid.
    default_grid: dict[str, list] = field(default_factory=dict)
    tags: tuple[str, ...] = ()
    #: Declarative report charts rendered by ``report --html`` (pages fall
    #: back to a synthesised default plot when empty).
    plots: tuple[PlotSpec, ...] = ()

    def spec(self, name: str) -> ParamSpec:
        """Look up one :class:`ParamSpec` by name (KeyError if undeclared)."""
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"scenario {self.name!r} has no parameter {name!r}")

    def resolve_params(self, overrides: dict[str, Any] | None = None) -> dict[str, Any]:
        """Defaults merged with coerced overrides; rejects unknown names."""
        overrides = overrides or {}
        unknown = set(overrides) - {p.name for p in self.params}
        if unknown:
            raise KeyError(
                f"unknown parameter(s) {sorted(unknown)} for scenario {self.name!r}; "
                f"known: {[p.name for p in self.params]}"
            )
        resolved = {}
        for p in self.params:
            resolved[p.name] = p.coerce(overrides[p.name]) if p.name in overrides else p.default
        return resolved

    def run(self, params: dict[str, Any], seed: int) -> dict:
        """Execute the scenario function on fully-resolved params."""
        return self.fn(seed=seed, **params)


_REGISTRY: dict[str, Scenario] = {}


def scenario(
    name: str,
    *,
    params: list[ParamSpec] | tuple[ParamSpec, ...] = (),
    description: str = "",
    version: str = "1",
    default_grid: dict[str, list] | None = None,
    tags: tuple[str, ...] = (),
    plots: tuple[PlotSpec, ...] | list[PlotSpec] = (),
) -> Callable[[Callable[..., dict]], Callable[..., dict]]:
    """Decorator registering ``fn(*, seed, **params) -> dict`` as a scenario.

    ``plots`` declares the charts the HTML report renders for this
    scenario's stored records (see :class:`PlotSpec`); scenarios without
    specs get a synthesised default plot.
    """

    def decorate(fn: Callable[..., dict]) -> Callable[..., dict]:
        if name in _REGISTRY and _REGISTRY[name].fn is not fn:
            raise ValueError(f"scenario {name!r} already registered")
        grid = dict(default_grid or {})
        spec_names = {p.name for p in params}
        unknown = set(grid) - spec_names
        if unknown:
            raise ValueError(f"default_grid keys {sorted(unknown)} not in params of {name!r}")
        doc_first_line = (fn.__doc__ or "").strip().splitlines()[:1]
        _REGISTRY[name] = Scenario(
            name=name,
            fn=fn,
            params=tuple(params),
            description=description or (doc_first_line[0] if doc_first_line else ""),
            version=version,
            default_grid=grid,
            tags=tuple(tags),
            plots=tuple(plots),
        )
        return fn

    return decorate


#: Modules already imported by :func:`load_builtin_scenarios`.  The call
#: sits on every ``execute_point`` hot path, so skip the (surprisingly
#: non-trivial) ``importlib.import_module`` sys.modules round-trip for
#: modules this process has already loaded.
_LOADED_MODULES: set[str] = set()


def load_builtin_scenarios(extra_modules: tuple[str, ...] = ()) -> None:
    """Import the scenario modules (idempotent) to populate the registry."""
    for module in (*BUILTIN_SCENARIO_MODULES, *extra_modules):
        if module not in _LOADED_MODULES:
            importlib.import_module(module)
            _LOADED_MODULES.add(module)


def get_scenario(name: str) -> Scenario:
    """Resolve a scenario by name, importing the built-in modules if needed."""
    if name not in _REGISTRY:
        load_builtin_scenarios()
    if name not in _REGISTRY:
        raise ScenarioNotFound(
            f"unknown scenario {name!r}; known: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def list_scenarios() -> list[Scenario]:
    """Every registered scenario, sorted by name (built-ins loaded first)."""
    load_builtin_scenarios()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]
