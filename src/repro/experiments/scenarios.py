"""Built-in scenario registrations spanning the repo's layers.

Each scenario is a pure function of ``(seed, **params) -> dict`` whose
randomness derives entirely from the seed, so a sweep point is fully
identified by its cache key.  The benchmark scripts under ``benchmarks/``
are thin wrappers over these registrations -- the sweep logic lives here.
"""

from __future__ import annotations

import math
import random

import networkx as nx

from repro.algorithms.disjointness import (
    run_classical_disjointness,
    run_quantum_disjointness,
)
from repro.algorithms.elkin import run_elkin_approx_mst
from repro.algorithms.mst import run_boruvka_mst, run_gkp_mst, tree_weight
from repro.algorithms.paths import run_refreshing_bellman_ford
from repro.algorithms.spanning_structures import greedy_spanner, run_linear_size_spanner
from repro.algorithms.verification import run_verification
from repro.congest.faults import FaultPlan
from repro.congest.node import Node, NodeProgram
from repro.congest.topology import dumbbell_graph
from repro.core.bounds import fig2_table, fig3_curve
from repro.core.fooling import gap_equality_lower_bound
from repro.core.gadgets import (
    gap_eq_mismatch_count,
    gap_eq_to_ham,
    ipmod3_to_ham,
    ipmod3_value,
)
from repro.core.gamma2 import gamma2_dual
from repro.core.nonlocal_games import chsh_game
from repro.core.server_model import StructuredServerProtocol, two_party_simulation_of_server
from repro.core.simulation_theorem import SimulationTheoremNetwork
from repro.congest.engine import Engine, get_engine
from repro.experiments.registry import ParamSpec, PlotSpec, scenario
from repro.graphs.generators import (
    connect_nearest_components,
    knn_geometric_graph,
    matching_pair_for_cycles,
    random_connected_graph,
    random_weighted_graph,
)
from repro.graphs.spatial import GridIndex


#: Engine-selection axes shared by the CONGEST-heavy scenarios, so sweeps
#: can put the execution engine itself on the grid (``--engine parallel
#: --engine-threads 4`` at the CLI).  ``engine_threads = 0`` means the
#: engine's own default (the host CPU count for ``parallel``).
ENGINE_PARAMS = (
    ParamSpec(
        "engine",
        str,
        "event",
        "CONGEST engine: event|dense|parallel|columnar|columnar-stdlib|columnar-numpy|auto",
    ),
    ParamSpec("engine_threads", int, 0, "parallel-engine shard threads (0 = cpu count)"),
)


def _resolve_engine(engine: str, engine_threads: int, graph: nx.Graph | None = None) -> Engine:
    """Build the engine instance a scenario point asked for.

    An instance (not the name) so the scenario can read back introspection
    counters such as ``node_steps`` after the run.  Pass the instance graph
    when it is already built so ``engine="auto"`` can size its choice.
    """
    return get_engine(
        engine, threads=engine_threads if engine_threads > 0 else None, graph=graph
    )


def _weighted_graph(n: int, extra_edge_prob: float, graph_seed: int, weight_seed: int) -> nx.Graph:
    """Random connected graph with distinct positive integer weights."""
    graph = random_connected_graph(n, extra_edge_prob=extra_edge_prob, seed=graph_seed)
    rng = random.Random(weight_seed)
    weights = rng.sample(range(1, 10 * graph.number_of_edges() + 1), graph.number_of_edges())
    for (u, v), w in zip(graph.edges(), weights):
        graph.edges[u, v]["weight"] = float(w)
    return graph


def _fig3_graph(
    seed: int, n: int, aspect_ratio: float, extra_edge_prob: float, graph_seed: int
) -> nx.Graph:
    """The Fig. 3 instance: fixed topology, seed-drawn weights in [1, W]."""
    graph = random_connected_graph(n, extra_edge_prob=extra_edge_prob, seed=graph_seed)
    rng = random.Random(seed)
    w = aspect_ratio
    for u, v in graph.edges():
        graph.edges[u, v]["weight"] = rng.uniform(1.0, w) if w > 1 else 1.0
    edges = list(graph.edges())
    # Pin the extremes so the realised aspect ratio is exactly W.
    graph.edges[edges[0]]["weight"] = 1.0
    graph.edges[edges[-1]]["weight"] = float(w)
    return graph


@scenario(
    "fig3-mst-tradeoff",
    description="Fig. 3 measured: Elkin-mode staged flood vs exact GKP MST rounds vs W",
    params=[
        ParamSpec("n", int, 60, "nodes in the live CONGEST network"),
        ParamSpec("aspect_ratio", float, 1024.0, "weight aspect ratio W"),
        ParamSpec("alpha", float, 2.0, "Elkin approximation factor"),
        ParamSpec("bandwidth", int, 128, "CONGEST bandwidth B for the GKP run"),
        ParamSpec("extra_edge_prob", float, 0.08, "extra-edge density of the random graph"),
        ParamSpec("graph_seed", int, 17, "topology seed (fixed across the W axis)"),
        *ENGINE_PARAMS,
    ],
    default_grid={"aspect_ratio": [2.0, 32.0, 256.0, 1024.0, 8192.0]},
    tags=("mst", "congest", "fig3"),
    plots=(
        PlotSpec(
            name="rounds-vs-w",
            title="Fig. 3 — MST rounds vs aspect ratio W",
            x="W",
            ys=("elkin_rounds", "gkp_rounds", "combined_rounds"),
            logx=True,
            logy=True,
            x_label="aspect ratio W",
            y_label="CONGEST rounds",
        ),
        PlotSpec(
            name="bounds-vs-w",
            title="Fig. 3 — measured rounds against the closed-form bounds",
            x="W",
            ys=("combined_rounds", "formula_lower_bound", "formula_upper_bound"),
            logx=True,
            logy=True,
            x_label="aspect ratio W",
            y_label="rounds / bound value",
        ),
    ),
)
def fig3_mst_tradeoff(
    *,
    seed: int,
    n: int,
    aspect_ratio: float,
    alpha: float,
    bandwidth: int,
    extra_edge_prob: float,
    graph_seed: int,
    engine: str,
    engine_threads: int,
) -> dict:
    """The paper's headline trade-off (Fig. 3): rounds vs aspect ratio W.

    Runs both MST algorithms live on the same seeded CONGEST instance --
    the Elkin-mode staged flood (approximation factor ``alpha``) and the
    exact GKP algorithm -- and compares the measured round counts with the
    closed-form curve of ``fig3_curve``.  Result keys: ``W``,
    ``elkin_rounds``, ``gkp_rounds``, ``combined_rounds`` (the better of
    the two, the paper's upper envelope), ``formula_lower_bound`` and
    ``formula_upper_bound``.
    """
    w = aspect_ratio
    graph = _fig3_graph(seed, n, aspect_ratio, extra_edge_prob, graph_seed)

    _, elkin = run_elkin_approx_mst(
        graph, alpha=alpha, engine=_resolve_engine(engine, engine_threads, graph)
    )
    _, gkp = run_gkp_mst(
        graph, bandwidth=bandwidth, engine=_resolve_engine(engine, engine_threads, graph)
    )
    formula = fig3_curve(n, alpha, [w])[0]
    return {
        "W": w,
        "elkin_rounds": elkin.rounds,
        "gkp_rounds": gkp.rounds,
        "combined_rounds": min(elkin.rounds, gkp.rounds),
        "formula_lower_bound": formula["lower_bound"],
        "formula_upper_bound": formula["upper_bound"],
    }


@scenario(
    "fig3-engine-speedup",
    description="Dense vs event CONGEST engine on one Fig. 3 grid point (wall-clock)",
    params=[
        ParamSpec("n", int, 60, "nodes in the live CONGEST network"),
        ParamSpec("aspect_ratio", float, 8192.0, "weight aspect ratio W"),
        ParamSpec("alpha", float, 2.0, "Elkin approximation factor"),
        ParamSpec("bandwidth", int, 128, "CONGEST bandwidth B for the GKP run"),
        ParamSpec("extra_edge_prob", float, 0.08, "extra-edge density of the random graph"),
        ParamSpec("graph_seed", int, 17, "topology seed"),
    ],
    default_grid={},
    tags=("congest", "engine", "perf"),
    plots=(
        PlotSpec(
            name="engine-seconds",
            title="Engine wall-clock on the Fig. 3 point",
            x="W",
            ys=("dense_seconds", "event_seconds"),
            kind="scatter",
            logx=True,
            logy=True,
            x_label="aspect ratio W",
            y_label="seconds",
        ),
        PlotSpec(
            name="engine-speedup",
            title="Event-engine speedup over the dense reference",
            x="W",
            ys=("speedup",),
            kind="scatter",
            logx=True,
            x_label="aspect ratio W",
            y_label="x faster",
        ),
    ),
)
def fig3_engine_speedup(
    *,
    seed: int,
    n: int,
    aspect_ratio: float,
    alpha: float,
    bandwidth: int,
    extra_edge_prob: float,
    graph_seed: int,
) -> dict:
    """Run the same grid point on both engines; results must agree exactly.

    Times the dense reference engine against the event-driven default on
    one Fig. 3 instance (Elkin + GKP back to back) and cross-checks that
    every run metric matches.  Result keys: ``W``, ``elkin_rounds``,
    ``gkp_rounds``, ``dense_seconds``, ``event_seconds``, ``speedup`` and
    the ``engines_agree`` verdict.
    """
    import time

    graph = _fig3_graph(seed, n, aspect_ratio, extra_edge_prob, graph_seed)
    timings: dict[str, float] = {}
    runs: dict[str, tuple] = {}
    for engine in ("dense", "event"):
        start = time.perf_counter()
        _, elkin = run_elkin_approx_mst(graph, alpha=alpha, engine=engine)
        _, gkp = run_gkp_mst(graph, bandwidth=bandwidth, engine=engine)
        timings[engine] = time.perf_counter() - start
        runs[engine] = (elkin, gkp)
    agree = all(
        getattr(runs["dense"][i], f) == getattr(runs["event"][i], f)
        for i in (0, 1)
        for f in ("rounds", "total_bits", "total_messages", "halted")
    )
    return {
        "W": aspect_ratio,
        "elkin_rounds": runs["event"][0].rounds,
        "gkp_rounds": runs["event"][1].rounds,
        "dense_seconds": timings["dense"],
        "event_seconds": timings["event"],
        "speedup": timings["dense"] / max(timings["event"], 1e-9),
        "engines_agree": agree,
    }


@scenario(
    "example11-disjointness",
    description="Example 1.1: quantum vs classical Disjointness rounds on the dumbbell",
    params=[
        ParamSpec("b", int, 64, "instance size (bits per player)"),
        ParamSpec("bandwidth", int, 8, "CONGEST bandwidth B"),
        ParamSpec("clique_size", int, 3, "dumbbell clique size"),
        ParamSpec("path_length", int, 4, "dumbbell connecting-path length"),
        ParamSpec("instance_seed", int, -1, "fixed (x, y) instance seed; -1 = derive per point"),
    ],
    default_grid={"b": [16, 64, 256]},
    tags=("disjointness", "quantum", "congest"),
    plots=(
        PlotSpec(
            name="rounds-vs-b",
            title="Example 1.1 — Disjointness rounds, classical vs quantum",
            x="b",
            ys=("classical_rounds", "quantum_rounds"),
            logx=True,
            logy=True,
            x_label="instance size b",
            y_label="CONGEST rounds",
        ),
        PlotSpec(
            name="grover-queries",
            title="Example 1.1 — distributed Grover query count",
            x="b",
            ys=("grover_queries",),
            kind="scatter",
            logx=True,
            logy=True,
            x_label="instance size b",
            y_label="oracle queries",
        ),
    ),
)
def example11_disjointness(
    *, seed: int, b: int, bandwidth: int, clique_size: int, path_length: int, instance_seed: int
) -> dict:
    """The paper's Example 1.1: quantum advantage for Disjointness.

    Solves a disjoint ``b``-bit instance between the two clique endpoints
    of a dumbbell graph, classically (bit exchange) and quantumly
    (distributed Grover over teleported queries), on live CONGEST
    networks.  Result keys: ``b``, ``classical_rounds``,
    ``quantum_rounds``, ``grover_queries`` and both verdicts (which must
    say "disjoint").
    """
    graph = dumbbell_graph(clique_size, path_length)
    u, v = ("L", 1), ("R", 1)
    # A non-negative instance_seed pins the (x, y) instance across an axis
    # sweep (e.g. varying bandwidth), isolating the swept parameter.
    rng = random.Random(seed if instance_seed < 0 else instance_seed)
    x = tuple(rng.randrange(2) for _ in range(b))
    y = tuple(0 if a else rng.randrange(2) for a in x)  # disjoint instance
    classical_verdict, classical = run_classical_disjointness(
        graph, u, v, x, y, bandwidth=bandwidth
    )
    quantum_verdict, quantum, queries = run_quantum_disjointness(
        graph, u, v, x, y, bandwidth=bandwidth, seed=seed
    )
    return {
        "b": b,
        "classical_rounds": classical.rounds,
        "quantum_rounds": quantum.rounds,
        "grover_queries": queries,
        "classical_verdict": classical_verdict,
        "quantum_verdict": quantum_verdict,
    }


@scenario(
    "fig2-bound-table",
    description="Fig. 2: previous-vs-new lower-bound table at concrete parameters",
    params=[
        ParamSpec("n", int, 10_000, "network size"),
        ParamSpec("bandwidth", int, 14, "CONGEST bandwidth B (~ log2 n)"),
        ParamSpec("aspect_ratio", float, 1024.0, "weight aspect ratio W"),
        ParamSpec("alpha", float, 2.0, "approximation factor"),
    ],
    default_grid={"n": [1_000, 10_000, 100_000]},
    tags=("bounds", "fig2"),
    plots=(
        PlotSpec(
            name="bounds-vs-n",
            title="Fig. 2 — new lower bounds vs network size",
            x="n",
            ys=("verification_bound", "optimization_bound"),
            logx=True,
            logy=True,
            x_label="network size n",
            y_label="quantum round lower bound",
        ),
    ),
)
def fig2_bound_table(*, seed: int, n: int, bandwidth: int, aspect_ratio: float, alpha: float) -> dict:
    """The Fig. 2 table: previous vs new quantum lower bounds, evaluated.

    Instantiates every row of the paper's bound table (verification and
    optimization problems) at concrete ``(n, B, W, alpha)`` via
    ``fig2_table``.  Result keys: ``n``, ``n_rows``, the headline
    ``verification_bound`` and ``optimization_bound``, and ``rows`` (the
    full problem/category/previous/new listing).
    """
    rows = fig2_table(n, bandwidth, aspect_ratio=aspect_ratio, alpha=alpha)
    return {
        "n": n,
        "n_rows": len(rows),
        "verification_bound": next(r.new_value for r in rows if r.category == "verification"),
        "optimization_bound": next(r.new_value for r in rows if r.category == "optimization"),
        "rows": [
            {
                "problem": r.problem,
                "category": r.category,
                "previous_value": r.previous_value,
                "new_value": r.new_value,
            }
            for r in rows
        ],
    }


@scenario(
    "server-model-equivalence",
    description="Section 3.1: two-party simulation of a structured Server protocol is cost-exact",
    params=[
        ParamSpec("n_rounds", int, 8, "rounds of the streamed-XOR server protocol"),
        ParamSpec("input_bits", int, 16, "bits per player"),
    ],
    default_grid={"n_rounds": [2, 8, 32]},
    tags=("server-model", "bounds"),
    plots=(
        PlotSpec(
            name="bits-vs-rounds",
            title="Server model — player bits, direct vs two-party simulation",
            x="n_rounds",
            ys=("server_player_bits", "two_party_bits"),
            logx=True,
            x_label="protocol rounds",
            y_label="player communication (bits)",
        ),
    ),
)
def server_model_equivalence(*, seed: int, n_rounds: int, input_bits: int) -> dict:
    """Section 3.1: simulating a structured Server protocol costs nothing.

    Runs a streamed-XOR Server-model protocol directly and through the
    two-party simulation, asserting bit-for-bit cost equality and output
    agreement.  Result keys: ``n_rounds``, ``server_player_bits``,
    ``two_party_bits``, the ``cost_exact`` / ``outputs_match`` verdicts
    and the Gap-Eq server-model lower bound for context.
    """
    rng = random.Random(seed)
    x = tuple(rng.randrange(2) for _ in range(input_bits))
    y = tuple(rng.randrange(2) for _ in range(input_bits))

    def carol_message(x_in, view, t):
        return (x_in[t % len(x_in)],)

    def david_message(y_in, view, t):
        return (y_in[t % len(y_in)],)

    def server_message(carol_sent, david_sent, t):
        xor = 0
        for bits in carol_sent + david_sent:
            for bit in bits:
                xor ^= bit
        return xor, xor

    protocol = StructuredServerProtocol(
        n_rounds=n_rounds,
        carol_message=carol_message,
        david_message=david_message,
        server_message=server_message,
        carol_output=lambda x_in, view: view[-1],
    )
    server = protocol.run(x, y)
    two_party = two_party_simulation_of_server(protocol, x, y)
    gap = gap_equality_lower_bound(max(8, input_bits))
    return {
        "n_rounds": n_rounds,
        "server_player_bits": server.carol_bits + server.david_bits,
        "two_party_bits": two_party.total_bits,
        "cost_exact": server.carol_bits + server.david_bits == two_party.total_bits,
        "outputs_match": repr(server.output) == repr(two_party.output),
        "gap_eq_server_lower_bound": gap["server_model_lower_bound"],
    }


@scenario(
    "verification-suite",
    description="Distributed verification of a spanning structure on a live CONGEST network",
    params=[
        ParamSpec("problem", str, "spanning tree", "verifier name (see VERIFIERS)"),
        ParamSpec("n", int, 40, "network size"),
        ParamSpec("extra_edge_prob", float, 0.1, "extra-edge density"),
        ParamSpec("bandwidth", int, 64, "CONGEST bandwidth B"),
    ],
    default_grid={"problem": ["spanning tree", "connectivity", "bipartiteness"]},
    tags=("verification", "congest"),
    plots=(
        PlotSpec(
            name="cost-by-problem",
            title="Verification cost by problem",
            x="problem",
            ys=("rounds", "total_bits"),
            kind="bar",
            logy=True,
            x_label="verifier",
            y_label="rounds / bits (log)",
        ),
    ),
)
def verification_suite(
    *, seed: int, problem: str, n: int, extra_edge_prob: float, bandwidth: int
) -> dict:
    """Corollary 3.7's verification problems run on a live network.

    Builds a random connected graph, takes its BFS tree as the candidate
    subgraph ``M`` and runs the named distributed verifier over CONGEST.
    Result keys: ``problem``, the ``verdict`` (True for a genuine
    spanning structure), ``rounds``, ``total_bits`` and
    ``total_messages``.
    """
    graph = random_connected_graph(n, extra_edge_prob=extra_edge_prob, seed=seed)
    tree = nx.bfs_tree(graph, source=min(graph.nodes())).to_undirected()
    m_edges = list(tree.edges())
    nodes = sorted(graph.nodes())
    kwargs: dict = {"s": nodes[0], "t": nodes[-1]}
    if problem in ("e-cycle containment", "edge on all paths"):
        kwargs = {"special_edge": m_edges[0]}
    verdict, run = run_verification(
        problem, graph, m_edges, bandwidth=bandwidth, seed=seed, **kwargs
    )
    return {
        "problem": problem,
        "verdict": bool(verdict),
        "rounds": run.rounds,
        "total_bits": run.total_bits,
        "total_messages": run.total_messages,
    }


@scenario(
    "chsh-gamma2",
    description="gamma_2^* alternating Tsirelson solver accuracy vs restarts on CHSH",
    params=[
        ParamSpec("restarts", int, 8, "random restarts of the alternating solver"),
        ParamSpec("iterations", int, 400, "alternating sweeps per restart"),
        ParamSpec("solver_seed", int, -1, "fixed solver seed; -1 = derive per point"),
    ],
    default_grid={"restarts": [1, 2, 4, 8]},
    tags=("gamma2", "nonlocal-games"),
    plots=(
        PlotSpec(
            name="error-vs-restarts",
            title="CHSH — solver error vs restarts",
            x="restarts",
            ys=("abs_error",),
            logy=True,
            x_label="random restarts",
            y_label="|bias - 1/sqrt(2)|",
        ),
        PlotSpec(
            name="bias-vs-restarts",
            title="CHSH — achieved bias vs the Tsirelson and classical values",
            x="restarts",
            ys=("bias", "target", "classical_bias"),
            x_label="random restarts",
            y_label="game bias",
        ),
    ),
)
def chsh_gamma2(*, seed: int, restarts: int, iterations: int, solver_seed: int) -> dict:
    """Section 6's gamma_2^* machinery on CHSH: solver accuracy sweep.

    The alternating Tsirelson-bound solver should approach the quantum
    bias 1/sqrt(2) as restarts grow (and must beat the classical bias
    3/4 - 1/2 scale).  Result keys: ``restarts``, ``bias``,
    ``classical_bias``, the ``target`` value and ``abs_error``.
    """
    game = chsh_game()
    target = 1.0 / math.sqrt(2.0)
    # A fixed solver_seed makes the bias monotone in restarts (the solver
    # keeps its best run over a shared rng stream prefix).
    bias = gamma2_dual(
        game.cost_matrix,
        restarts=restarts,
        iterations=iterations,
        seed=seed if solver_seed < 0 else solver_seed,
    )
    return {
        "restarts": restarts,
        "bias": bias,
        "classical_bias": game.classical_bias(),
        "target": target,
        "abs_error": abs(bias - target),
    }


@scenario(
    "gkp-cap-ablation",
    description="GKP fragment-size cap ablation: rounds and exactness vs cap",
    params=[
        ParamSpec("n", int, 100, "network size"),
        ParamSpec("cap", int, 10, "Phase A fragment-size cap (sqrt(n) is the paper's choice)"),
        ParamSpec("bandwidth", int, 128, "CONGEST bandwidth B"),
        ParamSpec("extra_edge_prob", float, 0.04, "extra-edge density"),
        ParamSpec("graph_seed", int, 21, "topology seed (fixed across the cap axis)"),
    ],
    default_grid={"cap": [3, 6, 10, 20, 40]},
    tags=("mst", "ablation"),
    plots=(
        PlotSpec(
            name="rounds-vs-cap",
            title="GKP — rounds vs Phase A fragment cap",
            x="cap",
            ys=("rounds",),
            logx=True,
            x_label="fragment-size cap",
            y_label="CONGEST rounds",
        ),
    ),
)
def gkp_cap_ablation(
    *, seed: int, n: int, cap: int, bandwidth: int, extra_edge_prob: float, graph_seed: int
) -> dict:
    """Ablation of GKP's Phase A fragment-size cap (paper picks sqrt(n)).

    Sweeps the cap on one fixed weighted instance; the returned tree must
    stay exact for every cap while the round count traces the Phase A /
    Phase B balance.  Result keys: ``cap``, ``rounds``, ``tree_weight``,
    ``reference_weight`` and the ``exact`` verdict.
    """
    graph = _weighted_graph(n, extra_edge_prob, graph_seed, weight_seed=graph_seed + 1)
    reference = sum(
        d["weight"] for _, _, d in nx.minimum_spanning_tree(graph).edges(data=True)
    )
    edges, result = run_gkp_mst(graph, bandwidth=bandwidth, cap=cap)
    weight = tree_weight(graph, edges)
    return {
        "cap": cap,
        "rounds": result.rounds,
        "tree_weight": weight,
        "reference_weight": reference,
        "exact": abs(weight - reference) < 1e-6,
    }


class _ChatterProgram(NodeProgram):
    """All-edges-every-round traffic for the full simulation horizon."""

    def __init__(self, horizon: int):
        self.horizon = horizon

    def on_start(self, node: Node) -> None:
        node.broadcast(("r", 0), bits=8)

    def on_round(self, node: Node, round_no: int, inbox) -> None:
        if round_no >= self.horizon:
            node.halt()
            return
        node.broadcast(("r", round_no), bits=8)


@scenario(
    "simulation-theorem",
    description="Theorem 3.5 measured: three-party simulation cost vs the 6kB/round budget",
    params=[
        ParamSpec("length", int, 17, "highway length L of N(Gamma, L)"),
        ParamSpec("n_paths", int, 4, "Gamma: number of paths"),
        ParamSpec("bandwidth", int, 8, "CONGEST bandwidth B"),
        ParamSpec("n_cycles", int, 2, "cycles in the Observation 8.1 embedding check"),
    ],
    default_grid={"length": [9, 17, 33, 65]},
    tags=("simulation-theorem", "congest", "figs8-13"),
    plots=(
        PlotSpec(
            name="cost-vs-length",
            title="Simulation theorem — three-party cost vs highway length",
            x="length",
            ys=("rounds", "player_bits", "server_bits"),
            logx=True,
            logy=True,
            x_label="highway length L",
            y_label="rounds / bits",
        ),
    ),
)
def simulation_theorem(
    *, seed: int, length: int, n_paths: int, bandwidth: int, n_cycles: int
) -> dict:
    """Theorem 3.5 measured on the N(Gamma, L) highway network.

    Simulates a worst-case all-edges chatter program for the full valid
    horizon and checks the accounting against the 6kB-per-round budget,
    the total bound, the logarithmic-diameter claim and (for even input
    sizes) the Observation 8.1 cycle embedding.  Result keys: ``length``,
    ``nodes``, ``diameter``, ``rounds``, ``player_bits``, ``server_bits``,
    ``per_round_bound`` and the ``within_*`` / ``diameter_logarithmic`` /
    ``observation_8_1`` verdicts.
    """
    net = SimulationTheoremNetwork(n_paths, length)
    horizon = net.schedule.valid_horizon()
    accounting = net.simulate(lambda: _ChatterProgram(horizon), bandwidth=bandwidth)
    diameter = nx.diameter(net.graph)
    size = net.input_graph_size
    if size % 2 == 0 and size >= 4:
        carol, david = matching_pair_for_cycles(
            size, max(1, min(n_cycles, size // 4)), seed=seed
        )
        observation_8_1 = net.check_observation_8_1(carol, david)
    else:
        # Perfect matchings need an even Gamma' = Gamma + k; odd sizes skip
        # the embedding check (the cost accounting above still runs).
        observation_8_1 = None
    return {
        "length": net.length,
        "nodes": net.graph.number_of_nodes(),
        "diameter": diameter,
        "rounds": accounting.rounds,
        "player_bits": accounting.cost,
        "server_bits": accounting.server_bits,
        "per_round_bound": accounting.per_round_bound,
        "within_per_round_bound": all(
            c <= accounting.per_round_bound for c in accounting.per_round_cost
        ),
        "within_total_bound": accounting.cost <= accounting.total_bound,
        "diameter_logarithmic": diameter <= 4 * math.log2(net.length) + 6,
        "observation_8_1": observation_8_1,
    }


@scenario(
    "spanner-skeleton",
    description="Elkin-Matar-style linear-size (2k-1)-spanner: stretch/size vs n on CONGEST",
    params=[
        ParamSpec("n", int, 60, "nodes in the live CONGEST network"),
        ParamSpec("stretch_k", int, 0, "spanner parameter k (0 = ceil(log2 n), linear size)"),
        ParamSpec("aspect_ratio", float, 32.0, "weight aspect ratio W"),
        ParamSpec("extra_edge_prob", float, 0.15, "extra-edge density of the random graph"),
        ParamSpec("bandwidth", int, 128, "CONGEST bandwidth B"),
        *ENGINE_PARAMS,
    ],
    default_grid={"n": [30, 60, 120]},
    tags=("spanner", "skeleton", "congest", "elkin-matar"),
    plots=(
        PlotSpec(
            name="size-vs-n",
            title="Spanner size vs the linear-size budget",
            x="n",
            ys=("spanner_edges", "m"),
            logx=True,
            logy=True,
            x_label="network size n",
            y_label="edges",
        ),
        PlotSpec(
            name="quiet-fraction",
            title="Event-engine quiet fraction of the dense schedule",
            x="n",
            ys=("quiet_fraction",),
            logx=True,
            x_label="network size n",
            y_label="fraction of n x rounds skipped",
        ),
    ),
)
def spanner_skeleton(
    *,
    seed: int,
    n: int,
    stretch_k: int,
    aspect_ratio: float,
    extra_edge_prob: float,
    bandwidth: int,
    engine: str,
    engine_threads: int,
) -> dict:
    """Greedy (2k-1)-spanner of a random weighted graph, built distributedly.

    At ``k = ceil(log2 n)`` the girth bound makes the spanner linear-size
    (< 2n edges) -- the skeleton regime of Elkin-Matar (arXiv:1907.10895).
    The phased CONGEST construction is mostly quiet by design, so the
    scenario also reports how much of the dense ``n x rounds`` schedule the
    active-set engines actually stepped.
    """
    graph = random_weighted_graph(
        n, aspect_ratio=aspect_ratio, extra_edge_prob=extra_edge_prob, seed=seed
    )
    k = stretch_k if stretch_k >= 1 else max(1, math.ceil(math.log2(n)))
    engine_obj = _resolve_engine(engine, engine_threads, graph)
    summary, run = run_linear_size_spanner(graph, k, bandwidth=bandwidth, engine=engine_obj)
    node_steps = getattr(engine_obj, "node_steps", None)
    dense_steps = n * run.rounds
    return {
        "n": n,
        "m": summary["m"],
        "k": k,
        "stretch_bound": 2 * k - 1,
        "spanner_edges": summary["spanner_edges"],
        "size_ratio": summary["spanner_edges"] / n,
        "linear_size": summary["spanner_edges"] < 2 * n,
        "max_stretch": summary["max_stretch"],
        "within_stretch": summary["max_stretch"] <= 2 * k - 1 + 1e-9,
        "rounds": run.rounds,
        "total_bits": run.total_bits,
        "node_steps": node_steps,
        "quiet_fraction": (
            1.0 - node_steps / dense_steps if node_steps is not None and dense_steps else None
        ),
    }


def _boruvka_instance(
    generator: str, weight_model: str, n: int, extra_edge_prob: float, aspect_ratio: float, seed: int
) -> nx.Graph:
    """A NetworkBuild-style MST instance: topology x weight-model product.

    Every node gets planar coordinates (lattice positions are jittered) so
    the ``euclidean`` weight model is tie-free almost surely -- Borůvka's
    fragment merging assumes distinct weights.
    """
    rng = random.Random(seed)
    graph: nx.Graph
    if generator == "random":
        graph = random_connected_graph(n, extra_edge_prob=extra_edge_prob, seed=seed)
        pos = {v: (rng.random() * 10, rng.random() * 10) for v in sorted(graph.nodes())}
    elif generator == "grid":
        side = max(2, math.isqrt(n))
        lattice = nx.grid_2d_graph(side, side)
        labels = {coord: i for i, coord in enumerate(sorted(lattice.nodes()))}
        graph = nx.relabel_nodes(lattice, labels)
        pos = {
            labels[(i, j)]: (i + rng.uniform(-0.3, 0.3), j + rng.uniform(-0.3, 0.3))
            for i, j in sorted(labels)
        }
    elif generator == "geometric":
        pos = {v: (rng.random() * 10, rng.random() * 10) for v in range(n)}
        # Grid-indexed kNN + closest-pair bridging: ~O(n * k) instead of
        # the old all-pairs scans, byte-identical instances (the spatial
        # index reproduces brute-force distance/tie order exactly).
        spatial = GridIndex(pos)
        graph = knn_geometric_graph(pos, k=3, index=spatial)
        connect_nearest_components(graph, pos, index=spatial)
    else:
        raise ValueError(f"unknown generator {generator!r}; known: random, grid, geometric")

    edges = sorted(graph.edges())
    if weight_model == "distinct":
        weights = rng.sample(range(1, 10 * len(edges) + 1), len(edges))
        for (u, v), w in zip(edges, weights):
            graph.edges[u, v]["weight"] = float(w)
    elif weight_model == "uniform":
        for u, v in edges:
            graph.edges[u, v]["weight"] = rng.uniform(1.0, aspect_ratio)
    elif weight_model == "euclidean":
        for u, v in edges:
            graph.edges[u, v]["weight"] = math.dist(pos[u], pos[v])
    else:
        raise ValueError(
            f"unknown weight model {weight_model!r}; known: distinct, uniform, euclidean"
        )
    return graph


@scenario(
    "boruvka-mst-sweep",
    description="NetworkBuild-style Boruvka MST sweeps over generator x weight-model grids",
    params=[
        ParamSpec("n", int, 64, "nodes in the live CONGEST network"),
        ParamSpec("generator", str, "random", "topology family: random|grid|geometric"),
        ParamSpec("weight_model", str, "distinct", "edge weights: distinct|uniform|euclidean"),
        ParamSpec("extra_edge_prob", float, 0.08, "extra-edge density (random generator)"),
        ParamSpec("aspect_ratio", float, 64.0, "weight aspect ratio W (uniform model)"),
        ParamSpec("bandwidth", int, 128, "CONGEST bandwidth B"),
        *ENGINE_PARAMS,
    ],
    default_grid={
        "generator": ["random", "grid", "geometric"],
        "weight_model": ["distinct", "euclidean"],
    },
    tags=("mst", "boruvka", "congest", "networkbuild"),
    plots=(
        PlotSpec(
            name="exactness",
            title="Borůvka exactness — distributed vs centralised MST weight",
            x="reference_weight",
            ys=("tree_weight",),
            kind="scatter",
            logx=True,
            logy=True,
            group_by="generator",
            x_label="centralised MST weight",
            y_label="distributed Borůvka weight",
        ),
        PlotSpec(
            name="rounds-by-topology",
            title="Borůvka rounds by topology and weight model",
            x="generator",
            ys=("rounds",),
            kind="bar",
            group_by="weight_model",
            x_label="topology family",
            y_label="CONGEST rounds",
        ),
    ),
)
def boruvka_mst_sweep(
    *,
    seed: int,
    n: int,
    generator: str,
    weight_model: str,
    extra_edge_prob: float,
    aspect_ratio: float,
    bandwidth: int,
    engine: str,
    engine_threads: int,
) -> dict:
    """Distributed Borůvka over SEL-Columbia/NetworkBuild-style instances.

    The classic homogeneous CONGEST workload: every live node participates
    in every announce/flood/merge sub-round, which is exactly the active-set
    shape the thread-sharded engine targets.  Exactness is checked against
    the centralised MST weight (all minimum spanning trees share it, so the
    check is tie-safe).
    """
    graph = _boruvka_instance(generator, weight_model, n, extra_edge_prob, aspect_ratio, seed)
    reference = sum(
        d["weight"] for _, _, d in nx.minimum_spanning_tree(graph).edges(data=True)
    )
    engine_obj = _resolve_engine(engine, engine_threads, graph)
    edges, run = run_boruvka_mst(graph, bandwidth=bandwidth, seed=seed, engine=engine_obj)
    weight = tree_weight(graph, edges)
    return {
        "n": graph.number_of_nodes(),
        "m": graph.number_of_edges(),
        "generator": generator,
        "weight_model": weight_model,
        "engine": engine,
        "tree_edges": len(edges),
        "tree_weight": weight,
        "reference_weight": reference,
        "exact": abs(weight - reference) < 1e-9,
        "rounds": run.rounds,
        "total_bits": run.total_bits,
        "total_messages": run.total_messages,
        "node_steps": getattr(engine_obj, "node_steps", None),
    }


@scenario(
    "gadget-reductions",
    description="Section 7 gadget reductions: IPmod3->Ham and Gap-Eq->Gap-Ham soundness and blowup",
    params=[
        ParamSpec("n", int, 64, "input bits per player"),
        ParamSpec("trials", int, 20, "random instances checked per point"),
        ParamSpec("beta", float, 0.125, "gap parameter for the far-instance cycle check"),
    ],
    default_grid={"n": [8, 32, 128, 512]},
    tags=("gadgets", "reductions", "figs4-7"),
    plots=(
        PlotSpec(
            name="blowup-vs-n",
            title="Gadget reductions — node blowup factor vs input size",
            x="n",
            ys=("ipmod3_blowup", "gap_eq_blowup"),
            logx=True,
            x_label="input bits n",
            y_label="gadget nodes per input bit",
        ),
        PlotSpec(
            name="far-cycles",
            title="Gap structure — cycles on far instances vs input size",
            x="n",
            ys=("far_instance_cycles",),
            logx=True,
            logy=True,
            x_label="input bits n",
            y_label="Hamiltonian-cycle count",
        ),
    ),
)
def gadget_reductions(*, seed: int, n: int, trials: int, beta: float) -> dict:
    """Section 7's gadget reductions, soundness-checked on random inputs.

    Exercises the IPmod3 -> Hamiltonicity and Gap-Eq -> Gap-Ham gadget
    constructions: a reduction is *sound* when the gadget graph is
    Hamiltonian exactly for yes-instances, and far Gap-Eq instances must
    shatter into Omega(n) cycles.  Result keys: ``n``, the
    ``ipmod3_sound`` / ``gap_eq_sound`` / ``far_cycles_linear`` verdicts,
    the gadget sizes and their per-input-bit ``*_blowup`` factors.
    """
    rng = random.Random(seed)
    ip_sound = 0
    for _ in range(trials):
        x = tuple(rng.randrange(2) for _ in range(n))
        y = tuple(rng.randrange(2) for _ in range(n))
        instance = ipmod3_to_ham(x, y)
        ip_sound += instance.is_hamiltonian() == (ipmod3_value(x, y) == 0)
    ip_nodes = instance.n_nodes

    gap_sound = 0
    for _ in range(trials):
        x = [rng.randrange(2) for _ in range(n)]
        y = list(x)
        delta = rng.randrange(0, max(1, n // 2))
        for i in rng.sample(range(n), delta):
            y[i] ^= 1
        gap_instance = gap_eq_to_ham(x, y)
        d = gap_eq_mismatch_count(x, y)
        ok = gap_instance.is_hamiltonian() == (d == 0)
        if d > 0:
            ok = ok and gap_instance.cycle_count() == d + 1
        gap_sound += ok
    gap_nodes = gap_instance.n_nodes

    # The gap structure: inputs at distance > 2 beta n give Omega(n) cycles.
    x = [rng.randrange(2) for _ in range(n)]
    y = list(x)
    flips = min(n, int(2 * beta * n) + 1)
    for i in rng.sample(range(n), flips):
        y[i] ^= 1
    far_cycles = gap_eq_to_ham(x, y).cycle_count()
    return {
        "n": n,
        "trials": trials,
        "ipmod3_sound": ip_sound == trials,
        "ipmod3_nodes": ip_nodes,
        "ipmod3_blowup": ip_nodes / n,
        "gap_eq_sound": gap_sound == trials,
        "gap_eq_nodes": gap_nodes,
        "gap_eq_blowup": gap_nodes / n,
        "far_instance_cycles": far_cycles,
        "far_cycles_linear": far_cycles >= beta * n,
    }


@scenario(
    "quantum-substrate",
    description="Quantum substrate validation: teleportation, Holevo, fingerprints, Grover",
    params=[
        ParamSpec("check", str, "teleportation", "one of teleportation|holevo|fingerprint|grover"),
        ParamSpec("trials", int, 20, "random repetitions (teleportation/holevo)"),
        ParamSpec("size", int, 256, "problem size n (fingerprint/grover)"),
    ],
    default_grid={"check": ["teleportation", "holevo", "fingerprint", "grover"]},
    tags=("quantum", "substrate"),
    plots=(
        PlotSpec(
            name="metric-by-check",
            title="Quantum substrate — validation metric per check",
            x="check",
            ys=("metric",),
            kind="bar",
            x_label="substrate check",
            y_label="check-specific metric",
        ),
    ),
)
def quantum_substrate(*, seed: int, check: str, trials: int, size: int) -> dict:
    """Validation sweeps over the statevector quantum substrate.

    One check per grid point: teleportation fidelity (metric = worst
    fidelity, must be ~1), the Holevo bound on 4-state ensembles (metric
    = worst margin, must be >= 0), fingerprint qubit growth (metric =
    qubits, must be O(log n)) and Grover query scaling (metric = queries,
    must be O(sqrt n)).  Result keys: ``check``, ``metric`` and the
    ``passed`` verdict.
    """
    import numpy as np

    from repro.quantum.fingerprint import FingerprintEquality
    from repro.quantum.grover import grover_find_any, optimal_grover_iterations
    from repro.quantum.holevo import holevo_bound
    from repro.quantum.state import QuantumState
    from repro.quantum.teleportation import teleport

    gen = np.random.default_rng(seed)
    rng = random.Random(seed)
    if check == "teleportation":
        worst = 1.0
        for _ in range(trials):
            vec = gen.standard_normal(2) + 1j * gen.standard_normal(2)
            state = QuantumState(1, vec / np.linalg.norm(vec))
            received, bits = teleport(state.copy(), rng=rng)
            worst = min(worst, received.fidelity(state))
            assert len(bits) == 2
        return {"check": check, "metric": worst, "passed": worst > 1 - 1e-9}
    if check == "holevo":
        worst_margin = float("inf")
        for _ in range(trials):
            states = []
            for _ in range(4):
                v = gen.standard_normal(2) + 1j * gen.standard_normal(2)
                v /= np.linalg.norm(v)
                states.append(np.outer(v, v.conj()))
            chi = holevo_bound([0.25] * 4, states)
            worst_margin = min(worst_margin, 1.0 - chi)
        return {"check": check, "metric": worst_margin, "passed": worst_margin >= -1e-9}
    if check == "fingerprint":
        small = FingerprintEquality(max(4, size // 16), seed=seed).fingerprint_qubits
        large = FingerprintEquality(size, seed=seed).fingerprint_qubits
        # O(log n): a 16x input blowup adds O(1) qubits.
        return {"check": check, "metric": large, "passed": large <= small + 6}
    if check == "grover":
        marked = {rng.randrange(size)}
        _, queries = grover_find_any(lambda i: i in marked, size, rng=rng)
        optimal = optimal_grover_iterations(size, 1)
        # sqrt scaling with generous slack for the exponential-guessing loop.
        return {
            "check": check,
            "metric": queries,
            "optimal_single_run": optimal,
            "passed": queries <= 10 * max(1, optimal),
        }
    raise ValueError(f"unknown quantum-substrate check {check!r}")


#: Fault-model axes shared by the fault/self-stabilization scenario family
#: (ISSUE 10): the probabilistic message faults plus the decision seed.
#: Crash and churn axes are scenario-specific and declared per scenario.
FAULT_PARAMS = (
    ParamSpec("fault_seed", int, 0, "fault-plan decision seed (hash-deterministic)"),
    ParamSpec("drop_prob", float, 0.05, "per-message wire drop probability"),
    ParamSpec("dup_prob", float, 0.0, "per-message duplication probability"),
    ParamSpec("reorder_prob", float, 0.0, "per-edge adjacent-swap reorder probability"),
    ParamSpec("fault_window", int, 40, "last round (inclusive) at which message faults fire"),
)


@scenario(
    "mst-under-faults",
    description="Boruvka MST under drops and crash spans: restart recovery vs centralized MST",
    params=[
        ParamSpec("n", int, 28, "nodes in the live CONGEST network"),
        ParamSpec("extra_edge_prob", float, 0.15, "extra-edge density of the random graph"),
        ParamSpec("bandwidth", int, 64, "CONGEST bandwidth B"),
        ParamSpec("n_crashes", int, 1, "nodes given a crash+recovery span"),
        ParamSpec("crash_length", int, 8, "rounds each crashed node stays down"),
        ParamSpec("round_budget", int, 4000, "round budget for the faulted attempt"),
        *FAULT_PARAMS,
        *ENGINE_PARAMS,
    ],
    default_grid={"drop_prob": [0.0, 0.02, 0.05, 0.1]},
    tags=("faults", "mst", "congest", "self-stabilization"),
    plots=(
        PlotSpec(
            name="recovery-rounds",
            title="Rounds to a correct MST, with and without faults",
            x="drop_prob",
            ys=("rounds_clean", "rounds_to_recover"),
            x_label="drop probability",
            y_label="rounds",
        ),
        PlotSpec(
            name="bit-overhead",
            title="Bit overhead of recovering under faults",
            x="drop_prob",
            ys=("bit_overhead",),
            x_label="drop probability",
            y_label="total bits / fault-free bits",
        ),
    ),
)
def mst_under_faults(
    *,
    seed: int,
    n: int,
    extra_edge_prob: float,
    bandwidth: int,
    n_crashes: int,
    crash_length: int,
    round_budget: int,
    fault_seed: int,
    drop_prob: float,
    dup_prob: float,
    reorder_prob: float,
    fault_window: int,
    engine: str,
    engine_threads: int,
) -> dict:
    """Boruvka fragment merging is not self-stabilising: a dropped merge
    message stalls its fragment forever.  The honest recovery protocol is
    detect-and-restart -- attempt under the fault plan, validate the result
    against the centralized MST (unique, by distinct weights), and restart
    fault-free if the attempt stalled or answered wrongly.  Reported:
    rounds/bits to a *correct* tree vs the fault-free baseline.
    """
    graph = _weighted_graph(n, extra_edge_prob, graph_seed=seed, weight_seed=seed + 1)
    engine_obj = _resolve_engine(engine, engine_threads, graph)
    clean_edges, clean = run_boruvka_mst(graph, bandwidth=bandwidth, engine=engine_obj)
    expected = {frozenset(e) for e in nx.minimum_spanning_tree(graph).edges()}
    assert clean_edges == expected, "fault-free Boruvka diverged from the centralized MST"

    plan = FaultPlan.generate(
        graph,
        seed=fault_seed,
        drop_prob=drop_prob,
        dup_prob=dup_prob,
        reorder_prob=reorder_prob,
        n_crashes=n_crashes,
        crash_length=crash_length,
        window=(1, fault_window),
    )
    faulted_engine = _resolve_engine(engine, engine_threads, graph)
    faulted_edges, faulted = run_boruvka_mst(
        graph, bandwidth=bandwidth, engine=faulted_engine, faults=plan, max_rounds=round_budget
    )
    correct_first_try = faulted.halted and faulted_edges == expected
    total_rounds = faulted.rounds
    total_bits = faulted.total_bits
    if not correct_first_try:
        # Detect-and-restart: rerun fault-free once the faults subside.
        restart_edges, restart = run_boruvka_mst(
            graph, bandwidth=bandwidth, engine=_resolve_engine(engine, engine_threads, graph)
        )
        assert restart_edges == expected, "restarted Boruvka diverged from the centralized MST"
        total_rounds += restart.rounds
        total_bits += restart.total_bits
    last_fault = plan.last_fault_round() or 0
    stats = getattr(faulted, "fault_stats", None)
    return {
        "n": n,
        "m": graph.number_of_edges(),
        "rounds_clean": clean.rounds,
        "bits_clean": clean.total_bits,
        "rounds_faulted_attempt": faulted.rounds,
        "halted_under_faults": faulted.halted,
        "correct_first_try": correct_first_try,
        "restarted": not correct_first_try,
        "rounds_total": total_rounds,
        "rounds_to_recover": max(0, total_rounds - last_fault),
        "last_fault_round": last_fault,
        "bit_overhead": total_bits / clean.total_bits if clean.total_bits else None,
        "recovered_weight": tree_weight(graph, expected),
        "correct_after_recovery": True,
        **(stats or {}),
    }


@scenario(
    "bfs-restabilization",
    description="Refreshing Bellman-Ford re-converging after drops, crashes and edge inserts",
    params=[
        ParamSpec("n", int, 32, "nodes in the live CONGEST network"),
        ParamSpec("extra_edge_prob", float, 0.12, "extra-edge density of the random graph"),
        ParamSpec("bandwidth", int, 128, "CONGEST bandwidth B"),
        ParamSpec("refresh_every", int, 4, "rounds between distance re-announcements"),
        ParamSpec("n_crashes", int, 2, "nodes given a crash+recovery span"),
        ParamSpec("crash_length", int, 10, "rounds each crashed node stays down"),
        ParamSpec("n_edge_inserts", int, 2, "edges inserted mid-run (insert-only churn)"),
        ParamSpec("settle_rounds", int, 80, "measurement horizon past the last fault"),
        *FAULT_PARAMS,
        *ENGINE_PARAMS,
    ],
    default_grid={"drop_prob": [0.0, 0.05, 0.1, 0.2]},
    tags=("faults", "bfs", "congest", "self-stabilization"),
    plots=(
        PlotSpec(
            name="restabilization",
            title="Rounds from the last fault to the last distance change",
            x="drop_prob",
            ys=("rounds_to_restabilize",),
            x_label="drop probability",
            y_label="rounds to restabilize",
        ),
        PlotSpec(
            name="bit-overhead",
            title="Bit overhead of the faulted run at the same horizon",
            x="drop_prob",
            ys=("bit_overhead",),
            x_label="drop probability",
            y_label="faulted bits / fault-free bits",
        ),
    ),
)
def bfs_restabilization(
    *,
    seed: int,
    n: int,
    extra_edge_prob: float,
    bandwidth: int,
    refresh_every: int,
    n_crashes: int,
    crash_length: int,
    n_edge_inserts: int,
    settle_rounds: int,
    fault_seed: int,
    drop_prob: float,
    dup_prob: float,
    reorder_prob: float,
    fault_window: int,
    engine: str,
    engine_threads: int,
) -> dict:
    """The genuinely self-stabilising member of the family: periodic
    refresh broadcasts heal drops, duplicate/reorder noise, crash naps and
    insert-only churn without any restart.  Correctness is exact BFS
    distances on the post-churn graph (centralized recompute);
    rounds-to-restabilize is the last distance change after the last
    scheduled fault.
    """
    graph = random_connected_graph(n, extra_edge_prob=extra_edge_prob, seed=seed)
    source = min(graph.nodes(), key=repr)
    plan = FaultPlan.generate(
        graph,
        seed=fault_seed,
        drop_prob=drop_prob,
        dup_prob=dup_prob,
        reorder_prob=reorder_prob,
        n_crashes=n_crashes,
        crash_length=crash_length,
        n_edge_inserts=n_edge_inserts,
        window=(1, fault_window),
        protect=[source],
    )
    last_fault = plan.last_fault_round() or 0
    horizon = last_fault + settle_rounds

    clean_distances, clean = run_refreshing_bellman_ford(
        graph,
        source,
        bandwidth=bandwidth,
        weighted=False,
        max_rounds=horizon,
        refresh_every=refresh_every,
        engine=_resolve_engine(engine, engine_threads, graph),
    )
    distances, faulted = run_refreshing_bellman_ford(
        graph,
        source,
        bandwidth=bandwidth,
        weighted=False,
        max_rounds=horizon,
        refresh_every=refresh_every,
        engine=_resolve_engine(engine, engine_threads, graph),
        faults=plan,
    )
    expected = nx.single_source_shortest_path_length(plan.final_graph(graph), source)
    correct = all(
        distances.get(node) == float(dist) for node, dist in expected.items()
    ) and len(distances) == len(expected)
    last_change = max(out[2] for out in faulted.outputs.values())
    return {
        "n": n,
        "m": graph.number_of_edges(),
        "horizon": horizon,
        "last_fault_round": last_fault,
        "rounds_to_restabilize": max(0, last_change - last_fault),
        "last_change_round": last_change,
        "restabilized": correct,
        "bits_clean": clean.total_bits,
        "bits_faulted": faulted.total_bits,
        "bit_overhead": faulted.total_bits / clean.total_bits if clean.total_bits else None,
        "clean_converged": all(
            clean_distances.get(node) == float(dist)
            for node, dist in nx.single_source_shortest_path_length(graph, source).items()
        ),
    }


@scenario(
    "spanner-churn",
    description="Centralised (2k-1)-spanner under edge churn: stale-skeleton detection and rebuild",
    params=[
        ParamSpec("n", int, 32, "nodes in the live CONGEST network"),
        ParamSpec("extra_edge_prob", float, 0.2, "extra-edge density of the random graph"),
        ParamSpec("stretch_k", int, 0, "spanner parameter k (0 = ceil(log2 n))"),
        ParamSpec("bandwidth", int, 128, "CONGEST bandwidth B"),
        ParamSpec("churn_events", int, 2, "edge deletions and insertions each, mid-run"),
        ParamSpec("round_budget", int, 6000, "round budget for the churned attempt"),
        *FAULT_PARAMS,
        *ENGINE_PARAMS,
    ],
    default_grid={"churn_events": [0, 1, 2, 4]},
    tags=("faults", "spanner", "congest", "elkin-matar", "self-stabilization"),
    plots=(
        PlotSpec(
            name="rebuild-rounds",
            title="Rounds to a spanner of the post-churn graph",
            x="churn_events",
            ys=("rounds_total", "rounds_clean"),
            x_label="churn events (deletes + inserts each)",
            y_label="rounds",
        ),
        PlotSpec(
            name="bit-overhead",
            title="Bit overhead of churn recovery",
            x="churn_events",
            ys=("bit_overhead",),
            x_label="churn events",
            y_label="total bits / fault-free bits",
        ),
    ),
)
def spanner_churn(
    *,
    seed: int,
    n: int,
    extra_edge_prob: float,
    stretch_k: int,
    bandwidth: int,
    churn_events: int,
    round_budget: int,
    fault_seed: int,
    drop_prob: float,
    dup_prob: float,
    reorder_prob: float,
    fault_window: int,
    engine: str,
    engine_threads: int,
) -> dict:
    """The pipelined-centralisation spanner snapshots the graph at upcast
    time, so churn after the snapshot leaves the broadcast skeleton stale.
    The scenario detects staleness (or outright failure) by comparing the
    answer's edge list against the greedy spanner of the post-churn graph,
    rebuilds on the settled topology when needed, and reports the rounds
    and bits to a skeleton that is correct for the network as it now is.
    """
    graph = _weighted_graph(n, extra_edge_prob, graph_seed=seed, weight_seed=seed + 1)
    k = stretch_k if stretch_k >= 1 else max(1, math.ceil(math.log2(n)))
    clean_summary, clean = run_linear_size_spanner(
        graph,
        k,
        bandwidth=bandwidth,
        engine=_resolve_engine(engine, engine_threads, graph),
        include_edges=True,
    )
    plan = FaultPlan.generate(
        graph,
        seed=fault_seed,
        drop_prob=drop_prob,
        dup_prob=dup_prob,
        reorder_prob=reorder_prob,
        n_edge_deletes=churn_events,
        n_edge_inserts=churn_events,
        window=(1, fault_window),
        insert_weight_range=(1.0, 10.0 * graph.number_of_edges()),
    )
    churned_summary, churned = run_linear_size_spanner(
        graph,
        k,
        bandwidth=bandwidth,
        engine=_resolve_engine(engine, engine_threads, graph),
        max_rounds=round_budget,
        faults=plan,
        include_edges=True,
    )
    final = plan.final_graph(graph)
    expected_spanner = greedy_spanner(nx.relabel_nodes(final, {v: repr(v) for v in final}), k)
    expected_edges = sorted((u, v) if u < v else (v, u) for u, v in expected_spanner.edges())

    failed = churned_summary is None
    stale = not failed and churned_summary.get("edges") != expected_edges
    total_rounds = churned.rounds
    total_bits = churned.total_bits
    rebuilt = failed or stale
    if rebuilt:
        # Rebuild on the settled topology (the network as churn left it).
        rebuilt_summary, rebuild = run_linear_size_spanner(
            final,
            k,
            bandwidth=bandwidth,
            engine=_resolve_engine(engine, engine_threads, final),
            include_edges=True,
        )
        assert rebuilt_summary["edges"] == expected_edges, (
            "rebuilt spanner diverged from the centralized recompute"
        )
        total_rounds += rebuild.rounds
        total_bits += rebuild.total_bits
    return {
        "n": n,
        "m": graph.number_of_edges(),
        "m_final": final.number_of_edges(),
        "k": k,
        "rounds_clean": clean.rounds,
        "bits_clean": clean.total_bits,
        "rounds_churned_attempt": churned.rounds,
        "failed_under_churn": failed,
        "stale_skeleton": stale,
        "rebuilt": rebuilt,
        "rounds_total": total_rounds,
        "rounds_to_restabilize": max(0, total_rounds - (plan.last_fault_round() or 0)),
        "bit_overhead": total_bits / clean.total_bits if clean.total_bits else None,
        "spanner_edges": len(expected_edges),
        "linear_size": len(expected_edges) < 2 * n,
        "correct_after_recovery": True,
    }
