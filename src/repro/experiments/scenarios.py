"""Built-in scenario registrations spanning the repo's layers.

Each scenario is a pure function of ``(seed, **params) -> dict`` whose
randomness derives entirely from the seed, so a sweep point is fully
identified by its cache key.  The benchmark scripts under ``benchmarks/``
are thin wrappers over these registrations -- the sweep logic lives here.
"""

from __future__ import annotations

import math
import random

import networkx as nx

from repro.algorithms.disjointness import (
    run_classical_disjointness,
    run_quantum_disjointness,
)
from repro.algorithms.elkin import run_elkin_approx_mst
from repro.algorithms.mst import run_gkp_mst, tree_weight
from repro.algorithms.verification import run_verification
from repro.congest.topology import dumbbell_graph
from repro.core.bounds import fig2_table, fig3_curve
from repro.core.fooling import gap_equality_lower_bound
from repro.core.gamma2 import gamma2_dual
from repro.core.nonlocal_games import chsh_game
from repro.core.server_model import StructuredServerProtocol, two_party_simulation_of_server
from repro.experiments.registry import ParamSpec, scenario
from repro.graphs.generators import random_connected_graph


def _weighted_graph(n: int, extra_edge_prob: float, graph_seed: int, weight_seed: int) -> nx.Graph:
    """Random connected graph with distinct positive integer weights."""
    graph = random_connected_graph(n, extra_edge_prob=extra_edge_prob, seed=graph_seed)
    rng = random.Random(weight_seed)
    weights = rng.sample(range(1, 10 * graph.number_of_edges() + 1), graph.number_of_edges())
    for (u, v), w in zip(graph.edges(), weights):
        graph.edges[u, v]["weight"] = float(w)
    return graph


@scenario(
    "fig3-mst-tradeoff",
    description="Fig. 3 measured: Elkin-mode staged flood vs exact GKP MST rounds vs W",
    params=[
        ParamSpec("n", int, 60, "nodes in the live CONGEST network"),
        ParamSpec("aspect_ratio", float, 1024.0, "weight aspect ratio W"),
        ParamSpec("alpha", float, 2.0, "Elkin approximation factor"),
        ParamSpec("bandwidth", int, 128, "CONGEST bandwidth B for the GKP run"),
        ParamSpec("extra_edge_prob", float, 0.08, "extra-edge density of the random graph"),
        ParamSpec("graph_seed", int, 17, "topology seed (fixed across the W axis)"),
    ],
    default_grid={"aspect_ratio": [2.0, 32.0, 256.0, 1024.0, 8192.0]},
    tags=("mst", "congest", "fig3"),
)
def fig3_mst_tradeoff(
    *,
    seed: int,
    n: int,
    aspect_ratio: float,
    alpha: float,
    bandwidth: int,
    extra_edge_prob: float,
    graph_seed: int,
) -> dict:
    graph = random_connected_graph(n, extra_edge_prob=extra_edge_prob, seed=graph_seed)
    rng = random.Random(seed)
    w = aspect_ratio
    for u, v in graph.edges():
        graph.edges[u, v]["weight"] = rng.uniform(1.0, w) if w > 1 else 1.0
    edges = list(graph.edges())
    # Pin the extremes so the realised aspect ratio is exactly W.
    graph.edges[edges[0]]["weight"] = 1.0
    graph.edges[edges[-1]]["weight"] = float(w)

    _, elkin = run_elkin_approx_mst(graph, alpha=alpha)
    _, gkp = run_gkp_mst(graph, bandwidth=bandwidth)
    formula = fig3_curve(n, alpha, [w])[0]
    return {
        "W": w,
        "elkin_rounds": elkin.rounds,
        "gkp_rounds": gkp.rounds,
        "combined_rounds": min(elkin.rounds, gkp.rounds),
        "formula_lower_bound": formula["lower_bound"],
        "formula_upper_bound": formula["upper_bound"],
    }


@scenario(
    "example11-disjointness",
    description="Example 1.1: quantum vs classical Disjointness rounds on the dumbbell",
    params=[
        ParamSpec("b", int, 64, "instance size (bits per player)"),
        ParamSpec("bandwidth", int, 8, "CONGEST bandwidth B"),
        ParamSpec("clique_size", int, 3, "dumbbell clique size"),
        ParamSpec("path_length", int, 4, "dumbbell connecting-path length"),
        ParamSpec("instance_seed", int, -1, "fixed (x, y) instance seed; -1 = derive per point"),
    ],
    default_grid={"b": [16, 64, 256]},
    tags=("disjointness", "quantum", "congest"),
)
def example11_disjointness(
    *, seed: int, b: int, bandwidth: int, clique_size: int, path_length: int, instance_seed: int
) -> dict:
    graph = dumbbell_graph(clique_size, path_length)
    u, v = ("L", 1), ("R", 1)
    # A non-negative instance_seed pins the (x, y) instance across an axis
    # sweep (e.g. varying bandwidth), isolating the swept parameter.
    rng = random.Random(seed if instance_seed < 0 else instance_seed)
    x = tuple(rng.randrange(2) for _ in range(b))
    y = tuple(0 if a else rng.randrange(2) for a in x)  # disjoint instance
    classical_verdict, classical = run_classical_disjointness(
        graph, u, v, x, y, bandwidth=bandwidth
    )
    quantum_verdict, quantum, queries = run_quantum_disjointness(
        graph, u, v, x, y, bandwidth=bandwidth, seed=seed
    )
    return {
        "b": b,
        "classical_rounds": classical.rounds,
        "quantum_rounds": quantum.rounds,
        "grover_queries": queries,
        "classical_verdict": classical_verdict,
        "quantum_verdict": quantum_verdict,
    }


@scenario(
    "fig2-bound-table",
    description="Fig. 2: previous-vs-new lower-bound table at concrete parameters",
    params=[
        ParamSpec("n", int, 10_000, "network size"),
        ParamSpec("bandwidth", int, 14, "CONGEST bandwidth B (~ log2 n)"),
        ParamSpec("aspect_ratio", float, 1024.0, "weight aspect ratio W"),
        ParamSpec("alpha", float, 2.0, "approximation factor"),
    ],
    default_grid={"n": [1_000, 10_000, 100_000]},
    tags=("bounds", "fig2"),
)
def fig2_bound_table(*, seed: int, n: int, bandwidth: int, aspect_ratio: float, alpha: float) -> dict:
    rows = fig2_table(n, bandwidth, aspect_ratio=aspect_ratio, alpha=alpha)
    return {
        "n": n,
        "n_rows": len(rows),
        "verification_bound": next(r.new_value for r in rows if r.category == "verification"),
        "optimization_bound": next(r.new_value for r in rows if r.category == "optimization"),
        "rows": [
            {
                "problem": r.problem,
                "category": r.category,
                "previous_value": r.previous_value,
                "new_value": r.new_value,
            }
            for r in rows
        ],
    }


@scenario(
    "server-model-equivalence",
    description="Section 3.1: two-party simulation of a structured Server protocol is cost-exact",
    params=[
        ParamSpec("n_rounds", int, 8, "rounds of the streamed-XOR server protocol"),
        ParamSpec("input_bits", int, 16, "bits per player"),
    ],
    default_grid={"n_rounds": [2, 8, 32]},
    tags=("server-model", "bounds"),
)
def server_model_equivalence(*, seed: int, n_rounds: int, input_bits: int) -> dict:
    rng = random.Random(seed)
    x = tuple(rng.randrange(2) for _ in range(input_bits))
    y = tuple(rng.randrange(2) for _ in range(input_bits))

    def carol_message(x_in, view, t):
        return (x_in[t % len(x_in)],)

    def david_message(y_in, view, t):
        return (y_in[t % len(y_in)],)

    def server_message(carol_sent, david_sent, t):
        xor = 0
        for bits in carol_sent + david_sent:
            for bit in bits:
                xor ^= bit
        return xor, xor

    protocol = StructuredServerProtocol(
        n_rounds=n_rounds,
        carol_message=carol_message,
        david_message=david_message,
        server_message=server_message,
        carol_output=lambda x_in, view: view[-1],
    )
    server = protocol.run(x, y)
    two_party = two_party_simulation_of_server(protocol, x, y)
    gap = gap_equality_lower_bound(max(8, input_bits))
    return {
        "n_rounds": n_rounds,
        "server_player_bits": server.carol_bits + server.david_bits,
        "two_party_bits": two_party.total_bits,
        "cost_exact": server.carol_bits + server.david_bits == two_party.total_bits,
        "outputs_match": repr(server.output) == repr(two_party.output),
        "gap_eq_server_lower_bound": gap["server_model_lower_bound"],
    }


@scenario(
    "verification-suite",
    description="Distributed verification of a spanning structure on a live CONGEST network",
    params=[
        ParamSpec("problem", str, "spanning tree", "verifier name (see VERIFIERS)"),
        ParamSpec("n", int, 40, "network size"),
        ParamSpec("extra_edge_prob", float, 0.1, "extra-edge density"),
        ParamSpec("bandwidth", int, 64, "CONGEST bandwidth B"),
    ],
    default_grid={"problem": ["spanning tree", "connectivity", "bipartiteness"]},
    tags=("verification", "congest"),
)
def verification_suite(
    *, seed: int, problem: str, n: int, extra_edge_prob: float, bandwidth: int
) -> dict:
    graph = random_connected_graph(n, extra_edge_prob=extra_edge_prob, seed=seed)
    tree = nx.bfs_tree(graph, source=min(graph.nodes())).to_undirected()
    m_edges = list(tree.edges())
    nodes = sorted(graph.nodes())
    kwargs: dict = {"s": nodes[0], "t": nodes[-1]}
    if problem in ("e-cycle containment", "edge on all paths"):
        kwargs = {"special_edge": m_edges[0]}
    verdict, run = run_verification(
        problem, graph, m_edges, bandwidth=bandwidth, seed=seed, **kwargs
    )
    return {
        "problem": problem,
        "verdict": bool(verdict),
        "rounds": run.rounds,
        "total_bits": run.total_bits,
        "total_messages": run.total_messages,
    }


@scenario(
    "chsh-gamma2",
    description="gamma_2^* alternating Tsirelson solver accuracy vs restarts on CHSH",
    params=[
        ParamSpec("restarts", int, 8, "random restarts of the alternating solver"),
        ParamSpec("iterations", int, 400, "alternating sweeps per restart"),
        ParamSpec("solver_seed", int, -1, "fixed solver seed; -1 = derive per point"),
    ],
    default_grid={"restarts": [1, 2, 4, 8]},
    tags=("gamma2", "nonlocal-games"),
)
def chsh_gamma2(*, seed: int, restarts: int, iterations: int, solver_seed: int) -> dict:
    game = chsh_game()
    target = 1.0 / math.sqrt(2.0)
    # A fixed solver_seed makes the bias monotone in restarts (the solver
    # keeps its best run over a shared rng stream prefix).
    bias = gamma2_dual(
        game.cost_matrix,
        restarts=restarts,
        iterations=iterations,
        seed=seed if solver_seed < 0 else solver_seed,
    )
    return {
        "restarts": restarts,
        "bias": bias,
        "classical_bias": game.classical_bias(),
        "target": target,
        "abs_error": abs(bias - target),
    }


@scenario(
    "gkp-cap-ablation",
    description="GKP fragment-size cap ablation: rounds and exactness vs cap",
    params=[
        ParamSpec("n", int, 100, "network size"),
        ParamSpec("cap", int, 10, "Phase A fragment-size cap (sqrt(n) is the paper's choice)"),
        ParamSpec("bandwidth", int, 128, "CONGEST bandwidth B"),
        ParamSpec("extra_edge_prob", float, 0.04, "extra-edge density"),
        ParamSpec("graph_seed", int, 21, "topology seed (fixed across the cap axis)"),
    ],
    default_grid={"cap": [3, 6, 10, 20, 40]},
    tags=("mst", "ablation"),
)
def gkp_cap_ablation(
    *, seed: int, n: int, cap: int, bandwidth: int, extra_edge_prob: float, graph_seed: int
) -> dict:
    graph = _weighted_graph(n, extra_edge_prob, graph_seed, weight_seed=graph_seed + 1)
    reference = sum(
        d["weight"] for _, _, d in nx.minimum_spanning_tree(graph).edges(data=True)
    )
    edges, result = run_gkp_mst(graph, bandwidth=bandwidth, cap=cap)
    weight = tree_weight(graph, edges)
    return {
        "cap": cap,
        "rounds": result.rounds,
        "tree_weight": weight,
        "reference_weight": reference,
        "exact": abs(weight - reference) < 1e-6,
    }
