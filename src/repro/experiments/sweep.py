"""Grid expansion and per-point seed derivation.

A sweep is the cartesian product of parameter axes, replicated
``replicates`` times.  Every point gets a seed derived by hashing
(scenario name, canonical params, replicate index, base seed), so

- the same grid + base seed always yields the identical point list
  (cache keys are stable across runs and machines), and
- distinct points get decorrelated, reproducible randomness without the
  caller threading seeds by hand.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Iterable

from repro.experiments.registry import Scenario


def canonical_json(obj: Any) -> str:
    """Deterministic JSON used for hashing (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=repr)


def derive_seed(scenario_name: str, params: dict[str, Any], replicate: int, base_seed: int) -> int:
    """The point's reproducible seed: sha256 over its full identity."""
    return _seed_from_parts(
        canonical_json(scenario_name), canonical_json(params), replicate, base_seed
    )


def _seed_from_parts(
    scenario_json: str, params_json: str, replicate: int, base_seed: int
) -> int:
    """:func:`derive_seed` with the JSON fragments pre-serialized.

    Byte-identical to ``canonical_json`` over the full identity dict (the
    literal below is that dict's sorted-key form), so seeds and the cache
    keys built on them never move.  Splitting it out lets
    :func:`expand_grid` serialize each params combo once instead of once
    per replicate -- measurable when a sweep enqueues 10^4 points.
    """
    payload = (
        f'{{"base_seed":{int(base_seed)},"params":{params_json},'
        f'"replicate":{int(replicate)},"scenario":{scenario_json}}}'
    )
    digest = hashlib.sha256(payload.encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class SweepPoint:
    """One (scenario, params, seed) task of a sweep, in grid order."""

    index: int
    scenario: str
    params: dict[str, Any]
    replicate: int
    seed: int

    def __hash__(self) -> int:  # params is a dict; hash by identity content
        return hash((self.index, self.scenario, canonical_json(self.params), self.seed))


def expand_grid(
    scenario: Scenario,
    grid: dict[str, Iterable] | None = None,
    replicates: int = 1,
    base_seed: int = 0,
) -> list[SweepPoint]:
    """Expand a parameter grid into an ordered list of sweep points.

    ``grid`` maps parameter names to a value or list of values; axes not
    mentioned fall back to the scenario's ``default_grid`` and then to the
    parameter default.  Ordering is the cartesian product in parameter-spec
    order (last axis fastest), replicates innermost -- deterministic, so
    parallel results can be merged back into grid order.
    """
    if replicates < 1:
        raise ValueError("replicates must be >= 1")
    merged: dict[str, list] = {}
    grid = dict(grid or {})
    unknown = set(grid) - {p.name for p in scenario.params}
    if unknown:
        raise KeyError(
            f"unknown grid axis/axes {sorted(unknown)} for scenario {scenario.name!r}"
        )
    for spec in scenario.params:
        if spec.name in grid:
            raw = grid[spec.name]
            values = list(raw) if isinstance(raw, (list, tuple)) else [raw]
        elif spec.name in scenario.default_grid:
            values = list(scenario.default_grid[spec.name])
        else:
            values = [spec.default]
        merged[spec.name] = [spec.coerce(v) for v in values]

    axes = list(merged)
    points: list[SweepPoint] = []
    scenario_json = canonical_json(scenario.name)
    for combo in itertools.product(*(merged[a] for a in axes)):
        params = dict(zip(axes, combo))
        params_json = canonical_json(params)  # once per combo, not per replicate
        for replicate in range(replicates):
            points.append(
                SweepPoint(
                    index=len(points),
                    scenario=scenario.name,
                    params=params,
                    replicate=replicate,
                    seed=_seed_from_parts(scenario_json, params_json, replicate, base_seed),
                )
            )
    return points


def parse_axis_overrides(assignments: list[str]) -> dict[str, list[str]]:
    """Parse CLI ``--set key=v1,v2,...`` strings into grid axes."""
    grid: dict[str, list[str]] = {}
    for assignment in assignments:
        if "=" not in assignment:
            raise ValueError(f"--set expects key=value[,value...], got {assignment!r}")
        key, _, raw = assignment.partition("=")
        key = key.strip()
        if not key:
            raise ValueError(f"--set expects key=value[,value...], got {assignment!r}")
        grid[key] = [v.strip() for v in raw.split(",") if v.strip() != ""]
        if not grid[key]:
            raise ValueError(f"--set {key}= has no values")
    return grid
