"""Grid expansion and per-point seed derivation.

A sweep is the cartesian product of parameter axes, replicated
``replicates`` times.  Every point gets a seed derived by hashing
(scenario name, canonical params, replicate index, base seed), so

- the same grid + base seed always yields the identical point list
  (cache keys are stable across runs and machines), and
- distinct points get decorrelated, reproducible randomness without the
  caller threading seeds by hand.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Iterable

from repro.experiments.registry import Scenario


def canonical_json(obj: Any) -> str:
    """Deterministic JSON used for hashing (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=repr)


def derive_seed(scenario_name: str, params: dict[str, Any], replicate: int, base_seed: int) -> int:
    """The point's reproducible seed: sha256 over its full identity."""
    digest = hashlib.sha256(
        canonical_json(
            {
                "scenario": scenario_name,
                "params": params,
                "replicate": replicate,
                "base_seed": base_seed,
            }
        ).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class SweepPoint:
    """One (scenario, params, seed) task of a sweep, in grid order."""

    index: int
    scenario: str
    params: dict[str, Any]
    replicate: int
    seed: int

    def __hash__(self) -> int:  # params is a dict; hash by identity content
        return hash((self.index, self.scenario, canonical_json(self.params), self.seed))


def expand_grid(
    scenario: Scenario,
    grid: dict[str, Iterable] | None = None,
    replicates: int = 1,
    base_seed: int = 0,
) -> list[SweepPoint]:
    """Expand a parameter grid into an ordered list of sweep points.

    ``grid`` maps parameter names to a value or list of values; axes not
    mentioned fall back to the scenario's ``default_grid`` and then to the
    parameter default.  Ordering is the cartesian product in parameter-spec
    order (last axis fastest), replicates innermost -- deterministic, so
    parallel results can be merged back into grid order.
    """
    if replicates < 1:
        raise ValueError("replicates must be >= 1")
    merged: dict[str, list] = {}
    grid = dict(grid or {})
    unknown = set(grid) - {p.name for p in scenario.params}
    if unknown:
        raise KeyError(
            f"unknown grid axis/axes {sorted(unknown)} for scenario {scenario.name!r}"
        )
    for spec in scenario.params:
        if spec.name in grid:
            raw = grid[spec.name]
            values = list(raw) if isinstance(raw, (list, tuple)) else [raw]
        elif spec.name in scenario.default_grid:
            values = list(scenario.default_grid[spec.name])
        else:
            values = [spec.default]
        merged[spec.name] = [spec.coerce(v) for v in values]

    axes = list(merged)
    points: list[SweepPoint] = []
    for combo in itertools.product(*(merged[a] for a in axes)):
        params = dict(zip(axes, combo))
        for replicate in range(replicates):
            points.append(
                SweepPoint(
                    index=len(points),
                    scenario=scenario.name,
                    params=params,
                    replicate=replicate,
                    seed=derive_seed(scenario.name, params, replicate, base_seed),
                )
            )
    return points


def parse_axis_overrides(assignments: list[str]) -> dict[str, list[str]]:
    """Parse CLI ``--set key=v1,v2,...`` strings into grid axes."""
    grid: dict[str, list[str]] = {}
    for assignment in assignments:
        if "=" not in assignment:
            raise ValueError(f"--set expects key=value[,value...], got {assignment!r}")
        key, _, raw = assignment.partition("=")
        key = key.strip()
        if not key:
            raise ValueError(f"--set expects key=value[,value...], got {assignment!r}")
        grid[key] = [v.strip() for v in raw.split(",") if v.strip() != ""]
        if not grid[key]:
            raise ValueError(f"--set {key}= has no values")
    return grid
