"""Static-site assembly: one index + one page per scenario, on disk.

:func:`build_site` is the single entry behind ``python -m
repro.experiments report --html OUT_DIR``: it reads every record from a
:class:`~repro.experiments.store.ResultStore`, builds the
:class:`~repro.experiments.reporting.model.ScenarioReport` model, renders
each scenario to ``OUT_DIR/<scenario>.html`` and the cross-scenario
summary to ``OUT_DIR/index.html``, and returns the index path.

Benchmark JSON files (the ``BENCH_*.json`` artifacts written by
``benchmarks/engine_speedup.py`` / ``engine_parallel.py`` /
``backend_drain.py``) can ride along: :func:`extract_speedups` walks any
of their shapes for ``speedup`` measurements and the site turns them into
an engine-speedup bar chart on the index page.
"""

from __future__ import annotations

import json
from numbers import Real
from pathlib import Path

from repro.experiments.reporting.html import (
    page_name,
    render_index,
    render_scenario_page,
)
from repro.experiments.reporting.model import build_reports
from repro.experiments.reporting.svg import Series, render_bar_chart
from repro.experiments.store import ResultStore, atomic_write_text


def extract_speedups(data, context: str = "") -> list[tuple[str, float]]:
    """Collect ``(label, speedup)`` pairs from a benchmark JSON payload.

    The BENCH files have grown shape by shape (PR 2's single
    ``engine_comparison`` object, PR 4's ``comparisons`` list, ...), so
    this walks the whole document: any mapping carrying a numeric
    ``speedup`` (or a kernel-replay ``speedup_vs_event``) contributes one
    measurement, labelled by the nearest ``scenario``/``benchmark``/
    ``group`` names and a ``threads`` count when present.
    """
    found: list[tuple[str, float]] = []
    if isinstance(data, dict):
        label = str(
            data.get("scenario") or data.get("benchmark") or data.get("group") or context or "speedup"
        )
        if "threads" in data and isinstance(data["threads"], Real):
            label += f" ({int(data['threads'])} thr)"
        speedup = data.get("speedup")
        if isinstance(speedup, Real) and not isinstance(speedup, bool):
            found.append((label, float(speedup)))
        vs_event = data.get("speedup_vs_event")
        if isinstance(vs_event, Real) and not isinstance(vs_event, bool):
            found.append((label + " vs event", float(vs_event)))
        for key in sorted(data):
            if key not in ("speedup", "speedup_vs_event"):
                found.extend(extract_speedups(data[key], context=label))
    elif isinstance(data, list):
        for item in data:
            found.extend(extract_speedups(item, context=context))
    return found


def bench_charts(bench_paths: list[Path]) -> list[str]:
    """One engine-speedup bar chart per readable benchmark file."""
    charts = []
    for path in sorted(bench_paths, key=lambda p: p.name):
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError):
            continue
        speedups = extract_speedups(data)
        if not speedups:
            continue
        categories = [label for label, _ in speedups]
        series = [Series.of("speedup", list(enumerate(s for _, s in speedups)))]
        charts.append(
            render_bar_chart(
                f"Engine speedup — {Path(path).name}",
                categories,
                series,
                y_label="x faster",
            )
        )
    return charts


def build_site(
    store: ResultStore,
    out_dir: str | Path,
    scenario: str | None = None,
    bench_paths: list[str | Path] | None = None,
    trace_paths: list[str | Path] | None = None,
) -> Path:
    """Render the full HTML report site; returns the index page path.

    ``scenario`` restricts the site to one scenario (the index still
    links only what was rendered).  Raises ``ValueError`` when the store
    holds no matching records -- an empty site would silently hide a
    mis-typed ``--store``.

    ``trace_paths`` (JSONL trace files or directories of them) add a
    ``timeline.html`` page; two or more ``bench_paths`` add a
    ``trends.html`` history page -- both linked from the index.
    """
    records = list(store.iter_records(scenario))
    if not records:
        where = f" for scenario {scenario!r}" if scenario else ""
        raise ValueError(f"no records in {store.root}{where}; nothing to report")
    reports = build_reports(records)

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    for report in reports:
        atomic_write_text(out / page_name(report.name), render_scenario_page(report))
    charts = bench_charts([Path(p) for p in (bench_paths or [])])
    extra_pages: list[tuple[str, str]] = []
    if trace_paths:
        from repro.experiments.reporting.timeline import load_traces, render_timeline_page

        traces = load_traces(list(trace_paths))
        if traces:
            atomic_write_text(
                out / "timeline.html", render_timeline_page(traces, back_link=True)
            )
            extra_pages.append(("timeline.html", "trace timeline"))
    if bench_paths and len(bench_paths) > 1:
        from repro.experiments.reporting.trends import render_trends_page

        atomic_write_text(
            out / "trends.html",
            render_trends_page([Path(p) for p in bench_paths], back_link=True),
        )
        extra_pages.append(("trends.html", "benchmark trends"))
    index = out / "index.html"
    atomic_write_text(
        index, render_index(reports, bench_charts=charts, extra_pages=extra_pages)
    )
    return index
