"""HTML rendering for the report site: self-contained pages, inline SVG.

Every page is a single file with one inline ``<style>`` block and its
charts embedded as inline ``<svg>`` -- no scripts, no external assets, no
network fetches -- so a page archived from a CI artifact keeps rendering
forever.  :func:`render_scenario_page` emits one scenario's parameter
table, status tally, plots and per-record metric table;
:func:`render_index` the cross-scenario summary plus any benchmark
charts the site builder passes in.

Rendering is pure string assembly over the already-sorted
:class:`~repro.experiments.reporting.model.ScenarioReport` model, keeping
the byte-determinism guarantee trivial to audit.
"""

from __future__ import annotations

import html as _html
import math
from numbers import Real
from typing import Any

from repro.experiments.reporting.model import ScenarioReport, plot_series
from repro.experiments.reporting.svg import render_bar_chart, render_plot
from repro.experiments.store import ResultRecord

#: Shared inline stylesheet (kept small; every page embeds it).
STYLE = """
body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial, sans-serif;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem; color: #111827; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #e5e7eb; padding-bottom: .4rem; }
h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; font-size: .85rem; margin: .75rem 0; }
th, td { border: 1px solid #d1d5db; padding: .3rem .55rem; text-align: left; }
th { background: #f3f4f6; }
tr:nth-child(even) td { background: #fafafa; }
code { background: #f3f4f6; padding: .1rem .3rem; border-radius: 3px; font-size: .85em; }
a { color: #2563eb; text-decoration: none; }
a:hover { text-decoration: underline; }
.status-ok { color: #059669; font-weight: 600; }
.status-error, .status-timeout { color: #dc2626; font-weight: 600; }
.plot { margin: 1rem 0; border: 1px solid #e5e7eb; }
.muted { color: #6b7280; font-size: .85rem; }
.plots { display: flex; flex-wrap: wrap; gap: 1rem; }
""".strip()


def escape(text: Any) -> str:
    """HTML-escape any value's string form (stdlib escaping, quotes too)."""
    return _html.escape(str(text), quote=True)


def fmt_value(value: Any) -> str:
    """Compact, deterministic cell text for params and metrics."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            return str(value)  # "nan" / "inf" / "-inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.6g}"
    if isinstance(value, Real):
        return str(value)
    text = str(value)
    return text if len(text) <= 60 else text[:57] + "..."


def _page(title: str, body: str) -> str:
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8"/>\n'
        f"<title>{escape(title)}</title>\n"
        f"<style>\n{STYLE}\n</style>\n</head>\n<body>\n{body}\n</body>\n</html>\n"
    )


def _status_cell(record: ResultRecord) -> str:
    return f'<td class="status-{record.status}">{escape(record.status)}</td>'


def _params_table(report: ScenarioReport) -> str:
    rows = []
    for name, values in report.axes.items():
        shown = ", ".join(fmt_value(v) for v in values)
        rows.append(
            f"<tr><td><code>{escape(name)}</code></td><td>axis</td><td>{escape(shown)}</td></tr>"
        )
    for name, value in report.fixed.items():
        rows.append(
            f"<tr><td><code>{escape(name)}</code></td><td>fixed</td>"
            f"<td>{escape(fmt_value(value))}</td></tr>"
        )
    if not rows:
        return '<p class="muted">no parameters recorded</p>'
    return (
        "<table><thead><tr><th>parameter</th><th>role</th><th>value(s)</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _count_cell(count: int, status: str) -> str:
    attr = f' class="status-{status}"' if count else ""
    return f"<td{attr}>{count}</td>"


def _summary_table(report: ScenarioReport) -> str:
    return (
        "<table><thead><tr><th>records</th><th>ok</th><th>error</th><th>timeout</th>"
        "<th>total compute</th></tr></thead><tbody><tr>"
        f"<td>{report.total}</td>"
        f'<td class="status-ok">{report.n_ok}</td>'
        f"{_count_cell(report.n_error, 'error')}"
        f"{_count_cell(report.n_timeout, 'timeout')}"
        f"<td>{report.duration_s:.2f}s</td>"
        "</tr></tbody></table>"
    )


def _records_table(report: ScenarioReport) -> str:
    axis_names = list(report.axes)
    columns = axis_names + ["seed", "status"] + report.result_keys
    head = "".join(f"<th>{escape(c)}</th>" for c in columns)
    rows = []
    for record in report.records:
        cells = [f"<td>{escape(fmt_value(record.params.get(a)))}</td>" for a in axis_names]
        cells.append(f"<td>{record.seed % 10**8}</td>")
        cells.append(_status_cell(record))
        for key in report.result_keys:
            if record.status == "ok" and record.result:
                cells.append(f"<td>{escape(fmt_value(record.result.get(key)))}</td>")
            else:
                error_lines = (record.error or "").strip().splitlines()
                note = error_lines[-1] if error_lines else record.status
                cells.append(f'<td class="muted">{escape(fmt_value(note))}</td>')
                cells.extend("<td></td>" for _ in report.result_keys[1:])
                break
        rows.append(f"<tr>{''.join(cells)}</tr>")
    return (
        f"<table><thead><tr>{head}</tr></thead><tbody>{''.join(rows)}</tbody></table>"
    )


def render_plots(report: ScenarioReport) -> list[str]:
    """All of a report's plot specs rendered to inline SVG strings."""
    charts = []
    for spec in report.plot_specs():
        series, categories = plot_series(report, spec)
        if spec.kind == "bar":
            charts.append(
                render_bar_chart(
                    spec.title,
                    categories,
                    series,
                    logy=spec.logy,
                    x_label=spec.x_label or spec.x,
                    y_label=spec.y_label,
                )
            )
        else:
            charts.append(
                render_plot(
                    spec.title,
                    series,
                    kind=spec.kind,
                    logx=spec.logx,
                    logy=spec.logy,
                    x_label=spec.x_label or spec.x,
                    y_label=spec.y_label,
                )
            )
    return charts


def render_scenario_page(report: ScenarioReport) -> str:
    """One scenario's self-contained report page."""
    parts = [f"<h1>{escape(report.name)}</h1>"]
    if report.scenario is not None and report.scenario.description:
        parts.append(f"<p>{escape(report.scenario.description)}</p>")
    if report.scenario is not None and report.scenario.tags:
        tags = " ".join(f"<code>{escape(t)}</code>" for t in report.scenario.tags)
        parts.append(f'<p class="muted">tags: {tags}</p>')
    parts.append('<p><a href="index.html">&larr; all scenarios</a></p>')

    parts.append("<h2>Summary</h2>")
    parts.append(_summary_table(report))

    parts.append("<h2>Parameters</h2>")
    parts.append(_params_table(report))

    charts = render_plots(report)
    if charts:
        parts.append("<h2>Plots</h2>")
        parts.append('<div class="plots">')
        parts.extend(charts)
        parts.append("</div>")

    parts.append("<h2>Records</h2>")
    parts.append(_records_table(report))
    return _page(f"{report.name} — experiment report", "\n".join(parts))


def render_index(
    reports: list[ScenarioReport],
    bench_charts: list[str] | None = None,
    extra_pages: list[tuple[str, str]] | None = None,
) -> str:
    """The cross-scenario index page, with optional benchmark charts.

    ``extra_pages`` are ``(href, label)`` links to companion pages the
    site builder rendered alongside (trace timelines, benchmark trends).
    """
    parts = ["<h1>Experiment report</h1>"]
    total = sum(r.total for r in reports)
    ok = sum(r.n_ok for r in reports)
    parts.append(
        f"<p>{len(reports)} scenario(s), {total} record(s), "
        f'<span class="status-ok">{ok} ok</span>, {total - ok} failed.</p>'
    )
    rows = []
    for report in reports:
        axes = ", ".join(
            f"{name}({len(values)})" for name, values in report.axes.items()
        ) or "—"
        description = (
            report.scenario.description if report.scenario is not None else ""
        )
        rows.append(
            "<tr>"
            f'<td><a href="{escape(page_name(report.name))}">{escape(report.name)}</a></td>'
            f"<td>{report.total}</td>"
            f'<td class="status-ok">{report.n_ok}</td>'
            f"{_count_cell(report.n_error, 'error')}"
            f"{_count_cell(report.n_timeout, 'timeout')}"
            f"<td>{escape(axes)}</td>"
            f"<td>{escape(description)}</td>"
            "</tr>"
        )
    parts.append(
        "<table><thead><tr><th>scenario</th><th>records</th><th>ok</th><th>error</th>"
        "<th>timeout</th><th>swept axes</th><th>description</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )
    if extra_pages:
        links = " · ".join(
            f'<a href="{escape(href)}">{escape(label)}</a>' for href, label in extra_pages
        )
        parts.append(f"<p>Telemetry: {links}</p>")
    if bench_charts:
        parts.append("<h2>Benchmarks</h2>")
        parts.append('<div class="plots">')
        parts.extend(bench_charts)
        parts.append("</div>")
    return _page("Experiment report", "\n".join(parts))


def page_name(scenario_name: str) -> str:
    """Filesystem-safe page filename for one scenario."""
    slug = "".join(c if c.isalnum() or c in "-_" else "-" for c in scenario_name)
    return f"{slug}.html"
