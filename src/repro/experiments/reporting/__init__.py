"""HTML report subsystem: a dependency-free static-site generator.

``python -m repro.experiments report --html OUT_DIR`` turns the JSON
records of a :class:`~repro.experiments.store.ResultStore` into a
browsable site -- one self-contained page per scenario (parameter tables,
pass/fail/timeout tallies, per-record metric tables, inline SVG plots)
plus a cross-scenario index that can also chart the ``BENCH_*.json``
engine-speedup artifacts.  Zero third-party dependencies and byte-level
determinism for a fixed store are part of the contract.

Layers, bottom up:

- :mod:`~repro.experiments.reporting.svg` -- the chart kit (line /
  scatter / bar, optional log axes) emitting deterministic ``<svg>``;
- :mod:`~repro.experiments.reporting.model` -- records grouped into
  :class:`ScenarioReport` summaries and plot-ready series, driven by the
  :class:`~repro.experiments.registry.PlotSpec` declarations scenarios
  attach via ``@scenario(plots=...)``;
- :mod:`~repro.experiments.reporting.html` -- page rendering (inline
  CSS, inline SVG, no scripts);
- :mod:`~repro.experiments.reporting.site` -- :func:`build_site`, the
  directory-level assembly used by the CLI, CI and the example;
- :mod:`~repro.experiments.reporting.timeline` /
  :mod:`~repro.experiments.reporting.trends` -- telemetry pages: JSONL
  trace timelines and the cross-``BENCH_*.json`` speedup history;
- :mod:`~repro.experiments.reporting.docs` -- the generated-checked
  ``docs/scenarios.md`` catalog.
"""

from repro.experiments.reporting.docs import builtin_scenarios, scenarios_markdown
from repro.experiments.reporting.html import (
    page_name,
    render_index,
    render_scenario_page,
)
from repro.experiments.reporting.model import ScenarioReport, build_reports, plot_series
from repro.experiments.reporting.site import build_site, extract_speedups
from repro.experiments.reporting.svg import (
    Series,
    render_bar_chart,
    render_plot,
)
from repro.experiments.reporting.timeline import load_traces, render_timeline_page
from repro.experiments.reporting.trends import bench_history, render_trends_page

__all__ = [
    "ScenarioReport",
    "Series",
    "bench_history",
    "build_reports",
    "build_site",
    "builtin_scenarios",
    "extract_speedups",
    "load_traces",
    "page_name",
    "plot_series",
    "render_bar_chart",
    "render_index",
    "render_plot",
    "render_scenario_page",
    "render_timeline_page",
    "render_trends_page",
    "scenarios_markdown",
]
