"""Timeline pages: render JSONL traces into round-activity charts.

Turns the traces the :mod:`repro.obs` subsystem writes (engine ``round``
samples, ``skip`` stretches, ``shard_round`` events from the parallel
engine, ``task`` lifecycle lines from sweeps and queue daemons) into a
self-contained HTML page on the existing SVG chart kit:

- **round activity** -- active-set size and delivered messages per round,
  the profile that distinguishes a dense phase from a quiet tail;
- **bits per round** -- sent vs moved bits, the CONGEST cost profile the
  paper's spanner constructions are evaluated by;
- **shard utilization** -- per-shard step wall-clock and the merge cost of
  every parallel round, the view built to answer "is the parallel engine
  losing to imbalance, merge cost, or the GIL";
- **task lifecycle** -- submitted/leased/running/done points over wall
  time for sweep and worker traces;
- **fleet utilization** -- gauge levels over wall time (``spool_depth``,
  ``fleet_workers``, ``drain_rate`` from the fleet controller), the view
  of an elastic drain: backlog falling as the controller scales the
  worker fleet up and down.

Used by ``python -m repro.experiments trace timeline`` and by
:func:`~repro.experiments.reporting.site.build_site` when trace files are
passed to ``report --html``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.experiments.reporting.html import _page, escape, fmt_value
from repro.experiments.reporting.svg import PALETTE, Series, render_plot
from repro.obs.trace import read_trace, summarize_trace, trace_files


def round_charts(label: str, events: list[dict[str, Any]]) -> list[str]:
    """Round-activity and bits-per-round charts for one trace's samples."""
    rounds = [e for e in events if e.get("kind") == "round"]
    if not rounds:
        return []
    charts = [
        render_plot(
            f"Round activity — {label}",
            [
                Series.of("active nodes", [(e["round"], e.get("active", 0)) for e in rounds]),
                Series.of(
                    "delivered msgs", [(e["round"], e.get("delivered", 0)) for e in rounds]
                ),
            ],
            x_label="round",
            y_label="count",
        ),
        render_plot(
            f"Bits per round — {label}",
            [
                Series.of("sent bits", [(e["round"], e.get("sent_bits", 0)) for e in rounds]),
                Series.of(
                    "moved bits", [(e["round"], e.get("moved_bits", 0)) for e in rounds]
                ),
            ],
            x_label="round",
            y_label="bits",
        ),
    ]
    return charts


def shard_chart(label: str, events: list[dict[str, Any]]) -> str | None:
    """Per-shard step wall-clock (and merge cost) per parallel round."""
    shard_rounds = [
        e for e in events if e.get("kind") == "event" and e.get("name") == "shard_round"
    ]
    if not shard_rounds:
        return None
    n_shards = max(len(e.get("shard_s", [])) for e in shard_rounds)
    # One series per shard, capped to leave a palette slot for the merge.
    shown = min(n_shards, len(PALETTE) - 1)
    series = [
        Series.of(
            f"shard {i}",
            [
                (e["round"], 1000.0 * e["shard_s"][i])
                for e in shard_rounds
                if i < len(e.get("shard_s", []))
            ],
        )
        for i in range(shown)
    ]
    series.append(
        Series.of("merge", [(e["round"], 1000.0 * e.get("merge_s", 0.0)) for e in shard_rounds])
    )
    return render_plot(
        f"Shard utilization — {label}",
        series,
        x_label="round",
        y_label="step time (ms)",
    )


def task_chart(label: str, events: list[dict[str, Any]]) -> str | None:
    """Task lifecycle scatter: (wall time, task index) per state."""
    tasks = [e for e in events if e.get("kind") == "task" and "ts" in e]
    if not tasks:
        return None
    by_state: dict[str, list[tuple[float, float]]] = {}
    for e in tasks:
        by_state.setdefault(str(e.get("state", "?")), []).append(
            (float(e["ts"]), float(e.get("index", -1)))
        )
    series = [Series.of(state, pts) for state, pts in sorted(by_state.items())]
    return render_plot(
        f"Task lifecycle — {label}",
        series,
        kind="scatter",
        x_label="seconds since trace start",
        y_label="task index",
    )


def gauge_chart(label: str, events: list[dict[str, Any]]) -> str | None:
    """Gauge levels over wall time (fleet spool depth, worker count...)."""
    gauges = [e for e in events if e.get("kind") == "gauge" and "ts" in e]
    if not gauges:
        return None
    by_name: dict[str, list[tuple[float, float]]] = {}
    for e in gauges:
        by_name.setdefault(str(e.get("name", "?")), []).append(
            (float(e["ts"]), float(e.get("value", 0)))
        )
    series = [Series.of(name, pts) for name, pts in sorted(by_name.items())]
    return render_plot(
        f"Gauges — {label}",
        series,
        x_label="seconds since trace start",
        y_label="level",
    )


def _summary_rows(summary: dict[str, Any]) -> str:
    cells = [
        ("source", summary.get("source")),
        ("lines", summary.get("lines")),
        ("rounds sampled", summary.get("rounds_sampled")),
        ("rounds skipped", summary.get("rounds_skipped")),
        ("node steps", summary.get("active_steps")),
        ("sent bits", summary.get("sent_bits")),
        ("moved bits", summary.get("moved_bits")),
        ("sent messages", summary.get("sent_messages")),
    ]
    return "".join(
        f"<tr><td>{escape(name)}</td><td>{escape(fmt_value(value))}</td></tr>"
        for name, value in cells
    )


def trace_section(label: str, events: list[dict[str, Any]]) -> str:
    """One trace's section: summary table plus every applicable chart."""
    summary = summarize_trace(events)
    parts = [f"<h2>{escape(label)}</h2>"]
    parts.append(
        "<table><thead><tr><th>metric</th><th>value</th></tr></thead>"
        f"<tbody>{_summary_rows(summary)}</tbody></table>"
    )
    if summary["runs"]:
        rows = "".join(
            "<tr>"
            + "".join(
                f"<td>{escape(fmt_value(run.get(k)))}</td>"
                for k in ("engine", "rounds", "skipped_rounds", "node_steps", "total_bits")
            )
            + "</tr>"
            for run in summary["runs"]
        )
        parts.append(
            "<table><thead><tr><th>engine</th><th>rounds</th><th>skipped</th>"
            f"<th>node steps</th><th>total bits</th></tr></thead><tbody>{rows}</tbody></table>"
        )
    charts = round_charts(label, events)
    shard = shard_chart(label, events)
    if shard:
        charts.append(shard)
    tasks = task_chart(label, events)
    if tasks:
        charts.append(tasks)
    gauges = gauge_chart(label, events)
    if gauges:
        charts.append(gauges)
    if charts:
        parts.append('<div class="plots">')
        parts.extend(charts)
        parts.append("</div>")
    elif not summary["runs"]:
        parts.append('<p class="muted">no plottable trace lines</p>')
    return "\n".join(parts)


def render_timeline_page(
    traces: list[tuple[str, list[dict[str, Any]]]], back_link: bool = False
) -> str:
    """The full timeline page over one or more (label, events) traces."""
    parts = ["<h1>Trace timeline</h1>"]
    if back_link:
        parts.append('<p><a href="index.html">&larr; all scenarios</a></p>')
    if not traces:
        parts.append('<p class="muted">no traces given</p>')
    for label, events in traces:
        parts.append(trace_section(label, events))
    return _page("Trace timeline", "\n".join(parts))


def load_traces(paths: list[str | Path]) -> list[tuple[str, list[dict[str, Any]]]]:
    """Resolve files/directories into (label, parsed events) pairs."""
    traces = []
    for spec in paths:
        for path in trace_files(spec):
            traces.append((path.name, read_trace(path)))
    return traces
