"""Dependency-free SVG plotting for the HTML report subsystem.

A deliberately small chart kit -- line, scatter and bar charts with
optional log axes -- that emits deterministic standalone ``<svg>``
fragments: no third-party plotting library, no randomness, no
timestamps, and all coordinates formatted to a fixed precision, so a
rebuilt site is byte-identical for the same store (asserted by
``tests/test_reporting.py``).

The unit of work is a :class:`Series` (a label plus ``(x, y)`` points);
:func:`render_plot` lays out axes, ticks, grid lines, marks and a legend
around any number of them.  Categorical charts go through
:func:`render_bar_chart` instead, which takes string categories and one
or more value series.
"""

from __future__ import annotations

import html as _html
import math
from dataclasses import dataclass, field

#: Categorical series palette (colour-blind-safe ordering).
PALETTE = (
    "#2563eb",  # blue
    "#dc2626",  # red
    "#059669",  # green
    "#9333ea",  # purple
    "#ea580c",  # orange
    "#0891b2",  # cyan
    "#4b5563",  # slate
    "#ca8a04",  # amber
)

WIDTH = 640
HEIGHT = 400
MARGIN_LEFT = 66
MARGIN_RIGHT = 18
MARGIN_TOP = 34
MARGIN_BOTTOM = 52


def _num(value: float) -> str:
    """Fixed-precision coordinate formatting (deterministic across hosts)."""
    text = f"{value:.2f}"
    # Avoid the two spellings of zero ("-0.00" vs "0.00").
    return "0.00" if text == "-0.00" else text


def tick_label(value: float) -> str:
    """Human-readable axis label for a tick value."""
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e5 or magnitude < 1e-3:
        exponent = math.floor(math.log10(magnitude))
        mantissa = value / 10**exponent
        if abs(abs(mantissa) - 1.0) < 1e-9:
            sign = "-" if value < 0 else ""
            return f"{sign}1e{exponent}"
        return f"{mantissa:.3g}e{exponent}"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.4g}"


def _escape(text: str) -> str:
    """XML-escape text/attribute content (stdlib escaping, quotes too)."""
    return _html.escape(text, quote=True)


@dataclass(frozen=True)
class Series:
    """One plotted series: a legend label plus ``(x, y)`` data points."""

    label: str
    points: tuple[tuple[float, float], ...]

    @staticmethod
    def of(label: str, points) -> "Series":
        """Build a series from any iterable of ``(x, y)`` pairs."""
        return Series(label, tuple((float(x), float(y)) for x, y in points))


def linear_ticks(lo: float, hi: float, target: int = 5) -> list[float]:
    """Nice linear tick positions covering ``[lo, hi]`` (1/2/5 steps)."""
    if hi <= lo:
        hi = lo + (abs(lo) if lo else 1.0)
    span = hi - lo
    raw_step = span / max(1, target)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for multiple in (1.0, 2.0, 5.0, 10.0):
        step = multiple * magnitude
        if span / step <= target + 0.5:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    value = first
    while value <= hi + step * 1e-9:
        # Snap near-zero accumulation error so labels render as "0".
        ticks.append(0.0 if abs(value) < step * 1e-9 else value)
        value += step
    return ticks or [lo, hi]


def log_ticks(lo: float, hi: float) -> list[float]:
    """Powers of 10 covering the positive range ``[lo, hi]``."""
    lo = max(lo, 1e-12)
    hi = max(hi, lo)
    first = math.floor(math.log10(lo))
    last = math.ceil(math.log10(hi))
    return [10.0**e for e in range(first, last + 1)]


@dataclass
class _Axis:
    """Resolved axis: data range, scale transform, tick positions."""

    lo: float
    hi: float
    log: bool
    ticks: list[float] = field(default_factory=list)

    def fraction(self, value: float) -> float:
        """Map a data value to [0, 1] along the axis."""
        if self.log:
            lo, hi = math.log10(self.lo), math.log10(self.hi)
            v = math.log10(max(value, 1e-300))
        else:
            lo, hi, v = self.lo, self.hi, value
        if hi <= lo:
            return 0.5
        return (v - lo) / (hi - lo)


def _resolve_axis(values: list[float], log: bool) -> _Axis:
    if log:
        positive = [v for v in values if v > 0]
        lo = min(positive) if positive else 1.0
        hi = max(positive) if positive else 10.0
        ticks = log_ticks(lo, hi)
        return _Axis(lo=min(lo, ticks[0]), hi=max(hi, ticks[-1]), log=True, ticks=ticks)
    lo = min(values) if values else 0.0
    hi = max(values) if values else 1.0
    if lo == hi:
        pad = abs(lo) * 0.5 or 1.0
        lo, hi = lo - pad, hi + pad
    ticks = linear_ticks(lo, hi)
    return _Axis(lo=min(lo, ticks[0]), hi=max(hi, ticks[-1]), log=False, ticks=ticks)


def _chrome(title: str, x_label: str, y_label: str) -> list[str]:
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {WIDTH} {HEIGHT}" '
        f'width="{WIDTH}" height="{HEIGHT}" role="img" class="plot">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="#ffffff"/>',
        f'<text x="{WIDTH // 2}" y="20" text-anchor="middle" font-size="14" '
        f'font-weight="bold" fill="#111827">{_escape(title)}</text>',
    ]
    if x_label:
        parts.append(
            f'<text x="{(MARGIN_LEFT + WIDTH - MARGIN_RIGHT) // 2}" y="{HEIGHT - 8}" '
            f'text-anchor="middle" font-size="11" fill="#374151">{_escape(x_label)}</text>'
        )
    if y_label:
        cy = (MARGIN_TOP + HEIGHT - MARGIN_BOTTOM) // 2
        parts.append(
            f'<text x="14" y="{cy}" text-anchor="middle" font-size="11" fill="#374151" '
            f'transform="rotate(-90 14 {cy})">{_escape(y_label)}</text>'
        )
    return parts


def _legend(labels: list[str]) -> list[str]:
    parts = []
    for i, label in enumerate(labels):
        color = PALETTE[i % len(PALETTE)]
        y = MARGIN_TOP + 6 + 15 * i
        x = WIDTH - MARGIN_RIGHT - 150
        parts.append(f'<rect x="{x}" y="{y - 8}" width="10" height="10" fill="{color}"/>')
        parts.append(
            f'<text x="{x + 14}" y="{y + 1}" font-size="11" fill="#111827">'
            f"{_escape(label)}</text>"
        )
    return parts


def render_plot(
    title: str,
    series: list[Series],
    *,
    kind: str = "line",
    logx: bool = False,
    logy: bool = False,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render line/scatter series into a standalone ``<svg>`` string.

    ``kind`` is ``"line"`` (polyline + markers) or ``"scatter"`` (markers
    only).  Log axes silently drop non-positive points, since they have
    no position on the scale.
    """
    if kind not in ("line", "scatter"):
        raise ValueError(f"unknown plot kind {kind!r}; known: line, scatter")
    cleaned: list[Series] = []
    for s in series:
        pts = [
            (x, y)
            for x, y in s.points
            if math.isfinite(x) and math.isfinite(y)
            and (not logx or x > 0)
            and (not logy or y > 0)
        ]
        if pts:
            cleaned.append(Series(s.label, tuple(sorted(pts))))
    if not cleaned:
        return empty_plot(title)

    xs = [x for s in cleaned for x, _ in s.points]
    ys = [y for s in cleaned for _, y in s.points]
    ax_x = _resolve_axis(xs, logx)
    ax_y = _resolve_axis(ys, logy)

    plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT
    plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM

    def px(x: float) -> float:
        return MARGIN_LEFT + ax_x.fraction(x) * plot_w

    def py(y: float) -> float:
        return HEIGHT - MARGIN_BOTTOM - ax_y.fraction(y) * plot_h

    parts = _chrome(title, x_label, y_label)
    # Grid + ticks.
    for t in ax_x.ticks:
        if not ax_x.lo <= t <= ax_x.hi:
            continue
        x = px(t)
        parts.append(
            f'<line x1="{_num(x)}" y1="{MARGIN_TOP}" x2="{_num(x)}" '
            f'y2="{HEIGHT - MARGIN_BOTTOM}" stroke="#e5e7eb" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_num(x)}" y="{HEIGHT - MARGIN_BOTTOM + 16}" text-anchor="middle" '
            f'font-size="10" fill="#374151">{_escape(tick_label(t))}</text>'
        )
    for t in ax_y.ticks:
        if not ax_y.lo <= t <= ax_y.hi:
            continue
        y = py(t)
        parts.append(
            f'<line x1="{MARGIN_LEFT}" y1="{_num(y)}" x2="{WIDTH - MARGIN_RIGHT}" '
            f'y2="{_num(y)}" stroke="#e5e7eb" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{MARGIN_LEFT - 6}" y="{_num(y + 3)}" text-anchor="end" '
            f'font-size="10" fill="#374151">{_escape(tick_label(t))}</text>'
        )
    # Frame.
    parts.append(
        f'<rect x="{MARGIN_LEFT}" y="{MARGIN_TOP}" width="{plot_w}" height="{plot_h}" '
        f'fill="none" stroke="#9ca3af" stroke-width="1"/>'
    )
    # Marks.
    for i, s in enumerate(cleaned):
        color = PALETTE[i % len(PALETTE)]
        if kind == "line" and len(s.points) > 1:
            coords = " ".join(f"{_num(px(x))},{_num(py(y))}" for x, y in s.points)
            parts.append(
                f'<polyline points="{coords}" fill="none" stroke="{color}" stroke-width="1.8"/>'
            )
        radius = "3.00" if kind == "scatter" else "2.50"
        for x, y in s.points:
            parts.append(
                f'<circle cx="{_num(px(x))}" cy="{_num(py(y))}" r="{radius}" fill="{color}"/>'
            )
    parts.extend(_legend([s.label for s in cleaned]))
    parts.append("</svg>")
    return "\n".join(parts)


def render_bar_chart(
    title: str,
    categories: list[str],
    series: list[Series],
    *,
    logy: bool = False,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render grouped vertical bars over string categories.

    Each :class:`Series` supplies one bar per category via the point's
    ``x`` index (``points[i] = (i, value)``); missing indices simply skip
    the bar.  Used for categorical axes (verifier names, engine pairs).
    """
    values = [y for s in series for _, y in s.points if math.isfinite(y) and (not logy or y > 0)]
    if not categories or not values:
        return empty_plot(title)
    ax_y = _resolve_axis(values + ([] if logy else [0.0]), logy)

    plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT
    plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM
    slot = plot_w / len(categories)
    band = slot * 0.72
    bar_w = band / max(1, len(series))

    def py(y: float) -> float:
        return HEIGHT - MARGIN_BOTTOM - ax_y.fraction(y) * plot_h

    parts = _chrome(title, x_label, y_label)
    for t in ax_y.ticks:
        if not ax_y.lo <= t <= ax_y.hi:
            continue
        y = py(t)
        parts.append(
            f'<line x1="{MARGIN_LEFT}" y1="{_num(y)}" x2="{WIDTH - MARGIN_RIGHT}" '
            f'y2="{_num(y)}" stroke="#e5e7eb" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{MARGIN_LEFT - 6}" y="{_num(y + 3)}" text-anchor="end" '
            f'font-size="10" fill="#374151">{_escape(tick_label(t))}</text>'
        )
    baseline = py(ax_y.lo if logy else max(ax_y.lo, 0.0))
    for ci, label in enumerate(categories):
        cx = MARGIN_LEFT + slot * ci + slot / 2
        shown = label if len(label) <= 18 else label[:17] + "…"
        parts.append(
            f'<text x="{_num(cx)}" y="{HEIGHT - MARGIN_BOTTOM + 16}" text-anchor="middle" '
            f'font-size="10" fill="#374151">{_escape(shown)}</text>'
        )
    for si, s in enumerate(series):
        color = PALETTE[si % len(PALETTE)]
        for x, value in s.points:
            ci = int(x)
            if not 0 <= ci < len(categories):
                continue
            if not math.isfinite(value) or (logy and value <= 0):
                continue
            left = MARGIN_LEFT + slot * ci + (slot - band) / 2 + bar_w * si
            top = py(value)
            height = baseline - top
            if height < 0:  # negative values on a linear axis grow downward
                top, height = baseline, -height
            parts.append(
                f'<rect x="{_num(left)}" y="{_num(top)}" width="{_num(bar_w)}" '
                f'height="{_num(height)}" fill="{color}"/>'
            )
    parts.append(
        f'<rect x="{MARGIN_LEFT}" y="{MARGIN_TOP}" width="{plot_w}" height="{plot_h}" '
        f'fill="none" stroke="#9ca3af" stroke-width="1"/>'
    )
    if len(series) > 1 or (series and series[0].label):
        parts.extend(_legend([s.label for s in series]))
    parts.append("</svg>")
    return "\n".join(parts)


def empty_plot(title: str) -> str:
    """Placeholder ``<svg>`` for a plot whose data is absent or unusable."""
    return "\n".join(
        [
            f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {WIDTH} 120" '
            f'width="{WIDTH}" height="120" role="img" class="plot plot-empty">',
            f'<rect width="{WIDTH}" height="120" fill="#f9fafb"/>',
            f'<text x="{WIDTH // 2}" y="52" text-anchor="middle" font-size="13" '
            f'fill="#6b7280">{_escape(title)}</text>',
            f'<text x="{WIDTH // 2}" y="76" text-anchor="middle" font-size="11" '
            f'fill="#9ca3af">no plottable data</text>',
            "</svg>",
        ]
    )
