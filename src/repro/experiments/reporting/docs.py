"""Generated documentation: the scenario catalog as markdown.

``docs/scenarios.md`` is not hand-written -- it is the output of
:func:`scenarios_markdown` over the live registry, and
``tests/test_docs.py`` asserts the committed file matches, so the catalog
cannot drift from the code.  Regenerate after touching a registration::

    PYTHONPATH=src python -m repro.experiments.reporting.docs > docs/scenarios.md

Only scenarios registered by the built-in modules
(:data:`~repro.experiments.registry.BUILTIN_SCENARIO_MODULES`) are
documented; ad-hoc registrations from tests or user scripts are ignored.
"""

from __future__ import annotations

import inspect

from repro.experiments.registry import (
    BUILTIN_SCENARIO_MODULES,
    Scenario,
    list_scenarios,
)

_PREAMBLE = """\
# Scenario catalog

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with:
       PYTHONPATH=src python -m repro.experiments.reporting.docs > docs/scenarios.md
     tests/test_docs.py fails when this file drifts from the registry. -->

Every figure, table and ablation this repo reproduces is a registered
*scenario*: a seeded function plus typed parameter specs, a default sweep
grid and declarative report plots (see
[docs/architecture.md](architecture.md) for how scenarios flow through
the sweep runner, the execution backends and the HTML report subsystem).
Run any of them with:

```sh
python -m repro.experiments run <scenario> [--set axis=v1,v2,...] [--workers N]
python -m repro.experiments report --html report-site
```
"""


def builtin_scenarios() -> list[Scenario]:
    """The registered scenarios defined by the built-in modules only."""
    return [
        scn
        for scn in list_scenarios()
        if scn.fn.__module__ in BUILTIN_SCENARIO_MODULES
    ]


def _scenario_section(scn: Scenario) -> str:
    lines = [f"## `{scn.name}`", "", scn.description, ""]
    doc = inspect.getdoc(scn.fn)
    if doc:
        # Skip the first line when the registration reused it as the
        # description -- the section already leads with it.
        body = doc.splitlines()
        if scn.description and body and body[0].strip() == scn.description:
            body = body[1:]
        prose = "\n".join(body).strip()
        if prose:
            lines.extend([prose, ""])
    if scn.tags:
        lines.extend(["Tags: " + ", ".join(f"`{t}`" for t in scn.tags), ""])

    def cell(value) -> str:
        # Literal pipes would open a new table column.
        return str(value).replace("|", "\\|")

    lines.append("| parameter | type | default | sweeps over | help |")
    lines.append("| --- | --- | --- | --- | --- |")
    for p in scn.params:
        swept = (
            ", ".join(cell(v) for v in scn.default_grid[p.name])
            if p.name in scn.default_grid
            else "—"
        )
        lines.append(
            f"| `{p.name}` | {p.type.__name__} | {cell(p.default)} | {swept} | {cell(p.help)} |"
        )
    lines.append("")

    if scn.plots:
        lines.append("Report plots:")
        lines.append("")
        for plot in scn.plots:
            axes = "log-log" if plot.logx and plot.logy else (
                "log-y" if plot.logy else ("log-x" if plot.logx else "linear")
            )
            series = ", ".join(f"`{y}`" for y in plot.ys)
            grouping = f", grouped by `{plot.group_by}`" if plot.group_by else ""
            lines.append(
                f"- **{plot.title}** — {plot.kind}, {axes}: {series} vs "
                f"`{plot.x}`{grouping}"
            )
        lines.append("")
    return "\n".join(lines)


def scenarios_markdown() -> str:
    """Render the complete ``docs/scenarios.md`` content."""
    sections = [_PREAMBLE]
    for scn in builtin_scenarios():
        sections.append(_scenario_section(scn))
    return "\n".join(sections).rstrip() + "\n"


if __name__ == "__main__":
    print(scenarios_markdown(), end="")
