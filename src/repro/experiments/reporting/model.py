"""Report model: stored records grouped into per-scenario summaries.

The HTML renderer never touches :class:`~repro.experiments.store.ResultStore`
directly; this module turns its flat record stream into
:class:`ScenarioReport` objects that already answer the questions a page
needs -- which grid axes actually varied, which params were fixed, what
the status tally is, which result keys are numeric metrics -- and into
plot-ready :class:`~repro.experiments.reporting.svg.Series` lists for the
scenario's declared (or synthesised) :class:`~repro.experiments.registry.PlotSpec`\\ s.

Everything here sorts: records by canonical params then seed, axis values
by type-stable keys, metric columns lexicographically -- so the rendered
site is deterministic for a fixed store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from numbers import Real
from typing import Any

from repro.experiments.registry import PlotSpec, Scenario, ScenarioNotFound, get_scenario
from repro.experiments.reporting.svg import Series
from repro.experiments.store import ResultRecord
from repro.experiments.sweep import canonical_json

#: Cap on synthesised default-plot series, so a scenario returning dozens
#: of numeric keys still renders a readable chart.
MAX_DEFAULT_SERIES = 4


def _sort_key(value: Any) -> tuple:
    """Type-stable ordering for mixed axis values (ints before strings)."""
    if isinstance(value, bool):
        return (1, "", int(value))
    if isinstance(value, Real):
        return (0, "", float(value))
    return (2, str(value), 0.0)


def _is_metric(value: Any) -> bool:
    """Numeric, plottable result values (bools are verdicts, not metrics)."""
    return isinstance(value, Real) and not isinstance(value, bool)


@dataclass
class ScenarioReport:
    """Everything one scenario's report page needs, precomputed."""

    name: str
    records: list[ResultRecord]
    #: Params taking more than one distinct value across the records.
    axes: dict[str, list] = field(default_factory=dict)
    #: Params constant across every record.
    fixed: dict[str, Any] = field(default_factory=dict)
    n_ok: int = 0
    n_error: int = 0
    n_timeout: int = 0
    #: Sorted union of result keys over ok records (all types).
    result_keys: list[str] = field(default_factory=list)
    #: The numeric subset of ``result_keys``.
    metric_keys: list[str] = field(default_factory=list)
    #: Registry entry, when the scenario is still registered (a store can
    #: outlive a scenario rename; pages degrade gracefully).
    scenario: Scenario | None = None

    @property
    def total(self) -> int:
        """Number of records, all statuses."""
        return len(self.records)

    @property
    def duration_s(self) -> float:
        """Total recorded compute time across the records."""
        return sum(r.duration_s for r in self.records)

    def plot_specs(self) -> tuple[PlotSpec, ...]:
        """Declared specs, or one synthesised metrics-vs-first-axis plot."""
        if self.scenario is not None and self.scenario.plots:
            return self.scenario.plots
        return self._default_specs()

    def _default_specs(self) -> tuple[PlotSpec, ...]:
        if not self.metric_keys:
            return ()
        numeric_axes = [a for a in self.axes if all(_is_metric(v) for v in self.axes[a])]
        ys = tuple(self.metric_keys[:MAX_DEFAULT_SERIES])
        if numeric_axes:
            x = numeric_axes[0]
            return (
                PlotSpec(
                    name="default",
                    title=f"{self.name}: metrics vs {x}",
                    x=x,
                    ys=ys,
                    kind="line",
                    x_label=x,
                ),
            )
        if self.axes:
            x = next(iter(self.axes))
            return (
                PlotSpec(
                    name="default",
                    title=f"{self.name}: metrics by {x}",
                    x=x,
                    ys=ys,
                    kind="bar",
                    x_label=x,
                ),
            )
        return ()


def lookup(record: ResultRecord, key: str) -> Any:
    """Resolve a plot key against the result payload, then the params."""
    if record.result and key in record.result:
        return record.result[key]
    return record.params.get(key)


def build_reports(records: list[ResultRecord]) -> list[ScenarioReport]:
    """Group a record stream into sorted, fully-summarised scenario reports."""
    by_scenario: dict[str, list[ResultRecord]] = {}
    for record in records:
        by_scenario.setdefault(record.scenario, []).append(record)

    reports = []
    for name in sorted(by_scenario):
        group = sorted(
            by_scenario[name], key=lambda r: (canonical_json(r.params), r.seed, r.key)
        )
        values: dict[str, list] = {}
        for record in group:
            for param, value in record.params.items():
                bucket = values.setdefault(param, [])
                if value not in bucket:
                    bucket.append(value)
        axes = {
            p: sorted(vals, key=_sort_key) for p, vals in sorted(values.items()) if len(vals) > 1
        }
        fixed = {p: vals[0] for p, vals in sorted(values.items()) if len(vals) == 1}
        result_keys = sorted(
            {k for r in group if r.status == "ok" and r.result for k in r.result}
        )
        metric_keys = [
            k
            for k in result_keys
            if any(
                _is_metric(r.result.get(k))
                for r in group
                if r.status == "ok" and r.result
            )
        ]
        try:
            scenario = get_scenario(name)
        except ScenarioNotFound:
            scenario = None
        reports.append(
            ScenarioReport(
                name=name,
                records=group,
                axes=axes,
                fixed=fixed,
                n_ok=sum(1 for r in group if r.status == "ok"),
                n_error=sum(1 for r in group if r.status == "error"),
                n_timeout=sum(1 for r in group if r.status == "timeout"),
                result_keys=result_keys,
                metric_keys=metric_keys,
                scenario=scenario,
            )
        )
    return reports


def plot_series(
    report: ScenarioReport, spec: PlotSpec
) -> tuple[list[Series], list[str]]:
    """Resolve one :class:`PlotSpec` into SVG series over the ok records.

    Returns ``(series, categories)``: for ``bar`` specs the x values are
    treated as sorted categories and each point carries its category
    index; for ``line``/``scatter`` the categories list is empty.  Line
    series average y over records sharing an x (replicates would otherwise
    zigzag); scatter keeps every record as its own mark.
    """
    ok = [r for r in report.records if r.status == "ok" and r.result]

    def groups() -> list[tuple[str, list[ResultRecord]]]:
        if spec.group_by is None:
            return [("", ok)]
        split: dict[Any, list[ResultRecord]] = {}
        for record in ok:
            split.setdefault(lookup(record, spec.group_by), []).append(record)
        return [
            (f"{spec.group_by}={value}", split[value])
            for value in sorted(split, key=_sort_key)
        ]

    if spec.kind == "bar":
        categories = sorted(
            {str(lookup(r, spec.x)) for r in ok if lookup(r, spec.x) is not None}
        )
        index = {c: i for i, c in enumerate(categories)}
        series = []
        for y_key in spec.ys:
            for suffix, recs in groups():
                label = f"{y_key} {suffix}".strip()
                sums: dict[int, list[float]] = {}
                for record in recs:
                    x_val, y_val = lookup(record, spec.x), lookup(record, y_key)
                    if x_val is None or not _is_metric(y_val):
                        continue
                    sums.setdefault(index[str(x_val)], []).append(float(y_val))
                points = [(i, sum(vs) / len(vs)) for i, vs in sorted(sums.items())]
                if points:
                    series.append(Series.of(label, points))
        return series, categories

    series = []
    for y_key in spec.ys:
        for suffix, recs in groups():
            label = f"{y_key} {suffix}".strip()
            raw: list[tuple[float, float]] = []
            for record in recs:
                x_val, y_val = lookup(record, spec.x), lookup(record, y_key)
                if not _is_metric(x_val) or not _is_metric(y_val):
                    continue
                raw.append((float(x_val), float(y_val)))
            if spec.kind == "line":
                buckets: dict[float, list[float]] = {}
                for x, y in raw:
                    buckets.setdefault(x, []).append(y)
                raw = [(x, sum(ys) / len(ys)) for x, ys in sorted(buckets.items())]
            if raw:
                series.append(Series.of(label, raw))
    return series, []
