"""Cross-BENCH trend page: speedup history across benchmark artifacts.

Every CI bench-smoke run leaves ``BENCH_*.json`` artifacts; laid side by
side in filename order they are a history.  This module walks each file
with :func:`~repro.experiments.reporting.site.extract_speedups`, lines the
measurements up per label, and renders one trend chart plus the value
table -- the "living perf dashboard" half of the regression gate
(``benchmarks/check_regression.py`` is the enforcing half; this page is
the human-readable view of the same numbers).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.reporting.html import _page, escape
from repro.experiments.reporting.site import extract_speedups
from repro.experiments.reporting.svg import Series, render_plot


def bench_history(
    bench_paths: list[str | Path],
) -> tuple[list[str], dict[str, list[tuple[int, float]]]]:
    """Per-label speedup series across benchmark files in name order.

    Returns ``(file_names, {label: [(file_index, speedup), ...]})``; a
    label missing from some file simply has no point there.  Unreadable
    files are skipped (a trend page should not die on one torn artifact).
    """
    ordered = sorted((Path(p) for p in bench_paths), key=lambda p: p.name)
    names: list[str] = []
    history: dict[str, list[tuple[int, float]]] = {}
    for path in ordered:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        index = len(names)
        names.append(path.name)
        for label, speedup in extract_speedups(data):
            history.setdefault(label, []).append((index, speedup))
    return names, history


def render_trends_page(bench_paths: list[str | Path], back_link: bool = False) -> str:
    """The cross-BENCH trend page (chart + value table)."""
    names, history = bench_history(bench_paths)
    parts = ["<h1>Benchmark trends</h1>"]
    if back_link:
        parts.append('<p><a href="index.html">&larr; all scenarios</a></p>')
    if not history:
        parts.append('<p class="muted">no benchmark measurements found</p>')
        return _page("Benchmark trends", "\n".join(parts))
    parts.append(
        f"<p>{len(history)} measurement label(s) across {len(names)} benchmark "
        "file(s), in filename order.</p>"
    )
    series = [Series.of(label, points) for label, points in sorted(history.items())]
    parts.append('<div class="plots">')
    parts.append(
        render_plot(
            "Speedup history",
            series,
            x_label="benchmark file (ordinal)",
            y_label="x faster",
        )
    )
    parts.append("</div>")
    head = "".join(f"<th>{escape(n)}</th>" for n in names)
    rows = []
    for label in sorted(history):
        by_index = dict(history[label])
        cells = "".join(
            f"<td>{by_index[i]:.3f}</td>" if i in by_index else "<td></td>"
            for i in range(len(names))
        )
        rows.append(f"<tr><td>{escape(label)}</td>{cells}</tr>")
    parts.append(
        f"<table><thead><tr><th>label</th>{head}</tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )
    return _page("Benchmark trends", "\n".join(parts))
