"""Module entry point: ``python -m repro.experiments <subcommand>``.

Dispatches straight to :func:`repro.experiments.cli.main`; see that
module for the subcommands (list / run / report / worker / merge).
"""

import sys

from repro.experiments.cli import main

sys.exit(main())
