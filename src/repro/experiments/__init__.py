"""Experiment harness: scenario registry, sweep runner, result store.

Register a scenario::

    from repro.experiments import ParamSpec, scenario

    @scenario("my-sweep", params=[ParamSpec("n", int, 100)],
              default_grid={"n": [50, 100, 200]})
    def my_sweep(*, seed, n):
        return {"answer": n}

Then ``python -m repro.experiments run my-sweep --workers 4`` expands the
grid, runs it on a pluggable execution backend (serial, process pool, or
a shared work-queue spool drained by worker daemons -- see
:mod:`repro.experiments.backends`), and persists one JSON record per
point under ``experiment-results/`` keyed by a content hash of (scenario,
version, params, seed) -- re-runs are served from cache.
"""

from repro.experiments.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    WorkQueueBackend,
    resolve_backend,
    run_worker,
)
from repro.experiments.registry import (
    ParamSpec,
    PlotSpec,
    Scenario,
    ScenarioNotFound,
    get_scenario,
    list_scenarios,
    load_builtin_scenarios,
    scenario,
)
from repro.experiments.runner import SweepReport, run_sweep
from repro.experiments.store import MergeSummary, ResultRecord, ResultStore, cache_key
from repro.experiments.sweep import SweepPoint, derive_seed, expand_grid

__all__ = [
    "ParamSpec",
    "PlotSpec",
    "Scenario",
    "ScenarioNotFound",
    "scenario",
    "get_scenario",
    "list_scenarios",
    "load_builtin_scenarios",
    "SweepPoint",
    "expand_grid",
    "derive_seed",
    "run_sweep",
    "SweepReport",
    "MergeSummary",
    "ResultStore",
    "ResultRecord",
    "cache_key",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "WorkQueueBackend",
    "resolve_backend",
    "run_worker",
]
