"""On-disk result store with content-hash cache keys.

Each completed sweep point is one JSON record under
``<root>/<scenario>/<cache_key>.json``.  The cache key hashes the
scenario name, its declared version, the package version, the resolved
params and the derived seed -- so re-running an unchanged sweep serves
every point from cache, while bumping a scenario's ``version`` (or the
package version) naturally invalidates stale results.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterator

import repro
from repro.experiments.sweep import canonical_json

DEFAULT_STORE = Path("experiment-results")


def atomic_write_text(path: Path, text: str) -> None:
    """Write via tmp-file + rename: a crash never leaves a truncated file
    that later poisons a cache or a work-queue spool."""
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def cache_key(
    scenario_name: str,
    params: dict[str, Any],
    seed: int,
    scenario_version: str = "1",
    code_version: str | None = None,
) -> str:
    """Content hash identifying one experiment task."""
    payload = canonical_json(
        {
            "scenario": scenario_name,
            "scenario_version": scenario_version,
            "code_version": code_version if code_version is not None else repro.__version__,
            "params": params,
            "seed": seed,
        }
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


@dataclass
class ResultRecord:
    """One persisted experiment result (or captured failure)."""

    key: str
    scenario: str
    params: dict[str, Any]
    seed: int
    replicate: int
    status: str  # "ok" | "error" | "timeout"
    result: dict | None = None
    error: str | None = None
    duration_s: float = 0.0
    scenario_version: str = "1"
    code_version: str = ""
    meta: dict = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialise to the stored JSON form (sorted keys, indented)."""
        # Strict by design: a `default=repr` fallback would silently
        # stringify a non-serializable result, so a cached replay would
        # return a different payload than the fresh run.  Backends validate
        # serializability when the result is produced (`execute_point`)
        # and fail the point with a clear error instead.
        return json.dumps(asdict(self), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ResultRecord":
        """Parse a stored record, ignoring unknown fields (forward compat)."""
        data = json.loads(text)
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass(eq=False)
class MergeSummary:
    """What one :meth:`ResultStore.merge` did, per the destination's view.

    Compares equal to a plain int (its ``imported`` count) so existing
    callers of the old ``merge() -> int`` keep working.
    """

    scanned: int = 0
    imported: int = 0
    skipped: int = 0
    replaced: int = 0
    duration_s: float = 0.0
    per_scenario: dict[str, int] = field(default_factory=dict)

    def __int__(self) -> int:
        return self.imported

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MergeSummary):
            return asdict(self) == asdict(other)
        if isinstance(other, int):
            return self.imported == other
        return NotImplemented


class ResultStore:
    """Directory-backed store: write-once JSON records keyed by cache key."""

    def __init__(self, root: str | os.PathLike = DEFAULT_STORE):
        self.root = Path(root)

    def _path(self, scenario_name: str, key: str) -> Path:
        return self.root / scenario_name / f"{key}.json"

    def has(self, scenario_name: str, key: str) -> bool:
        """Whether a record exists for this (scenario, cache key)."""
        return self._path(scenario_name, key).is_file()

    def get(self, scenario_name: str, key: str) -> ResultRecord | None:
        """Load one record by cache key, or None when absent."""
        path = self._path(scenario_name, key)
        if not path.is_file():
            return None
        return ResultRecord.from_json(path.read_text())

    def put(self, record: ResultRecord) -> Path:
        """Persist a record atomically; returns the file it landed in."""
        path = self._path(record.scenario, record.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, record.to_json())
        return path

    def iter_records(self, scenario_name: str | None = None) -> Iterator[ResultRecord]:
        """Yield stored records in deterministic (scenario, key) order,
        optionally restricted to one scenario.  A missing root or scenario
        directory yields nothing -- an empty store is not an error."""
        if not self.root.is_dir():
            return
        dirs = (
            [self.root / scenario_name]
            if scenario_name is not None
            else sorted(p for p in self.root.iterdir() if p.is_dir())
        )
        for directory in dirs:
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("*.json")):
                yield ResultRecord.from_json(path.read_text())

    def count(self, scenario_name: str | None = None) -> int:
        """Number of stored records (optionally for one scenario)."""
        return sum(1 for _ in self.iter_records(scenario_name))

    def merge(
        self, other: "ResultStore | str | os.PathLike", overwrite: bool = False
    ) -> "MergeSummary":
        """Import every record from another store root into this one.

        Cache keys are content hashes, so records written by remote queue
        workers into local shards integrate under the same keys a central
        run would have used.  Existing records win unless ``overwrite``
        (the store is write-once by convention).

        The write path is batched, not ``put()``-per-record: destination
        keys are snapshotted with one directory listing per scenario (no
        per-record ``stat``), and every imported record is staged through
        a single reused temp file and landed with an atomic
        ``os.replace`` -- so a fleet's worth of worker shards merges in
        O(records) cheap syscalls, and a crash mid-merge leaves at most
        one ``.merge-*.tmp`` staging file, never a truncated record.
        Records are still parsed on the way through: a malformed source
        file raises instead of poisoning the destination.

        Concurrent writers are safe: a worker ``put()``-ing the same key
        during the merge races on the final ``os.replace`` only, and both
        sides write complete records, so the destination always holds one
        intact version.

        Returns a :class:`MergeSummary` (compares equal to its
        ``imported`` count for backward compatibility).
        """
        source = other if isinstance(other, ResultStore) else ResultStore(other)
        if source.root.resolve() == self.root.resolve():
            raise ValueError(f"cannot merge a store into itself: {self.root}")
        start = time.perf_counter()
        summary = MergeSummary()
        if not source.root.is_dir():
            return summary
        for source_dir in sorted(p for p in source.root.iterdir() if p.is_dir()):
            scenario_name = source_dir.name
            dest_dir = self.root / scenario_name
            dest_dir.mkdir(parents=True, exist_ok=True)
            try:
                with os.scandir(dest_dir) as entries:
                    existing = {e.name for e in entries if e.name.endswith(".json")}
            except FileNotFoundError:
                existing = set()
            staging = dest_dir / f".merge-{os.getpid()}.tmp"
            copied = 0
            try:
                for path in sorted(source_dir.glob("*.json")):
                    summary.scanned += 1
                    if path.name in existing:
                        if not overwrite:
                            summary.skipped += 1
                            continue
                        summary.replaced += 1
                    record = ResultRecord.from_json(path.read_text())
                    staging.write_text(record.to_json())
                    os.replace(staging, dest_dir / path.name)
                    summary.imported += 1
                    copied += 1
            finally:
                staging.unlink(missing_ok=True)
            if copied:
                summary.per_scenario[scenario_name] = copied
        summary.duration_s = time.perf_counter() - start
        return summary
