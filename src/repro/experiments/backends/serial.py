"""In-process backend: execute each task inline at submit time.

The reference backend -- no processes, no timeouts, deterministic order.
Because it runs :func:`~repro.experiments.backends.base.execute_point`
directly, a serial sweep is bit-identical to a pool or queue one.
"""

from __future__ import annotations

from repro.experiments.backends.base import ExecutionBackend, Task, execute_point


class SerialBackend(ExecutionBackend):
    """Run tasks inline, one at a time, in submission order."""

    name = "serial"
    synchronous = True

    def __init__(self) -> None:
        self._done: list[tuple[Task, dict]] = []

    def submit(self, task: Task) -> None:
        """Execute the task inline, right now (timeouts are unsupported)."""
        if task.timeout is not None:
            raise ValueError(
                "SerialBackend cannot enforce a per-task timeout on in-process "
                "execution; use the pool or queue backend"
            )
        self.trace.task("running", task.index, backend=self.name)
        outcome = execute_point(
            task.point.scenario, task.point.params, task.point.seed, task.scenario_modules
        )
        self._done.append((task, outcome))

    def poll(self) -> list[tuple[Task, dict]]:
        """Hand back everything submit() already finished."""
        batch, self._done = self._done, []
        return batch

    def shutdown(self) -> None:
        """Drop any uncollected outcomes (nothing else to release)."""
        self._done.clear()
