"""Local process-pool backend (the extracted PR-1/PR-2 pool runner).

Pool hygiene semantics are preserved exactly: workers come from an explicit
``spawn`` context by default (no fork-inherited state; scenario modules are
shipped by name and re-imported), are recycled after ``maxtasksperchild``
tasks, and completed futures are collected as they finish -- not in grid
order -- so one slow point never delays timeout detection for the points
behind it.

Per-task deadlines approximate "timeout from actual start": at most
``workers`` tasks hold a deadline at once; a new one is armed (in submit
order) whenever a slot resolves.  A task that outlives its deadline is
reported as a ``timeout`` outcome and its worker is abandoned -- shutdown
then terminates the pool rather than joining it, so the sweep returns.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback

from repro.experiments.backends.base import ExecutionBackend, Task, execute_point


class ProcessPoolBackend(ExecutionBackend):
    """Fan tasks out to a local ``multiprocessing.Pool``."""

    name = "pool"

    def __init__(
        self,
        workers: int = 2,
        mp_start_method: str = "spawn",
        maxtasksperchild: int | None = 16,
    ) -> None:
        self.workers = max(workers, 1)
        ctx = multiprocessing.get_context(mp_start_method)
        self._pool = ctx.Pool(processes=self.workers, maxtasksperchild=maxtasksperchild)
        self._tasks: dict[int, Task] = {}
        self._asyncs: dict[int, multiprocessing.pool.AsyncResult] = {}
        self._submit_order: list[int] = []
        self._deadlines: dict[int, float] = {}
        self._timed_out = False
        self._any_timeout = False

    def submit(self, task: Task) -> None:
        """Dispatch the task to the pool and arm its deadline if it has one."""
        point = task.point
        self._tasks[task.index] = task
        self._submit_order.append(task.index)
        self.trace.task("dispatched", task.index, backend=self.name)
        self._asyncs[task.index] = self._pool.apply_async(
            execute_point,
            (point.scenario, point.params, point.seed, task.scenario_modules),
        )
        if task.timeout is not None:
            self._any_timeout = True
        self._rearm_deadlines()

    def _rearm_deadlines(self) -> None:
        if not self._any_timeout:
            return
        # Drop already-finished indices so long sweeps stay O(outstanding).
        if len(self._submit_order) > 2 * len(self._tasks) + 16:
            self._submit_order = [i for i in self._submit_order if i in self._tasks]
        armed = sum(1 for idx in self._deadlines if idx in self._tasks)
        for idx in self._submit_order:
            if armed >= self.workers:
                break
            task = self._tasks.get(idx)
            if task is None or task.timeout is None or idx in self._deadlines:
                continue
            self._deadlines[idx] = time.monotonic() + task.timeout
            armed += 1

    def poll(self) -> list[tuple[Task, dict]]:
        """Collect ready results plus any tasks past their deadline."""
        batch: list[tuple[Task, dict]] = []
        for idx in list(self._tasks):
            if not self._asyncs[idx].ready():
                continue
            task = self._tasks.pop(idx)
            try:
                outcome = self._asyncs.pop(idx).get()
            except Exception:
                # Worker crashed (e.g. killed mid-task): capture, don't lose
                # the rest of the sweep's bookkeeping.
                outcome = {
                    "status": "error",
                    "error": traceback.format_exc(),
                    "duration_s": 0.0,
                }
            batch.append((task, outcome))
        now = time.monotonic()
        for idx in list(self._tasks):
            deadline = self._deadlines.get(idx)
            if deadline is not None and now > deadline:
                self._timed_out = True
                task = self._tasks.pop(idx)
                self._asyncs.pop(idx)
                self.trace.event("pool_timeout", index=idx, timeout_s=task.timeout)
                batch.append(
                    (
                        task,
                        {
                            "status": "timeout",
                            "error": f"task exceeded {task.timeout}s",
                            "duration_s": float(task.timeout),
                        },
                    )
                )
        if batch:
            self._rearm_deadlines()
        return batch

    def shutdown(self) -> None:
        """Close the pool (terminate instead when a worker timed out)."""
        if self._timed_out:
            # A hung worker would make close()+join() block forever.
            self._pool.terminate()
        else:
            self._pool.close()
        self._pool.join()
