"""Fleet controller: launch and retire worker daemons from spool depth.

The work-queue backend decouples sweep submission from execution, but
someone still has to decide *how many* daemons drain the spool.  This
module is that someone: a supervisor loop that watches spool depth and
drain rate and keeps a local fleet of ``python -m repro.experiments
worker`` daemons sized to the backlog::

    python -m repro.experiments fleet /shared/q --max-workers 8 --drain

Control loop (one tick per ``interval`` seconds):

- **Scale up** when the backlog per live worker exceeds
  ``backlog_per_worker`` -- straight to the target size (a deep spool
  should not wait N ticks for N workers), capped at ``max_workers``.
- **Scale down** with hysteresis: only after the spool has stayed below
  the scale-down threshold for ``cooldown`` consecutive seconds, and one
  worker per tick -- a brief lull never mass-retires a warm fleet.
  Retirement is cooperative: the controller touches the worker's private
  stop sentinel and the daemon exits after its current point, never
  mid-task.
- **Drain mode** (``drain=True``) exits once the spool is empty, every
  claim has resolved and the fleet is retired -- the batch configuration
  the drain benchmark and CI use.  Without it the controller runs until
  the operator's ``STOP`` sentinel (service mode).

Every tick emits telemetry (``spool_depth``, ``fleet_workers``,
``drain_rate`` gauges; ``worker_spawned`` / ``worker_retired`` events)
through the ambient tracer or a ``fleet-<pid>.jsonl`` trace when
``REPRO_TRACE_DIR`` is set, which the timeline page renders as the fleet
utilisation chart (see ``docs/observability.md``).

Workers retired or crashed are reaped on every tick, so the controller's
exit guarantee is strong: when :meth:`FleetController.run` returns, no
daemon it spawned is left running (asserted by ``tests/test_fleet.py``).
"""

from __future__ import annotations

import logging
import os
import subprocess
import sys
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.experiments.backends.spool import QueuePaths, ShardedSpool
from repro.obs.trace import NULL_TRACER, TraceWriter, current_tracer, trace_dir_from_env

logger = logging.getLogger("repro.experiments.fleet")


@dataclass
class FleetReport:
    """What one controller run did: provisioning counts and peaks."""

    spawned: int = 0
    retired: int = 0
    peak_workers: int = 0
    ticks: int = 0
    final_depth: int = 0
    #: Worker exit codes observed while reaping (diagnostics).
    exit_codes: list[int] = field(default_factory=list)


class _Worker:
    """One spawned daemon plus its private stop sentinel."""

    def __init__(self, proc: subprocess.Popen, stop_file: Path):
        self.proc = proc
        self.stop_file = stop_file
        self.retiring = False


class FleetController:
    """Supervise a local worker fleet against one spool directory.

    ``store_prefix`` gives each worker its own result-store shard
    (``<prefix>-<n>``) for later ``merge``; ``inline`` / ``claim_batch``
    / ``max_idle`` / ``mp_start_method`` are passed through to the
    workers.  ``worker_env`` extends the daemons' environment (tests use
    it for ``PYTHONPATH``).
    """

    def __init__(
        self,
        queue_dir: str | os.PathLike,
        min_workers: int = 0,
        max_workers: int = 4,
        backlog_per_worker: int = 4,
        interval: float = 0.5,
        cooldown: float = 2.0,
        store_prefix: str | None = None,
        inline: bool = False,
        claim_batch: int = 1,
        max_idle: float | None = None,
        mp_start_method: str = "spawn",
        worker_env: dict[str, str] | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if min_workers > max_workers:
            raise ValueError("min_workers cannot exceed max_workers")
        self.paths = QueuePaths(queue_dir)
        self.paths.ensure()
        self.spool = ShardedSpool(self.paths)
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.backlog_per_worker = max(1, backlog_per_worker)
        self.interval = interval
        self.cooldown = cooldown
        self.store_prefix = store_prefix
        self.inline = inline
        self.claim_batch = max(1, claim_batch)
        self.max_idle = max_idle
        self.mp_start_method = mp_start_method
        self.say = progress or logger.info
        self.nonce = uuid.uuid4().hex[:8]
        self._workers: list[_Worker] = []
        self._spawn_serial = 0
        self._env = dict(os.environ)
        if worker_env:
            self._env.update(worker_env)
        self.report = FleetReport()

    # -- provisioning ----------------------------------------------------------

    def _spawn(self) -> None:
        serial = self._spawn_serial
        self._spawn_serial += 1
        stop_file = self.paths.root / f"STOP.fleet-{self.nonce}-{serial}"
        argv = [
            sys.executable,
            "-m",
            "repro.experiments",
            "worker",
            str(self.paths.root),
            "--stop-file",
            str(stop_file),
            "--claim-batch",
            str(self.claim_batch),
            "--mp-start",
            self.mp_start_method,
        ]
        if self.store_prefix is not None:
            argv += ["--store", f"{self.store_prefix}-{serial}"]
        if self.max_idle is not None:
            argv += ["--max-idle", str(self.max_idle)]
        if self.inline:
            argv.append("--inline")
        proc = subprocess.Popen(
            argv, env=self._env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )
        self._workers.append(_Worker(proc, stop_file))
        self.report.spawned += 1
        self.report.peak_workers = max(self.report.peak_workers, len(self._workers))

    def _retire_one(self) -> None:
        # Newest first: the longest-running daemon keeps its warm caches.
        for worker in reversed(self._workers):
            if not worker.retiring:
                worker.retiring = True
                worker.stop_file.touch()
                self.report.retired += 1
                return

    def _reap(self) -> None:
        """Drop exited workers (retired or crashed) from the live list."""
        alive = []
        for worker in self._workers:
            code = worker.proc.poll()
            if code is None:
                alive.append(worker)
            else:
                self.report.exit_codes.append(code)
                worker.stop_file.unlink(missing_ok=True)
        self._workers = alive

    def _live_count(self) -> int:
        return sum(1 for w in self._workers if not w.retiring)

    def _claims_outstanding(self) -> int:
        try:
            with os.scandir(self.paths.claims) as entries:
                return sum(1 for e in entries if e.name.endswith(".json"))
        except FileNotFoundError:
            return 0

    # -- the control loop ------------------------------------------------------

    def run(self, drain: bool = False, max_runtime: float | None = None) -> FleetReport:
        """Run the control loop; returns when drained (``drain=True``),
        when the operator's ``STOP`` sentinel appears, or after
        ``max_runtime`` seconds.  All spawned daemons have exited by the
        time this returns -- the zero-orphan guarantee."""
        tracer = current_tracer()
        own_trace = None
        trace_dir = trace_dir_from_env()
        if tracer is NULL_TRACER and trace_dir is not None:
            try:
                own_trace = TraceWriter(
                    Path(trace_dir) / f"fleet-{os.getpid()}.jsonl",
                    source="fleet",
                    queue_dir=str(self.paths.root),
                )
                tracer = own_trace
            except OSError:
                tracer = NULL_TRACER
        start = time.monotonic()
        below_since: float | None = None
        prev_depth: int | None = None
        prev_tick = start
        try:
            while True:
                self.report.ticks += 1
                self._reap()
                depth = self.spool.depth()
                claims = self._claims_outstanding()
                now = time.monotonic()
                drain_rate = 0.0
                if prev_depth is not None and now > prev_tick:
                    drain_rate = max(0.0, (prev_depth - depth) / (now - prev_tick))
                prev_depth, prev_tick = depth, now
                live = self._live_count()
                tracer.gauge("spool_depth", depth)
                tracer.gauge("fleet_workers", live)
                tracer.gauge("drain_rate", round(drain_rate, 3))
                if self.paths.stop.exists():
                    self.say("fleet: operator STOP sentinel seen")
                    break
                if max_runtime is not None and now - start > max_runtime:
                    self.say("fleet: max runtime reached")
                    break
                if drain and depth == 0 and claims == 0:
                    self.say("fleet: spool drained")
                    break
                backlog = depth + claims
                target = min(
                    self.max_workers,
                    max(
                        self.min_workers,
                        -(-backlog // self.backlog_per_worker),  # ceil div
                    ),
                )
                if target > live:
                    for _ in range(target - live):
                        self._spawn()
                    tracer.event("worker_spawned", count=target - live, workers=target)
                    self.say(f"fleet: scaled up to {target} worker(s) (depth {depth})")
                    below_since = None
                elif target < live:
                    # Hysteresis: a backlog must stay low for a full
                    # cooldown before anyone is dismissed, then one per
                    # tick -- lulls are cheap, respawns are not.
                    if below_since is None:
                        below_since = now
                    elif now - below_since >= self.cooldown:
                        self._retire_one()
                        tracer.event("worker_retired", workers=self._live_count())
                        self.say(f"fleet: retiring one worker (depth {depth})")
                else:
                    below_since = None
                time.sleep(self.interval)
        finally:
            self._shutdown()
            self.report.final_depth = self.spool.depth()
            tracer.event(
                "fleet_exit",
                spawned=self.report.spawned,
                retired=self.report.retired,
                peak=self.report.peak_workers,
                depth=self.report.final_depth,
            )
            if own_trace is not None:
                own_trace.close()
        return self.report

    def _shutdown(self) -> None:
        """Stop every remaining worker and wait for it -- no orphans."""
        for worker in self._workers:
            worker.stop_file.touch()
        deadline = time.monotonic() + 15.0
        for worker in self._workers:
            try:
                worker.proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                worker.proc.terminate()
                try:
                    worker.proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    worker.proc.kill()
                    worker.proc.wait()
            self.report.exit_codes.append(worker.proc.returncode)
            worker.stop_file.unlink(missing_ok=True)
        self._workers.clear()


def run_fleet(
    queue_dir: str | os.PathLike,
    drain: bool = False,
    max_runtime: float | None = None,
    **kwargs,
) -> FleetReport:
    """Convenience wrapper: build a :class:`FleetController` and run it."""
    return FleetController(queue_dir, **kwargs).run(drain=drain, max_runtime=max_runtime)
