"""Sharded ticket spool: the work queue's on-disk layout and claim fast path.

The flat spool of PR 3 kept every unclaimed ticket in one ``tasks/``
directory and re-listed (and sorted) the whole thing on every claim --
O(spool) per claim, the dominant cost on 10³--10⁴-ticket sweeps.  This
module replaces it with a **hash-sharded spool** whose claims are
O(batch) amortised::

    <queue-dir>/
        spool.json             # {"schema": 1, "shards": N} layout marker
        shards/s00/<name>      # ticket files, shard = crc32(name) % N
        shards/s01/...
        index/s00.log          # per-shard ready index: one name per line
        tasks/                 # legacy flat dir (still drained, see below)
        claims/ results/ STOP  # unchanged (see backends/queue.py)

Three mechanisms keep claiming cheap without giving up the rename-lease
atomicity of the flat layout:

- **Append-on-enqueue ready index.**  Enqueueing a ticket atomically
  writes the file into its shard and appends one line to the shard's
  ``index/sNN.log``.  Claimants remember their byte offset into each
  index and read only the appended tail -- a claim consumes cached index
  entries and never lists a directory on the happy path.
- **Claim-is-still-a-rename.**  An index entry is a *hint*, not a lock:
  the claim itself is the same atomic ``os.rename`` into ``claims/`` as
  before, so racing daemons interleave harmlessly -- the loser's rename
  raises ``FileNotFoundError`` and it moves to the next entry.
- **Compact-on-claim.**  Stale hints (tickets another daemon already
  claimed) accumulate as rename misses; past a threshold the claimant
  rewrites the shard's index from an actual directory listing of that
  one shard -- bounded work, amortised over the misses that paid for it.

Claimants drain their *home shard* (derived from the pid) first, then
**steal from the deepest shard** (largest index tail), so load stays
balanced without any coordination.  A periodic **verification scan**
(full listing of all shards plus the legacy ``tasks/`` dir) backstops
liveness: a ticket whose index line was lost to a torn append or a
compaction race is found by the next verification pass, never stranded.

The legacy flat layout stays readable: a spool with no ``spool.json``
(or ``shards: 0``) enqueues into ``tasks/`` and claims by the old
sorted-scan, so old spools and ``layout="flat"`` benchmarks keep
working; a sharded spool also drains anything in ``tasks/`` during
verification scans, which is the migration path.

:class:`SpoolStats` counts index reads, rename misses, compactions and
full directory scans -- ``tests/test_spool.py`` pins the regression
guard that claiming N tickets performs O(1) full scans, not O(N).
"""

from __future__ import annotations

import json
import os
import time
import zlib
from collections import deque
from pathlib import Path

from repro.experiments.store import atomic_write_text

#: Default shard count for new spools: enough to keep per-shard listings
#: small at 10^4 tickets, few enough that verification scans stay cheap.
DEFAULT_SHARDS = 8

#: Rename misses tolerated per shard before the claimant compacts its
#: index from a directory listing.
COMPACT_MISS_THRESHOLD = 256

#: Seconds between verification scans (full listing of every shard and
#: the legacy dir) while a claimant keeps finding its indexes empty.
VERIFY_INTERVAL = 2.0


class SpoolStats:
    """Claim-path accounting: how much listing work the spool is doing."""

    __slots__ = (
        "enqueued",
        "claimed",
        "index_reads",
        "index_hits",
        "rename_misses",
        "compactions",
        "full_scans",
        "shard_steals",
    )

    def __init__(self) -> None:
        self.enqueued = 0
        self.claimed = 0
        self.index_reads = 0
        self.index_hits = 0
        self.rename_misses = 0
        self.compactions = 0
        self.full_scans = 0
        self.shard_steals = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (telemetry / test assertions)."""
        return {name: getattr(self, name) for name in self.__slots__}


class QueuePaths:
    """The spool directory layout (sharded, with the legacy flat dir).

    ``shards`` is resolved from the on-disk ``spool.json`` when present,
    so every process agrees on the layout regardless of what it was
    constructed with; ``ensure()`` writes the marker for new spools.
    ``shards=0`` selects the legacy flat layout (everything in
    ``tasks/``).
    """

    def __init__(self, root: str | os.PathLike, shards: int | None = None):
        self.root = Path(root)
        self.tasks = self.root / "tasks"
        self.shards_dir = self.root / "shards"
        self.index_dir = self.root / "index"
        self.claims = self.root / "claims"
        self.results = self.root / "results"
        self.stop = self.root / "STOP"
        self.marker = self.root / "spool.json"
        self._requested_shards = shards
        self.shards = self._resolve_shards(shards)

    def _resolve_shards(self, requested: int | None) -> int:
        try:
            return int(json.loads(self.marker.read_text())["shards"])
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            pass
        if requested is not None:
            return max(0, requested)
        # No marker: an existing flat spool (tickets already in tasks/)
        # keeps its layout; a brand-new directory gets the sharded one.
        if self.tasks.is_dir() and any(self.tasks.glob("*.json")):
            return 0
        return DEFAULT_SHARDS

    def ensure(self) -> None:
        """Create the spool subdirectories and layout marker (idempotent)."""
        for directory in (self.tasks, self.claims, self.results):
            directory.mkdir(parents=True, exist_ok=True)
        if self.shards:
            self.index_dir.mkdir(parents=True, exist_ok=True)
            for i in range(self.shards):
                self.shard_dir(i).mkdir(parents=True, exist_ok=True)
        if not self.marker.exists():
            try:
                atomic_write_text(
                    self.marker, json.dumps({"schema": 1, "shards": self.shards})
                )
            except OSError:
                pass  # racing ensure() from another process already wrote it

    def shard_of(self, name: str) -> int:
        """The shard a ticket name hashes to (stable across processes)."""
        return zlib.crc32(name.encode()) % self.shards if self.shards else 0

    def shard_dir(self, shard: int) -> Path:
        """The directory holding one shard's unclaimed tickets."""
        return self.shards_dir / f"s{shard:02d}"

    def index_path(self, shard: int) -> Path:
        """One shard's append-only ready-index log."""
        return self.index_dir / f"s{shard:02d}.log"

    def ticket_path(self, name: str) -> Path:
        """Where an unclaimed ticket of this name lives (sharded or flat)."""
        if self.shards:
            return self.shard_dir(self.shard_of(name)) / name
        return self.tasks / name

    def heartbeat(self, name: str) -> Path:
        """The heartbeat file a claimant touches while executing ``name``."""
        return self.claims / (name + ".hb")

    def rest(self, name: str) -> Path:
        """Owner-maintained sidecar: point positions not yet started."""
        return self.claims / (name + ".rest")

    def steal(self, name: str) -> Path:
        """Thief-created sidecar: point positions carved off this ticket."""
        return self.claims / (name + ".steal")


class ShardedSpool:
    """One process's view of the spool: enqueue, claim, depth.

    Holds the per-shard index cursors (byte offsets and cached ready
    deques), so construct one per daemon/collector and reuse it --
    a fresh instance re-reads the indexes from the start, which is
    correct but wasteful.
    """

    def __init__(self, paths: QueuePaths, stats: SpoolStats | None = None):
        self.paths = paths
        self.stats = stats or SpoolStats()
        n = max(paths.shards, 1)
        self._ready: list[deque[str]] = [deque() for _ in range(n)]
        self._offsets = [0] * n
        self._misses = [0] * n
        self._home = os.getpid() % n
        self._legacy: deque[str] = deque()
        self._last_verify = 0.0

    # -- enqueue ---------------------------------------------------------------

    def enqueue(self, name: str, payload: dict) -> Path:
        """Atomically write a ticket and append it to its shard's index."""
        path = self.paths.ticket_path(name)
        atomic_write_text(path, json.dumps(payload, sort_keys=True))
        if self.paths.shards:
            self._index_append(self.paths.shard_of(name), name)
        self.stats.enqueued += 1
        return path

    def _index_append(self, shard: int, name: str) -> None:
        # One small O_APPEND write per enqueue; a torn line is tolerated
        # by readers and the ticket is rescued by a verification scan.
        with open(self.paths.index_path(shard), "a", encoding="utf-8") as handle:
            handle.write(name + "\n")

    # -- claim -----------------------------------------------------------------

    def claim(self, limit: int) -> list[tuple[str, dict]]:
        """Claim up to ``limit`` tickets by atomic rename into ``claims/``.

        Consumes cached index entries first (home shard, then the deepest
        other shard), falling back to a rate-limited verification scan
        when every index is dry.  Unreadable tickets are failed into
        ``results/`` rather than spun on, exactly like the flat layout
        did.
        """
        if not self.paths.shards:
            # Faithful flat-layout semantics: the sorted listing IS the
            # ready state, taken fresh once per claim batch (it is stale
            # the moment another daemon claims, so it is never carried
            # across batches).  This is the O(spool)-per-claim cost the
            # sharded index removes -- and the drain benchmark's baseline.
            self._legacy.clear()
        claimed: list[tuple[str, dict]] = []
        while len(claimed) < limit:
            name = self._next_candidate()
            if name is None:
                break
            got = self._try_claim(name)
            if got is not None:
                claimed.append(got)
        return claimed

    def _try_claim(self, name: str) -> tuple[str, dict] | None:
        source = self.paths.ticket_path(name)
        target = self.paths.claims / name
        try:
            os.rename(source, target)
        except FileNotFoundError:
            # Not in its shard: a legacy flat-layout ticket (found by a
            # verification scan) lives in tasks/ -- claiming it from there
            # is the migration path for pre-sharding spools.
            legacy = self.paths.tasks / name
            claimed_legacy = False
            if self.paths.shards and legacy != source:
                try:
                    os.rename(legacy, target)
                    claimed_legacy = True
                except FileNotFoundError:
                    pass
            if not claimed_legacy:
                # Lost the race (or a stale index hint); account for it so
                # the shard compacts once misses pile up.
                self.stats.rename_misses += 1
                if self.paths.shards:
                    shard = self.paths.shard_of(name)
                    self._misses[shard] += 1
                    if self._misses[shard] >= COMPACT_MISS_THRESHOLD:
                        self._compact(shard)
                return None
        # Heartbeat immediately: rename preserves the ticket's mtime, so a
        # ticket that waited in the spool longer than the lease timeout
        # would otherwise look dead the instant it is claimed.
        self.paths.heartbeat(name).touch()
        try:
            ticket = json.loads(target.read_text())
        except (OSError, json.JSONDecodeError):
            atomic_write_text(
                self.paths.results / name,
                json.dumps(
                    {
                        "outcome": {
                            "status": "error",
                            "error": "unreadable ticket",
                            "duration_s": 0.0,
                        }
                    },
                    sort_keys=True,
                ),
            )
            target.unlink(missing_ok=True)
            self.paths.heartbeat(name).unlink(missing_ok=True)
            return None
        self.stats.claimed += 1
        return (name, ticket)

    def _next_candidate(self) -> str | None:
        if not self.paths.shards:
            return self._next_legacy(scan_always=True)
        home = self._ready[self._home]
        if home:
            return home.popleft()
        if self._refresh(self._home) and home:
            return home.popleft()
        # Home shard dry: steal from the deepest other shard (largest
        # unread index tail -- one stat per shard, no listings).
        deepest, depth = None, 0
        for shard in range(self.paths.shards):
            if shard == self._home:
                continue
            if self._ready[shard]:
                deepest, depth = shard, -1  # cached entries beat any stat
                break
            try:
                tail = self.paths.index_path(shard).stat().st_size - self._offsets[shard]
            except OSError:
                tail = 0
            if tail > depth:
                deepest, depth = shard, tail
        if deepest is not None and (self._ready[deepest] or depth > 0):
            if not self._ready[deepest]:
                self._refresh(deepest)
            if self._ready[deepest]:
                self.stats.shard_steals += 1
                return self._ready[deepest].popleft()
        if self._legacy:
            return self._legacy.popleft()
        return self._verify_scan()

    def _next_legacy(self, scan_always: bool = False) -> str | None:
        if not self._legacy and scan_always:
            # The flat layout's historical claim, kept verbatim (one
            # sorted ``glob`` pass per batch claim -- O(spool)): old
            # spools behave exactly as they always did, and the drain
            # benchmark's baseline measures the real legacy cost.
            self.stats.full_scans += 1
            try:
                self._legacy = deque(
                    path.name for path in sorted(self.paths.tasks.glob("*.json"))
                )
            except FileNotFoundError:
                return None
        return self._legacy.popleft() if self._legacy else None

    def _refresh(self, shard: int) -> bool:
        """Read the unread tail of a shard's index into its ready deque."""
        path = self.paths.index_path(shard)
        try:
            size = path.stat().st_size
        except OSError:
            return False
        if size <= self._offsets[shard]:
            return False
        self.stats.index_reads += 1
        with open(path, "r", encoding="utf-8") as handle:
            handle.seek(self._offsets[shard])
            tail = handle.read()
        # A torn append (no trailing newline yet) stays unread until the
        # writer finishes: only consume complete lines.
        consumed = tail.rfind("\n") + 1
        self._offsets[shard] += consumed
        names = [line for line in tail[:consumed].splitlines() if line]
        if names:
            self.stats.index_hits += len(names)
            self._ready[shard].extend(names)
        return bool(names)

    def _compact(self, shard: int) -> None:
        """Rewrite one shard's index from a listing of its directory."""
        self.stats.compactions += 1
        self._misses[shard] = 0
        try:
            present = sorted(
                e.name for e in os.scandir(self.paths.shard_dir(shard)) if e.name.endswith(".json")
            )
        except FileNotFoundError:
            present = []
        path = self.paths.index_path(shard)
        try:
            atomic_write_text(path, "".join(name + "\n" for name in present))
        except OSError:
            return
        # Our cursor now describes the rewritten file; cached entries are
        # replaced by the (authoritative) listing.
        try:
            self._offsets[shard] = path.stat().st_size
        except OSError:
            self._offsets[shard] = 0
        self._ready[shard] = deque(present)

    def _verify_scan(self) -> str | None:
        """Rate-limited full listing: rescues index-less tickets.

        Lost index lines (torn appends, compaction races) and legacy
        flat-layout tickets are invisible to the index fast path; this
        scan -- at most once per ``VERIFY_INTERVAL`` while the spool
        looks empty -- guarantees they are eventually claimed.
        """
        now = time.monotonic()
        if now - self._last_verify < VERIFY_INTERVAL:
            return None
        self._last_verify = now
        self.stats.full_scans += 1
        for shard in range(self.paths.shards):
            try:
                entries = sorted(
                    e.name
                    for e in os.scandir(self.paths.shard_dir(shard))
                    if e.name.endswith(".json")
                )
            except FileNotFoundError:
                continue
            known = set(self._ready[shard])
            fresh = [name for name in entries if name not in known]
            if fresh:
                self._ready[shard].extend(fresh)
        try:
            self._legacy = deque(
                sorted(e.name for e in os.scandir(self.paths.tasks) if e.name.endswith(".json"))
            )
        except FileNotFoundError:
            self._legacy = deque()
        for bucket in (self._ready[self._home], *self._ready, self._legacy):
            if bucket:
                return bucket.popleft()
        return None

    def readmit(self, name: str) -> None:
        """Atomically hand a claimed-but-unexecuted ticket back to the spool.

        The inverse of a claim: one rename from ``claims/`` into the
        ticket's shard (or the flat dir), plus an index line so other
        claimants find it without a scan.  Raises ``OSError`` when the
        claim is already gone (lost a race with the collector's reclaim).
        """
        os.rename(self.paths.claims / name, self.paths.ticket_path(name))
        if self.paths.shards:
            self._index_append(self.paths.shard_of(name), name)

    # -- introspection ---------------------------------------------------------

    def depth(self) -> int:
        """Exact number of unclaimed tickets (one listing pass; for
        gauges and the fleet controller, not the claim hot path)."""
        total = 0
        dirs = [self.paths.tasks]
        if self.paths.shards:
            dirs += [self.paths.shard_dir(i) for i in range(self.paths.shards)]
        for directory in dirs:
            try:
                total += sum(1 for e in os.scandir(directory) if e.name.endswith(".json"))
            except FileNotFoundError:
                continue
        return total
