"""The execution-backend seam: how sweep tasks reach compute.

``run_sweep`` resolves caching and grid order; everything between "this
point must run" and "here is its outcome dict" is a backend.  A backend
receives fully-described :class:`Task`\\ s (the sweep point plus its cache
key and version pins, so a task ticket is self-contained even on a remote
worker), executes them in whatever way it likes, and hands back
``(task, outcome)`` pairs in completion order -- the runner reassembles
grid order.

Outcome dicts are the same shape everywhere (and must be JSON-serializable,
since the work-queue backend ships them through files)::

    {"status": "ok",      "result": {...}, "duration_s": 1.2, "meta": {...}}
    {"status": "error",   "error": "<traceback>", "duration_s": 0.3, "meta": {...}}
    {"status": "timeout", "error": "...", "duration_s": 5.0}

``meta`` is the uniform timing/engine block (see
:class:`repro.obs.trace.RunMetaCollector`): every execution path fills it
with wall-clock duration plus the engine round/skip/step counts of the
CONGEST runs the point performed, so records carry the same schema whether
they ran serially, in a pool worker or on a queue daemon.  (A worker-side
``timeout`` outcome is synthesized by the watchdog, not by the task, so it
has no ``meta``.)

:func:`execute_point` is the single task-execution entry point shared by
every backend (inline, pool worker, queue daemon), so a serial run is
bit-identical to any distributed one.  When the ``REPRO_TRACE_DIR``
environment variable names a directory (exported by
``run --trace`` and inherited by every worker process), each execution
also writes a per-task JSONL trace there.
"""

from __future__ import annotations

import json
import math
import time
import traceback
from dataclasses import dataclass

from repro.experiments.registry import (
    BUILTIN_SCENARIO_MODULES,
    get_scenario,
    load_builtin_scenarios,
)
from repro.experiments.sweep import SweepPoint
from repro.obs.trace import (
    RunMetaCollector,
    TeeTracer,
    Tracer,
    TraceWriter,
    task_trace_path,
    trace_dir_from_env,
    use_tracer,
)


@dataclass(frozen=True)
class Task:
    """One self-contained unit of sweep work.

    Carries everything a worker needs without access to the submitting
    process: the point itself, the cache key and version pins (so remote
    workers can persist full :class:`~repro.experiments.store.ResultRecord`
    shards under the same keys), the scenario modules to re-import, and the
    runtime budget.
    """

    point: SweepPoint
    key: str
    scenario_version: str
    code_version: str
    scenario_modules: tuple[str, ...] = ()
    timeout: float | None = None

    @property
    def index(self) -> int:
        return self.point.index


def _json_equal(a, b) -> bool:
    """Equality after a JSON round-trip: NaN equals itself (it serializes
    and replays identically), but a tuple is not the list it comes back as
    and non-string dict keys are not the strings they come back as."""
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (math.isnan(a) and math.isnan(b))
    if type(a) is not type(b):
        return False
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(_json_equal(a[k], b[k]) for k in a)
    if isinstance(a, list):
        return len(a) == len(b) and all(map(_json_equal, a, b))
    return a == b


class ExecutionBackend:
    """submit / poll / shutdown lifecycle shared by all backends.

    Contract: every submitted task eventually appears in exactly one
    ``poll()`` batch (as ``(task, outcome)``), even on worker crash or
    timeout -- backends capture failures as outcome dicts, never raise them
    through ``poll``.  ``shutdown`` must release resources and is called
    exactly once, also on error paths.
    """

    #: Registry name ("serial", "pool", "queue"); set by subclasses.
    name = "abstract"

    #: Where backend-side telemetry (task lifecycle, lease reclaims, spool
    #: depth) goes; the null tracer by default, assigned by ``run_sweep``
    #: when the sweep is traced.
    trace: Tracer = Tracer()

    #: True when submit() completes the task before returning (the runner
    #: then drains after every submit so progress streams per point;
    #: asynchronous backends are only drained from the collection loop).
    synchronous = False

    def submit(self, task: Task) -> None:
        """Accept one task for execution (synchronous backends finish it here)."""
        raise NotImplementedError

    def poll(self) -> list[tuple[Task, dict]]:
        """Completed tasks since the last poll (possibly empty, non-blocking)."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release backend resources (pools, spools, spawned daemons)."""
        raise NotImplementedError


def execute_point(
    scenario_name: str,
    params: dict,
    seed: int,
    scenario_modules: tuple[str, ...] = (),
) -> dict:
    """Run one sweep point; capture success or failure as an outcome dict.

    The single execution path for every backend.  Results must be
    JSON-serializable dicts: a payload that cannot round-trip through JSON
    would replay differently from cache than it ran fresh, so it is failed
    here, at the point of production, with a clear error.

    Every outcome carries the uniform ``meta`` block (engine round/skip/step
    counts via the ambient :class:`~repro.obs.trace.RunMetaCollector`); when
    ``REPRO_TRACE_DIR`` is set, a per-task JSONL trace is written there too.
    """
    load_builtin_scenarios(tuple(m for m in scenario_modules if m not in BUILTIN_SCENARIO_MODULES))
    collector = RunMetaCollector()
    tracer: Tracer = collector
    writer = None
    trace_dir = trace_dir_from_env()
    if trace_dir is not None:
        try:
            writer = TraceWriter(
                task_trace_path(trace_dir, scenario_name, seed),
                source="task",
                scenario=scenario_name,
                seed=seed,
            )
            tracer = TeeTracer(collector, writer)
        except OSError:
            writer = None  # an unwritable trace dir must never fail the task
    start = time.perf_counter()
    try:
        with use_tracer(tracer):
            scn = get_scenario(scenario_name)
            result = scn.run(params, seed)
        if not isinstance(result, dict):
            raise TypeError(
                f"scenario {scenario_name!r} must return a dict, got {type(result).__name__}"
            )
        # Full round-trip check, not just dumps(): tuples and non-string
        # dict keys serialize fine but come back as lists / string keys, so
        # a cached replay would differ from the fresh run.
        try:
            round_tripped = json.loads(json.dumps(result))
        except (TypeError, ValueError) as exc:
            raise TypeError(
                f"scenario {scenario_name!r} returned a non-JSON-serializable result "
                f"({exc}); results are persisted and replayed as JSON, so every value "
                f"must round-trip"
            ) from exc
        if not _json_equal(round_tripped, result):
            raise TypeError(
                f"scenario {scenario_name!r} returned a result that does not survive "
                f"a JSON round-trip (e.g. tuples or non-string dict keys); a cached "
                f"replay would differ from the fresh run"
            )
        outcome = {
            "status": "ok",
            "result": result,
            "duration_s": time.perf_counter() - start,
            "meta": collector.meta(),
        }
    except Exception:
        outcome = {
            "status": "error",
            "error": traceback.format_exc(),
            "duration_s": time.perf_counter() - start,
            "meta": collector.meta(),
        }
    if writer is not None:
        writer.event(
            "task_result", status=outcome["status"], duration_s=outcome["duration_s"]
        )
        writer.close()
    return outcome
