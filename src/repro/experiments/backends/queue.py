"""Shared work-queue backend: a sharded file spool drained by worker daemons.

The spool is a directory (local disk or shared filesystem) whose layout
lives in :mod:`repro.experiments.backends.spool`::

    <queue-dir>/
        spool.json                  # layout marker ({"shards": N})
        shards/sNN/<name>.json      # unclaimed tickets, hash-sharded
        index/sNN.log               # per-shard ready index (append-on-enqueue)
        tasks/<name>.json           # legacy flat layout (still drained)
        claims/<name>.json          # claimed tickets (atomic-rename leases)
        claims/<name>.hb            # heartbeat, touched while the ticket runs
        claims/<name>.rest          # owner-published not-yet-started points
        claims/<name>.steal         # thief-claimed point positions
        results/<point>.json        # one result per *point*, written atomically
        STOP                        # operator sentinel: every daemon exits
        STOP.<nonce>                # per-sweep sentinel for spawned daemons

Claiming is an atomic ``os.rename`` from the spool into ``claims/``:
exactly one of any number of racing daemons wins; the losers see the file
gone and move on.  The per-shard ready index makes a claim O(batch)
instead of O(spool) -- see ``spool.py`` for the scan-cost story.

**Tickets carry one or more sweep points.**  A multi-point ("block")
ticket amortises claim overhead over its points and is the unit of
**work stealing**: while executing, the owner publishes the positions it
has not started yet in ``<name>.rest``; an idle daemon that finds the
spool empty reads the rest files, carves off the tail half of the
deepest one by exclusively creating ``<name>.steal``, and republishes
the carved points as a fresh ticket.  The owner re-reads the steal file
before each point and skips carved positions.  Both sides write results
under per-*point* filenames derived from the content-hash cache key, so
the occasional race (owner already executing a point the thief carved)
costs duplicate work but never divergent records -- the store stays
field-identical to a serial run.

A claimed ticket whose heartbeat goes stale (daemon died) is requeued by
the collecting backend: the points that neither landed in ``results/``
nor were stolen are republished as a new ticket, up to ``max_requeues``
attempts.

Workers run ``python -m repro.experiments worker <queue-dir>`` -- any
number, started before or after the sweep, on the same machine or any
machine sharing the filesystem; ``python -m repro.experiments fleet``
(:mod:`repro.experiments.backends.fleet`) provisions and retires them
automatically from spool depth.  Each ticket point normally executes in
a *subprocess watchdog* (true worker-side runtime enforcement);
``--inline`` skips the subprocess for trusted, short, timeout-less
tickets -- the drain-benchmark configuration.

Workers given ``--store`` also persist full ``ResultRecord`` shards
locally (same cache keys as the submitting run), which
``ResultStore.merge`` / ``python -m repro.experiments merge`` integrate
into a central store.
"""

from __future__ import annotations

import hashlib
import json
import logging
import multiprocessing
import os
import subprocess
import sys
import time
import uuid
from pathlib import Path
from typing import Callable

from repro.experiments.backends.base import ExecutionBackend, Task, execute_point
from repro.experiments.backends.spool import QueuePaths, ShardedSpool, SpoolStats
from repro.experiments.store import ResultRecord, ResultStore, atomic_write_text
from repro.obs.trace import NULL_TRACER, TraceWriter, trace_dir_from_env

#: Daemon/collector diagnostics; ``progress=`` callbacks override it, the
#: CLI's ``--verbose/-q`` flags set its effective level.
logger = logging.getLogger("repro.experiments.queue")

#: How long (seconds) a claim may go without a heartbeat before the
#: collector treats the daemon as dead and requeues the ticket.  Heartbeats
#: are touched every watchdog tick (~0.1 s), so this is very conservative
#: on one machine.  Staleness compares the collector's clock against mtimes
#: written by the worker's host: on a shared filesystem keep clocks
#: NTP-synced and raise ``lease_timeout`` above the skew plus any attribute
#: -caching delay (NFS actimeo), or healthy workers will be requeued.
DEFAULT_LEASE_TIMEOUT = 30.0

#: Watchdog tick: heartbeat period and result-poll granularity.
_WATCHDOG_TICK = 0.1

#: A thief only carves tickets with at least this many unstarted points.
MIN_STEAL_POINTS = 2


def _write_json_atomic(path: Path, payload: dict) -> None:
    atomic_write_text(path, json.dumps(payload, sort_keys=True))


# -- tickets -------------------------------------------------------------------


def point_payload(task: Task) -> dict:
    """One sweep point as it rides inside a ticket (self-contained)."""
    point = task.point
    return {
        "index": point.index,
        "scenario": point.scenario,
        "params": point.params,
        "seed": point.seed,
        "replicate": point.replicate,
        "key": task.key,
    }


def point_result_name(point: dict, nonce: str) -> str:
    """The per-point result filename (and v1 single-ticket name): the
    index prefix keeps listings in grid order, the content-hash key makes
    duplicate executions land on the same file, and the per-sweep nonce
    keeps concurrent sweeps with overlapping points on a shared spool
    from clobbering each other's in-flight state."""
    return f"{point['index']:06d}-{point['key']}-{nonce}.json"


def ticket_name(tasks: list[Task] | Task, nonce: str, tag: str | None = None) -> str:
    """Ticket filename for one task or a block of tasks.

    A single-point ticket keeps the historical ``<index>-<key>-<nonce>``
    name (which doubles as its result filename); a block ticket hashes
    its keys.  ``tag`` distinguishes republished generations (reclaims,
    steals) so a fresh claim can never collide with a stale lease of the
    same name.
    """
    if isinstance(tasks, Task):
        tasks = [tasks]
    if len(tasks) == 1 and tag is None:
        return f"{tasks[0].index:06d}-{tasks[0].key}-{nonce}.json"
    digest = hashlib.sha256("/".join(t.key for t in tasks).encode()).hexdigest()[:12]
    parts = [f"{tasks[0].index:06d}", f"blk{len(tasks)}"]
    if tag:
        parts.append(tag)
    parts.append(digest)
    parts.append(nonce)
    return "-".join(parts) + ".json"


def _carve_name(points: list[dict], nonce: str, tag: str) -> str:
    """Name for a republished subset ticket (reclaim or steal carve-off)."""
    digest = hashlib.sha256(
        "/".join(str(p.get("key")) for p in points).encode()
    ).hexdigest()[:12]
    return f"{points[0]['index']:06d}-blk{len(points)}-{tag}-{digest}-{nonce}.json"


def ticket_payload(tasks: list[Task] | Task, nonce: str) -> dict:
    """The self-contained JSON body a daemon needs to execute the ticket."""
    if isinstance(tasks, Task):
        tasks = [tasks]
    first = tasks[0]
    points = []
    for task in tasks:
        point = point_payload(task)
        point["result_name"] = point_result_name(point, nonce)
        points.append(point)
    return {
        "schema": 2,
        "points": points,
        "scenario_version": first.scenario_version,
        "code_version": first.code_version,
        "scenario_modules": list(first.scenario_modules),
        "timeout": first.timeout,
        "attempts": 0,
        "nonce": nonce,
    }


def points_of(ticket: dict, name: str = "") -> list[dict]:
    """The ticket's point list; wraps a legacy single-point (v1) payload.

    A v1 ticket's result has always been written under the ticket's own
    filename, so the synthesized point carries it as ``result_name``.
    """
    if "points" in ticket:
        return ticket["points"]
    point = {
        k: ticket.get(k)
        for k in ("index", "scenario", "params", "seed", "replicate", "key")
    }
    point["result_name"] = name
    return [point]


def record_from_point(ticket: dict, point: dict, outcome: dict) -> ResultRecord:
    """Reconstruct the full result record a ticket point + outcome describe."""
    return ResultRecord(
        key=point["key"],
        scenario=point["scenario"],
        params=point["params"],
        seed=point["seed"],
        replicate=point["replicate"],
        status=outcome["status"],
        result=outcome.get("result"),
        error=outcome.get("error"),
        duration_s=outcome.get("duration_s", 0.0),
        scenario_version=ticket.get("scenario_version", "1"),
        code_version=ticket.get("code_version", ""),
        meta=outcome.get("meta") or {},
    )


def _read_positions(path: Path) -> set[int]:
    """The point positions listed in a rest/steal sidecar (empty if none)."""
    try:
        return set(json.loads(path.read_text()).get("positions", ()))
    except (OSError, json.JSONDecodeError, AttributeError):
        return set()


# -- worker daemon -------------------------------------------------------------


def _watchdog_child(conn, scenario: str, params: dict, seed: int, modules: list) -> None:
    """Task subprocess entry: run the point, report the outcome, exit."""
    conn.send(execute_point(scenario, params, seed, tuple(modules)))
    conn.close()


def _execute_with_watchdog(
    point: dict,
    timeout: float | None,
    modules: list,
    heartbeat: Path,
    mp_start_method: str = "spawn",
    extra_heartbeats: tuple[Path, ...] = (),
) -> dict:
    """Run one ticket point in a child process under a runtime-limit watchdog.

    The daemon heartbeats while the child runs; a child that overruns the
    ticket's ``timeout`` is terminated (then killed) and reported as a
    ``timeout`` outcome, and a child that dies without reporting (crash,
    OOM-kill) becomes an ``error`` outcome -- the point never goes
    unanswered.

    ``extra_heartbeats`` are leases this daemon holds beyond the running
    ticket's (batch-claimed tickets waiting their turn); they are touched on
    the same tick so the collector does not requeue work the daemon is
    definitely going to execute.
    """
    ctx = multiprocessing.get_context(mp_start_method)
    recv, send = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_watchdog_child,
        args=(send, point["scenario"], point["params"], point["seed"], modules),
        # Daemonic: a daemon that exits (STOP, idle-out, unhandled error)
        # takes the in-flight task process with it instead of orphaning it.
        daemon=True,
    )
    start = time.monotonic()
    proc.start()
    send.close()  # parent's copy: the child's death now shows up as EOF
    deadline = None if timeout is None else start + float(timeout)
    outcome = None
    try:
        while outcome is None:
            heartbeat.touch()
            for pending in extra_heartbeats:
                # A batch-mate released early (requeued by the collector and
                # finished elsewhere) must not be resurrected by a touch.
                if pending.exists():
                    pending.touch()
            if recv.poll(_WATCHDOG_TICK):
                try:
                    outcome = recv.recv()
                except EOFError:
                    outcome = {
                        "status": "error",
                        "error": (
                            f"task process died without reporting "
                            f"(exitcode={proc.exitcode})"
                        ),
                        "duration_s": time.monotonic() - start,
                    }
            elif deadline is not None and time.monotonic() > deadline:
                outcome = {
                    "status": "timeout",
                    "error": f"task exceeded {timeout}s runtime limit (killed by worker watchdog)",
                    "duration_s": float(timeout),
                }
    finally:
        # Timeout, KeyboardInterrupt, anything: never leave the task
        # process running unsupervised.
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.kill()
        proc.join(timeout=5.0)
        recv.close()
    return outcome


def try_steal(
    paths: QueuePaths, spool: ShardedSpool, tracer=NULL_TRACER, say=None
) -> bool:
    """Carve the tail half off the deepest in-flight block ticket.

    Called by an idle daemon when the spool is empty.  Scans the owner
    -published ``.rest`` sidecars, picks the ticket with the most
    unstarted points (at least :data:`MIN_STEAL_POINTS`), claims the tail
    half by *exclusively creating* the ``.steal`` sidecar (one thief per
    ticket, ever), and republishes the carved points as a fresh spool
    ticket.  Returns True when a carve-off was published -- the caller's
    next claim pass will pick it up.

    Races are benign by construction: the owner re-reads the steal file
    before each point, and a point the owner had already started lands on
    the same per-point result filename the thief's copy would -- duplicate
    work, identical record.
    """
    try:
        rest_entries = [
            entry
            for entry in os.scandir(paths.claims)
            if entry.name.endswith(".rest")
        ]
    except FileNotFoundError:
        return False
    best_name, best_positions = None, ()
    for entry in rest_entries:
        name = entry.name[: -len(".rest")]
        if not (paths.claims / name).exists():
            # The owner finished and cleaned up mid-scan; drop the
            # orphaned sidecar so the next scan is clean.
            Path(entry.path).unlink(missing_ok=True)
            paths.steal(name).unlink(missing_ok=True)
            continue
        if paths.steal(name).exists():
            continue  # already carved once; one thief per ticket
        positions = sorted(_read_positions(Path(entry.path)))
        if len(positions) >= max(len(best_positions), MIN_STEAL_POINTS):
            best_name, best_positions = name, positions
    if best_name is None:
        return False
    take = best_positions[(len(best_positions) + 1) // 2 :]
    if not take:
        return False
    steal_path = paths.steal(best_name)
    try:
        fd = os.open(steal_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False  # another thief won the carve
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"positions": take}, sort_keys=True))
    try:
        ticket = json.loads((paths.claims / best_name).read_text())
    except (OSError, json.JSONDecodeError):
        # The owner completed between the scan and the carve; retract.
        steal_path.unlink(missing_ok=True)
        return False
    points = points_of(ticket, best_name)
    carved = [points[q] for q in take if q < len(points)]
    if not carved:
        steal_path.unlink(missing_ok=True)
        return False
    payload = dict(ticket)
    payload["points"] = carved
    new_name = _carve_name(carved, ticket.get("nonce", "steal"), f"s{uuid.uuid4().hex[:6]}")
    spool.enqueue(new_name, payload)
    tracer.event("steal", ticket=best_name, points=len(carved), carved=new_name)
    if say is not None:
        say(f"worker: stole {len(carved)} point(s) from {best_name}")
    return True


def run_worker(
    queue_dir: str | os.PathLike,
    store: ResultStore | None = None,
    max_idle: float | None = None,
    poll_interval: float = 0.2,
    mp_start_method: str = "spawn",
    progress: Callable[[str], None] | None = None,
    stop_file: str | os.PathLike | None = None,
    claim_batch: int = 1,
    inline: bool = False,
    steal: bool = True,
    stats: SpoolStats | None = None,
) -> int:
    """Drain tickets from ``queue_dir`` until STOP (or ``max_idle`` seconds
    without work); returns the number of ticket *points* executed.

    Two stop sentinels: the spool-global ``STOP`` (an operator winding the
    whole fleet down) and an optional ``stop_file`` (how a sweep or fleet
    controller dismisses only the daemons it spawned, without touching
    external ones).

    ``claim_batch`` claims up to that many tickets per claim pass
    (index-entry consumption, not directory scans -- see ``spool.py``) and
    executes them in claim order, heartbeating the waiting batch-mates
    while each runs.  Stop sentinels are honoured between points,
    republishing any still-unexecuted work back to the spool.

    ``inline`` executes timeout-less points in-process instead of under
    the subprocess watchdog -- much faster per point, but a crashing task
    takes the daemon with it and nothing heartbeats *during* a point, so
    reserve it for trusted, short tasks (the drain benchmark).  Points
    with a runtime budget always get the watchdog.

    ``steal`` lets an idle daemon carve unstarted points off another
    daemon's in-flight block ticket (see :func:`try_steal`).

    With ``store``, every outcome is also persisted as a full
    ``ResultRecord`` in a local shard -- same cache keys as the submitting
    run, so ``ResultStore.merge`` integrates it later.

    Diagnostics go to the ``repro.experiments.queue`` logger unless a
    ``progress`` callback overrides them.  When ``REPRO_TRACE_DIR`` names a
    directory, the daemon also writes a ``worker-<pid>`` JSONL trace there:
    lease/run/done task lines plus watchdog-kill, steal and requeue events.
    """
    if claim_batch < 1:
        raise ValueError("claim_batch must be at least 1")
    paths = QueuePaths(queue_dir)
    paths.ensure()
    spool = ShardedSpool(paths, stats=stats)
    say = progress or logger.info
    trace_dir = trace_dir_from_env()
    tracer = NULL_TRACER
    if trace_dir is not None:
        try:
            tracer = TraceWriter(
                Path(trace_dir) / f"worker-{os.getpid()}.jsonl",
                source="worker",
                queue_dir=str(paths.root),
            )
        except OSError:
            tracer = NULL_TRACER  # an unwritable trace dir never stops a daemon
    own_stop = None if stop_file is None else Path(stop_file)

    def stop_seen() -> bool:
        return paths.stop.exists() or (own_stop is not None and own_stop.exists())

    def owned(name: str, ticket: dict) -> bool:
        # A claim is still ours only while its attempts count matches: a
        # collector that judged this daemon dead (e.g. it was suspended
        # past the lease timeout) has republished the ticket's remaining
        # points and deleted this claim, or a stale same-name claim was
        # requeued with a bumped count.
        try:
            return (
                json.loads((paths.claims / name).read_text()).get("attempts")
                == ticket.get("attempts")
            )
        except (OSError, json.JSONDecodeError):
            return False

    def clear_claim(name: str) -> None:
        for path in (
            paths.claims / name,
            paths.heartbeat(name),
            paths.rest(name),
            paths.steal(name),
        ):
            path.unlink(missing_ok=True)

    def release(name: str, ticket: dict) -> None:
        if owned(name, ticket):
            clear_claim(name)

    def requeue(name: str, ticket: dict) -> None:
        """Hand a fully-unexecuted claim back to the spool (stop mid-batch)."""
        if not owned(name, ticket):
            return
        tracer.event("ticket_requeued", ticket=name)
        paths.heartbeat(name).unlink(missing_ok=True)
        try:
            spool.readmit(name)
        except OSError:
            # Lost a race with the collector's stale-lease reclaim (it
            # removed the claim between the ownership check and here);
            # the ticket is back in circulation either way.
            pass

    def republish_remaining(name: str, ticket: dict, positions: list[int]) -> None:
        """Republish a ticket's unexecuted tail (stop mid-ticket)."""
        points = points_of(ticket, name)
        remaining = [points[q] for q in positions if q < len(points)]
        if remaining:
            payload = dict(ticket)
            payload["points"] = remaining
            spool.enqueue(
                _carve_name(remaining, ticket.get("nonce", "requeue"), f"q{uuid.uuid4().hex[:6]}"),
                payload,
            )
            tracer.event("ticket_requeued", ticket=name, points=len(remaining))
        clear_claim(name)

    def run_ticket(name: str, ticket: dict, extra_heartbeats: tuple[Path, ...]) -> tuple[int, bool]:
        """Execute one ticket's points; returns (points done, stop seen)."""
        points = points_of(ticket, name)
        block = len(points) > 1
        stolen = _read_positions(paths.steal(name)) if block else set()
        modules = ticket.get("scenario_modules") or []
        timeout = ticket.get("timeout")
        done = 0
        for pos, point in enumerate(points):
            if pos in stolen:
                continue
            if stop_seen():
                republish_remaining(
                    name, ticket, [q for q in range(pos, len(points)) if q not in stolen]
                )
                return done, True
            if block:
                stolen |= _read_positions(paths.steal(name))
                if pos in stolen:
                    continue
                if pos > 0 and not owned(name, ticket):
                    # The collector reclaimed this lease mid-ticket (e.g.
                    # the daemon was suspended past the lease timeout);
                    # the remaining points now belong to someone else.
                    say(f"worker: lease on {name} was reclaimed mid-ticket; stopping it")
                    return done, False
                # Publish what a thief may carve: strictly-after positions.
                _write_json_atomic(
                    paths.rest(name),
                    {"positions": [q for q in range(pos + 1, len(points)) if q not in stolen]},
                )
            result_path = paths.results / point["result_name"]
            if result_path.exists():
                continue  # landed in an earlier attempt (half-run ticket)
            say(f"worker: running {name} ({point['scenario']} #{point['index']})")
            tracer.task(
                "running", point["index"], ticket=name, attempts=ticket.get("attempts", 0)
            )
            paths.heartbeat(name).touch()
            if inline and timeout is None:
                outcome = execute_point(
                    point["scenario"], point["params"], point["seed"], tuple(modules)
                )
            else:
                outcome = _execute_with_watchdog(
                    point,
                    timeout,
                    modules,
                    paths.heartbeat(name),
                    mp_start_method,
                    extra_heartbeats=extra_heartbeats,
                )
            if store is not None:
                store.put(record_from_point(ticket, point, outcome))
            _write_json_atomic(
                result_path, {"ticket": ticket, "point": point, "outcome": outcome}
            )
            done += 1
            say(
                f"worker: [{outcome['status']}] {point['result_name']} "
                f"({outcome.get('duration_s', 0.0):.2f}s)"
            )
            tracer.task(
                outcome["status"],
                point["index"],
                ticket=name,
                duration_s=outcome.get("duration_s", 0.0),
            )
            if outcome["status"] == "timeout":
                tracer.event("watchdog_kill", ticket=name, timeout_s=timeout)
        release(name, ticket)
        return done, False

    last_work = time.monotonic()
    n_done = 0
    stopping = False
    while not stopping:
        if stop_seen():
            say(f"worker: stop sentinel seen after {n_done} point(s)")
            break
        batch = spool.claim(claim_batch)
        if batch and tracer.enabled:
            for name, ticket in batch:
                for point in points_of(ticket, name):
                    tracer.task("leased", point.get("index", -1), ticket=name)
        if not batch:
            if steal and try_steal(paths, spool, tracer, say):
                last_work = time.monotonic()
                continue
            if max_idle is not None and time.monotonic() - last_work > max_idle:
                say(f"worker: idle for {max_idle}s after {n_done} point(s)")
                break
            time.sleep(poll_interval)
            continue
        if len(batch) > 1:
            say(f"worker: claimed batch of {len(batch)} ticket(s)")
        for position, (name, ticket) in enumerate(batch):
            if stop_seen():
                stopping = True
                for pending_name, pending_ticket in batch[position:]:
                    requeue(pending_name, pending_ticket)
                say(f"worker: stop sentinel seen after {n_done} point(s)")
                break
            if position > 0 and not owned(name, ticket):
                # The collector requeued this batch-mate while earlier items
                # ran (e.g. the daemon was suspended past the lease
                # timeout); executing it now would duplicate another
                # daemon's work.
                say(f"worker: lease on {name} was reclaimed; skipping")
                continue
            done, stopping = run_ticket(
                name,
                ticket,
                tuple(paths.heartbeat(pending) for pending, _ in batch[position + 1 :]),
            )
            if done:
                n_done += done
                last_work = time.monotonic()
            if stopping:
                # run_ticket already republished its own tail; hand the
                # untouched batch-mates back whole.
                for pending_name, pending_ticket in batch[position + 1 :]:
                    requeue(pending_name, pending_ticket)
                say(f"worker: stop sentinel seen after {n_done} point(s)")
                break
    tracer.event("worker_exit", executed=n_done)
    tracer.close()
    return n_done


# -- collecting backend --------------------------------------------------------


class WorkQueueBackend(ExecutionBackend):
    """Submit tickets to a spool directory; collect results as they land.

    ``workers > 0`` spawns that many local worker daemons (terminated at
    shutdown via the STOP sentinel); ``workers == 0`` relies entirely on
    externally-started daemons pointed at the same directory -- same
    machine or any machine sharing the filesystem -- or on a fleet
    controller (``python -m repro.experiments fleet``).

    ``points_per_ticket > 1`` groups consecutive sweep points into block
    tickets: fewer claims per sweep, and the unit the work-stealing
    protocol splits.  ``shards=0`` forces the legacy flat spool layout
    (the drain benchmark's baseline).
    """

    name = "queue"

    def __init__(
        self,
        queue_dir: str | os.PathLike,
        workers: int = 0,
        mp_start_method: str = "spawn",
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        max_requeues: int = 3,
        worker_poll_interval: float = 0.05,
        worker_env: dict[str, str] | None = None,
        claim_batch: int = 1,
        points_per_ticket: int = 1,
        shards: int | None = None,
        inline_workers: bool = False,
    ) -> None:
        if points_per_ticket < 1:
            raise ValueError("points_per_ticket must be at least 1")
        self.paths = QueuePaths(queue_dir, shards=shards)
        self.paths.ensure()
        self.spool = ShardedSpool(self.paths)
        # Distinguishes this sweep's tickets and spawned daemons on a
        # shared spool (the global STOP sentinel belongs to the operator).
        self.nonce = uuid.uuid4().hex[:8]
        self._stop_file = self.paths.root / f"STOP.{self.nonce}"
        self.lease_timeout = lease_timeout
        self.max_requeues = max_requeues
        self.mp_start_method = mp_start_method
        self.points_per_ticket = points_per_ticket
        #: Outstanding work, keyed by per-point result filename.
        self._tasks: dict[str, Task] = {}
        self._buffer: list[Task] = []
        self._procs: list[subprocess.Popen] = []
        # Lease checks stat claim/heartbeat files per outstanding ticket, so
        # run them on a fraction of the lease timeout, not on every poll.
        self._reclaim_interval = min(1.0, max(lease_timeout / 2.0, 0.05))
        self._next_reclaim = time.monotonic() + self._reclaim_interval
        env = dict(os.environ)
        if worker_env:
            env.update(worker_env)
        for _ in range(max(workers, 0)):
            argv = [
                sys.executable,
                "-m",
                "repro.experiments",
                "worker",
                str(self.paths.root),
                "--poll-interval",
                str(worker_poll_interval),
                "--mp-start",
                mp_start_method,
                "--stop-file",
                str(self._stop_file),
                "--claim-batch",
                str(max(claim_batch, 1)),
            ]
            if inline_workers:
                argv.append("--inline")
            self._procs.append(
                subprocess.Popen(
                    argv,
                    env=env,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
            )

    def submit(self, task: Task) -> None:
        """Enqueue the task (buffered into a block ticket when configured)."""
        self._buffer.append(task)
        if len(self._buffer) >= self.points_per_ticket:
            self._flush()

    def _flush(self) -> None:
        """Publish the buffered tasks as one spool ticket."""
        if not self._buffer:
            return
        tasks = self._buffer
        self._buffer = []
        name = ticket_name(tasks, self.nonce)
        payload = ticket_payload(tasks, self.nonce)
        for task, point in zip(tasks, payload["points"]):
            self._tasks[point["result_name"]] = task
            self.trace.task("queued", task.index, ticket=name)
        self.spool.enqueue(name, payload)

    def poll(self) -> list[tuple[Task, dict]]:
        """Collect results from the spool, requeueing stale-leased tickets."""
        # A partial block left in the buffer is sealed at the first poll:
        # the runner only polls once every pending task was submitted.
        self._flush()
        # Reclaim first, so a ticket that just exhausted its lease attempts
        # surfaces as an error outcome in this same poll.
        if time.monotonic() >= self._next_reclaim:
            self._next_reclaim = time.monotonic() + self._reclaim_interval
            self._reclaim_dead_leases()
        batch: list[tuple[Task, dict]] = []
        # One directory scan per poll, not one stat per outstanding task.
        with os.scandir(self.paths.results) as entries:
            landed = [e.name for e in entries if e.name in self._tasks]
        for name in landed:
            path = self.paths.results / name
            payload = json.loads(path.read_text())
            batch.append((self._tasks.pop(name), payload["outcome"]))
            path.unlink(missing_ok=True)
        batch.extend(self._check_daemons())
        return batch

    def _own_claims(self) -> list[str]:
        """This sweep's claim names (ticket files only, not sidecars)."""
        suffix = f"-{self.nonce}.json"
        try:
            with os.scandir(self.paths.claims) as entries:
                return [e.name for e in entries if e.name.endswith(suffix)]
        except FileNotFoundError:
            return []

    def _reclaim_dead_leases(self) -> None:
        """Republish outstanding claims whose daemon stopped heartbeating.

        Scans the claims directory for this sweep's nonce rather than a
        task map: steal carve-offs and republished remainders are claims
        the collector never submitted itself, and their daemons can die
        too.  Only the points that neither landed in ``results/`` nor
        were carved off by a thief are republished.
        """
        now = time.time()
        trace = self.trace
        if trace.enabled:
            trace.gauge("spool_outstanding", len(self._tasks))
        max_age = 0.0
        for name in self._own_claims():
            claim = self.paths.claims / name
            beat = self.paths.heartbeat(name)
            try:
                last = beat.stat().st_mtime if beat.exists() else claim.stat().st_mtime
            except FileNotFoundError:
                continue  # completed (or requeued) between the checks
            age = now - last
            if age > max_age:
                max_age = age
            if age <= self.lease_timeout:
                continue
            try:
                ticket = json.loads(claim.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            points = points_of(ticket, name)
            stolen = _read_positions(self.paths.steal(name))
            remaining = [
                point
                for pos, point in enumerate(points)
                if pos not in stolen and not (self.paths.results / point["result_name"]).exists()
            ]
            attempts = ticket.get("attempts", 0) + 1
            logger.warning(
                "lease on %s stale for %.1fs (attempt %d/%d, %d point(s) left)",
                name, age, attempts, self.max_requeues, len(remaining),
            )
            trace.event(
                "lease_reclaimed",
                ticket=name,
                heartbeat_age_s=round(age, 3),
                attempts=attempts,
                points=len(remaining),
            )
            if remaining and attempts > self.max_requeues:
                for point in remaining:
                    _write_json_atomic(
                        self.paths.results / point["result_name"],
                        {
                            "ticket": ticket,
                            "point": point,
                            "outcome": {
                                "status": "error",
                                "error": (
                                    f"ticket lease expired {attempts} time(s) "
                                    f"(worker died mid-task); giving up"
                                ),
                                "duration_s": 0.0,
                            },
                        },
                    )
            elif remaining:
                payload = dict(ticket)
                payload["points"] = remaining
                payload["attempts"] = attempts
                # Republish under a fresh generation name *before* retiring
                # the stale claim: a crash in between costs a duplicate
                # ticket (deduped by per-point result files), never a loss.
                self.spool.enqueue(
                    _carve_name(remaining, self.nonce, f"r{attempts}"), payload
                )
            for stale in (claim, beat, self.paths.rest(name), self.paths.steal(name)):
                stale.unlink(missing_ok=True)
        if trace.enabled and max_age:
            trace.gauge("max_heartbeat_age_s", round(max_age, 3))

    def _check_daemons(self) -> list[tuple[Task, dict]]:
        """Fail outstanding tasks if every spawned daemon is gone.

        Nothing would ever drain them, so surface the dead fleet as error
        outcomes (the backend contract: failures become outcome dicts, the
        sweep's finished records survive) rather than raising.
        """
        if not self._procs or not self._tasks:
            return []
        if any(proc.poll() is None for proc in self._procs):
            return []
        codes = [proc.returncode for proc in self._procs]
        now = time.time()
        hb_suffix = f"-{self.nonce}.json.hb"

        def any_heartbeat_fresh() -> bool:
            try:
                with os.scandir(self.paths.claims) as entries:
                    beats = [e for e in entries if e.name.endswith(hb_suffix)]
            except FileNotFoundError:
                return False
            for entry in beats:
                try:
                    if now - entry.stat().st_mtime <= self.lease_timeout:
                        return True
                except FileNotFoundError:
                    continue
            return False

        # A fresh heartbeat on any of our tickets means an external daemon
        # is also draining this spool; leave everything to it rather than
        # discarding work it would have picked up.
        if any_heartbeat_fresh():
            return []
        logger.error(
            "all %d spawned queue workers exited (exit codes %s) with %d task(s) outstanding",
            len(self._procs), codes, len(self._tasks),
        )
        self.trace.event("worker_fleet_dead", exit_codes=codes, outstanding=len(self._tasks))
        batch = []
        for name in list(self._tasks):
            landed = self.paths.results / name
            if landed.exists():
                # A daemon finished this one on its way out; take the
                # real outcome over a synthesized failure.
                payload = json.loads(landed.read_text())
                batch.append((self._tasks.pop(name), payload["outcome"]))
                landed.unlink(missing_ok=True)
                continue
            batch.append(
                (
                    self._tasks.pop(name),
                    {
                        "status": "error",
                        "error": (
                            f"all {len(self._procs)} spawned queue workers exited "
                            f"(exit codes {codes}) before this task ran"
                        ),
                        "duration_s": 0.0,
                    },
                )
            )
        # Sweep this sweep's stranded spool tickets and claims so a shared
        # spool is not littered with work nothing will ever drain.
        suffix = f"-{self.nonce}.json"
        spool_dirs = [self.paths.tasks]
        if self.paths.shards:
            spool_dirs += [self.paths.shard_dir(i) for i in range(self.paths.shards)]
        for directory in spool_dirs:
            try:
                with os.scandir(directory) as entries:
                    stale = [e.path for e in entries if e.name.endswith(suffix)]
            except FileNotFoundError:
                continue
            for path in stale:
                Path(path).unlink(missing_ok=True)
        for name in self._own_claims():
            for path in (
                self.paths.claims / name,
                self.paths.heartbeat(name),
                self.paths.rest(name),
                self.paths.steal(name),
            ):
                path.unlink(missing_ok=True)
        return batch

    def shutdown(self) -> None:
        """Dismiss the daemons this sweep spawned (external ones keep going)."""
        if not self._procs:
            return  # external daemons keep draining other sweeps
        # Dismiss only the daemons this sweep spawned: the per-instance
        # sentinel leaves external daemons (and the operator's global STOP
        # semantics) untouched.
        self._stop_file.touch()
        deadline = time.monotonic() + 10.0
        for proc in self._procs:
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    proc.kill()
                    proc.wait()
        self._procs.clear()
        self._stop_file.unlink(missing_ok=True)
