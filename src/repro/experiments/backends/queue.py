"""Shared work-queue backend: a file-based spool drained by worker daemons.

The spool is a directory (local disk or shared filesystem)::

    <queue-dir>/
        tasks/<index>-<key>.json    # unclaimed tickets, self-contained JSON
        claims/<name>.json          # claimed tickets (atomic-rename leases)
        claims/<name>.hb            # heartbeat, touched while the task runs
        results/<name>.json         # ticket + outcome, written atomically
        STOP                        # operator sentinel: every daemon exits
        STOP.<nonce>                # per-sweep sentinel for spawned daemons

Claiming is an atomic ``os.rename`` from ``tasks/`` to ``claims/``: exactly
one of any number of racing daemons wins; the losers see the file gone and
move on.  Daemons can claim up to ``--claim-batch`` tickets per spool scan
(one sorted directory listing amortised over the batch -- the scan is the
dominant per-ticket cost on very large grids), heartbeating the waiting
batch-mates while each ticket runs.  A claimed ticket whose heartbeat goes
stale (daemon died) is requeued by the collecting backend, up to
``max_requeues`` attempts.

Workers run ``python -m repro.experiments worker <queue-dir>`` -- any
number, started before or after the sweep, on the same machine or any
machine sharing the filesystem.  Each executes tickets in a *subprocess
watchdog*: the task runs in a child process, the daemon heartbeats while
it waits, and a ticket with a runtime budget that overruns it is killed
and reported as a ``timeout`` outcome -- true worker-side per-task
runtime enforcement, not a collector-side deadline.

Workers given ``--store`` also persist full ``ResultRecord`` shards
locally (same cache keys as the submitting run), which
``ResultStore.merge`` / ``python -m repro.experiments merge`` integrate
into a central store.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import subprocess
import sys
import time
import uuid
from pathlib import Path
from typing import Callable

from repro.experiments.backends.base import ExecutionBackend, Task, execute_point
from repro.experiments.store import ResultRecord, ResultStore, atomic_write_text
from repro.obs.trace import NULL_TRACER, TraceWriter, trace_dir_from_env

#: Daemon/collector diagnostics; ``progress=`` callbacks override it, the
#: CLI's ``--verbose/-q`` flags set its effective level.
logger = logging.getLogger("repro.experiments.queue")

#: How long (seconds) a claim may go without a heartbeat before the
#: collector treats the daemon as dead and requeues the ticket.  Heartbeats
#: are touched every watchdog tick (~0.1 s), so this is very conservative
#: on one machine.  Staleness compares the collector's clock against mtimes
#: written by the worker's host: on a shared filesystem keep clocks
#: NTP-synced and raise ``lease_timeout`` above the skew plus any attribute
#: -caching delay (NFS actimeo), or healthy workers will be requeued.
DEFAULT_LEASE_TIMEOUT = 30.0

#: Watchdog tick: heartbeat period and result-poll granularity.
_WATCHDOG_TICK = 0.1


class QueuePaths:
    """The spool directory layout."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.tasks = self.root / "tasks"
        self.claims = self.root / "claims"
        self.results = self.root / "results"
        self.stop = self.root / "STOP"

    def ensure(self) -> None:
        """Create the spool subdirectories (idempotent)."""
        for directory in (self.tasks, self.claims, self.results):
            directory.mkdir(parents=True, exist_ok=True)

    def heartbeat(self, name: str) -> Path:
        """The heartbeat file a claimant touches while executing ``name``."""
        return self.claims / (name + ".hb")


def _write_json_atomic(path: Path, payload: dict) -> None:
    atomic_write_text(path, json.dumps(payload, sort_keys=True))


def ticket_name(task: Task, nonce: str) -> str:
    """Ticket filename: the index prefix makes daemons claim in grid order;
    the per-sweep nonce keeps concurrent sweeps with overlapping points on
    a shared spool from clobbering each other's in-flight state."""
    return f"{task.index:06d}-{task.key}-{nonce}.json"


def ticket_payload(task: Task) -> dict:
    """The self-contained JSON body a daemon needs to execute the task."""
    point = task.point
    return {
        "index": point.index,
        "scenario": point.scenario,
        "params": point.params,
        "seed": point.seed,
        "replicate": point.replicate,
        "key": task.key,
        "scenario_version": task.scenario_version,
        "code_version": task.code_version,
        "scenario_modules": list(task.scenario_modules),
        "timeout": task.timeout,
        "attempts": 0,
    }


def record_from_ticket(ticket: dict, outcome: dict) -> ResultRecord:
    """Reconstruct the full result record a ticket + outcome describe."""
    return ResultRecord(
        key=ticket["key"],
        scenario=ticket["scenario"],
        params=ticket["params"],
        seed=ticket["seed"],
        replicate=ticket["replicate"],
        status=outcome["status"],
        result=outcome.get("result"),
        error=outcome.get("error"),
        duration_s=outcome.get("duration_s", 0.0),
        scenario_version=ticket["scenario_version"],
        code_version=ticket["code_version"],
        meta=outcome.get("meta") or {},
    )


# -- worker daemon -------------------------------------------------------------


def _watchdog_child(conn, scenario: str, params: dict, seed: int, modules: list) -> None:
    """Task subprocess entry: run the point, report the outcome, exit."""
    conn.send(execute_point(scenario, params, seed, tuple(modules)))
    conn.close()


def _execute_with_watchdog(
    ticket: dict,
    heartbeat: Path,
    mp_start_method: str = "spawn",
    extra_heartbeats: tuple[Path, ...] = (),
) -> dict:
    """Run one ticket in a child process under a runtime-limit watchdog.

    The daemon heartbeats while the child runs; a child that overruns the
    ticket's ``timeout`` is terminated (then killed) and reported as a
    ``timeout`` outcome, and a child that dies without reporting (crash,
    OOM-kill) becomes an ``error`` outcome -- the ticket never goes
    unanswered.

    ``extra_heartbeats`` are leases this daemon holds beyond the running
    ticket's (batch-claimed tickets waiting their turn); they are touched on
    the same tick so the collector does not requeue work the daemon is
    definitely going to execute.
    """
    ctx = multiprocessing.get_context(mp_start_method)
    recv, send = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_watchdog_child,
        args=(
            send,
            ticket["scenario"],
            ticket["params"],
            ticket["seed"],
            ticket["scenario_modules"],
        ),
        # Daemonic: a daemon that exits (STOP, idle-out, unhandled error)
        # takes the in-flight task process with it instead of orphaning it.
        daemon=True,
    )
    start = time.monotonic()
    proc.start()
    send.close()  # parent's copy: the child's death now shows up as EOF
    timeout = ticket.get("timeout")
    deadline = None if timeout is None else start + float(timeout)
    outcome = None
    try:
        while outcome is None:
            heartbeat.touch()
            for pending in extra_heartbeats:
                # A batch-mate released early (requeued by the collector and
                # finished elsewhere) must not be resurrected by a touch.
                if pending.exists():
                    pending.touch()
            if recv.poll(_WATCHDOG_TICK):
                try:
                    outcome = recv.recv()
                except EOFError:
                    outcome = {
                        "status": "error",
                        "error": (
                            f"task process died without reporting "
                            f"(exitcode={proc.exitcode})"
                        ),
                        "duration_s": time.monotonic() - start,
                    }
            elif deadline is not None and time.monotonic() > deadline:
                outcome = {
                    "status": "timeout",
                    "error": f"task exceeded {timeout}s runtime limit (killed by worker watchdog)",
                    "duration_s": float(timeout),
                }
    finally:
        # Timeout, KeyboardInterrupt, anything: never leave the task
        # process running unsupervised.
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.kill()
        proc.join(timeout=5.0)
        recv.close()
    return outcome


def _claim_batch(paths: QueuePaths, limit: int) -> list[tuple[str, dict]]:
    """Claim up to ``limit`` lowest-index unclaimed tickets in one spool scan.

    One ``sorted(glob)`` pass amortises the directory listing over the whole
    batch -- on very large grids the scan is the dominant per-ticket cost,
    so daemons claiming one ticket per scan spend more time listing the
    spool than executing work.  Each rename is still individually atomic:
    racing daemons interleave their claims, every ticket goes to exactly one
    of them, and batch claims stay in grid (index) order.
    """
    claimed: list[tuple[str, dict]] = []
    for path in sorted(paths.tasks.glob("*.json")):
        if len(claimed) >= limit:
            break
        target = paths.claims / path.name
        try:
            os.rename(path, target)
        except FileNotFoundError:
            continue  # lost the race to another daemon
        # Heartbeat immediately: rename preserves the ticket's mtime, so a
        # ticket that waited in the spool longer than the lease timeout
        # would otherwise look dead the instant it is claimed.
        paths.heartbeat(path.name).touch()
        try:
            claimed.append((path.name, json.loads(target.read_text())))
        except (OSError, json.JSONDecodeError):
            # Unreadable ticket: fail it rather than spinning on it forever.
            _write_json_atomic(
                paths.results / path.name,
                {"outcome": {"status": "error", "error": "unreadable ticket", "duration_s": 0.0}},
            )
            target.unlink(missing_ok=True)
            paths.heartbeat(path.name).unlink(missing_ok=True)
    return claimed


def run_worker(
    queue_dir: str | os.PathLike,
    store: ResultStore | None = None,
    max_idle: float | None = None,
    poll_interval: float = 0.2,
    mp_start_method: str = "spawn",
    progress: Callable[[str], None] | None = None,
    stop_file: str | os.PathLike | None = None,
    claim_batch: int = 1,
) -> int:
    """Drain tickets from ``queue_dir`` until STOP (or ``max_idle`` seconds
    without work); returns the number of tickets executed.

    Two stop sentinels: the spool-global ``STOP`` (an operator winding the
    whole fleet down) and an optional ``stop_file`` (how a sweep dismisses
    only the daemons it spawned, without touching external ones).

    ``claim_batch`` claims up to that many tickets per spool scan (the
    lease scan is the dominant per-ticket cost on very large grids) and
    executes them in index order, heartbeating the waiting batch-mates while
    each runs.  Stop sentinels are honoured between batch items, releasing
    any still-unexecuted claims back to the spool.

    With ``store``, every outcome is also persisted as a full
    ``ResultRecord`` in a local shard -- same cache keys as the submitting
    run, so ``ResultStore.merge`` integrates it later.

    Diagnostics go to the ``repro.experiments.queue`` logger unless a
    ``progress`` callback overrides them.  When ``REPRO_TRACE_DIR`` names a
    directory, the daemon also writes a ``worker-<pid>`` JSONL trace there:
    lease/run/done task lines plus watchdog-kill and requeue events.
    """
    if claim_batch < 1:
        raise ValueError("claim_batch must be at least 1")
    paths = QueuePaths(queue_dir)
    paths.ensure()
    say = progress or logger.info
    trace_dir = trace_dir_from_env()
    tracer = NULL_TRACER
    if trace_dir is not None:
        try:
            tracer = TraceWriter(
                Path(trace_dir) / f"worker-{os.getpid()}.jsonl",
                source="worker",
                queue_dir=str(paths.root),
            )
        except OSError:
            tracer = NULL_TRACER  # an unwritable trace dir never stops a daemon
    own_stop = None if stop_file is None else Path(stop_file)

    def stop_seen() -> bool:
        return paths.stop.exists() or (own_stop is not None and own_stop.exists())

    def owned(name: str, ticket: dict) -> bool:
        # A claim is still ours only while its attempts count matches: a
        # collector that judged this daemon dead (e.g. it was suspended
        # past the lease timeout) has requeued the ticket with a bumped
        # count, and the claim may now belong to another daemon.
        try:
            return (
                json.loads((paths.claims / name).read_text()).get("attempts")
                == ticket.get("attempts")
            )
        except (OSError, json.JSONDecodeError):
            return False

    def release(name: str, ticket: dict) -> None:
        if owned(name, ticket):
            (paths.claims / name).unlink(missing_ok=True)
            paths.heartbeat(name).unlink(missing_ok=True)

    def requeue(name: str, ticket: dict) -> None:
        """Hand an unexecuted claim back to the spool (stop mid-batch)."""
        if not owned(name, ticket):
            return
        tracer.event("ticket_requeued", ticket=name)
        paths.heartbeat(name).unlink(missing_ok=True)
        try:
            os.rename(paths.claims / name, paths.tasks / name)
        except OSError:
            # Lost a race with the collector's stale-lease reclaim (it
            # renamed the claim away between the ownership check and here);
            # the ticket is back in circulation either way.
            pass

    last_work = time.monotonic()
    n_done = 0
    stopping = False
    while not stopping:
        if stop_seen():
            say(f"worker: stop sentinel seen after {n_done} task(s)")
            break
        batch = _claim_batch(paths, claim_batch)
        if batch and tracer.enabled:
            for name, ticket in batch:
                tracer.task("leased", ticket.get("index", -1), ticket=name)
        if not batch:
            if max_idle is not None and time.monotonic() - last_work > max_idle:
                say(f"worker: idle for {max_idle}s after {n_done} task(s)")
                break
            time.sleep(poll_interval)
            continue
        if len(batch) > 1:
            say(f"worker: claimed batch of {len(batch)} ticket(s)")
        for position, (name, ticket) in enumerate(batch):
            if stop_seen():
                stopping = True
                for pending_name, pending_ticket in batch[position:]:
                    requeue(pending_name, pending_ticket)
                say(f"worker: stop sentinel seen after {n_done} task(s)")
                break
            if position > 0 and not owned(name, ticket):
                # The collector requeued this batch-mate while earlier items
                # ran (e.g. the daemon was suspended past the lease
                # timeout); executing it now would duplicate another
                # daemon's work.
                say(f"worker: lease on {name} was reclaimed; skipping")
                continue
            say(f"worker: claimed {name} ({ticket['scenario']} #{ticket['index']})")
            tracer.task("running", ticket["index"], ticket=name, attempts=ticket.get("attempts", 0))
            outcome = _execute_with_watchdog(
                ticket,
                paths.heartbeat(name),
                mp_start_method,
                extra_heartbeats=tuple(
                    paths.heartbeat(pending_name) for pending_name, _ in batch[position + 1 :]
                ),
            )
            if store is not None:
                store.put(record_from_ticket(ticket, outcome))
            _write_json_atomic(paths.results / name, {"ticket": ticket, "outcome": outcome})
            release(name, ticket)
            n_done += 1
            last_work = time.monotonic()
            say(f"worker: [{outcome['status']}] {name} ({outcome.get('duration_s', 0.0):.2f}s)")
            tracer.task(
                outcome["status"],
                ticket["index"],
                ticket=name,
                duration_s=outcome.get("duration_s", 0.0),
            )
            if outcome["status"] == "timeout":
                tracer.event(
                    "watchdog_kill", ticket=name, timeout_s=ticket.get("timeout")
                )
    tracer.event("worker_exit", executed=n_done)
    tracer.close()
    return n_done


# -- collecting backend --------------------------------------------------------


class WorkQueueBackend(ExecutionBackend):
    """Submit tickets to a spool directory; collect results as they land.

    ``workers > 0`` spawns that many local worker daemons (terminated at
    shutdown via the STOP sentinel); ``workers == 0`` relies entirely on
    externally-started daemons pointed at the same directory -- same
    machine or any machine sharing the filesystem.
    """

    name = "queue"

    def __init__(
        self,
        queue_dir: str | os.PathLike,
        workers: int = 0,
        mp_start_method: str = "spawn",
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        max_requeues: int = 3,
        worker_poll_interval: float = 0.05,
        worker_env: dict[str, str] | None = None,
        claim_batch: int = 1,
    ) -> None:
        self.paths = QueuePaths(queue_dir)
        self.paths.ensure()
        # Distinguishes this sweep's tickets and spawned daemons on a
        # shared spool (the global STOP sentinel belongs to the operator).
        self.nonce = uuid.uuid4().hex[:8]
        self._stop_file = self.paths.root / f"STOP.{self.nonce}"
        self.lease_timeout = lease_timeout
        self.max_requeues = max_requeues
        self.mp_start_method = mp_start_method
        self._tasks: dict[str, Task] = {}
        self._procs: list[subprocess.Popen] = []
        # Lease checks stat claim/heartbeat files per outstanding task, so
        # run them on a fraction of the lease timeout, not on every poll.
        self._reclaim_interval = min(1.0, max(lease_timeout / 2.0, 0.05))
        self._next_reclaim = time.monotonic() + self._reclaim_interval
        env = dict(os.environ)
        if worker_env:
            env.update(worker_env)
        for _ in range(max(workers, 0)):
            self._procs.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.experiments",
                        "worker",
                        str(self.paths.root),
                        "--poll-interval",
                        str(worker_poll_interval),
                        "--mp-start",
                        mp_start_method,
                        "--stop-file",
                        str(self._stop_file),
                        "--claim-batch",
                        str(max(claim_batch, 1)),
                    ],
                    env=env,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
            )

    def submit(self, task: Task) -> None:
        """Enqueue the task as a JSON ticket in the spool."""
        # The nonce makes the name unique to this sweep, so stale artifacts
        # from earlier or concurrent sweeps can never alias this ticket.
        name = ticket_name(task, self.nonce)
        _write_json_atomic(self.paths.tasks / name, ticket_payload(task))
        self._tasks[name] = task
        self.trace.task("queued", task.index, ticket=name)

    def poll(self) -> list[tuple[Task, dict]]:
        """Collect results from the spool, requeueing stale-leased tickets."""
        # Reclaim first, so a ticket that just exhausted its lease attempts
        # surfaces as an error outcome in this same poll.
        if time.monotonic() >= self._next_reclaim:
            self._next_reclaim = time.monotonic() + self._reclaim_interval
            self._reclaim_dead_leases()
        batch: list[tuple[Task, dict]] = []
        # One directory scan per poll, not one stat per outstanding task.
        with os.scandir(self.paths.results) as entries:
            landed = [e.name for e in entries if e.name in self._tasks]
        for name in landed:
            path = self.paths.results / name
            payload = json.loads(path.read_text())
            batch.append((self._tasks.pop(name), payload["outcome"]))
            path.unlink(missing_ok=True)
        batch.extend(self._check_daemons())
        return batch

    def _reclaim_dead_leases(self) -> None:
        """Requeue outstanding claims whose daemon stopped heartbeating."""
        now = time.time()
        trace = self.trace
        if trace.enabled:
            trace.gauge("spool_outstanding", len(self._tasks))
        max_age = 0.0
        for name in list(self._tasks):
            claim = self.paths.claims / name
            if not claim.exists():
                continue
            beat = self.paths.heartbeat(name)
            try:
                last = beat.stat().st_mtime if beat.exists() else claim.stat().st_mtime
            except FileNotFoundError:
                continue  # completed (or requeued) between the checks
            age = now - last
            if age > max_age:
                max_age = age
            if age <= self.lease_timeout:
                continue
            try:
                ticket = json.loads(claim.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            ticket["attempts"] = ticket.get("attempts", 0) + 1
            logger.warning(
                "lease on %s stale for %.1fs (attempt %d/%d)",
                name, age, ticket["attempts"], self.max_requeues,
            )
            trace.event(
                "lease_reclaimed",
                ticket=name,
                heartbeat_age_s=round(age, 3),
                attempts=ticket["attempts"],
            )
            if ticket["attempts"] > self.max_requeues:
                _write_json_atomic(
                    self.paths.results / name,
                    {
                        "ticket": ticket,
                        "outcome": {
                            "status": "error",
                            "error": (
                                f"ticket lease expired {ticket['attempts']} time(s) "
                                f"(worker died mid-task); giving up"
                            ),
                            "duration_s": 0.0,
                        },
                    },
                )
                claim.unlink(missing_ok=True)
                beat.unlink(missing_ok=True)
            else:
                # Republish by atomic rename of the (rewritten) claim: the
                # old lease ceases to exist at the instant the ticket
                # becomes claimable, so a racing daemon's fresh claim and
                # heartbeat can never be deleted from under it.
                beat.unlink(missing_ok=True)
                _write_json_atomic(claim, ticket)
                os.rename(claim, self.paths.tasks / name)
        if trace.enabled and max_age:
            trace.gauge("max_heartbeat_age_s", round(max_age, 3))

    def _check_daemons(self) -> list[tuple[Task, dict]]:
        """Fail outstanding tasks if every spawned daemon is gone.

        Nothing would ever drain them, so surface the dead fleet as error
        outcomes (the backend contract: failures become outcome dicts, the
        sweep's finished records survive) rather than raising.
        """
        if not self._procs or not self._tasks:
            return []
        if any(proc.poll() is None for proc in self._procs):
            return []
        codes = [proc.returncode for proc in self._procs]
        now = time.time()

        def heartbeat_fresh(name: str) -> bool:
            try:
                age = now - self.paths.heartbeat(name).stat().st_mtime
            except FileNotFoundError:
                return False
            return age <= self.lease_timeout

        # A fresh heartbeat on any of our tickets means an external daemon
        # is also draining this spool; leave everything to it rather than
        # discarding work it would have picked up.
        if any(heartbeat_fresh(name) for name in self._tasks):
            return []
        logger.error(
            "all %d spawned queue workers exited (exit codes %s) with %d task(s) outstanding",
            len(self._procs), codes, len(self._tasks),
        )
        self.trace.event("worker_fleet_dead", exit_codes=codes, outstanding=len(self._tasks))
        batch = []
        for name in list(self._tasks):
            landed = self.paths.results / name
            if landed.exists():
                # The daemon finished this one on its way out; take the
                # real outcome over a synthesized failure.
                payload = json.loads(landed.read_text())
                batch.append((self._tasks.pop(name), payload["outcome"]))
                landed.unlink(missing_ok=True)
                continue
            for stale in (self.paths.tasks / name, self.paths.claims / name,
                          self.paths.heartbeat(name)):
                stale.unlink(missing_ok=True)
            batch.append(
                (
                    self._tasks.pop(name),
                    {
                        "status": "error",
                        "error": (
                            f"all {len(self._procs)} spawned queue workers exited "
                            f"(exit codes {codes}) before this task ran"
                        ),
                        "duration_s": 0.0,
                    },
                )
            )
        return batch

    def shutdown(self) -> None:
        """Dismiss the daemons this sweep spawned (external ones keep going)."""
        if not self._procs:
            return  # external daemons keep draining other sweeps
        # Dismiss only the daemons this sweep spawned: the per-instance
        # sentinel leaves external daemons (and the operator's global STOP
        # semantics) untouched.
        self._stop_file.touch()
        deadline = time.monotonic() + 10.0
        for proc in self._procs:
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    proc.kill()
                    proc.wait()
        self._procs.clear()
        self._stop_file.unlink(missing_ok=True)
