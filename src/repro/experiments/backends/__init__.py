"""Pluggable sweep-execution backends.

``run_sweep`` resolves caching and grid order; a backend turns pending
points into outcome dicts behind the :class:`ExecutionBackend`
``submit / poll / shutdown`` seam:

- :class:`SerialBackend` -- inline, in-process (the reference path);
- :class:`ProcessPoolBackend` -- local ``multiprocessing`` pool with
  spawn hygiene, worker recycling and out-of-order collection;
- :class:`WorkQueueBackend` -- a hash-sharded file spool drained by one
  or many ``python -m repro.experiments worker`` daemons (same machine or
  shared filesystem) with atomic rename-leases, heartbeats, a worker-side
  runtime watchdog, block tickets and point-granular work stealing
  (:mod:`~repro.experiments.backends.spool` holds the layout,
  :mod:`~repro.experiments.backends.fleet` the elastic supervisor).

Every future backend (job queue, SSH fleet) plugs into the same seam.
"""

from __future__ import annotations

import os

from repro.experiments.backends.base import ExecutionBackend, Task, execute_point
from repro.experiments.backends.fleet import FleetController, FleetReport, run_fleet
from repro.experiments.backends.pool import ProcessPoolBackend
from repro.experiments.backends.queue import WorkQueueBackend, run_worker
from repro.experiments.backends.serial import SerialBackend
from repro.experiments.backends.spool import QueuePaths, ShardedSpool, SpoolStats

#: CLI-facing backend names ("auto" additionally picks serial or pool from
#: the workers/timeout arguments, preserving the historical behaviour).
BACKEND_NAMES = ("auto", "serial", "pool", "queue")


def resolve_backend(
    spec: str,
    *,
    workers: int = 1,
    n_tasks: int = 1,
    task_timeout: float | None = None,
    mp_start_method: str = "spawn",
    maxtasksperchild: int | None = 16,
    queue_dir: str | os.PathLike | None = None,
    claim_batch: int = 1,
    points_per_ticket: int = 1,
    shards: int | None = None,
) -> ExecutionBackend:
    """Build a backend from a CLI-style name.

    ``auto`` keeps the historical ``run_sweep`` semantics: serial for a
    single worker with no timeout, otherwise a process pool (a timeout
    forces pool execution even with ``workers=1``, because it cannot be
    enforced on in-process execution).  Pool size never exceeds the task
    count.
    """
    if spec == "auto":
        spec = "pool" if (workers > 1 or task_timeout is not None) else "serial"
    if spec == "serial":
        if task_timeout is not None:
            # Reject up front, before any point executes (SerialBackend's
            # own submit() guard would only fire mid-sweep).
            raise ValueError(
                "serial backend cannot enforce a per-task timeout on in-process "
                "execution; use the pool or queue backend"
            )
        return SerialBackend()
    if spec == "pool":
        return ProcessPoolBackend(
            workers=min(max(workers, 1), max(n_tasks, 1)),
            mp_start_method=mp_start_method,
            maxtasksperchild=maxtasksperchild,
        )
    if spec == "queue":
        if queue_dir is None:
            raise ValueError("queue backend needs queue_dir (the spool directory)")
        return WorkQueueBackend(
            queue_dir,
            workers=max(workers, 0),
            mp_start_method=mp_start_method,
            claim_batch=claim_batch,
            points_per_ticket=points_per_ticket,
            shards=shards,
        )
    raise ValueError(f"unknown backend {spec!r}; known: {BACKEND_NAMES}")


__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "FleetController",
    "FleetReport",
    "ProcessPoolBackend",
    "QueuePaths",
    "SerialBackend",
    "ShardedSpool",
    "SpoolStats",
    "Task",
    "WorkQueueBackend",
    "execute_point",
    "resolve_backend",
    "run_fleet",
    "run_worker",
]
