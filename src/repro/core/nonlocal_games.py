"""Two-player nonlocal games and the Lemma 3.2 simulation (Section 6, B.1-B.2).

An XOR game is given by a distribution ``pi`` on ``X x Y`` and a boolean
target ``f``; isolated players output bits ``a, b`` and win if
``a XOR b = f(x, y)``.  The *bias* is ``P[win] - P[lose]``.

- classical bias: exhaustive over deterministic sign strategies (closed form:
  ``max_a sum_y |sum_x K_xy a_x|`` with ``K = A_f o pi``);
- quantum (entangled) bias: Tsirelson's vector program = ``gamma_2^*(K)``
  (computed in :mod:`repro.core.gamma2`).

Lemma 3.2 turns any server-model protocol of cost ``T`` into game strategies
that simulate it with probability ``4^{-2T}`` and otherwise abort (random bit
for XOR, 0 for AND).  :class:`AbortSimulationStrategy` implements that
construction executably for structured classical protocols, and the tests
verify the predicted win probability ``1/2 + (q - 1/2) 4^{-2T}``.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.gamma2 import gamma2_dual
from repro.core.server_model import StructuredServerProtocol


@dataclass
class XORGame:
    """An XOR game with input sets indexed ``0..m-1`` and ``0..n-1``."""

    distribution: np.ndarray  # pi(x, y), sums to 1
    target: np.ndarray  # f(x, y) in {0, 1}

    def __post_init__(self) -> None:
        self.distribution = np.asarray(self.distribution, dtype=float)
        self.target = np.asarray(self.target, dtype=int)
        if self.distribution.shape != self.target.shape:
            raise ValueError("distribution and target must have equal shapes")
        if abs(self.distribution.sum() - 1.0) > 1e-9:
            raise ValueError("distribution must sum to 1")

    @property
    def cost_matrix(self) -> np.ndarray:
        """``K = A_f o pi`` with ``A_f = (-1)^f``."""
        return self.distribution * ((-1.0) ** self.target)

    def classical_bias(self) -> float:
        """Optimal deterministic (= classical) bias, exhaustive in ``2^m``."""
        k = self.cost_matrix
        m = k.shape[0]
        if m > 20:
            raise ValueError("exhaustive classical bias limited to 20 rows")
        best = 0.0
        for signs in itertools.product((-1.0, 1.0), repeat=m):
            a = np.array(signs)
            value = float(np.abs(k.T @ a).sum())
            best = max(best, value)
        return best

    def quantum_bias(self, **kwargs) -> float:
        """Entangled bias via Tsirelson / gamma_2^* (Theorem 5.2 of [LS09a])."""
        return gamma2_dual(self.cost_matrix, **kwargs)

    def strategy_bias(self, strategy: Callable[[int, int], tuple[int, int]], trials: int, seed: int = 0) -> float:
        """Empirical bias of a (possibly randomized) strategy."""
        rng = random.Random(seed)
        flat = self.distribution.reshape(-1)
        indices = list(range(flat.size))
        wins = 0
        m, n = self.distribution.shape
        for _ in range(trials):
            idx = rng.choices(indices, weights=flat.tolist())[0]
            x, y = divmod(idx, n)
            a, b = strategy(x, y)
            if (a ^ b) == self.target[x, y]:
                wins += 1
        return 2.0 * wins / trials - 1.0


def chsh_game() -> XORGame:
    """CHSH: uniform inputs, target ``x AND y``.

    Classical bias 1/2 (win probability 3/4); quantum bias ``1/sqrt(2)``
    (win probability ``cos^2(pi/8) ~ 0.8536``) -- the canonical separation
    the gamma_2^* computation is validated against.
    """
    pi = np.full((2, 2), 0.25)
    f = np.array([[0, 0], [0, 1]])
    return XORGame(pi, f)


@dataclass
class ANDGame:
    """Referee combines the answers as ``a AND b`` (used for one-sided bounds)."""

    distribution: np.ndarray
    target: np.ndarray

    def win_probability(
        self, strategy: Callable[[int, int], tuple[int, int]], trials: int, seed: int = 0
    ) -> float:
        rng = random.Random(seed)
        flat = np.asarray(self.distribution, dtype=float).reshape(-1)
        indices = list(range(flat.size))
        wins = 0
        n = self.distribution.shape[1]
        for _ in range(trials):
            idx = rng.choices(indices, weights=flat.tolist())[0]
            x, y = divmod(idx, n)
            a, b = strategy(x, y)
            if (a & b) == self.target[x, y]:
                wins += 1
        return wins / trials


# -- Lemma 3.2: the abort-based simulation -----------------------------------


@dataclass
class AbortSimulationStrategy:
    """Nonlocal-game strategy simulating a server-model protocol (Lemma 3.2).

    The players share guessed communication strings (from shared randomness /
    entanglement).  Alice simulates Carol, checking Carol's actual bits
    against the guess and aborting on mismatch; Bob simulates David.  The
    fake server's messages are computed from the *guessed* strings, so no
    player-to-server communication ever happens.

    With probability ``4^{-T_bits}`` (all guesses correct; ``T_bits`` =
    Carol's plus David's bit count) the simulation is perfect and Alice holds
    the protocol's output.  Otherwise: XOR mode outputs a uniformly random
    bit (Bob always answers 0, Alice a coin), AND mode outputs 0.
    """

    protocol: StructuredServerProtocol
    mode: str = "xor"  # "xor" | "and"

    def play(self, x: Any, y: Any, rng: random.Random) -> tuple[int, int]:
        bits_per_round_c = len(self.protocol.carol_message(x, [], 0))
        bits_per_round_d = len(self.protocol.david_message(y, [], 0))
        guess_c = [
            tuple(rng.randrange(2) for _ in range(bits_per_round_c))
            for _ in range(self.protocol.n_rounds)
        ]
        guess_d = [
            tuple(rng.randrange(2) for _ in range(bits_per_round_d))
            for _ in range(self.protocol.n_rounds)
        ]

        # Fake server: computes its messages from the guessed strings only.
        server_to_carol: list[Any] = []
        server_to_david: list[Any] = []
        for t in range(self.protocol.n_rounds):
            to_c, to_d = self.protocol.server_message(guess_c[: t + 1], guess_d[: t + 1], t)
            server_to_carol.append(to_c)
            server_to_david.append(to_d)

        # Alice simulates Carol against the guess.
        alice_abort = False
        carol_view: list[Any] = []
        for t in range(self.protocol.n_rounds):
            actual = tuple(self.protocol.carol_message(x, carol_view, t))
            if actual != guess_c[t]:
                alice_abort = True
                break
            carol_view.append(server_to_carol[t])

        # Bob simulates David against the guess.
        bob_abort = False
        david_view: list[Any] = []
        for t in range(self.protocol.n_rounds):
            actual = tuple(self.protocol.david_message(y, david_view, t))
            if actual != guess_d[t]:
                bob_abort = True
                break
            david_view.append(server_to_david[t])

        if self.mode == "xor":
            a = rng.randrange(2) if alice_abort else int(self.protocol.carol_output(x, carol_view))
            b = rng.randrange(2) if bob_abort else 0
            # A player who aborts outputs a coin; one coin suffices to make
            # the XOR uniform, so the non-aborting player keeps their bit.
            return a, b
        a = 0 if alice_abort else int(self.protocol.carol_output(x, carol_view))
        b = 0 if bob_abort else 1
        return a, b

    def total_guess_bits(self, x: Any, y: Any) -> int:
        """Number of guessed bits = Carol's plus David's transmissions."""
        bits_c = len(self.protocol.carol_message(x, [], 0))
        bits_d = len(self.protocol.david_message(y, [], 0))
        return self.protocol.n_rounds * (bits_c + bits_d)

    def no_abort_probability(self, x: Any, y: Any) -> float:
        """``2^{-total_guess_bits}`` -- equals ``4^{-T}`` when the protocol's
        ``T`` qubits were teleported into ``2T`` classical bits."""
        return 2.0 ** (-self.total_guess_bits(x, y))


def predicted_xor_win_probability(q_correct: float, total_bits: int) -> float:
    """Lemma 3.2 arithmetic: ``P[win] = 1/2 + (q - 1/2) * 2^{-total_bits}``.

    ``q_correct`` is the protocol's success probability, ``total_bits`` the
    number of guessed bits; the guess succeeds with probability
    ``2^{-total_bits}`` (= ``4^{-T}`` when ``T`` qubits become ``2T`` bits).
    """
    return 0.5 + (q_correct - 0.5) * (2.0 ** (-total_bits))


def predicted_and_win_probability_one_inputs(q_correct: float, total_bits: int) -> float:
    """AND-game acceptance on 1-inputs: ``q * 2^{-total_bits}``."""
    return q_correct * (2.0 ** (-total_bits))
