"""The Server model (Definition 3.1) and the Section 3.1 equivalence.

Three players: Carol (input ``x``), David (input ``y``) and the Server (no
input).  Carol and David may talk to each other and to the server; the
server's messages are **free**, so the complexity counts only the bits Carol
and David send.  The server may dispense arbitrary entangled states at no
cost, which is why the model is at least as strong as two-party communication
with shared entanglement.

For *classical* protocols the model is equivalent to the plain two-party
model (Section 3.1): Alice simulates Carol plus a copy of the server, Bob
simulates David plus a copy of the server, and they exchange exactly the bits
Carol and David would have sent.  :func:`two_party_simulation_of_server`
implements that argument executably and the tests confirm the costs match
bit-for-bit.  (Quantumly the argument breaks -- one cannot clone the server's
state -- which is the paper's reason for introducing the model at all.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

CAROL = "carol"
DAVID = "david"
SERVER = "server"


@dataclass
class ServerTranscriptEntry:
    sender: str
    receiver: str
    payload: Any
    bits: int
    quantum: bool


@dataclass
class ServerResult:
    output: Any
    carol_bits: int
    david_bits: int
    server_bits: int
    carol_qubits: int = 0
    david_qubits: int = 0
    transcript: list[ServerTranscriptEntry] = field(default_factory=list)

    @property
    def cost(self) -> int:
        """Definition 3.1 cost: only Carol's and David's transmissions count."""
        return self.carol_bits + self.david_bits + self.carol_qubits + self.david_qubits


class ServerChannel:
    """Message routing with the Server model's asymmetric accounting."""

    def __init__(self) -> None:
        self.transcript: list[ServerTranscriptEntry] = []
        self.bits = {CAROL: 0, DAVID: 0, SERVER: 0}
        self.qubits = {CAROL: 0, DAVID: 0, SERVER: 0}

    def send(self, sender: str, receiver: str, payload: Any, bits: int, quantum: bool = False) -> Any:
        if sender not in (CAROL, DAVID, SERVER) or receiver not in (CAROL, DAVID, SERVER):
            raise ValueError("parties are 'carol', 'david', 'server'")
        if sender == receiver:
            raise ValueError("a party cannot message itself")
        if bits < 1:
            raise ValueError("transmissions cost at least one bit")
        if quantum:
            self.qubits[sender] += bits
        else:
            self.bits[sender] += bits
        self.transcript.append(ServerTranscriptEntry(sender, receiver, payload, bits, quantum))
        return payload

    def dispense_entanglement(self, description: Any) -> Any:
        """The server hands out an input-independent entangled state for free."""
        self.transcript.append(ServerTranscriptEntry(SERVER, CAROL, description, 0, True))
        self.transcript.append(ServerTranscriptEntry(SERVER, DAVID, description, 0, True))
        return description

    @property
    def cost(self) -> int:
        return (
            self.bits[CAROL] + self.bits[DAVID] + self.qubits[CAROL] + self.qubits[DAVID]
        )


class ServerProtocol:
    """Base class: implement :meth:`execute` routing everything via the channel."""

    name = "abstract-server-protocol"

    def execute(self, x: Any, y: Any, channel: ServerChannel, rng: random.Random) -> Any:
        raise NotImplementedError

    def run(self, x: Any, y: Any, seed: int | None = None) -> ServerResult:
        rng = random.Random(seed)
        channel = ServerChannel()
        output = self.execute(x, y, channel, rng)
        return ServerResult(
            output=output,
            carol_bits=channel.bits[CAROL],
            david_bits=channel.bits[DAVID],
            server_bits=channel.bits[SERVER],
            carol_qubits=channel.qubits[CAROL],
            david_qubits=channel.qubits[DAVID],
            transcript=channel.transcript,
        )


class TwoPartyAsServerProtocol(ServerProtocol):
    """Lift a two-party protocol into the Server model (server stays idle).

    Shows the easy direction of Section 3.1: the Server model is at least as
    strong as the two-party model, with identical cost.
    """

    def __init__(self, two_party_protocol):
        self.inner = two_party_protocol
        self.name = f"server[{two_party_protocol.name}]"

    def execute(self, x: Any, y: Any, channel: ServerChannel, rng: random.Random) -> Any:
        from repro.comm.protocols import ALICE, Channel

        inner_channel = Channel()
        output = self.inner.execute(x, y, inner_channel, rng)
        for entry in inner_channel.transcript:
            sender = CAROL if entry.sender == ALICE else DAVID
            receiver = DAVID if sender == CAROL else CAROL
            channel.send(sender, receiver, entry.payload, entry.bits, quantum=entry.quantum)
        return output


# -- Structured round-based protocols (for the simulation argument) ----------


@dataclass
class StructuredServerProtocol:
    """A classical server-model protocol in explicit round form.

    Per round ``t`` (0-based):

    - Carol computes ``carol_message(x, carol_view, t) -> bits`` (a tuple of
      0/1) from her input and everything the server has sent her;
    - David likewise;
    - the server computes ``server_message(history, t) -> (to_carol, to_david)``
      from all bits received so far.

    After ``n_rounds`` rounds, ``carol_output(x, carol_view)`` produces the
    answer.  All functions must be deterministic (public randomness can be
    baked into them), which is exactly the setting of the Section 3.1
    equivalence argument.
    """

    n_rounds: int
    carol_message: Callable[[Any, list, int], tuple[int, ...]]
    david_message: Callable[[Any, list, int], tuple[int, ...]]
    server_message: Callable[[list, list, int], tuple[Any, Any]]
    carol_output: Callable[[Any, list], Any]

    def run(self, x: Any, y: Any) -> ServerResult:
        channel = ServerChannel()
        carol_view: list[Any] = []
        david_view: list[Any] = []
        carol_sent: list[tuple[int, ...]] = []
        david_sent: list[tuple[int, ...]] = []
        for t in range(self.n_rounds):
            c_bits = tuple(self.carol_message(x, carol_view, t))
            d_bits = tuple(self.david_message(y, david_view, t))
            channel.send(CAROL, SERVER, c_bits, bits=max(1, len(c_bits)))
            channel.send(DAVID, SERVER, d_bits, bits=max(1, len(d_bits)))
            carol_sent.append(c_bits)
            david_sent.append(d_bits)
            to_carol, to_david = self.server_message(carol_sent, david_sent, t)
            channel.send(SERVER, CAROL, to_carol, bits=1)
            channel.send(SERVER, DAVID, to_david, bits=1)
            carol_view.append(to_carol)
            david_view.append(to_david)
        output = self.carol_output(x, carol_view)
        return ServerResult(
            output=output,
            carol_bits=channel.bits[CAROL],
            david_bits=channel.bits[DAVID],
            server_bits=channel.bits[SERVER],
            transcript=channel.transcript,
        )


@dataclass
class TwoPartySimulationResult:
    output: Any
    alice_bits: int
    bob_bits: int

    @property
    def total_bits(self) -> int:
        return self.alice_bits + self.bob_bits


def two_party_simulation_of_server(
    protocol: StructuredServerProtocol, x: Any, y: Any
) -> TwoPartySimulationResult:
    """The Section 3.1 classical simulation, executably.

    Alice simulates Carol and a private copy of the server; Bob simulates
    David and his own copy.  Each round Alice must forward Carol's
    server-bound bits to Bob (so Bob's server copy stays in sync) and vice
    versa -- and *nothing else*.  The two-party cost therefore equals the
    server-model cost exactly, which the tests assert.
    """
    carol_view: list[Any] = []
    david_view: list[Any] = []
    carol_sent: list[tuple[int, ...]] = []
    david_sent: list[tuple[int, ...]] = []
    alice_bits = 0
    bob_bits = 0
    for t in range(protocol.n_rounds):
        c_bits = tuple(protocol.carol_message(x, carol_view, t))
        d_bits = tuple(protocol.david_message(y, david_view, t))
        # Alice -> Bob: Carol's bits to the server.  Bob -> Alice: David's.
        alice_bits += max(1, len(c_bits))
        bob_bits += max(1, len(d_bits))
        carol_sent.append(c_bits)
        david_sent.append(d_bits)
        # Both players now run identical server copies (free, local).
        to_carol_alice, to_david_alice = protocol.server_message(carol_sent, david_sent, t)
        to_carol_bob, to_david_bob = protocol.server_message(carol_sent, david_sent, t)
        if repr(to_carol_alice) != repr(to_carol_bob) or repr(to_david_alice) != repr(to_david_bob):
            raise AssertionError("server copies diverged; protocol is not deterministic")
        carol_view.append(to_carol_alice)
        david_view.append(to_david_alice)
    output = protocol.carol_output(x, carol_view)
    return TwoPartySimulationResult(output=output, alice_bits=alice_bits, bob_bits=bob_bits)
