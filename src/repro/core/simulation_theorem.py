"""The Quantum Simulation Theorem (Theorem 3.5, Sections 8 & D).

Any distributed algorithm on the network ``N(Gamma, L)`` that runs in at most
``L/2 - 2`` rounds can be simulated by Carol, David and the Server so that
Carol and David together send only ``O(B log L)`` (qu)bits per round: the
three parties *own* growing/shrinking regions of the network

    S_C^t = { v^i_j, h^i_j : j <= t + 1 }          (Eq. 36)
    S_D^t = { v^i_j, h^i_j : j >= L - t }          (Eq. 37)
    S_S^t = everything else                        (Eq. 38)

and the only traffic a bounded party must pay for is what crosses out of its
region -- at most one ``B``-bit message per highway per round.

This module makes that bookkeeping executable: it runs a real CONGEST
algorithm on ``N``, replays the message trace against the ownership
schedule, and reports exactly what Carol and David would have transmitted.
The tests and benches confirm the theorem's guarantees on live algorithms:
per-round cost ``<= 6 k B`` and total ``O(B log L x rounds)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Hashable

import networkx as nx

from repro.congest.network import CongestNetwork, RunResult
from repro.congest.topology import (
    boundary_nodes,
    simulation_network,
    simulation_network_parameters,
)
from repro.core.server_model import CAROL, DAVID, SERVER

Edge = tuple[int, int]


@dataclass(frozen=True)
class OwnershipSchedule:
    """The Eq. (36)-(38) region schedule on ``N(Gamma, L)``."""

    n_paths: int
    length: int

    def owner(self, node: Hashable, t: int) -> str:
        """Which party owns ``node`` at time ``t`` (t = 0, 1, ...)."""
        kind, _index, j = node
        if kind not in ("v", "h"):
            raise ValueError(f"not a simulation-network node: {node!r}")
        if j <= t + 1:
            return CAROL
        if j >= self.length - t:
            return DAVID
        return SERVER

    def regions(self, t: int, graph: nx.Graph) -> dict[str, set]:
        """Materialised ownership sets at time ``t``."""
        result: dict[str, set] = {CAROL: set(), DAVID: set(), SERVER: set()}
        for node in graph.nodes():
            result[self.owner(node, t)].add(node)
        return result

    def valid_horizon(self) -> int:
        """Rounds until the Carol/David regions would collide: ``L/2 - 2``."""
        return self.length // 2 - 2


@dataclass
class SimulationAccounting:
    """What the three parties paid while simulating one execution."""

    rounds: int
    carol_bits: int
    david_bits: int
    server_bits: int
    per_round_cost: list[int]
    n_highways: int
    bandwidth: int
    run: RunResult

    @property
    def cost(self) -> int:
        """Server-model cost: Carol + David only (Definition 3.1)."""
        return self.carol_bits + self.david_bits

    @property
    def per_round_bound(self) -> int:
        """The proof's bound: ``6 k B`` per round (Appendix D.2)."""
        return 6 * self.n_highways * self.bandwidth

    @property
    def total_bound(self) -> int:
        return self.per_round_bound * max(1, self.rounds)


class SimulationTheoremNetwork:
    """The network ``N(Gamma, L)`` with input embedding and simulation accounting."""

    def __init__(self, n_paths: int, length: int):
        self.length, self.n_highways = simulation_network_parameters(length)
        self.n_paths = n_paths
        self.graph = simulation_network(n_paths, self.length)
        self.schedule = OwnershipSchedule(n_paths, self.length)
        self.left = boundary_nodes(n_paths, self.length, "left")
        self.right = boundary_nodes(n_paths, self.length, "right")

    @property
    def input_graph_size(self) -> int:
        """``Gamma' = Gamma + k``: the Server-model input graph's node count."""
        return self.n_paths + self.n_highways

    # -- input embedding (Section 8, Fig. 9/13) ------------------------------

    def embed_matchings(self, carol_matching: list[Edge], david_matching: list[Edge]) -> nx.Graph:
        """Build the subnetwork ``M`` for Server-model input ``G = (U, EC u ED)``.

        Carol marks ``v^i_1 v^j_1`` iff ``u_i u_j in EC`` (locally: she knows
        only ``EC``); David marks the right column from ``ED``; the server
        marks every path and highway edge.  Cross edges (highway-to-path and
        inter-highway) are *not* in ``M``.
        """
        m = nx.Graph()
        m.add_nodes_from(self.graph.nodes())
        for i in range(1, self.n_paths + 1):
            for j in range(1, self.length):
                m.add_edge(("v", i, j), ("v", i, j + 1))
        for level in range(1, self.n_highways + 1):
            step = 1 << level
            positions = list(range(1, self.length + 1, step))
            for a in range(len(positions) - 1):
                m.add_edge(("h", level, positions[a]), ("h", level, positions[a + 1]))
        for u, v in carol_matching:
            m.add_edge(self.left[u], self.left[v])
        for u, v in david_matching:
            m.add_edge(self.right[u], self.right[v])
        return m

    def node_inputs_from_subnetwork(self, m: nx.Graph) -> dict[Hashable, Any]:
        """Per-node input: the frozenset of incident ``M``-neighbours."""
        return {
            node: frozenset(m.neighbors(node)) if node in m else frozenset()
            for node in self.graph.nodes()
        }

    @staticmethod
    def input_graph(n_nodes: int, carol_matching: list[Edge], david_matching: list[Edge]) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(range(n_nodes))
        g.add_edges_from(carol_matching)
        g.add_edges_from(david_matching)
        return g

    def check_observation_8_1(self, carol_matching: list[Edge], david_matching: list[Edge]) -> bool:
        """Observation 8.1: #cycles in ``G`` equals #cycles in ``M``."""
        g = self.input_graph(self.input_graph_size, carol_matching, david_matching)
        m = self.embed_matchings(carol_matching, david_matching)
        if any(d != 2 for _, d in g.degree()):
            raise ValueError("matchings must be perfect (all degrees 2 in G)")
        m_cycle_nodes = [n for n in m.nodes() if m.degree(n) > 0]
        g_cycles = nx.number_connected_components(g)
        m_cycles = nx.number_connected_components(m.subgraph(m_cycle_nodes))
        return g_cycles == m_cycles

    # -- the simulation ------------------------------------------------------

    def simulate(
        self,
        program_factory: Callable[[], Any],
        inputs: dict[Hashable, Any] | None = None,
        bandwidth: int = 32,
        seed: int | None = 0,
        max_rounds: int | None = None,
        enforce_horizon: bool = True,
    ) -> SimulationAccounting:
        """Run a CONGEST algorithm on ``N`` and account the three-party cost.

        A message sent at round ``t`` from ``u`` to ``w`` is paid by
        ``owner(u, t)`` iff that owner is Carol or David and the message
        leaves the party's (grown) region, i.e. ``owner(w, t + 1)`` differs.
        The construction makes region growth absorb all path traffic, so
        only highway-boundary messages cost -- at most ``k`` per party per
        round, each at most ``B`` bits.
        """
        horizon = self.schedule.valid_horizon()
        budget = max_rounds if max_rounds is not None else horizon
        network = CongestNetwork(
            self.graph,
            program_factory,
            bandwidth=bandwidth,
            seed=seed,
            inputs=inputs,
            # The ownership replay below needs the full per-message trace.
            record_messages=True,
        )
        run = network.run(max_rounds=budget)
        if enforce_horizon and run.rounds > horizon:
            raise ValueError(
                f"algorithm used {run.rounds} rounds, beyond the simulation "
                f"horizon L/2 - 2 = {horizon}"
            )
        carol = david = server = 0
        per_round = [0] * (run.rounds + 1)
        for sent_round, sender, receiver, bits in network.message_log:
            sender_owner = self.schedule.owner(sender, sent_round)
            receiver_owner = self.schedule.owner(receiver, sent_round + 1)
            if sender_owner == SERVER or sender_owner == receiver_owner:
                server += bits
                continue
            if sender_owner == CAROL:
                carol += bits
            else:
                david += bits
            if sent_round < len(per_round):
                per_round[sent_round] += bits
        return SimulationAccounting(
            rounds=run.rounds,
            carol_bits=carol,
            david_bits=david,
            server_bits=server,
            per_round_cost=per_round,
            n_highways=self.n_highways,
            bandwidth=bandwidth,
            run=run,
        )


def theorem_parameters(n: int, bandwidth: int) -> dict[str, float]:
    """The Section 9.1 parameter plumbing: ``L``, ``Gamma`` and the
    contradiction threshold for an ``n``-node instantiation."""
    log_n = math.log2(max(4, n))
    length = max(5.0, math.sqrt(n / (bandwidth * log_n)))
    gamma = max(2.0, math.sqrt(n * bandwidth * log_n))
    return {
        "L": length,
        "Gamma": gamma,
        "node_count": length * gamma,
        "horizon": length / 2 - 2,
        "per_round_cost": 6 * bandwidth * math.log2(length),
    }
