"""Approximate polynomial degree of symmetric functions (Appendix B.3).

For a symmetric boolean ``f`` on ``{0,1}^n``, identified with its predicate
on the Hamming weight ``k in {0..n}``, the ``eps``-approximate degree is the
least ``d`` such that a degree-``d`` univariate polynomial ``p`` satisfies
``|p(k) - f'(k)| <= eps`` for all ``k`` (``f' = (-1)^f`` valued in ``+-1``).

Both the primal (best approximation at fixed degree) and the dual witness of
Lemma B.6 are linear programs, solved exactly with scipy.  Tests pin the
classics: ``deg(PARITY) = n`` exactly, ``deg_{1/3}(OR_n) = Theta(sqrt(n))``
[Pat92], and ``deg_{1/3}(MOD3) = Theta(n)`` -- the engine of the IPmod3
lower bound (Theorem 6.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy.optimize import linprog


def _chebyshev_design(n: int, degree: int) -> np.ndarray:
    """Design matrix of Chebyshev polynomials on points ``k in {0..n}``
    rescaled to ``[-1, 1]`` (well-conditioned basis for the LP)."""
    points = np.linspace(-1.0, 1.0, n + 1)
    columns = [np.ones_like(points)]
    if degree >= 1:
        columns.append(points)
    for d in range(2, degree + 1):
        columns.append(2.0 * points * columns[-1] - columns[-2])
    return np.stack(columns, axis=1)


def best_approximation_error(sign_values: Sequence[float], degree: int) -> float:
    """Least uniform error of a degree-``degree`` polynomial approximating
    the ``+-1`` values on ``{0..n}`` (LP primal)."""
    f = np.asarray(sign_values, dtype=float)
    n = len(f) - 1
    if degree >= n:
        return 0.0
    design = _chebyshev_design(n, degree)
    n_coeff = design.shape[1]
    # Variables: coefficients c (free), error e >= 0.  Minimise e subject to
    # -e <= design @ c - f <= e.
    c_obj = np.zeros(n_coeff + 1)
    c_obj[-1] = 1.0
    ones = np.ones((n + 1, 1))
    a_ub = np.vstack(
        [np.hstack([design, -ones]), np.hstack([-design, -ones])]
    )
    b_ub = np.concatenate([f, -f])
    bounds = [(None, None)] * n_coeff + [(0, None)]
    result = linprog(c_obj, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not result.success:  # pragma: no cover - solver failure
        raise RuntimeError(f"LP failed: {result.message}")
    return float(result.fun)


def approx_degree(sign_values: Sequence[float], eps: float = 1.0 / 3.0) -> int:
    """``deg_eps(f)``: least degree with uniform error at most ``eps``."""
    n = len(sign_values) - 1
    lo, hi = 0, n
    while lo < hi:
        mid = (lo + hi) // 2
        if best_approximation_error(sign_values, mid) <= eps + 1e-9:
            hi = mid
        else:
            lo = mid + 1
    return lo


@dataclass
class DualPolynomial:
    """The Lemma B.6 witness: ``v`` with ``||v||_1 = 1``, pure high degree
    ``>= d`` (orthogonal to all lower-degree polynomials) and correlation
    ``<v, f'> >= delta``."""

    values: np.ndarray  # v(k) for k in 0..n, with multiplicity weights folded in
    degree: int
    correlation: float

    def check(self, sign_values: Sequence[float], tol: float = 1e-7) -> bool:
        f = np.asarray(sign_values, dtype=float)
        n = len(f) - 1
        if abs(np.abs(self.values).sum() - 1.0) > tol:
            return False
        design = _chebyshev_design(n, max(0, self.degree - 1))
        if np.max(np.abs(design.T @ self.values)) > tol:
            return False
        return float(self.values @ f) >= self.correlation - tol


def dual_polynomial(sign_values: Sequence[float], degree: int) -> DualPolynomial:
    """Maximise ``<v, f'>`` over ``||v||_1 = 1`` with ``v`` orthogonal to all
    polynomials of degree below ``degree`` (LP dual of the approximation
    problem; strong duality gives correlation = best error at degree-1)."""
    f = np.asarray(sign_values, dtype=float)
    n = len(f) - 1
    n_points = n + 1
    # Variables: v+ and v- (both >= 0), v = v+ - v-.
    objective = np.concatenate([-f, f])  # maximise <v, f>
    design = _chebyshev_design(n, max(0, degree - 1))
    a_eq = np.hstack([design.T, -design.T])
    b_eq = np.zeros(design.shape[1])
    # ||v||_1 = sum(v+) + sum(v-) = 1.
    a_eq = np.vstack([a_eq, np.ones(2 * n_points)])
    b_eq = np.concatenate([b_eq, [1.0]])
    bounds = [(0, None)] * (2 * n_points)
    result = linprog(objective, A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs")
    if not result.success:  # pragma: no cover - solver failure
        raise RuntimeError(f"dual LP failed: {result.message}")
    v = result.x[:n_points] - result.x[n_points:]
    return DualPolynomial(values=v, degree=degree, correlation=float(v @ f))


# -- The symmetric functions used by the paper -------------------------------


def sign_values_from_predicate(n: int, predicate: Callable[[int], int]) -> list[float]:
    """``f'(k) = (-1)^{f(k)}`` over Hamming weights ``k = 0..n``
    (``f = 1 -> f' = -1`` by the convention above Lemma B.6... we use
    ``f' = +1`` for ``f = 0``)."""
    return [1.0 if predicate(k) == 0 else -1.0 for k in range(n + 1)]


def or_function(n: int) -> list[float]:
    """OR_n: ``deg_{1/3} = Theta(sqrt(n))`` [Pat92]."""
    return sign_values_from_predicate(n, lambda k: int(k > 0))


def parity_function(n: int) -> list[float]:
    """PARITY_n: approximate degree exactly ``n``."""
    return sign_values_from_predicate(n, lambda k: k % 2)


def majority_function(n: int) -> list[float]:
    return sign_values_from_predicate(n, lambda k: int(k > n / 2))


def mod3_function(n: int) -> list[float]:
    """The outer function of IPmod3's composition (Appendix B.3):
    ``f(z) = 1`` iff ``|z|`` is divisible by 3.  ``deg_{1/3} = Theta(n)``
    [Pat92]: the predicate flips near the centre of ``{0..n}``."""
    return sign_values_from_predicate(n, lambda k: int(k % 3 == 0))
