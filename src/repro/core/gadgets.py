"""Gadget reductions of Section 7 (Figs. 4-7, 12; Appendix C).

Two reductions drive Theorem 3.4:

1. ``IPmod3_n -> Ham_{O(n)}``: a chain of gadgets ``G_1..G_n``, gadget ``i``
   built from ``(x_i, y_i)``, such that the union graph consists of three
   strands whose end-to-end permutation is the cyclic shift by
   ``sum_i x_i y_i (mod 3)`` (Lemma 7.2); identifying the two boundary
   columns turns the strands into a Hamiltonian cycle **iff** the sum is
   nonzero mod 3 (Lemma C.3).

2. ``(beta n)-Eq -> (beta n)-Ham`` (Fig. 7): a two-strand chain in which each
   position with ``x_i != y_i`` crosses the strands; the union is a single
   Hamiltonian cycle iff ``x = y`` and splits into one cycle per mismatch
   otherwise.

Both reductions have the crucial locality property of Definition 3.3:
Carol's edges depend only on ``x``, David's only on ``y``, and each player's
edge set is a perfect matching.

Our concrete realisation of the Fig. 4 gadget uses four permutation layers
(columns ``v_{i-1} -> p -> q -> r -> v_i``), with Carol controlling layers 1
and 3 and David layers 2 and 4.  With the transpositions

    carol layer: identity if x_i = 0, else (0 2)
    david layer: identity if y_i = 0, else (0 1)

the composed permutation is the identity when ``x_i y_i = 0`` and
``(0 1)(0 2)(0 1)(0 2) = shift by +1`` when ``x_i = y_i = 1`` -- the
non-commutativity of S_3 is what lets two players realise a product
``x_i AND y_i`` neither can see.  (The paper's figures realise the same
three-path structure; Observation 7.1 is checked as a property test.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import networkx as nx

Edge = tuple[Hashable, Hashable]

IDENTITY3 = (0, 1, 2)
SWAP_02 = (2, 1, 0)  # Carol's transposition
SWAP_01 = (1, 0, 2)  # David's transposition
SHIFT1 = (1, 2, 0)  # j -> j + 1 (mod 3)


def compose(*perms: Sequence[int]) -> tuple[int, ...]:
    """Compose permutations left-to-right: the first is applied first."""
    result = list(range(len(perms[0])))
    for perm in perms:
        result = [perm[j] for j in result]
    return tuple(result)


def gadget_permutation(x_bit: int, y_bit: int) -> tuple[int, ...]:
    """End-to-end strand permutation of gadget ``i`` (Observation 7.1)."""
    carol = SWAP_02 if x_bit else IDENTITY3
    david = SWAP_01 if y_bit else IDENTITY3
    return compose(carol, david, carol, david)


@dataclass
class HamInstance:
    """A Server-model ``Ham`` input produced by a reduction."""

    n_nodes: int
    carol_edges: list[Edge]
    david_edges: list[Edge]

    def union_graph(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_edges_from(self.carol_edges)
        graph.add_edges_from(self.david_edges)
        return graph

    def is_hamiltonian(self) -> bool:
        graph = self.union_graph()
        return (
            graph.number_of_nodes() == self.n_nodes
            and all(d == 2 for _, d in graph.degree())
            and nx.is_connected(graph)
        )

    def cycle_count(self) -> int:
        graph = self.union_graph()
        if any(d != 2 for _, d in graph.degree()):
            raise ValueError("union is not a disjoint-cycle cover")
        return nx.number_connected_components(graph)


# -- IPmod3 -> Ham (Figs. 4-6, 12) -------------------------------------------


def _boundary(i: int, j: int, n: int) -> Hashable:
    """Boundary node ``v_i^j`` with the wrap-around identification
    ``v_n^j = v_0^j`` (Fig. 6's gray edges)."""
    return ("v", i % n, j)


def ipmod3_to_ham(x: Sequence[int], y: Sequence[int]) -> HamInstance:
    """Build the ``Ham`` instance for IPmod3 inputs ``x, y`` (Section 7).

    The graph has ``12 n`` nodes: boundary columns ``v_i^j`` (``3n``, after
    identification) and internal columns ``p, q, r`` (``9n``).  Carol's edges
    (layers ``v -> p`` and ``q -> r``) depend only on ``x``; David's
    (``p -> q`` and ``r -> v``) only on ``y``.  Each side is a perfect
    matching on the ``12 n`` nodes.
    """
    n = len(x)
    if n != len(y) or n < 1:
        raise ValueError("inputs must be equal-length and nonempty")
    carol_edges: list[Edge] = []
    david_edges: list[Edge] = []
    for i in range(1, n + 1):
        xi, yi = x[i - 1], y[i - 1]
        if xi not in (0, 1) or yi not in (0, 1):
            raise ValueError("inputs must be bit strings")
        carol_layer = SWAP_02 if xi else IDENTITY3
        david_layer = SWAP_01 if yi else IDENTITY3
        for j in range(3):
            # Layer 1 (Carol): v_{i-1}^j -- p_i^{carol(j)}.
            carol_edges.append((_boundary(i - 1, j, n), ("p", i, carol_layer[j])))
            # Layer 2 (David): p_i^j -- q_i^{david(j)}.
            david_edges.append((("p", i, j), ("q", i, david_layer[j])))
            # Layer 3 (Carol): q_i^j -- r_i^{carol(j)}.
            carol_edges.append((("q", i, j), ("r", i, carol_layer[j])))
            # Layer 4 (David): r_i^j -- v_i^{david(j)}.
            david_edges.append((("r", i, j), _boundary(i, david_layer[j], n)))
    return HamInstance(12 * n, carol_edges, david_edges)


def ipmod3_value(x: Sequence[int], y: Sequence[int]) -> int:
    """IPmod3 output: 1 iff ``sum x_i y_i = 0 (mod 3)``."""
    return int(sum(a * b for a, b in zip(x, y)) % 3 == 0)


def strand_permutation(x: Sequence[int], y: Sequence[int]) -> tuple[int, ...]:
    """Lemma 7.2: the composed strand permutation = shift by
    ``sum x_i y_i (mod 3)``."""
    perm = IDENTITY3
    for xi, yi in zip(x, y):
        perm = compose(perm, gadget_permutation(xi, yi))
    return perm


# -- Gap-Eq -> Gap-Ham (Fig. 7) ----------------------------------------------


def _eq_boundary(i: int, j: int, n: int) -> Hashable:
    """Two-strand boundary node with each endpoint column merged to a single
    node: ``v_0^0 = v_0^1`` ("start") and ``v_n^0 = v_n^1`` ("end")."""
    if i == 0:
        return ("w", "start")
    if i == n:
        return ("w", "end")
    return ("v", i, j)


# The Fig.-7-style gadget, realised as a pair of 3-edge matchings per player
# over the column pattern  v_{i-1}^{0,1} | a^{0,1} b^{0,1} | v_i^{0,1}.
# Matching inputs (x_i = y_i) compose to a strand *pass-through*; mismatched
# inputs compose to two *U-turns* (one closing the strands on the left, one
# on the right), so every maximal run between mismatches becomes its own
# cycle.  The four matchings below were found by exhaustive search over all
# pairs of perfect matchings and verified to realise exactly that semantics.
_EQ_CAROL_LAYERS = {
    0: ((("v", 0), ("a", 0)), (("v", 1), ("a", 1)), (("b", 0), ("b", 1))),
    1: ((("v", 0), ("a", 0)), (("v", 1), ("b", 0)), (("a", 1), ("b", 1))),
}
_EQ_DAVID_LAYERS = {
    0: ((("a", 0), ("b", 0)), (("a", 1), ("w", 0)), (("b", 1), ("w", 1))),
    1: ((("a", 0), ("a", 1)), (("b", 0), ("w", 0)), (("b", 1), ("w", 1))),
}


def gap_eq_to_ham(x: Sequence[int], y: Sequence[int]) -> HamInstance:
    """Build the Fig. 7 instance for Gap-Eq inputs.

    Each position contributes a gadget of two internal columns (``6n`` nodes
    total after merging each boundary column to a single node).  Matching
    positions pass the two strands through; mismatched positions U-turn them,
    so the union graph is:

    - a single Hamiltonian cycle iff ``x = y``;
    - a disjoint union of ``delta + 1`` cycles when ``x`` and ``y`` differ in
      ``delta >= 1`` positions (one cycle per maximal run between mismatches;
      the paper counts ``delta`` with a cyclic convention -- either way the
      instance is at least ``delta``-far from Hamiltonian, which is all the
      reduction needs).

    Carol's edges depend only on ``x`` and David's only on ``y``; away from
    the two merged seam nodes each player's edge set is a matching.
    """
    n = len(x)
    if n != len(y) or n < 2:
        raise ValueError("inputs must be equal-length with n >= 2")

    def materialise(i: int, symbolic: Hashable) -> Hashable:
        kind, j = symbolic
        if kind == "v":
            return _eq_boundary(i - 1, j, n)
        if kind == "w":
            return _eq_boundary(i, j, n)
        return (kind, i, j)

    carol_edges: list[Edge] = []
    david_edges: list[Edge] = []
    for i in range(1, n + 1):
        xi, yi = x[i - 1], y[i - 1]
        if xi not in (0, 1) or yi not in (0, 1):
            raise ValueError("inputs must be bit strings")
        for u, v in _EQ_CAROL_LAYERS[xi]:
            carol_edges.append((materialise(i, u), materialise(i, v)))
        for u, v in _EQ_DAVID_LAYERS[yi]:
            david_edges.append((materialise(i, u), materialise(i, v)))
    return HamInstance(6 * n, carol_edges, david_edges)


def gap_eq_mismatch_count(x: Sequence[int], y: Sequence[int]) -> int:
    return sum(1 for a, b in zip(x, y) if a != b)


# -- Section 9 reductions -----------------------------------------------------


def ham_to_spanning_tree_instance(network: nx.Graph, m_edges: list[Edge]) -> list[Edge] | None:
    """The Theorem 3.6 reduction: Ham -> ST.

    Checks degrees are all 2 (an ``O(D)`` distributed step); if so, deletes
    one arbitrary edge and returns the residual edge set, which is a spanning
    tree iff ``M`` was a Hamiltonian cycle.  Returns ``None`` when the degree
    check already refutes.
    """
    sub = nx.Graph()
    sub.add_nodes_from(network.nodes())
    sub.add_edges_from(m_edges)
    if any(d != 2 for _, d in sub.degree()):
        return None
    edges = sorted(sub.edges(), key=repr)
    return [e for e in edges if e != edges[0]]


def gap_connectivity_weights(
    network: nx.Graph, m_edges: list[Edge], high_weight: float
) -> dict[frozenset, float]:
    """The Theorem 3.8 reduction weights (Section 9.2): ``M``-edges get
    weight 1, the rest weight ``W``; an alpha-approximate MST of weight
    ``<= alpha (n - 1)`` certifies ``M`` connected, weight ``>= beta Gamma W``
    certifies far-from-connected."""
    marked = {frozenset(e) for e in m_edges}
    return {
        frozenset((u, v)): (1.0 if frozenset((u, v)) in marked else float(high_weight))
        for u, v in network.edges()
    }


def mst_weight_threshold(n: int, alpha: float) -> float:
    """Accept-threshold of the Section 9.2 verifier: ``alpha (n - 1)``."""
    return alpha * (n - 1)
