"""Closed-form bound evaluators: Theorems 3.6 & 3.8, Corollaries 3.7 & 3.9.

These functions evaluate the paper's asymptotic bounds as concrete functions
of ``(n, B, W, alpha)`` so benchmarks can lay measured upper-bound round
counts against them (Figs. 2 and 3).  Asymptotic constants are taken as 1;
what the reproduction checks is the *shape*: who wins, the scaling exponents
and the crossover points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def verification_lower_bound(n: int, bandwidth: int = 1) -> float:
    """Theorem 3.6: ``Omega(sqrt(n / (B log n)))`` rounds.

    Holds for two-sided-error quantum algorithms with arbitrary prior
    entanglement, on a Theta(log n)-diameter network, for Hamiltonian cycle
    and spanning tree verification -- and via Corollary 3.7 for all eleven
    verification problems of [DHK+12].
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    if bandwidth < 1:
        raise ValueError("bandwidth must be positive")
    return math.sqrt(n / (bandwidth * math.log2(n)))


def optimization_lower_bound(
    n: int, bandwidth: int = 1, aspect_ratio: float = float("inf"), alpha: float = 1.0
) -> float:
    """Theorem 3.8: ``Omega(min(W/alpha, sqrt(n)) / sqrt(B log n))`` rounds.

    Monte Carlo, quantum, entanglement-assisted, any approximation ratio
    ``alpha``; tight for all aspect ratios ``W`` against the
    Elkin + Kutten-Peleg upper bounds (Fig. 3).
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    if alpha < 1:
        raise ValueError("approximation ratio is at least 1")
    capped = min(aspect_ratio / alpha, math.sqrt(n))
    return capped / math.sqrt(bandwidth * math.log2(n))


def mst_upper_bound(
    n: int, diameter: float, aspect_ratio: float = float("inf"), alpha: float = 1.0
) -> float:
    """The classical upper bound the lower bound is matched against.

    ``O(min(W/alpha, sqrt(n)) + D)``: Elkin's alpha-approximation in
    ``O(W/alpha)`` rounds [Elk06] combined with the exact
    Kutten-Peleg/Garay-Kutten-Peleg ``O(sqrt(n) + D)`` algorithm [KP98].
    """
    return min(aspect_ratio / alpha, math.sqrt(n)) + diameter


def quantum_speedup_cap_shortest_paths(n: int, diameter: float) -> float:
    """Section 3: for shortest paths the best-known classical upper bound is
    ``O~(sqrt(n) D^{1/4} + D)`` [Nan14b], so any quantum speedup is at most
    ``O(D^{1/4})``.  Returns that cap."""
    return max(1.0, diameter ** 0.25)


@dataclass(frozen=True)
class BoundRow:
    """One row of the Fig. 2 table."""

    problem: str
    category: str  # "verification" | "optimization"
    previous: str
    new: str
    previous_value: float
    new_value: float


#: Corollary 3.7: verification problems inheriting the Theorem 3.6 bound.
VERIFICATION_PROBLEMS = (
    "Hamiltonian cycle",
    "spanning tree",
    "minimum spanning tree verification",
    "connected component",
    "spanning connected subgraph",
    "cycle containment",
    "e-cycle containment",
    "bipartiteness",
    "s-t connectivity",
    "connectivity",
    "cut",
    "edge on all paths",
    "s-t cut",
    "least-element list",
)

#: Corollary 3.9: optimization problems inheriting the Theorem 3.8 bound.
OPTIMIZATION_PROBLEMS = (
    "minimum spanning tree",
    "shallow-light tree",
    "s-source distance",
    "shortest path tree",
    "minimum routing cost spanning tree",
    "minimum cut",
    "minimum s-t cut",
    "shortest s-t path",
    "generalized Steiner forest",
)


def fig2_table(n: int, bandwidth: int = 1, aspect_ratio: float = 1024.0, alpha: float = 2.0) -> list[BoundRow]:
    """Evaluate the distributed-network half of the Fig. 2 table at concrete
    parameters.

    ``previous_value`` is the prior classical bound, ``new_value`` this
    paper's quantum bound, both in rounds.  For verification problems both
    formulas coincide numerically (the new result extends the *model*:
    deterministic/randomized classical -> two-sided-error quantum with
    entanglement); for optimization the new bound adds the ``W/alpha`` regime.
    """
    rows: list[BoundRow] = []
    verification_value = verification_lower_bound(n, bandwidth)
    for problem in VERIFICATION_PROBLEMS:
        previous = "Omega(sqrt(n / (B log n))), classical"
        if problem in ("Hamiltonian cycle", "spanning tree", "minimum spanning tree verification"):
            previous = "Omega(sqrt(n / (B log n))), deterministic classical only"
        rows.append(
            BoundRow(
                problem=problem,
                category="verification",
                previous=previous,
                new="Omega(sqrt(n / (B log n))), two-sided-error quantum + entanglement",
                previous_value=verification_value,
                new_value=verification_value,
            )
        )
    old_opt = math.sqrt(n / (bandwidth * math.log2(n)))  # only for W = Omega(alpha n)
    new_opt = optimization_lower_bound(n, bandwidth, aspect_ratio, alpha)
    for problem in OPTIMIZATION_PROBLEMS:
        rows.append(
            BoundRow(
                problem=problem,
                category="optimization",
                previous="Omega(sqrt(n / (B log n))), classical Monte Carlo, W = Omega(alpha n)",
                new="Omega(min(sqrt(n), W/alpha) / sqrt(B log n)), quantum Monte Carlo + entanglement",
                previous_value=old_opt,
                new_value=new_opt,
            )
        )
    return rows


def fig3_curve(
    n: int, alpha: float, aspect_ratios: list[float], diameter: float | None = None
) -> list[dict[str, float]]:
    """The Fig. 3 tradeoff: for each ``W`` return lower bound, upper bound and
    the two crossover landmarks ``W = alpha sqrt(n)`` and ``W = alpha n``."""
    d = diameter if diameter is not None else math.log2(n)
    curve = []
    for w in aspect_ratios:
        curve.append(
            {
                "W": w,
                "lower_bound": optimization_lower_bound(n, 1, w, alpha),
                "upper_bound": mst_upper_bound(n, d, w, alpha),
                "crossover_sqrt": alpha * math.sqrt(n),
                "crossover_linear": alpha * n,
            }
        )
    return curve


def simulation_theorem_parameters(n: int, bandwidth: int) -> dict[str, float]:
    """The parameter choices in the proof of Theorem 3.6 (Section 9.1).

    ``L ~ sqrt(n / (B log n))`` and ``Gamma ~ sqrt(n B log n)`` so that the
    network has ``Theta(L * Gamma) = Theta(n)`` nodes, and a distributed
    algorithm faster than ``L/2`` would yield a server-model protocol of cost
    ``o(Gamma)``, contradicting Theorem 3.4.
    """
    log_n = math.log2(n)
    length = max(3.0, math.sqrt(n / (bandwidth * log_n)))
    gamma = max(2.0, math.sqrt(n * bandwidth * log_n))
    return {
        "L": length,
        "Gamma": gamma,
        "nodes": length * gamma,
        "distributed_budget": length / 2 - 2,
        "server_cost_bound": bandwidth * math.log2(length) * (length / 2),
    }
