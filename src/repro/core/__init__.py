"""The paper's contribution: the lower-bound pipeline.

    nonlocal games --> Server-model lower bounds --> distributed lower bounds
      (Section 6)          (Sections 6 & 7)         (Sections 8 & 9)

- :mod:`repro.core.server_model`       -- Definition 3.1 and the classical
  two-party equivalence (Section 3.1).
- :mod:`repro.core.nonlocal_games`     -- XOR/AND games, quantum bias, and
  the Lemma 3.2 abort-based simulation.
- :mod:`repro.core.gamma2`             -- gamma_2 machinery (Lemma B.2 et al.).
- :mod:`repro.core.approx_degree`      -- approximate polynomial degree LP.
- :mod:`repro.core.fooling`            -- GV codes and the [KdW12] bound.
- :mod:`repro.core.gadgets`            -- Section 7 gadget reductions.
- :mod:`repro.core.simulation_theorem` -- the Quantum Simulation Theorem.
- :mod:`repro.core.bounds`             -- closed-form bound evaluators for
  Theorems 3.6/3.8 and Corollaries 3.7/3.9 (Figs. 2 and 3).
"""

from repro.core.bounds import (
    VERIFICATION_PROBLEMS,
    OPTIMIZATION_PROBLEMS,
    fig2_table,
    fig3_curve,
    mst_upper_bound,
    optimization_lower_bound,
    verification_lower_bound,
)

__all__ = [
    "verification_lower_bound",
    "optimization_lower_bound",
    "mst_upper_bound",
    "fig2_table",
    "fig3_curve",
    "VERIFICATION_PROBLEMS",
    "OPTIMIZATION_PROBLEMS",
]
