"""gamma_2-norm machinery (Section 6, Appendix B).

The chain of Lemma B.2:

    4^{2 Q*_sv,eps(f)}  >=  gamma_2^{2 eps}(A_f)  >=  ||A_f||_tr^{delta} / sqrt(size)

We provide:

- :func:`gamma2_lower` -- the trace-norm lower bound ``||A||_tr / sqrt(mn)``,
- :func:`gamma2_upper` -- an explicit-factorisation upper bound (SVD seed
  refined by local optimisation over the factorisation gauge),
- :func:`gamma2_dual`  -- ``gamma_2^*``, which by Tsirelson's theorem equals
  the quantum bias of the XOR game with cost matrix ``K`` (computed by
  alternating maximisation of the vector program, exact on the instances the
  tests pin down, e.g. CHSH),
- :func:`approx_trace_norm_lower` -- the witness bound of Eq. (31)-(35),
- :func:`server_model_lower_bound_from_gamma2` -- Lemma B.2 rearranged into a
  lower bound on ``Q*_sv``.
"""

from __future__ import annotations

import math

import numpy as np


def trace_norm(matrix: np.ndarray) -> float:
    """``||A||_tr`` -- the sum of singular values."""
    return float(np.linalg.svd(np.asarray(matrix, dtype=float), compute_uv=False).sum())


def gamma2_lower(matrix: np.ndarray) -> float:
    """``gamma_2(A) >= ||A||_tr / sqrt(mn)`` (used in Eq. (14))."""
    a = np.asarray(matrix, dtype=float)
    m, n = a.shape
    return trace_norm(a) / math.sqrt(m * n)


def gamma2_upper(matrix: np.ndarray, iterations: int = 300, seed: int = 0) -> float:
    """An upper bound on ``gamma_2(A)`` from an explicit factorisation.

    ``gamma_2(A) = min_{A = B C} maxrow(B) * maxcol(C)``.  We seed with the
    balanced SVD factorisation and refine by alternating row/column
    rescaling of the factor gauge, which converges to a stationary
    factorisation.  Always a valid upper bound; tight on the matrices used in
    tests (identity, all-ones, Hadamard), where it meets :func:`gamma2_lower`.
    """
    a = np.asarray(matrix, dtype=float)
    u, s, vt = np.linalg.svd(a, full_matrices=False)
    rank = int(np.sum(s > 1e-12 * max(1.0, s[0] if len(s) else 0.0)))
    if rank == 0:
        return 0.0
    sqrt_s = np.sqrt(s[:rank])
    b = u[:, :rank] * sqrt_s
    c = (vt[:rank, :].T * sqrt_s).T

    rng = np.random.default_rng(seed)
    best = _factorisation_value(b, c)
    for _ in range(iterations):
        # Alternating diagonal rebalancing: scale each latent coordinate to
        # equalise its contribution to the worst row of B and worst column
        # of C.  This is a coordinate-descent step on the gauge group.
        row_norms = np.linalg.norm(b, axis=1)
        col_norms = np.linalg.norm(c, axis=0)
        worst_row = int(np.argmax(row_norms))
        worst_col = int(np.argmax(col_norms))
        scale = np.ones(rank)
        for k in range(rank):
            contrib_b = abs(b[worst_row, k])
            contrib_c = abs(c[k, worst_col])
            if contrib_b > 1e-12 and contrib_c > 1e-12:
                scale[k] = math.sqrt(contrib_c / contrib_b)
        jitter = 1.0 + 0.02 * rng.standard_normal(rank)
        scale = scale * np.abs(jitter)
        b_new = b * scale
        c_new = (c.T / scale).T
        value = _factorisation_value(b_new, c_new)
        if value < best:
            best = value
            b, c = b_new, c_new
    return best


def _factorisation_value(b: np.ndarray, c: np.ndarray) -> float:
    max_row = float(np.max(np.linalg.norm(b, axis=1)))
    max_col = float(np.max(np.linalg.norm(c, axis=0)))
    return max_row * max_col


def gamma2_dual(
    matrix: np.ndarray,
    dim: int | None = None,
    restarts: int = 8,
    iterations: int = 400,
    seed: int = 0,
    tol: float = 1e-12,
) -> float:
    """``gamma_2^*(K) = max sum_{x,y} K_{xy} <u_x, v_y>`` over unit vectors.

    By Tsirelson's theorem [Tsi87] this equals the entangled bias of the XOR
    game with cost matrix ``K = A_g o pi``.  Alternating maximisation: fixing
    the ``u_x``, the optimal ``v_y`` is the normalised ``sum_x K_{xy} u_x``,
    and symmetrically -- each sweep cannot decrease the objective, and random
    restarts guard against the (measure-zero) bad stationary points.
    """
    k = np.asarray(matrix, dtype=float)
    m, n = k.shape
    d = dim if dim is not None else min(m + n, 16)
    rng = np.random.default_rng(seed)
    best = 0.0
    for _ in range(restarts):
        u = rng.standard_normal((m, d))
        u /= np.linalg.norm(u, axis=1, keepdims=True)
        value = 0.0
        for _ in range(iterations):
            v = k.T @ u  # (n, d)
            norms = np.linalg.norm(v, axis=1, keepdims=True)
            norms[norms < 1e-15] = 1.0
            v /= norms
            u = k @ v  # (m, d)
            norms = np.linalg.norm(u, axis=1, keepdims=True)
            norms[norms < 1e-15] = 1.0
            u /= norms
            new_value = float(np.sum((k @ v) * u))
            if abs(new_value - value) < tol:
                value = new_value
                break
            value = new_value
        best = max(best, value)
    return best


def approx_trace_norm_lower(matrix: np.ndarray, delta: float, witness: np.ndarray) -> float:
    """Eq. (31): ``||A||_tr^{delta} >= (|<A, W>| - delta ||W||_1) / ||W||``."""
    a = np.asarray(matrix, dtype=float)
    w = np.asarray(witness, dtype=float)
    numerator = abs(float(np.sum(a * w))) - delta * float(np.abs(w).sum())
    spectral = float(np.linalg.norm(w, 2))
    if spectral < 1e-15:
        raise ValueError("witness must be nonzero")
    return max(0.0, numerator / spectral)


def approx_gamma2_lower(matrix: np.ndarray, delta: float, witness: np.ndarray) -> float:
    """Eq. (14): ``gamma_2^{delta}(A) >= ||A||_tr^{delta} / sqrt(size(A))``."""
    a = np.asarray(matrix, dtype=float)
    m, n = a.shape
    return approx_trace_norm_lower(a, delta, witness) / math.sqrt(m * n)


def server_model_lower_bound_from_gamma2(gamma2_eps_value: float) -> float:
    """Lemma B.2 rearranged: ``Q*_sv,eps(f) >= log_4 gamma_2^{2 eps}(A_f)``."""
    if gamma2_eps_value <= 1.0:
        return 0.0
    return math.log(gamma2_eps_value, 4.0)


def spectral_norm(matrix: np.ndarray) -> float:
    return float(np.linalg.norm(np.asarray(matrix, dtype=float), 2))


def is_strongly_balanced(matrix: np.ndarray, tol: float = 1e-9) -> bool:
    """All row and column sums of the sign matrix vanish (Lemma B.4's
    condition on the inner function ``g``)."""
    a = np.asarray(matrix, dtype=float)
    return bool(
        np.all(np.abs(a.sum(axis=0)) < tol) and np.all(np.abs(a.sum(axis=1)) < tol)
    )
