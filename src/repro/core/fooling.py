"""Gilbert-Varshamov codes and the [KdW12] one-sided bound (Theorem 6.1).

The Gap-Equality lower bound works by building a 1-fooling set for
``(beta n)-Eq`` from a binary code of minimum distance ``2 beta n``:
the pairs ``{(c, c) : c in C}`` fool any one-sided protocol, and the
Klauck-de Wolf bound plus Lemma 3.2 give

    (1 - eps) 4^{-2 Q*_sv} <= 1 / |C|
    =>  Q*_sv_{0,eps}((beta n)-Eq_n) = Omega(n).
"""

from __future__ import annotations

import math
from typing import Sequence

Bits = tuple[int, ...]


def hamming_distance(x: Sequence[int], y: Sequence[int]) -> int:
    return sum(1 for a, b in zip(x, y) if a != b)


def binary_entropy(p: float) -> float:
    """``H(p)`` in bits."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -p * math.log2(p) - (1 - p) * math.log2(1 - p)


def gilbert_varshamov_size_bound(n: int, min_distance: int) -> float:
    """The GV existence bound ``|C| >= 2^{(1 - H(d/n)) n}`` (for d/n < 1/2)."""
    if min_distance < 1 or min_distance > n:
        raise ValueError("distance out of range")
    rate = 1.0 - binary_entropy(min(0.5, min_distance / n))
    return 2.0 ** (rate * n)


def greedy_gv_code(n: int, min_distance: int, max_size: int | None = None) -> list[Bits]:
    """Greedy (lexicographic) code construction achieving the GV bound.

    Scans ``{0,1}^n`` in counter order keeping every word at distance
    ``>= min_distance`` from all kept words.  Exponential scan -- intended
    for the small ``n`` exercised by tests and benches.
    """
    if n > 22:
        raise ValueError("greedy GV scan limited to n <= 22")
    code: list[Bits] = []
    limit = max_size if max_size is not None else 1 << n
    for value in range(1 << n):
        word = tuple((value >> (n - 1 - i)) & 1 for i in range(n))
        if all(hamming_distance(word, c) >= min_distance for c in code):
            code.append(word)
            if len(code) >= limit:
                break
    return code


def code_min_distance(code: Sequence[Bits]) -> int:
    best = len(code[0]) if code else 0
    for i in range(len(code)):
        for j in range(i + 1, len(code)):
            best = min(best, hamming_distance(code[i], code[j]))
    return best


def gap_equality_fooling_set(code: Sequence[Bits]) -> list[tuple[Bits, Bits]]:
    """The diagonal fooling set ``{(c, c)}`` for Gap-Eq over the code.

    For distinct codewords ``c != c'``, both cross pairs ``(c, c')`` are
    0-inputs of Gap-Eq (their distance exceeds the gap), so the 1-fooling
    property holds with *both* cross evaluations 0.
    """
    return [(c, c) for c in code]


def kdw_two_party_bound(fooling_size: int) -> float:
    """[KdW12]: ``Q*_{0,1/2}(f) >= log2(fool_1(f)) / 4 - 1/2``."""
    if fooling_size < 1:
        raise ValueError("fooling set must be nonempty")
    return max(0.0, math.log2(fooling_size) / 4.0 - 0.5)


def kdw_server_model_bound(fooling_size: int, eps: float = 0.5) -> float:
    """Theorem 6.1's server-model form via Lemma 3.2.

    From ``(1 - eps) 4^{-2 Q} <= 1 / fool_1``:
    ``Q >= (log2(fool_1) + log2(1 - eps)) / 4``.
    """
    if fooling_size < 1:
        raise ValueError("fooling set must be nonempty")
    if not (0.0 <= eps < 1.0):
        raise ValueError("eps must be in [0, 1)")
    return max(0.0, (math.log2(fooling_size) + math.log2(1.0 - eps)) / 4.0)


def gap_equality_lower_bound(n: int, beta: float = 0.125, eps: float = 0.5) -> dict[str, float]:
    """Assemble the Theorem 6.1 numbers for ``(beta n)-Eq_n`` (existence form).

    Uses the GV bound analytically (the greedy construction verifies it for
    small ``n`` in tests): a distance-``2 beta n`` code of size
    ``2^{(1 - H(2 beta)) n}`` exists for ``beta < 1/4``.
    """
    if not (0.0 < beta < 0.25):
        raise ValueError("need 0 < beta < 1/4")
    distance = max(1, math.ceil(2 * beta * n))
    size = gilbert_varshamov_size_bound(n, distance)
    return {
        "code_distance": float(distance),
        "code_size_bound": size,
        "rate": 1.0 - binary_entropy(2 * beta),
        "server_model_lower_bound": kdw_server_model_bound(int(size), eps=eps),
    }
