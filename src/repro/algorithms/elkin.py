"""Elkin-style alpha-approximate MST in ``O~(W/alpha + D)``-shaped rounds.

The paper's Fig. 3 upper-bound curve combines Elkin's ``O(W/alpha)``-round
alpha-approximation [Elk06] with the exact ``O~(sqrt(n) + D)`` algorithm.
We reproduce the *round-complexity shape* with a faithful-but-simplified
algorithm (documented deviation, see DESIGN.md):

1. quantise weights into ``C = ceil(W / alpha)`` classes
   ``w'(e) = ceil(w(e) / (alpha * w_min))`` -- an MST under ``w'`` is an
   ``(alpha + 1)``-approximate MST under ``w`` (each original weight ``w``
   satisfies ``w <= alpha w_min w' <= w + alpha w_min <= (1 + alpha) w``);
2. run a *staged-activation* minimum-label flood: the edges of class ``c``
   activate at round ``c``, every node continuously adopts the minimum label
   over its active edges and re-announces on change.  The run reaches
   quiescence after ``C + (label propagation overhang)`` rounds, i.e.
   ``~ W/alpha + O(D')`` on the small-diameter workloads of the benchmarks.

The MST *weight* (the problem's required output, Appendix A.3) is recovered
exactly from the class-wise component counts via the standard identity

    MST_{w'} = sum_{t=1..C} (components(edges of class < t) - 1),

which each node can evaluate from the stage at which its label last changed;
the harness aggregates it from node outputs (a final convergecast in a full
deployment, ``O(D)`` extra rounds).
"""

from __future__ import annotations

import math
from typing import Hashable

import networkx as nx

from repro.congest.kernels import StdlibKernels
from repro.congest.message import Received
from repro.congest.network import CongestNetwork, RunResult
from repro.congest.node import Node, NodeProgram


def quantise_weights(graph: nx.Graph, alpha: float, weight: str = "weight") -> tuple[dict[frozenset, int], int]:
    """Map weights to classes ``1..C``; returns (class map, C)."""
    if alpha < 1:
        raise ValueError("alpha must be at least 1")
    weights = [data[weight] for _, _, data in graph.edges(data=True)]
    w_min = min(weights)
    classes = {
        frozenset((u, v)): max(1, math.ceil(data[weight] / (alpha * w_min)))
        for u, v, data in graph.edges(data=True)
    }
    return classes, max(classes.values())


class StagedLabelFloodProgram(NodeProgram):
    """Minimum-label flooding with per-class edge activation.

    Node input: ``{"edge_classes": {neighbor: class}, "n_classes": C,
    "tail": T}``.  ``C`` and the convergence tail ``T`` (a diameter-flavoured
    bound) are common knowledge -- every node knows ``W``, ``alpha`` and
    ``n`` -- so all nodes halt together at round ``C + T``, the honest
    deterministic round bound of the algorithm (local termination detection
    earlier than the last weight class is impossible anyway).

    Output: ``(final label, adoption log)``; the log records
    ``(stage, label)`` pairs.
    """

    def __init__(self):
        self.label: Hashable = None
        self.log: list[tuple[int, Hashable]] = []
        self.edge_classes: dict[str, int] = {}

    def on_start(self, node: Node) -> None:
        inputs = node.input or {}
        self.label = node.id
        self.edge_classes = dict(inputs.get("edge_classes", {}))
        self.deadline = int(inputs.get("n_classes", 1)) + int(inputs.get("tail", node.n_nodes))
        # Spontaneous rounds: each incident edge's activation round, plus
        # the common halting deadline.  Everything else is delivery-driven,
        # which is what makes the event engine skip the long quiet stretch
        # between the last local activation and the deadline.
        self._activations = sorted(set(self.edge_classes.values()))
        self.log = [(0, self.label)]
        node.output = (self.label, tuple(self.log))

    def on_round(self, node: Node, round_no: int, inbox: list[Received]) -> None:
        improved = False
        for msg in inbox:
            _, their_label = msg.payload
            if repr(their_label) < repr(self.label):
                self.label = their_label
                improved = True
        if improved:
            self.log.append((round_no, self.label))
        # Announce over every *active* edge on activation or on change.
        for neighbor in node.neighbors:
            activation = self.edge_classes.get(repr(neighbor), 1)
            if round_no == activation or (improved and round_no >= activation):
                node.send(neighbor, ("lbl", self.label))
        node.output = (self.label, tuple(self.log))
        if round_no >= self.deadline:
            node.halt(node.output)

    def next_active_round(self, node: Node, after_round: int) -> int | None:
        for activation in self._activations:
            if activation > after_round:
                return min(activation, self.deadline)
        return self.deadline if self.deadline > after_round else None


def run_elkin_approx_mst(
    graph: nx.Graph,
    alpha: float,
    bandwidth: int = 64,
    weight: str = "weight",
    seed: int | None = 0,
    max_rounds: int = 200_000,
    engine: str = "event",
) -> tuple[float, RunResult]:
    """Run the staged flood; returns (approximate MST weight, metrics).

    The returned weight is the exact MST weight of the quantised instance,
    de-quantised -- guaranteed within a factor ``(1 + alpha)`` of the true
    MST weight.
    """
    classes, n_classes = quantise_weights(graph, alpha, weight=weight)
    weights = [data[weight] for _, _, data in graph.edges(data=True)]
    w_min = min(weights)
    n = graph.number_of_nodes()
    inputs = {
        node: {
            "edge_classes": {
                repr(neighbor): classes[frozenset((node, neighbor))]
                for neighbor in graph.neighbors(node)
            },
            "n_classes": n_classes,
            "tail": n,  # safe convergence tail; O(D') on benign workloads
        }
        for node in graph.nodes()
    }
    network = CongestNetwork(
        graph, StagedLabelFloodProgram, bandwidth=bandwidth, seed=seed, inputs=inputs, engine=engine
    )
    result = network.run(max_rounds=max_rounds)

    quantised = nx.Graph()
    quantised.add_nodes_from(graph.nodes())
    for e, cls in classes.items():
        u, v = tuple(e)
        quantised.add_edge(u, v, weight=cls)
    # The engine's kernel choice (columnar engines resolve one at
    # construction) also drives the post-run reduction sweep.
    mst_weight_quantised = component_count_mst_weight(
        quantised, n_classes, kernels=getattr(network.engine, "kernels", None)
    )
    return mst_weight_quantised * alpha * w_min, result


def component_count_mst_weight(quantised: nx.Graph, n_classes: int, kernels=None) -> float:
    """The identity ``MST = sum_t (components(class < t) - 1)`` for integer
    class weights (exact Kruskal accounting).

    Evaluated as a single ascending sweep over the class-sorted edge list
    with an int-indexed union-find (``O(C + m alpha(m))``) rather than
    recounting components from scratch at every threshold (``O(C (n + m))``
    -- at large aspect ratios the recount dominated the whole Fig. 3 grid
    point).  ``kernels`` is a kernel class from
    :mod:`repro.congest.kernels` supplying the batch sort; the sort is
    stable, so every kernel produces the identical union sequence and the
    identical sum.
    """
    kernels = kernels or StdlibKernels
    index = {v: i for i, v in enumerate(quantised.nodes())}
    parent = list(range(len(index)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return x

    classes: list[int] = []
    us: list[int] = []
    vs: list[int] = []
    for u, v, data in quantised.edges(data=True):
        classes.append(int(data["weight"]))
        us.append(index[u])
        vs.append(index[v])
    classes, us, vs = kernels.sort_edges_by_class(classes, us, vs)

    components = len(parent)
    total = 0.0
    cursor = 0
    m = len(classes)
    for t in range(1, n_classes + 1):
        # Threshold t counts components of the subgraph with class < t; the
        # edges are class-sorted, so folding them in is one linear cursor.
        while cursor < m and classes[cursor] < t:
            ru, rv = find(us[cursor]), find(vs[cursor])
            if ru != rv:
                parent[ru] = rv
                components -= 1
            cursor += 1
        total += components - 1
    return total


def elkin_round_prediction(aspect_ratio: float, alpha: float, diameter: float) -> float:
    """The Fig. 3 shape target ``~ W/alpha + D`` for the staged flood."""
    return aspect_ratio / alpha + diameter
