"""Upper-bound distributed algorithms cited by the paper.

Every lower bound in the paper is matched against a classical algorithm:

- MST: Boruvka/GHS and the Garay-Kutten-Peleg-style ``O~(sqrt(n) + D)``
  two-phase algorithm [KP98] (:mod:`repro.algorithms.mst`);
- alpha-approximate MST in ``O~(W/alpha + D)`` rounds, Elkin-style [Elk06]
  (:mod:`repro.algorithms.elkin`);
- s-source distances / shortest paths via distributed Bellman-Ford
  (:mod:`repro.algorithms.paths`);
- the [DHK+12] verification suite (:mod:`repro.algorithms.verification`);
- distributed Set Disjointness, classical vs. Grover-quantum (Example 1.1)
  (:mod:`repro.algorithms.disjointness`);
- minimum cut via pipelined centralisation (:mod:`repro.algorithms.mincut`).

All algorithms run on the :mod:`repro.congest` simulator and report measured
rounds/bits, which the benchmarks lay against the closed-form bounds of
:mod:`repro.core.bounds`.
"""

from repro.algorithms.framework import (
    BfsTreePhase,
    BroadcastPhase,
    ConvergecastPhase,
    LeaderElectionPhase,
    PhasedProgram,
    PipelinedDowncastPhase,
    PipelinedUpcastPhase,
)
from repro.algorithms.centralised import run_centralised
from repro.algorithms.mst import run_boruvka_mst, run_gkp_mst
from repro.algorithms.paths import run_bellman_ford, run_bfs_distances
from repro.algorithms.spanning_structures import (
    run_min_routing_cost_tree,
    run_shallow_light_tree,
    run_shortest_st_path,
    run_steiner_forest,
)

__all__ = [
    "PhasedProgram",
    "LeaderElectionPhase",
    "BfsTreePhase",
    "ConvergecastPhase",
    "BroadcastPhase",
    "PipelinedUpcastPhase",
    "PipelinedDowncastPhase",
    "run_boruvka_mst",
    "run_gkp_mst",
    "run_bellman_ford",
    "run_bfs_distances",
    "run_centralised",
    "run_shallow_light_tree",
    "run_min_routing_cost_tree",
    "run_steiner_forest",
    "run_shortest_st_path",
]
