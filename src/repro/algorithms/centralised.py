"""Pipelined-centralisation skeleton for the remaining Corollary 3.9 problems.

The pattern (standard in the CONGEST literature, cf. [Pel00] pipelining):
elect a leader, build a BFS tree, upcast every node's incident edge list in
``O(D + m)`` rounds, solve centrally, broadcast the solution.  The measured
round counts honestly dominate the Theorem 3.8 lower bound (which is all the
benchmarks assert) even though specialised algorithms can do better.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

import networkx as nx

from repro.algorithms.framework import (
    BfsTreePhase,
    BroadcastPhase,
    LeaderElectionPhase,
    LocalComputationPhase,
    PhasedProgram,
    PipelinedUpcastPhase,
)
from repro.congest.faults import FaultPlan
from repro.congest.network import CongestNetwork, RunResult
from repro.congest.node import Node

Solver = Callable[[nx.Graph], Any]


def run_centralised(
    graph: nx.Graph,
    solver: Solver,
    bandwidth: int = 128,
    diameter_bound: int | None = None,
    seed: int | None = 0,
    engine: str = "event",
    max_rounds: int = 500_000,
    faults: FaultPlan | None = None,
    fault_seed: int | None = None,
    broadcast_chunks: int = 8,
) -> tuple[Any, RunResult]:
    """Collect the weighted graph at a leader, apply ``solver``, broadcast.

    ``solver`` receives the reconstructed graph with string node names
    (``repr`` of the originals) and returns any broadcastable value.
    ``broadcast_chunks`` bounds the answer's size in ``B``-bit chunks; the
    broadcast phase's duration is common knowledge, so callers whose solver
    returns more than the default 8 chunks' worth (e.g. an edge list) must
    raise it from a bound computable before the run.

    Under a fault plan the phases can stall or the broadcast can miss
    nodes; a run that fails to reach a unanimous answer returns ``None``
    as the answer (with the metrics intact) instead of raising, so
    recovery scenarios can detect the failure and restart.  Edge-capacity
    slack for the upcast covers the plan's scheduled edge insertions.
    """
    d = diameter_bound if diameter_bound is not None else nx.diameter(graph)
    m_count = graph.number_of_edges()
    if faults is not None:
        m_count += sum(1 for ev in faults.topology_events if ev.action == "insert")
    inputs = {node: {"diameter_bound": d} for node in graph.nodes()}

    def stage_items(node: Node, shared: dict) -> None:
        items = []
        for neighbor in node.neighbors:
            if repr(node.id) < repr(neighbor):
                items.append((repr(node.id), repr(neighbor), float(node.edge_weight(neighbor))))
        shared["edge_items"] = items
        shared["edge_capacity"] = m_count + 1

    def solve(node: Node, shared: dict) -> None:
        if shared["parent"] is not None:
            shared["answer"] = None
            return
        g = nx.Graph()
        for u_repr, v_repr, w in shared["collected_edges"]:
            g.add_edge(u_repr, v_repr, weight=w)
        shared["answer"] = solver(g)

    def finish(node: Node, shared: dict) -> None:
        shared["output"] = shared["answer"]

    def factory() -> PhasedProgram:
        return PhasedProgram(
            [
                LeaderElectionPhase(),
                BfsTreePhase(),
                LocalComputationPhase(stage_items),
                PipelinedUpcastPhase("edge_items", "collected_edges", "edge_capacity"),
                LocalComputationPhase(solve),
                BroadcastPhase("answer", chunks=broadcast_chunks),
                LocalComputationPhase(finish),
            ]
        )

    network = CongestNetwork(
        graph,
        factory,
        bandwidth=bandwidth,
        seed=seed,
        inputs=inputs,
        engine=engine,
        faults=faults,
        fault_seed=fault_seed,
    )
    result = network.run(max_rounds=max_rounds)
    if faults is not None and not faults.is_empty():
        try:
            return result.unanimous_output(), result
        except ValueError:
            return None, result
    return result.unanimous_output(), result
