"""Distributed minimum cut via pipelined centralisation.

Corollary 3.9 covers minimum cut and minimum s-t cut.  The classical
state of the art the paper cites ((1+eps)-approximation in O~(sqrt(n)+D)
[GK13, Su14, Nan14a]) uses tree packings; as the documented simplification
we implement the *pipelined centralisation* upper bound instead: every node
ships its incident edge list to the root of a BFS tree (``O(D + m)`` rounds
by the pipelining lemma), the root solves min cut exactly (Stoer-Wagner),
and broadcasts the answer.  Exactness makes it the ground truth the tests
compare against, and the round count still dominates the Theorem 3.8 lower
bound, which is all the benchmarks assert.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.algorithms.framework import (
    BfsTreePhase,
    BroadcastPhase,
    LeaderElectionPhase,
    LocalComputationPhase,
    PhasedProgram,
    PipelinedUpcastPhase,
)
from repro.congest.network import CongestNetwork, RunResult
from repro.congest.node import Node


def run_centralised_mincut(
    graph: nx.Graph,
    bandwidth: int = 128,
    diameter_bound: int | None = None,
    s: Hashable | None = None,
    t: Hashable | None = None,
    seed: int | None = 0,
) -> tuple[float, RunResult]:
    """Exact minimum (s-t) cut weight; returns (weight, metrics).

    With ``s`` and ``t`` given, computes the minimum s-t cut instead of the
    global minimum cut.
    """
    d = diameter_bound if diameter_bound is not None else nx.diameter(graph)
    m_count = graph.number_of_edges()
    inputs = {node: {"diameter_bound": d} for node in graph.nodes()}

    def stage_items(node: Node, shared: dict) -> None:
        items = []
        for neighbor in node.neighbors:
            if repr(node.id) < repr(neighbor):  # each edge shipped once
                items.append((repr(node.id), repr(neighbor), float(node.edge_weight(neighbor))))
        shared["edge_items"] = items
        shared["edge_capacity"] = m_count + 1

    def solve(node: Node, shared: dict) -> None:
        if shared["parent"] is not None:
            shared["cut_weight"] = None
            return
        g = nx.Graph()
        for u_repr, v_repr, w in shared["collected_edges"]:
            g.add_edge(u_repr, v_repr, weight=w)
        if s is not None and t is not None:
            value = nx.minimum_cut_value(g, repr(s), repr(t), capacity="weight")
        else:
            value, _ = nx.stoer_wagner(g, weight="weight")
        shared["cut_weight"] = float(value)

    def finish(node: Node, shared: dict) -> None:
        shared["output"] = shared["cut_weight"]

    def factory() -> PhasedProgram:
        return PhasedProgram(
            [
                LeaderElectionPhase(),
                BfsTreePhase(),
                LocalComputationPhase(stage_items),
                PipelinedUpcastPhase("edge_items", "collected_edges", "edge_capacity"),
                LocalComputationPhase(solve),
                BroadcastPhase("cut_weight"),
                LocalComputationPhase(finish),
            ]
        )

    network = CongestNetwork(graph, factory, bandwidth=bandwidth, seed=seed, inputs=inputs)
    result = network.run(max_rounds=500_000)
    return float(result.unanimous_output()), result
