"""Distributed Set Disjointness -- Example 1.1, executably.

Two far-apart nodes ``u`` and ``v`` in a Theta(log n)-diameter network hold
``b``-bit strings; the network must decide whether ``<x, y> = 0``.

- **Classical** (:class:`ClassicalDisjointnessProgram`): ``u`` pipelines its
  string toward ``v`` in ``B``-bit chunks along shortest paths;
  ``~ dist(u,v) + ceil(b/B)`` rounds, matching the Omega~(b/B) bound from
  Disjointness communication complexity [DHK+12, Lemma 4.1].

- **Quantum** (:class:`QuantumDisjointnessProgram`): the Grover/[AA05]
  protocol.  Each oracle query ferries an ``O(log b)``-qubit index register
  from ``u`` to ``v`` and back (the registered entanglement makes this 2
  classical bits per qubit; we ship qubit payloads directly).  ``O(sqrt(b))``
  queries give ``~ 2 dist(u,v) sqrt(b)`` rounds -- the ``O(sqrt(b) D)``
  upper bound that *breaks* the classical simulation-theorem argument and
  forces the paper's Server-model detour.

The Grover iterations run for real on the statevector simulator, so the
answer is genuinely computed, with the known two-sided error.
"""

from __future__ import annotations

import math
import random
from typing import Hashable, Sequence

import networkx as nx

from repro.congest.message import QubitPayload, Received
from repro.congest.network import CongestNetwork, RunResult
from repro.congest.node import Node, NodeProgram
from repro.quantum.grover import grover_find_any


class ClassicalDisjointnessProgram(NodeProgram):
    """Pipeline x from u toward v in B-bit chunks, then flood the verdict.

    Inputs: ``{"role": "u"|"v"|None, "bits": tuple, "next_hop": neighbor}``
    (routing next-hops toward ``v`` are precomputed -- standard routing-table
    knowledge; computing them distributedly is a BFS, ``O(D)`` extra rounds).
    """

    def __init__(self):
        self.received_chunks: dict[int, tuple] = {}
        self.expected_chunks: int | None = None
        self.verdict: int | None = None

    def on_start(self, node: Node) -> None:
        inputs = node.input or {}
        self.role = inputs.get("role")
        if self.role == "u":
            bits = tuple(inputs["bits"])
            chunk_size = max(1, node.bandwidth - 16)  # header slack
            chunks = [
                bits[i : i + chunk_size] for i in range(0, len(bits), chunk_size)
            ]
            next_hop = inputs["next_hop"]
            for index, chunk in enumerate(chunks):
                node.send(next_hop, ("chunk", index, len(chunks), chunk))

    def on_round(self, node: Node, round_no: int, inbox: list[Received]) -> None:
        inputs = node.input or {}
        for msg in inbox:
            tag = msg.payload[0]
            if tag == "chunk":
                _, index, total, chunk = msg.payload
                if self.role == "v":
                    self.received_chunks[index] = chunk
                    self.expected_chunks = total
                else:
                    node.send(inputs["next_hop"], msg.payload)
            elif tag == "verdict":
                if self.verdict is None:
                    self.verdict = msg.payload[1]
                    node.broadcast(msg.payload)
                    node.halt(self.verdict)
        if (
            self.role == "v"
            and self.verdict is None
            and self.expected_chunks is not None
            and len(self.received_chunks) == self.expected_chunks
        ):
            x = tuple(
                bit
                for index in sorted(self.received_chunks)
                for bit in self.received_chunks[index]
            )
            y = tuple(inputs["bits"])
            self.verdict = int(all(a * b == 0 for a, b in zip(x, y)))
            node.broadcast(("verdict", self.verdict))
            node.halt(self.verdict)
        if self.verdict is not None and not node.halted:
            node.halt(self.verdict)


class QuantumDisjointnessProgram(NodeProgram):
    """Grover-based Disjointness with per-query index-register ferrying.

    The quantum state evolution is computed centrally by the harness (both
    the local and distributed executions apply identical unitaries); the
    program performs the honest *communication*: for each of the
    ``O(sqrt(b))`` oracle queries, a ``(ceil(log2 b) + 1)``-qubit payload
    travels u -> v and back.  Inputs as in the classical program, plus
    ``{"n_queries": int}`` at ``u`` (from the harness's Grover run) and the
    final verdict distributed by flooding.
    """

    def on_start(self, node: Node) -> None:
        inputs = node.input or {}
        self.role = inputs.get("role")
        self.verdict: int | None = None
        self.pending_queries = int(inputs.get("n_queries", 0)) if self.role == "u" else 0
        self.index_qubits = int(inputs.get("index_qubits", 1))
        if self.role == "u" and self.pending_queries > 0:
            node.send(inputs["next_hop"], QubitPayload(self.index_qubits + 1, tag=("query", 0)))
        elif self.role == "u":
            self._announce(node, int(inputs["local_verdict"]))

    def _announce(self, node: Node, verdict: int) -> None:
        self.verdict = verdict
        node.broadcast(("verdict", verdict))
        node.halt(verdict)

    def on_round(self, node: Node, round_no: int, inbox: list[Received]) -> None:
        inputs = node.input or {}
        for msg in inbox:
            payload = msg.payload
            if isinstance(payload, QubitPayload):
                kind, query_index = payload.tag
                if self.role == "v" and kind == "query":
                    node.send(inputs["next_hop"], QubitPayload(payload.n_qubits, tag=("reply", query_index)))
                elif self.role == "u" and kind == "reply":
                    done = query_index + 1
                    if done < self.pending_queries:
                        node.send(
                            inputs["next_hop"],
                            QubitPayload(payload.n_qubits, tag=("query", done)),
                        )
                    else:
                        self._announce(node, int(inputs["local_verdict"]))
                else:  # relay along the path
                    node.send(inputs["next_hop_" + kind], payload)
            elif payload[0] == "verdict":
                if self.verdict is None:
                    self.verdict = payload[1]
                    node.broadcast(payload)
                    node.halt(self.verdict)
        if self.verdict is not None and not node.halted:
            node.halt(self.verdict)


def _routing_tables(graph: nx.Graph, u: Hashable, v: Hashable) -> dict[Hashable, dict]:
    """Next-hops toward ``v`` (key ``next_hop`` / ``next_hop_query``) and
    toward ``u`` (``next_hop_reply``) for every node."""
    toward_v = nx.shortest_path(graph, target=v)
    toward_u = nx.shortest_path(graph, target=u)
    tables: dict[Hashable, dict] = {}
    for node in graph.nodes():
        entry: dict = {}
        if node != v:
            entry["next_hop"] = toward_v[node][1]
            entry["next_hop_query"] = toward_v[node][1]
        else:
            entry["next_hop"] = toward_u[node][1]
        if node != u:
            entry["next_hop_reply"] = toward_u[node][1]
        tables[node] = entry
    return tables


def run_classical_disjointness(
    graph: nx.Graph,
    u: Hashable,
    v: Hashable,
    x: Sequence[int],
    y: Sequence[int],
    bandwidth: int = 32,
    seed: int | None = 0,
) -> tuple[int, RunResult]:
    """Classical baseline; returns (verdict, metrics)."""
    tables = _routing_tables(graph, u, v)
    inputs = {}
    for node in graph.nodes():
        entry = dict(tables[node])
        entry["role"] = "u" if node == u else ("v" if node == v else None)
        if node == u:
            entry["bits"] = tuple(x)
        if node == v:
            entry["bits"] = tuple(y)
        inputs[node] = entry
    network = CongestNetwork(
        graph, ClassicalDisjointnessProgram, bandwidth=bandwidth, seed=seed, inputs=inputs
    )
    result = network.run(max_rounds=500_000)
    return int(result.unanimous_output()), result


def run_quantum_disjointness(
    graph: nx.Graph,
    u: Hashable,
    v: Hashable,
    x: Sequence[int],
    y: Sequence[int],
    bandwidth: int = 32,
    seed: int | None = 0,
) -> tuple[int, RunResult, int]:
    """Grover-based protocol; returns (verdict, metrics, n_queries)."""
    b = len(x)
    rng = random.Random(seed)

    def oracle(i: int) -> bool:
        return bool(x[i] and y[i])

    witness, n_queries = grover_find_any(oracle, b, rng=rng)
    verdict = int(witness is None)

    tables = _routing_tables(graph, u, v)
    index_qubits = max(1, math.ceil(math.log2(b)))
    inputs = {}
    for node in graph.nodes():
        entry = dict(tables[node])
        entry["role"] = "u" if node == u else ("v" if node == v else None)
        entry["index_qubits"] = index_qubits
        if node == u:
            entry["n_queries"] = n_queries
            entry["local_verdict"] = verdict
        inputs[node] = entry
    network = CongestNetwork(
        graph, QuantumDisjointnessProgram, bandwidth=bandwidth, seed=seed, inputs=inputs
    )
    result = network.run(max_rounds=500_000)
    return int(result.unanimous_output()), result, n_queries
