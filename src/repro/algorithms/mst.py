"""Distributed minimum spanning tree.

Two algorithms, both measured on the CONGEST simulator:

- :class:`BoruvkaMSTProgram` -- classic GHS/Boruvka fragment merging with
  safe (``O(n)``) flood budgets per iteration.  Simple and exactly correct;
  the reference implementation tests are cross-checked against networkx.

- :class:`GKPMSTProgram` -- the Garay-Kutten-Peleg shape [GKP98, KP98] the
  paper cites as the ``O~(sqrt(n) + D)`` upper bound: *Phase A* runs
  controlled Boruvka with fragment-size cap ``sqrt(n)`` and ``O(sqrt(n))``
  flood budgets; *Phase B* elects a leader, builds a BFS tree, and finishes
  by pipelining per-fragment minimum outgoing edges to the root, which merges
  fragments centrally and downcasts relabelings.  Measured rounds scale as
  ``~ sqrt(n) log n + D log n``, the shape Theorem 3.8 is tight against.

Both algorithms assume distinct edge weights (ties are broken by the
canonical edge key, which is equivalent to perturbing weights), so the MST
is unique.
"""

from __future__ import annotations

import functools
import hashlib
import math
from typing import Any, Hashable

import networkx as nx

from repro.algorithms.framework import (
    BfsTreePhase,
    BroadcastPhase,
    LeaderElectionPhase,
    Phase,
    PhasedProgram,
    PipelinedDowncastPhase,
    PipelinedUpcastPhase,
)
from repro.congest.faults import FaultPlan
from repro.congest.message import Received
from repro.congest.network import CongestNetwork, RunResult
from repro.congest.node import Node, NodeProgram


def edge_key(weight: float, u: Hashable, v: Hashable) -> tuple:
    """Canonical total order on edges: by weight, then endpoint names."""
    a, b = sorted((repr(u), repr(v)))
    return (float(weight), a, b)


#: ``ceil(log2 n)``-style id width per network size -- ``_control_bits`` is
#: called once per control message, so the log is looked up, not recomputed.
_ID_BITS_CACHE: dict[int, int] = {}


def _control_bits(node: Node, floats: int = 0, ids: int = 0, extra: int = 8) -> int:
    """Honest bit size of a control message: ids cost ``ceil(log2 n)`` bits,
    weights 64 bits, plus a small tag/header allowance.  (The simulator's
    default payload sizing charges repr-string lengths, which would bill the
    *encoding*, not the information.)"""
    n = node.n_nodes
    id_bits = _ID_BITS_CACHE.get(n)
    if id_bits is None:
        id_bits = _ID_BITS_CACHE[n] = max(8, math.ceil(math.log2(max(2, n))) + 1)
    return extra + 64 * floats + id_bits * ids


@functools.lru_cache(maxsize=65536)
def _mate_coin(label, iteration: int) -> int:
    """Deterministic random-mate coin: 1 = head (absorbs), 0 = tail
    (joins).  Derived from the fragment label and iteration so that all
    members of a fragment agree without communication."""
    digest = hashlib.sha256(f"{label!r}|{iteration}".encode()).digest()
    return digest[0] & 1


def _allowed_neighbors(node: Node) -> list:
    """Neighbours reachable through *mergeable* edges.

    By default all incident edges qualify; when the node input carries
    ``m_neighbors`` (a set of neighbour ids), fragment growth is restricted
    to the marked subnetwork ``M`` -- this is how the verification suite
    reuses the MST machinery to compute components of ``M``.
    """
    inputs = node.input if isinstance(node.input, dict) else {}
    marks = inputs.get("m_neighbors")
    if marks is None:
        return node.neighbors
    mark_reprs = {repr(m) for m in marks}
    return [nb for nb in node.neighbors if repr(nb) in mark_reprs]


def _min_edge_index(node: Node):
    """The network's batched min-edge reduction service, when applicable.

    Returns the pre-sorted :class:`~repro.congest.columnar.MinEdgeIndex`
    only when the engine opted in (``uses_min_edge_index``, currently the
    columnar engine) and the node is not restricted to a marked
    subnetwork -- ``m_neighbors`` runs keep the explicit filter path, and
    the reference engines keep the legacy per-neighbour scan so
    cross-engine timings compare the full columnar stack honestly.
    """
    network = node._network
    if not getattr(network.engine, "uses_min_edge_index", False):
        return None
    inputs = node.input if isinstance(node.input, dict) else {}
    if inputs.get("m_neighbors") is not None:
        return None
    return network.min_edge_index()


def _min_outgoing(node: Node, label_of: dict, my_label) -> tuple | None:
    """The node's lightest incident (allowed) edge leaving its fragment, as
    ``(key, u, v)`` with ``u = node.id``."""
    index = _min_edge_index(node)
    if index is not None:
        return index.min_outgoing(node.id, label_of, my_label)
    best = None
    for neighbor in _allowed_neighbors(node):
        if label_of.get(repr(neighbor), my_label) == my_label:
            continue
        key = edge_key(node.edge_weight(neighbor), node.id, neighbor)
        if best is None or key < best[0]:
            best = (key, node.id, neighbor)
    return best


class _FragmentState:
    """Per-node fragment bookkeeping shared by both MST programs."""

    def __init__(self, node: Node):
        self.label = node.id
        self.tree_neighbors: set = set()  # MST edges chosen so far (local view)
        self.neighbor_labels: dict[str, Any] = {}


class BoruvkaMSTProgram(NodeProgram):
    """Classic Boruvka with per-iteration schedule:

    1. announce label to all neighbours (1 round);
    2. flood the fragment's minimum outgoing edge over tree edges (budget);
    3. the winning endpoint adds the edge and notifies across it (2 rounds);
    4. re-flood labels over the enlarged tree (budget).

    Fragment count at least halves per iteration, so ``ceil(log2 n) + 1``
    iterations complete the MST.
    """

    def __init__(self, flood_budget: int | None = None):
        self.flood_budget = flood_budget
        self.state: _FragmentState | None = None
        self._sched: tuple[int, int, int] | None = None

    # Schedule bookkeeping -----------------------------------------------

    def _budget(self, node: Node) -> int:
        return self.flood_budget if self.flood_budget is not None else node.n_nodes + 1

    def _iterations(self, node: Node) -> int:
        return max(1, math.ceil(math.log2(node.n_nodes)) + 1) if node.n_nodes > 1 else 1

    def _iteration_length(self, node: Node) -> int:
        return 2 * self._budget(node) + 4

    def _schedule(self, node: Node) -> tuple[int, int, int]:
        """(budget, iterations, iteration length) -- pure functions of the
        instance parameters and ``n``, computed once per program instance
        (``on_round``/``next_active_round`` run thousands of times)."""
        sched = self._sched
        if sched is None:
            sched = self._sched = (
                self._budget(node),
                self._iterations(node),
                self._iteration_length(node),
            )
        return sched

    def on_start(self, node: Node) -> None:
        self.state = _FragmentState(node)
        node.broadcast(("label", self.state.label), bits=_control_bits(node, ids=1))

    def on_round(self, node: Node, round_no: int, inbox: list[Received]) -> None:
        state = self.state
        assert state is not None
        budget, iterations, length = self._schedule(node)
        iteration, r = divmod(round_no - 1, length)
        r += 1  # 1-based within iteration

        if iteration >= iterations:
            node.halt(
                {
                    "label": state.label,
                    "tree_edges": sorted((repr(node.id), repr(x)) for x in state.tree_neighbors),
                    "tree_neighbors": sorted(state.tree_neighbors, key=repr),
                }
            )
            return

        for msg in inbox:
            tag = msg.payload[0]
            if tag == "label":
                state.neighbor_labels[repr(msg.sender)] = msg.payload[1]
            elif tag == "cand":
                incoming = msg.payload[1]
                if self._better(incoming, state.__dict__.get("best_cand")):
                    state.__dict__["best_cand"] = incoming
                    state.__dict__["cand_dirty"] = True
            elif tag == "chosen":
                state.tree_neighbors.add(msg.sender)
                # Re-announce our label across the new edge.
                state.__dict__["label_dirty"] = True
            elif tag == "newlabel":
                incoming = msg.payload[1]
                if repr(incoming) < repr(state.label):
                    state.label = incoming
                    state.__dict__["label_dirty"] = True

        if r == 1:
            # Labels from the announcement arrive now; compute local candidate.
            candidate = _min_outgoing(node, state.neighbor_labels, state.label)
            state.__dict__["best_cand"] = candidate
            state.__dict__["cand_dirty"] = True

        if 1 <= r <= budget + 1:
            if state.__dict__.get("cand_dirty") and state.__dict__.get("best_cand"):
                for neighbor in state.tree_neighbors:
                    node.send(
                        neighbor,
                        ("cand", state.__dict__["best_cand"]),
                        bits=_control_bits(node, floats=1, ids=3, extra=16),
                    )
                state.__dict__["cand_dirty"] = False

        if r == budget + 2:
            best = state.__dict__.get("best_cand")
            if best is not None and best[1] == node.id:
                _, _, other = best
                state.tree_neighbors.add(other)
                node.send(other, ("chosen",), bits=8)
            state.__dict__["label_dirty"] = True

        if budget + 2 <= r <= 2 * budget + 3:
            if state.__dict__.get("label_dirty"):
                for neighbor in state.tree_neighbors:
                    node.send(neighbor, ("newlabel", state.label), bits=_control_bits(node, ids=1))
                state.__dict__["label_dirty"] = False

        if r == length:
            # Prepare the next iteration: announce the (new) label.
            state.neighbor_labels.clear()
            state.__dict__.pop("best_cand", None)
            node.broadcast(("label", state.label), bits=_control_bits(node, ids=1))

    def next_active_round(self, node: Node, after_round: int) -> int | None:
        # Spontaneous rounds per iteration: r=1 (compute + flood candidate),
        # r=budget+2 (choose + mark labels dirty), r=length (re-announce);
        # everything else is delivery-driven.  The halt round caps the
        # schedule.
        budget, iterations, length = self._schedule(node)
        halt_round = iterations * length + 1
        if after_round >= halt_round:
            return None
        base = (after_round // length) * length
        for off in (1, budget + 2, length, length + 1):
            if base + off > after_round:
                return min(base + off, halt_round)
        return halt_round  # pragma: no cover - offsets above always cover

    @staticmethod
    def _better(a: tuple | None, b: tuple | None) -> bool:
        if a is None:
            return False
        if b is None:
            return True
        return a[0] < b[0]


# -- Phase A of GKP: controlled Boruvka ---------------------------------------


class ControlledBoruvkaPhase(Phase):
    """Boruvka iterations with fragment-size cap and bounded flood budgets.

    Fragments stop *proposing* once their size reaches ``cap`` (they may
    still absorb smaller proposers), which keeps fragment diameters -- and
    hence flood budgets -- ``O(cap)`` and leaves at most ``~ n / cap``
    fragments for Phase B.
    """

    name = "controlled-boruvka"

    def __init__(self, cap: int | None = None, iterations: int | None = None):
        self.cap = cap
        self.iterations = iterations
        self._sched: tuple[int, int, int, int] | None = None

    def _schedule(self, node: Node) -> tuple[int, int, int, int]:
        """(cap, iterations, budget, iteration length) -- pure functions of
        the phase parameters and ``n``, computed once per phase instance."""
        sched = self._sched
        if sched is None:
            sched = self._sched = (
                self._cap(node),
                self._iterations(node),
                self._budget(node),
                self._iteration_length(node),
            )
        return sched

    def _cap(self, node: Node) -> int:
        return self.cap if self.cap is not None else max(2, math.ceil(math.sqrt(node.n_nodes)))

    def _iterations(self, node: Node) -> int:
        return self.iterations if self.iterations is not None else max(1, math.ceil(math.log2(self._cap(node))) + 1)

    def _budget(self, node: Node) -> int:
        # Fragment diameters stay below this budget: proposers need
        # (estimated) diameter < cap, absorbers stop at 3 cap, and the
        # merged-diameter estimate 2 (mine + theirs) + 2 over-counts the
        # worst one-iteration composition of a mutual merge plus
        # absorptions, giving <= 2 (3 cap) + 2 cap + 2 < 10 cap + 10.
        # Every label flood therefore converges within the budget, keeping
        # labels consistent at each iteration start (the correctness
        # invariant; Phase B's equivalence repair backstops it regardless).
        cap = self._cap(node)
        return min(node.n_nodes + 1, 10 * cap + 10)

    def _iteration_length(self, node: Node) -> int:
        # announce(1) + candidate flood (budget) + propose/accept (arrival
        # tolerant) + relabel flood (budget, with chunking slack).
        return 3 * self._budget(node) + 10

    def duration(self, node: Node, shared: dict) -> int:
        _cap, iterations, _budget, length = self._schedule(node)
        return iterations * length

    def on_enter(self, node: Node, shared: dict) -> None:
        shared["frag_label"] = node.id
        shared["frag_tree"] = set()
        shared["frag_diam"] = 0
        shared["_nlabels"] = {}
        node.broadcast(("label", node.id), bits=_control_bits(node, ids=1))

    def on_round(self, node: Node, round_in_phase: int, inbox: list[Received], shared: dict) -> None:
        cap, _iterations, budget, length = self._schedule(node)
        _iteration, r = divmod(round_in_phase - 1, length)
        r += 1

        for msg in inbox:
            tag = msg.payload[0]
            if tag == "label":
                shared["_nlabels"][repr(msg.sender)] = msg.payload[1]
            elif tag == "cand":
                cand, diam = msg.payload[1], msg.payload[2]
                shared["_diam_est"] = max(shared.get("_diam_est", 0), diam)
                if self._better(cand, shared.get("_best_cand")):
                    shared["_best_cand"] = cand
                    shared["_dirty"] = True
            elif tag == "propose":
                # Proposals are processed on arrival (they may be chunked
                # over several rounds): star contraction -- mutual pairs
                # always merge; one-sided proposals are accepted only by
                # "head" fragments (deterministic pseudo-random coin per
                # fragment per iteration) from "tail" proposers, and heads
                # stop absorbing at diameter 3 cap.  Merge components are
                # depth-one stars, so all diameters stay below the flood
                # budget (see _budget) and every label flood converges.
                sender = msg.sender
                other_label, key, their_coin, their_diam = msg.payload[1:]
                if repr(other_label) == repr(shared["frag_label"]):
                    continue  # stale proposal from our own fragment
                best = shared.get("_best_cand")
                my_diam = shared.get("_diam_est", 0)
                my_coin = _mate_coin(shared["frag_label"], _iteration)
                mutual = (
                    best is not None
                    and best[1] == node.id
                    and best[2] == sender
                    and best[0] == key
                )
                absorb = my_coin == 1 and their_coin == 0 and my_diam < 3 * cap
                if mutual or absorb:
                    merged_diam = 2 * my_diam + 2 * their_diam + 2
                    shared["frag_tree"].add(sender)
                    shared["frag_diam"] = max(shared["frag_diam"], merged_diam)
                    shared["_ldirty"] = True
                    if not mutual:
                        node.send(sender, ("accept", merged_diam), bits=24)
            elif tag == "accept":
                shared["frag_tree"].add(msg.sender)
                shared["frag_diam"] = max(shared["frag_diam"], msg.payload[1])
                shared["_ldirty"] = True
            elif tag == "newlabel":
                if repr(msg.payload[1]) < repr(shared["frag_label"]) or (
                    repr(msg.payload[1]) == repr(shared["frag_label"])
                    and msg.payload[2] > shared["frag_diam"]
                ):
                    shared["frag_label"] = msg.payload[1]
                    shared["frag_diam"] = max(shared["frag_diam"], msg.payload[2])
                    shared["_ldirty"] = True

        if r == 1:
            candidate = _min_outgoing(node, shared["_nlabels"], shared["frag_label"])
            shared["_best_cand"] = candidate
            shared["_diam_est"] = shared.get("frag_diam", 0)
            shared["_dirty"] = True

        if 1 <= r <= budget + 1:
            if shared.get("_dirty") and shared.get("_best_cand"):
                for neighbor in shared["frag_tree"]:
                    node.send(
                        neighbor,
                        ("cand", shared["_best_cand"], shared["_diam_est"]),
                        bits=_control_bits(node, floats=1, ids=3, extra=32),
                    )
                shared["_dirty"] = False

        if r == budget + 2:
            # Propose along the fragment's minimum outgoing edge (small-
            # diameter fragments only).
            best = shared.get("_best_cand")
            diam = shared.get("_diam_est", 0)
            if diam < cap and best is not None and best[1] == node.id:
                _key, _me, other = best
                coin = _mate_coin(shared["frag_label"], _iteration)
                node.send(
                    other,
                    ("propose", shared["frag_label"], best[0], coin, diam),
                    bits=_control_bits(node, floats=1, ids=4, extra=32),
                )

        if budget + 2 <= r < length:
            if shared.get("_ldirty"):
                for neighbor in shared["frag_tree"]:
                    node.send(
                        neighbor,
                        ("newlabel", shared["frag_label"], shared["frag_diam"]),
                        bits=_control_bits(node, ids=1, extra=32),
                    )
                shared["_ldirty"] = False

        if r == length:
            shared["_nlabels"].clear()
            shared.pop("_best_cand", None)
            node.broadcast(("label", shared["frag_label"]), bits=_control_bits(node, ids=1))

    def on_exit(self, node: Node, shared: dict) -> None:
        shared["mst_neighbors"] = set(shared["frag_tree"])
        for key in ("_nlabels", "_best_cand", "_dirty", "_ldirty", "_diam_est", "_proposals_in"):
            shared.pop(key, None)

    def idle_until(self, node: Node, round_in_phase: int, shared: dict) -> int | None:
        # Same spontaneous schedule as BoruvkaMSTProgram: r=1 (candidate),
        # r=budget+2 (propose), r=length (re-announce); the dirty-flag flood
        # windows in between fire only in the same step as a delivery.
        _cap, _iterations, budget, length = self._schedule(node)
        base = (round_in_phase // length) * length
        for off in (1, budget + 2, length, length + 1):
            if base + off > round_in_phase:
                return base + off
        return round_in_phase + 1  # pragma: no cover - offsets above always cover

    @staticmethod
    def _better(a: tuple | None, b: tuple | None) -> bool:
        if a is None:
            return False
        if b is None:
            return True
        return a[0] < b[0]


# -- Phase B of GKP: central merging over the BFS tree ------------------------


class _AnnounceLabelsPhase(Phase):
    """One round: everyone tells neighbours their current fragment label."""

    name = "announce-labels"

    def duration(self, node: Node, shared: dict) -> int:
        return 2

    def on_enter(self, node: Node, shared: dict) -> None:
        node.broadcast(("flabel", shared["frag_label"]), bits=_control_bits(node, ids=1))

    def on_round(self, node: Node, r: int, inbox: list[Received], shared: dict) -> None:
        for msg in inbox:
            if msg.payload[0] == "flabel":
                shared.setdefault("_phaseb_nlabels", {})[repr(msg.sender)] = msg.payload[1]

    def idle_until(self, node: Node, round_in_phase: int, shared: dict) -> int | None:
        return None  # collection is delivery-driven


class _CollectCandidatesPhase(Phase):
    """Prepare each node's upcast items: its fragment's candidate edge plus
    label-equivalence repairs.

    A *repair* item ``("equiv", l1, l2)`` is emitted whenever a tree edge
    (already part of the MST under construction) connects two different
    labels -- which happens exactly when a Phase-A label flood did not fully
    converge.  The root unions equivalent labels before processing
    proposals, so the central merge is correct regardless of Phase A's
    budgets (Phase A is thereby a pure optimisation).
    """

    name = "collect-candidates"

    def duration(self, node: Node, shared: dict) -> int:
        return 0

    def on_enter(self, node: Node, shared: dict) -> None:
        labels = shared.get("_phaseb_nlabels", {})
        my_label = shared["frag_label"]
        items: list[tuple] = []
        for neighbor in sorted(shared["mst_neighbors"], key=repr):
            other_label = labels.get(repr(neighbor), my_label)
            if repr(other_label) != repr(my_label):
                pair = sorted((my_label, other_label), key=repr)
                items.append(("equiv", pair[0], pair[1]))
        tree_reprs = {repr(m) for m in shared["mst_neighbors"]}
        best = None
        index = _min_edge_index(node)
        if index is not None:
            found = index.min_outgoing_by_repr(node.id, labels, my_label, tree_reprs)
            if found is not None:
                key, neighbor, other_label = found
                best = ("prop", key, node.id, neighbor, my_label, other_label)
        else:
            for neighbor in _allowed_neighbors(node):
                other_label = labels.get(repr(neighbor), my_label)
                if repr(other_label) == repr(my_label):
                    continue
                if repr(neighbor) in tree_reprs:
                    continue  # already a tree edge
                key = edge_key(node.edge_weight(neighbor), node.id, neighbor)
                if best is None or key < best[1]:
                    best = ("prop", key, node.id, neighbor, my_label, other_label)
        if best is not None:
            items.append(best)
        shared["proposals"] = items


def _fragment_min_reducer(items: list) -> list:
    """Keep the lightest proposal per source-fragment label; dedupe repairs."""
    best: dict[str, tuple] = {}
    equivs: set[tuple] = set()
    for item in items:
        if item is None:
            continue
        if item[0] == "equiv":
            equivs.add(item)
            continue
        key_label = repr(item[4])
        if key_label not in best or item[1] < best[key_label][1]:
            best[key_label] = item
    return sorted(equivs, key=repr) + sorted(best.values(), key=repr)


class _CentralMergePhase(Phase):
    """Root merges fragments along all received proposals (all are MST edges
    by the cut rule) and prepares the relabel/edge item list to downcast."""

    name = "central-merge"

    def duration(self, node: Node, shared: dict) -> int:
        return 0

    def on_enter(self, node: Node, shared: dict) -> None:
        if shared["parent"] is not None:
            shared["decisions"] = []
            return
        collected = shared.get("collected") or []
        equivs = [it for it in collected if it[0] == "equiv"]
        proposals = [it for it in collected if it[0] == "prop"]
        parent: dict[str, Any] = {}

        def find(label) -> Any:
            root = label
            while repr(root) in parent:
                root = parent[repr(root)]
            return root

        def union(la, lb) -> bool:
            ra, rb = find(la), find(lb)
            if repr(ra) == repr(rb):
                return False
            keep, drop = (ra, rb) if repr(ra) < repr(rb) else (rb, ra)
            parent[repr(drop)] = keep
            return True

        # Repairs first: labels joined by existing tree edges are the same
        # fragment, no matter what Phase A's floods managed to propagate.
        for _tag, l1, l2 in equivs:
            union(l1, l2)
        # Keep only each fragment's *minimum* proposal: the pipeline cannot
        # retract an already-forwarded item, so the root may receive several
        # proposals per source label -- only the fragment minimum is an MST
        # edge by the cut rule.
        best_per_label: dict[str, tuple] = {}
        for item in proposals:
            lu = repr(find(item[4]))
            if lu not in best_per_label or item[1] < best_per_label[lu][1]:
                best_per_label[lu] = item
        decisions = []
        for item in sorted(best_per_label.values(), key=lambda it: it[1]):
            _tag, _key, u, v, lu, lv = item
            if union(lu, lv):
                decisions.append(("edge", u, v))
        seen_labels = {repr(it[4]): it[4] for it in proposals}
        seen_labels.update({repr(it[5]): it[5] for it in proposals})
        seen_labels.update({repr(it[1]): it[1] for it in equivs})
        seen_labels.update({repr(it[2]): it[2] for it in equivs})
        for rep, label in sorted(seen_labels.items()):
            final = find(label)
            if repr(final) != rep:
                decisions.append(("relabel", label, final))
        shared["decisions"] = decisions
        shared["merges_done"] = sum(1 for d in decisions if d[0] == "edge")


class _ApplyDecisionsPhase(Phase):
    """Everyone applies the downcast relabelings and marks chosen edges."""

    name = "apply-decisions"

    def duration(self, node: Node, shared: dict) -> int:
        return 0

    def on_enter(self, node: Node, shared: dict) -> None:
        relabel: dict[str, Any] = {}
        for item in shared.get("decisions") or []:
            if item[0] == "relabel":
                relabel[repr(item[1])] = item[2]
            elif item[0] == "edge":
                _tag, u, v = item
                if node.id == u:
                    shared["mst_neighbors"].add(v)
                elif node.id == v:
                    shared["mst_neighbors"].add(u)
        me = repr(shared["frag_label"])
        if me in relabel:
            shared["frag_label"] = relabel[me]
        shared.pop("_phaseb_nlabels", None)


class _OutputPhase(Phase):
    name = "output"

    def duration(self, node: Node, shared: dict) -> int:
        return 0

    def on_enter(self, node: Node, shared: dict) -> None:
        shared["output"] = {
            "label": shared["frag_label"],
            "tree_neighbors": sorted(shared["mst_neighbors"], key=repr),
        }


class GKPMSTProgram(PhasedProgram):
    """The full two-phase ``O~(sqrt(n) + D)`` MST algorithm."""

    def __init__(self, cap: int | None = None, phase_b_iterations: int | None = None, capacity: int | None = None):
        self._cap = cap
        phases: list[Phase] = [
            ControlledBoruvkaPhase(cap=cap),
            LeaderElectionPhase(),
            BfsTreePhase(),
            _SetCapacityPhase(cap=cap, capacity=capacity),
        ]
        iterations = phase_b_iterations
        if iterations is None:
            iterations = 20  # overwritten below when n is known; safe default
        self._phase_b_iterations = phase_b_iterations
        for _ in range(iterations):
            phases.extend(
                [
                    _AnnounceLabelsPhase(),
                    _CollectCandidatesPhase(),
                    PipelinedUpcastPhase(
                        "proposals", "collected", "phase_b_capacity", reducer=_fragment_min_reducer
                    ),
                    _CentralMergePhase(),
                    PipelinedDowncastPhase("decisions", "phase_b_capacity"),
                    _ApplyDecisionsPhase(),
                ]
            )
        phases.append(_OutputPhase())
        super().__init__(phases)


class _SetCapacityPhase(Phase):
    """Fix the Phase-B pipeline capacity from common knowledge."""

    name = "set-capacity"

    def __init__(self, cap: int | None = None, capacity: int | None = None):
        self.cap = cap
        self.capacity = capacity

    def duration(self, node: Node, shared: dict) -> int:
        return 0

    def on_enter(self, node: Node, shared: dict) -> None:
        if self.capacity is not None:
            shared["phase_b_capacity"] = self.capacity
            return
        cap = self.cap if self.cap is not None else max(2, math.ceil(math.sqrt(node.n_nodes)))
        # Phase A leaves ~ n / cap fragments; the pipeline carries one
        # proposal per fragment plus equivalence repairs, and the downcast
        # one relabel + one edge per merge -- sized with generous slack.
        shared["phase_b_capacity"] = min(node.n_nodes + 1, 12 * max(2, node.n_nodes // cap) + 24)


# -- harness helpers -----------------------------------------------------------


def collect_tree_edges(outputs: dict[Hashable, Any]) -> set[frozenset]:
    """Union the per-node ``tree_neighbors`` outputs into an edge set.

    Nodes without a usable output -- a faulted run cut off at its horizon
    can leave crashed nodes with ``None`` -- contribute nothing; their tree
    edges still appear if the other endpoint finished.
    """
    edges: set[frozenset] = set()
    for node_id, output in outputs.items():
        if not isinstance(output, dict) or "tree_neighbors" not in output:
            continue
        for neighbor in output["tree_neighbors"]:
            edges.add(frozenset((node_id, neighbor)))
    return edges


def tree_weight(graph: nx.Graph, edges: set[frozenset], weight: str = "weight") -> float:
    return sum(graph.edges[tuple(e)][weight] for e in edges)


def run_boruvka_mst(
    graph: nx.Graph,
    bandwidth: int = 64,
    seed: int | None = 0,
    max_rounds: int = 500_000,
    engine: str = "event",
    faults: "FaultPlan | None" = None,
    fault_seed: int | None = None,
) -> tuple[set[frozenset], RunResult]:
    """Run Boruvka MST; returns (tree edges, run metrics).

    With ``faults``, the run executes under the plan's adversity; cap
    ``max_rounds`` explicitly (a fault-stalled run otherwise burns the full
    default budget) and validate the returned edges before trusting them --
    see the ``mst-under-faults`` scenario for the restart-based recovery
    pattern.
    """
    network = CongestNetwork(
        graph,
        BoruvkaMSTProgram,
        bandwidth=bandwidth,
        seed=seed,
        engine=engine,
        faults=faults,
        fault_seed=fault_seed,
    )
    result = network.run(max_rounds=max_rounds)
    return collect_tree_edges(result.outputs), result


def run_gkp_mst(
    graph: nx.Graph,
    bandwidth: int = 64,
    diameter_bound: int | None = None,
    cap: int | None = None,
    seed: int | None = 0,
    max_rounds: int = 500_000,
    engine: str = "event",
) -> tuple[set[frozenset], RunResult]:
    """Run the GKP-style MST; returns (tree edges, run metrics)."""
    d = diameter_bound if diameter_bound is not None else nx.diameter(graph)
    n = graph.number_of_nodes()
    frag_cap = cap if cap is not None else max(2, math.ceil(math.sqrt(n)))
    # Phase A leaves ~ n / cap fragments and Phase B at least halves the
    # count per iteration; +2 iterations of slack absorb Phase-A stalls.
    iterations = max(3, math.ceil(math.log2(max(2, n / frag_cap))) + 2)
    inputs = {node: {"diameter_bound": d} for node in graph.nodes()}
    network = CongestNetwork(
        graph,
        lambda: GKPMSTProgram(cap=cap, phase_b_iterations=iterations),
        bandwidth=bandwidth,
        seed=seed,
        inputs=inputs,
        engine=engine,
    )
    result = network.run(max_rounds=max_rounds)
    return collect_tree_edges(result.outputs), result
