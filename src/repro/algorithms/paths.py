"""Distributed shortest paths: Bellman-Ford and BFS layering.

The ``s``-source distance / shortest-path-tree problems of Corollary 3.9.
Distributed Bellman-Ford is the textbook upper bound: each node relaxes its
tentative distance and re-announces on improvement; the run terminates at
quiescence after (hop-depth of the shortest-path tree) rounds.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.congest.message import Received
from repro.congest.network import CongestNetwork, RunResult
from repro.congest.node import Node, NodeProgram


class BellmanFordProgram(NodeProgram):
    """Self-stabilising distance relaxation from a source.

    Node input: ``{"is_source": bool}``.  Output: ``(distance, parent)``.
    """

    def __init__(self, weighted: bool = True):
        self.weighted = weighted
        self.distance: float | None = None
        self.parent: Hashable | None = None

    def on_start(self, node: Node) -> None:
        inputs = node.input or {}
        if inputs.get("is_source"):
            self.distance = 0.0
            node.broadcast(("dist", 0.0), bits=72)
        node.output = (self.distance, self.parent)

    def on_round(self, node: Node, round_no: int, inbox: list[Received]) -> None:
        improved = False
        for msg in inbox:
            _, their_distance = msg.payload
            weight = node.edge_weight(msg.sender) if self.weighted else 1.0
            candidate = their_distance + weight
            if self.distance is None or candidate < self.distance:
                self.distance = candidate
                self.parent = msg.sender
                improved = True
        if improved:
            node.broadcast(("dist", self.distance), bits=72)
        node.output = (self.distance, self.parent)

    def next_active_round(self, node: Node, after_round: int) -> int | None:
        return None  # relaxation is purely delivery-driven


def run_bellman_ford(
    graph: nx.Graph,
    source: Hashable,
    bandwidth: int = 128,
    weighted: bool = True,
    seed: int | None = 0,
    max_rounds: int = 100_000,
    engine: str = "event",
) -> tuple[dict[Hashable, float], RunResult]:
    """Run distributed Bellman-Ford; returns ({node: distance}, metrics)."""
    inputs = {node: {"is_source": node == source} for node in graph.nodes()}
    network = CongestNetwork(
        graph,
        lambda: BellmanFordProgram(weighted=weighted),
        bandwidth=bandwidth,
        seed=seed,
        inputs=inputs,
        engine=engine,
    )
    result = network.run(max_rounds=max_rounds, stop_on_quiescence=True)
    distances = {node: out[0] for node, out in result.outputs.items()}
    return distances, result


def run_bfs_distances(
    graph: nx.Graph,
    source: Hashable,
    bandwidth: int = 128,
    seed: int | None = 0,
    engine: str = "event",
) -> tuple[dict[Hashable, float], RunResult]:
    """Unweighted distances (BFS layering) via the same relaxation program."""
    return run_bellman_ford(graph, source, bandwidth=bandwidth, weighted=False, seed=seed, engine=engine)


def shortest_path_tree_edges(result: RunResult) -> set[frozenset]:
    """Extract the shortest-path-tree edges from a Bellman-Ford run."""
    edges = set()
    for node, (_dist, parent) in result.outputs.items():
        if parent is not None:
            edges.add(frozenset((node, parent)))
    return edges
