"""Distributed shortest paths: Bellman-Ford and BFS layering.

The ``s``-source distance / shortest-path-tree problems of Corollary 3.9.
Distributed Bellman-Ford is the textbook upper bound: each node relaxes its
tentative distance and re-announces on improvement; the run terminates at
quiescence after (hop-depth of the shortest-path tree) rounds.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.congest.faults import FaultPlan
from repro.congest.message import Received
from repro.congest.network import CongestNetwork, RunResult
from repro.congest.node import Node, NodeProgram


class BellmanFordProgram(NodeProgram):
    """Self-stabilising distance relaxation from a source.

    Node input: ``{"is_source": bool}``.  Output: ``(distance, parent)``.
    """

    def __init__(self, weighted: bool = True):
        self.weighted = weighted
        self.distance: float | None = None
        self.parent: Hashable | None = None

    def on_start(self, node: Node) -> None:
        inputs = node.input or {}
        if inputs.get("is_source"):
            self.distance = 0.0
            node.broadcast(("dist", 0.0), bits=72)
        node.output = (self.distance, self.parent)

    def on_round(self, node: Node, round_no: int, inbox: list[Received]) -> None:
        improved = False
        for msg in inbox:
            _, their_distance = msg.payload
            weight = node.edge_weight(msg.sender) if self.weighted else 1.0
            candidate = their_distance + weight
            if self.distance is None or candidate < self.distance:
                self.distance = candidate
                self.parent = msg.sender
                improved = True
        if improved:
            node.broadcast(("dist", self.distance), bits=72)
        node.output = (self.distance, self.parent)

    def next_active_round(self, node: Node, after_round: int) -> int | None:
        return None  # relaxation is purely delivery-driven


class RefreshingBellmanFordProgram(BellmanFordProgram):
    """Bellman-Ford with periodic re-announcement: the self-stabilising
    variant for lossy / crashy / growing networks.

    Plain relaxation is silent once converged, so a dropped announcement, a
    napping receiver, or a newly inserted edge can leave stale distances
    forever.  Here every node holding a distance re-broadcasts it every
    ``refresh_every`` rounds (declared to the event engine via the idleness
    hint, so refresh rounds are scheduled, not polled), which heals message
    loss, crash recovery, and *insert-only* topology churn: distances only
    ever decrease, so edge deletions that lengthen true distances are out of
    scope (that failure mode is count-to-infinity, needing a different
    algorithm, not a refresh).  Stale in-flight senders -- a link deleted
    under a message -- are ignored defensively.

    Output: ``(distance, parent, last_change_round)``; the third field is
    when the node last changed its estimate, so a scenario can measure
    rounds-to-restabilize as ``max(last_change_round) - last_fault_round``.

    The program never quiesces (it refreshes forever), so run it to a fixed
    horizon rather than with ``stop_on_quiescence``.
    """

    def __init__(self, weighted: bool = True, refresh_every: int = 4):
        super().__init__(weighted=weighted)
        if refresh_every < 1:
            raise ValueError("refresh_every must be at least 1")
        self.refresh_every = refresh_every
        self.last_change_round = 0

    def on_start(self, node: Node) -> None:
        inputs = node.input or {}
        if inputs.get("is_source"):
            self.distance = 0.0
            node.broadcast(("dist", 0.0), bits=72)
        node.output = (self.distance, self.parent, self.last_change_round)

    def on_round(self, node: Node, round_no: int, inbox: list[Received]) -> None:
        improved = False
        neighbors = node._neighbor_set()
        for msg in inbox:
            if msg.sender not in neighbors:
                continue  # link deleted while the announcement was in flight
            _, their_distance = msg.payload
            weight = node.edge_weight(msg.sender) if self.weighted else 1.0
            candidate = their_distance + weight
            if self.distance is None or candidate < self.distance:
                self.distance = candidate
                self.parent = msg.sender
                self.last_change_round = round_no
                improved = True
        if self.distance is not None and (improved or round_no % self.refresh_every == 0):
            node.broadcast(("dist", self.distance), bits=72)
        node.output = (self.distance, self.parent, self.last_change_round)

    def next_active_round(self, node: Node, after_round: int) -> int | None:
        if self.distance is None:
            return None  # nothing to refresh until a distance arrives
        return ((after_round // self.refresh_every) + 1) * self.refresh_every


def run_refreshing_bellman_ford(
    graph: nx.Graph,
    source: Hashable,
    bandwidth: int = 128,
    weighted: bool = True,
    seed: int | None = 0,
    max_rounds: int = 512,
    refresh_every: int = 4,
    engine: str = "event",
    faults: FaultPlan | None = None,
    fault_seed: int | None = None,
) -> tuple[dict[Hashable, float], RunResult]:
    """Run the refreshing (self-stabilising) Bellman-Ford to a fixed horizon.

    Returns ``({node: distance}, metrics)``; per-node ``(distance, parent,
    last_change_round)`` triples are in ``metrics.outputs``.  ``max_rounds``
    is the measurement horizon -- pick it past the plan's
    :meth:`~repro.congest.faults.FaultPlan.last_fault_round` plus a settle
    margin, since the program refreshes forever and never quiesces.
    """
    inputs = {node: {"is_source": node == source} for node in graph.nodes()}
    network = CongestNetwork(
        graph,
        lambda: RefreshingBellmanFordProgram(weighted=weighted, refresh_every=refresh_every),
        bandwidth=bandwidth,
        seed=seed,
        inputs=inputs,
        engine=engine,
        faults=faults,
        fault_seed=fault_seed,
    )
    result = network.run(max_rounds=max_rounds)
    distances = {node: out[0] for node, out in result.outputs.items()}
    return distances, result


def run_bellman_ford(
    graph: nx.Graph,
    source: Hashable,
    bandwidth: int = 128,
    weighted: bool = True,
    seed: int | None = 0,
    max_rounds: int = 100_000,
    engine: str = "event",
) -> tuple[dict[Hashable, float], RunResult]:
    """Run distributed Bellman-Ford; returns ({node: distance}, metrics)."""
    inputs = {node: {"is_source": node == source} for node in graph.nodes()}
    network = CongestNetwork(
        graph,
        lambda: BellmanFordProgram(weighted=weighted),
        bandwidth=bandwidth,
        seed=seed,
        inputs=inputs,
        engine=engine,
    )
    result = network.run(max_rounds=max_rounds, stop_on_quiescence=True)
    distances = {node: out[0] for node, out in result.outputs.items()}
    return distances, result


def run_bfs_distances(
    graph: nx.Graph,
    source: Hashable,
    bandwidth: int = 128,
    seed: int | None = 0,
    engine: str = "event",
) -> tuple[dict[Hashable, float], RunResult]:
    """Unweighted distances (BFS layering) via the same relaxation program."""
    return run_bellman_ford(graph, source, bandwidth=bandwidth, weighted=False, seed=seed, engine=engine)


def shortest_path_tree_edges(result: RunResult) -> set[frozenset]:
    """Extract the shortest-path-tree edges from a Bellman-Ford run."""
    edges = set()
    for node, (_dist, parent) in result.outputs.items():
        if parent is not None:
            edges.add(frozenset((node, parent)))
    return edges
