"""The remaining Corollary 3.9 spanning structures, plus spanners.

- **Shallow-light tree** (Appendix A.3 / [Pel00]): a spanning tree of radius
  at most ``beta * radius(SPT)`` and weight at most ``alpha * weight(MST)``
  -- the classic Khuller-Raghavachari-Young LAST construction.
- **Minimum routing cost spanning tree** ([KKM+08]): the best
  shortest-path tree over all roots is a 2-approximation.
- **Generalized Steiner forest** ([KKM+08]): connect every terminal group;
  here the standard MST-of-metric-closure 2-approximation per group.
- **Shortest s-t path**: distance extraction.
- **Linear-size spanner** (Elkin-Matar, arXiv:1907.10895 style): a
  ``(2k-1)``-spanner via the classic greedy construction [ADDJS93]; at
  ``k = ceil(log2 n)`` its girth bound caps the size at ``O(n)`` edges,
  the "skeleton" regime the Elkin-Matar CONGEST constructions target.

Each has a pure solver (tested against first principles) and a distributed
runner via the pipelined-centralisation skeleton, whose measured rounds the
benchmarks lay against the Theorem 3.8 bound.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Sequence

import networkx as nx

from repro.algorithms.centralised import run_centralised
from repro.congest.faults import FaultPlan
from repro.congest.message import bit_size
from repro.congest.network import RunResult


def shallow_light_tree(
    graph: nx.Graph, root: Hashable, alpha: float = 2.0, weight: str = "weight"
) -> nx.Graph:
    """Khuller-Raghavachari-Young LAST: radius <= (1 + 2/(alpha-1)) * r_SPT
    and weight <= alpha * w(MST).

    Walk an MST in DFS order from the root; whenever the tree-path distance
    to the next vertex exceeds ``alpha`` times its shortest-path distance,
    graft the shortest path instead.  Returns the resulting spanning tree.
    """
    if alpha <= 1.0:
        raise ValueError("alpha must exceed 1")
    mst = nx.minimum_spanning_tree(graph, weight=weight)
    spt_dist, spt_paths = nx.single_source_dijkstra(graph, root, weight=weight)

    # Relaxed distances along the DFS traversal of the MST.
    parent: dict[Hashable, Hashable] = {root: root}
    dist: dict[Hashable, float] = {node: float("inf") for node in graph.nodes()}
    dist[root] = 0.0

    def relax_path(path: Sequence[Hashable]) -> None:
        for a, b in zip(path, path[1:]):
            w = graph.edges[a, b][weight]
            if dist[a] + w < dist[b]:
                dist[b] = dist[a] + w
                parent[b] = a

    order = list(nx.dfs_preorder_nodes(mst, root))
    previous = root
    for node in order:
        if node == root:
            continue
        # Relax along the MST walk from the previous vertex.
        walk = nx.shortest_path(mst, previous, node)
        relax_path(walk)
        if dist[node] > alpha * spt_dist[node]:
            relax_path(spt_paths[node])
        previous = node

    tree = nx.Graph()
    tree.add_nodes_from(graph.nodes())
    for node, par in parent.items():
        if node != par:
            tree.add_edge(node, par, **{weight: graph.edges[node, par][weight]})
    return tree


def routing_cost(graph: nx.Graph, tree: nx.Graph, weight: str = "weight") -> float:
    """Sum over all ordered pairs of tree-path distances ([KKM+08])."""
    total = 0.0
    lengths = dict(nx.all_pairs_dijkstra_path_length(tree, weight=weight))
    for u, v in itertools.permutations(tree.nodes(), 2):
        total += lengths[u][v]
    return total


def min_routing_cost_tree_2approx(graph: nx.Graph, weight: str = "weight") -> tuple[nx.Graph, float]:
    """The best shortest-path tree over all roots: a 2-approximation of the
    minimum routing cost spanning tree."""
    best_tree = None
    best_cost = float("inf")
    for root in graph.nodes():
        preds, _ = nx.dijkstra_predecessor_and_distance(graph, root, weight=weight)
        tree = nx.Graph()
        tree.add_nodes_from(graph.nodes())
        for node, parents in preds.items():
            if parents:
                tree.add_edge(node, parents[0], **{weight: graph.edges[node, parents[0]][weight]})
        cost = routing_cost(graph, tree, weight=weight)
        if cost < best_cost:
            best_cost = cost
            best_tree = tree
    return best_tree, best_cost


def steiner_forest_2approx(
    graph: nx.Graph, groups: Sequence[Sequence[Hashable]], weight: str = "weight"
) -> set[frozenset]:
    """Generalized Steiner forest: per group, the metric-closure MST
    2-approximation (Kou-Markowsky-Berman style); union over groups."""
    chosen: set[frozenset] = set()
    for group in groups:
        terminals = list(group)
        if len(terminals) < 2:
            continue
        closure = nx.Graph()
        paths: dict[tuple, list] = {}
        for a, b in itertools.combinations(terminals, 2):
            length, path = nx.single_source_dijkstra(graph, a, b, weight=weight)
            closure.add_edge(a, b, weight=length)
            paths[(a, b)] = path
        mst = nx.minimum_spanning_tree(closure, weight="weight")
        for a, b in mst.edges():
            path = paths.get((a, b)) or paths[(b, a)]
            for u, v in zip(path, path[1:]):
                chosen.add(frozenset((u, v)))
    return chosen


def forest_weight(graph: nx.Graph, edges: set[frozenset], weight: str = "weight") -> float:
    return sum(graph.edges[tuple(e)][weight] for e in edges)


def greedy_spanner(graph: nx.Graph, stretch_k: int, weight: str = "weight") -> nx.Graph:
    """The greedy ``(2k-1)``-spanner [ADDJS93]: scan edges by increasing
    weight, keep an edge iff the spanner built so far cannot already route
    it within stretch ``2k-1``.

    The kept graph has girth above ``2k``, hence ``O(n^(1 + 1/k))`` edges;
    at ``k = ceil(log2 n)`` that is ``O(n)`` -- a linear-size skeleton.
    """
    if stretch_k < 1:
        raise ValueError("stretch parameter k must be at least 1")
    t = 2 * stretch_k - 1
    spanner = nx.Graph()
    spanner.add_nodes_from(graph.nodes())
    for u, v, data in sorted(graph.edges(data=True), key=lambda e: (e[2][weight], repr(e[:2]))):
        w = data[weight]
        try:
            current = nx.dijkstra_path_length(spanner, u, v, weight=weight)
        except nx.NetworkXNoPath:
            current = float("inf")
        if current > t * w:
            spanner.add_edge(u, v, **{weight: w})
    return spanner


def spanner_max_stretch(graph: nx.Graph, spanner: nx.Graph, weight: str = "weight") -> float:
    """Worst stretch over the *edges* of ``graph`` (which bounds the
    stretch over all pairs, since shortest paths concatenate edges)."""
    worst = 1.0
    for u, v, data in graph.edges(data=True):
        d = nx.dijkstra_path_length(spanner, u, v, weight=weight)
        worst = max(worst, d / data[weight])
    return worst


# -- distributed runners -------------------------------------------------------


def run_shallow_light_tree(
    graph: nx.Graph, root: Hashable, alpha: float = 2.0, bandwidth: int = 128, engine: str = "event"
) -> tuple[dict, RunResult]:
    """Distributed shallow-light tree via pipelined centralisation; returns
    summary metrics (radius/weight vs the SPT/MST baselines) and the run."""

    def solver(g: nx.Graph) -> dict:
        r = repr(root)
        tree = shallow_light_tree(g, r, alpha=alpha)
        mst_weight = sum(d["weight"] for _, _, d in nx.minimum_spanning_tree(g).edges(data=True))
        spt_radius = max(nx.single_source_dijkstra_path_length(g, r).values())
        return {
            "weight": sum(d["weight"] for _, _, d in tree.edges(data=True)),
            "radius": max(nx.single_source_dijkstra_path_length(tree, r).values()),
            "mst_weight": mst_weight,
            "spt_radius": spt_radius,
        }

    return run_centralised(graph, solver, bandwidth=bandwidth, engine=engine)


def run_min_routing_cost_tree(
    graph: nx.Graph, bandwidth: int = 128, engine: str = "event"
) -> tuple[float, RunResult]:
    """Distributed 2-approximate minimum routing cost spanning tree."""

    def solver(g: nx.Graph) -> float:
        _, cost = min_routing_cost_tree_2approx(g)
        return cost

    return run_centralised(graph, solver, bandwidth=bandwidth, engine=engine)


def run_steiner_forest(
    graph: nx.Graph, groups: Sequence[Sequence[Hashable]], bandwidth: int = 128, engine: str = "event"
) -> tuple[float, RunResult]:
    """Distributed 2-approximate generalized Steiner forest (weight output)."""

    def solver(g: nx.Graph) -> float:
        repr_groups = [[repr(t) for t in group] for group in groups]
        edges = steiner_forest_2approx(g, repr_groups)
        return forest_weight(g, edges)

    return run_centralised(graph, solver, bandwidth=bandwidth, engine=engine)


def run_linear_size_spanner(
    graph: nx.Graph,
    stretch_k: int,
    bandwidth: int = 128,
    engine: str = "event",
    max_rounds: int = 500_000,
    faults: "FaultPlan | None" = None,
    fault_seed: int | None = None,
    include_edges: bool = False,
) -> tuple[dict, RunResult]:
    """Distributed linear-size spanner via pipelined centralisation.

    Returns summary metrics (edge counts, certified max stretch vs the
    ``2k-1`` guarantee) and the CONGEST run.  The phased skeleton declares
    its long silent stretches, so the event engine charges only the
    traffic -- the mostly-quiet regime the Elkin-Matar constructions live
    in.

    ``include_edges`` adds the spanner's edge list to the broadcast answer
    (costing the extra bits honestly) so recovery checks can compare the
    reconstruction against a recompute.  Under a fault plan the leader's
    snapshot can predate later churn (a stale skeleton) or the run can
    fail outright (answer ``None``); the ``spanner-churn`` scenario checks
    the answer against the post-churn graph and rebuilds when stale.
    """

    def solver(g: nx.Graph) -> dict:
        spanner = greedy_spanner(g, stretch_k)
        summary = {
            "n": g.number_of_nodes(),
            "m": g.number_of_edges(),
            "spanner_edges": spanner.number_of_edges(),
            "spanner_weight": sum(d["weight"] for _, _, d in spanner.edges(data=True)),
            "max_stretch": spanner_max_stretch(g, spanner),
        }
        if include_edges:
            summary["edges"] = sorted((u, v) if u < v else (v, u) for u, v in spanner.edges())
        return summary

    # The broadcast phase's duration is common knowledge, so the answer's
    # size must be bounded before the run: with the edge list included, any
    # spanner edge is an edge of the leader's snapshot, i.e. of the input
    # graph plus the plan's scheduled insertions (whose endpoints are
    # existing nodes), so the longest node name times the edge-count cap
    # bounds the payload.
    broadcast_chunks = 8
    if include_edges:
        longest = max(map(repr, graph.nodes()), key=len, default="")
        cap_edges = graph.number_of_edges()
        if faults is not None:
            cap_edges += sum(1 for ev in faults.topology_events if ev.action == "insert")
        bound_bits = 512 + cap_edges * bit_size((longest, longest))
        broadcast_chunks = max(8, -(-bound_bits // bandwidth) + 1)

    return run_centralised(
        graph,
        solver,
        bandwidth=bandwidth,
        engine=engine,
        max_rounds=max_rounds,
        faults=faults,
        fault_seed=fault_seed,
        broadcast_chunks=broadcast_chunks,
    )


def run_shortest_st_path(
    graph: nx.Graph, s: Hashable, t: Hashable, bandwidth: int = 128, engine: str = "event"
) -> tuple[float, RunResult]:
    """Distributed shortest s-t path length (via centralisation; the
    Bellman-Ford program in :mod:`repro.algorithms.paths` is the native
    alternative)."""

    def solver(g: nx.Graph) -> float:
        return float(nx.dijkstra_path_length(g, repr(s), repr(t)))

    return run_centralised(graph, solver, bandwidth=bandwidth, engine=engine)
