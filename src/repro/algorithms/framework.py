"""Composable synchronous phases for CONGEST algorithms.

Multi-step distributed algorithms (build a BFS tree, aggregate, broadcast,
pipeline items to the root, ...) are expressed as sequences of *phases* with
statically known durations -- the standard synchronous-composition technique:
because every node can compute each phase's duration from common knowledge
(``n``, the bandwidth, a diameter bound supplied as input, and values learned
in earlier phases), all nodes switch phases in the same round without any
coordination traffic.

Control messages here are ``O(log n)``-sized; the simulator's auto-chunking
keeps the accounting honest if ``B`` is set smaller than a message.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.congest.message import Received, bit_size
from repro.congest.node import Node, NodeProgram


class Phase:
    """One synchronous phase.  All methods may read/write ``shared`` (the
    node's local knowledge dictionary) and send via the node handle.

    ``duration`` must be stable while the phase is active (it may depend on
    values fixed before the phase was entered, e.g. ``shared['D']``) -- the
    event engine computes the phase boundary from it once per step.
    """

    name = "phase"

    def duration(self, node: Node, shared: dict) -> int:
        raise NotImplementedError

    def on_enter(self, node: Node, shared: dict) -> None:  # pragma: no cover
        pass

    def on_round(self, node: Node, round_in_phase: int, inbox: list[Received], shared: dict) -> None:
        pass

    def on_exit(self, node: Node, shared: dict) -> None:  # pragma: no cover
        pass

    def idle_until(self, node: Node, round_in_phase: int, shared: dict) -> int | None:
        """The phase-level idleness hint for the event engine.

        Given that ``round_in_phase`` rounds of this phase have run at this
        node, return the next round-in-phase that must be stepped even if no
        message arrives, or ``None`` if only deliveries (and the phase-end
        boundary, which :class:`PhasedProgram` always schedules) matter.

        Contract: every skipped round's ``on_round`` with an empty inbox
        must be a no-op -- no sends and no change to future behaviour.  The
        default declares every round active, which is always safe.
        """
        return round_in_phase + 1


class PhasedProgram(NodeProgram):
    """Run a list of phases back to back; halt with ``shared['output']``.

    Nodes must receive ``diameter_bound`` in their input dictionary (or it
    defaults to ``n``); it seeds ``shared['D']``, from which phase durations
    are computed identically everywhere.
    """

    def __init__(self, phases: list[Phase]):
        self.phases = list(phases)
        self.index = 0
        self.round_in_phase = 0
        # Absolute round after which the current phase started; phase-local
        # rounds are computed from it so skipped (idle) rounds cost nothing.
        self._phase_started_after = 0
        # Duration is contractually stable while a phase is active, so it is
        # computed once on entry; the absolute boundary round falls out.
        self._phase_duration = 0
        self._phase_boundary = 0
        self.shared: dict[str, Any] = {}

    def on_start(self, node: Node) -> None:
        inputs = node.input if isinstance(node.input, dict) else {}
        self.shared["D"] = int(inputs.get("diameter_bound", node.n_nodes))
        self.shared["inputs"] = inputs
        self._enter_current(node, 0)

    def _enter_current(self, node: Node, at_round: int) -> None:
        while self.index < len(self.phases):
            phase = self.phases[self.index]
            self.round_in_phase = 0
            self._phase_started_after = at_round
            phase.on_enter(node, self.shared)
            duration = phase.duration(node, self.shared)
            if duration > 0:
                self._phase_duration = duration
                self._phase_boundary = at_round + duration
                return
            phase.on_exit(node, self.shared)
            self.index += 1
        node.halt(self.shared.get("output"))

    def on_round(self, node: Node, round_no: int, inbox: list[Received]) -> None:
        if self.index >= len(self.phases):  # pragma: no cover - already halted
            return
        phase = self.phases[self.index]
        self.round_in_phase = round_no - self._phase_started_after
        phase.on_round(node, self.round_in_phase, inbox, self.shared)
        if self.round_in_phase >= self._phase_duration:
            phase.on_exit(node, self.shared)
            self.index += 1
            self._enter_current(node, round_no)

    def next_active_round(self, node: Node, after_round: int) -> int | None:
        """Schedule the phase's next spontaneous round and its boundary."""
        if self.index >= len(self.phases):
            return None
        phase = self.phases[self.index]
        rp = after_round - self._phase_started_after
        boundary = self._phase_boundary
        hint = phase.idle_until(node, rp, self.shared)
        if hint is None:
            return boundary
        return min(self._phase_started_after + max(hint, rp + 1), boundary)


class LeaderElectionPhase(Phase):
    """Flood the maximum id for ``D`` rounds; everyone learns the leader."""

    name = "leader-election"

    def duration(self, node: Node, shared: dict) -> int:
        return shared["D"] + 1

    def on_enter(self, node: Node, shared: dict) -> None:
        shared["_best"] = node.id
        node.broadcast(("lead", node.id))

    def on_round(self, node: Node, r: int, inbox: list[Received], shared: dict) -> None:
        improved = False
        for msg in inbox:
            _, candidate = msg.payload
            if repr(candidate) > repr(shared["_best"]):
                shared["_best"] = candidate
                improved = True
        if improved and r < self.duration(node, shared):
            node.broadcast(("lead", shared["_best"]))

    def on_exit(self, node: Node, shared: dict) -> None:
        shared["leader"] = shared.pop("_best")
        shared["is_leader"] = shared["leader"] == node.id

    def idle_until(self, node: Node, round_in_phase: int, shared: dict) -> int | None:
        return None  # re-floods only on arrival of a better candidate


class BfsTreePhase(Phase):
    """Build a BFS tree rooted at the leader: parent, children, depth.

    Wave adoption takes ``D`` rounds; one extra round lets children report to
    their parents.
    """

    name = "bfs-tree"

    def duration(self, node: Node, shared: dict) -> int:
        return shared["D"] + 2

    def on_enter(self, node: Node, shared: dict) -> None:
        shared["parent"] = None
        shared["children"] = []
        shared["depth"] = None
        if shared.get("is_leader"):
            shared["depth"] = 0
            node.broadcast(("bfs", 0))

    def on_round(self, node: Node, r: int, inbox: list[Received], shared: dict) -> None:
        for msg in inbox:
            tag = msg.payload[0]
            if tag == "bfs" and shared["depth"] is None:
                shared["depth"] = msg.payload[1] + 1
                shared["parent"] = msg.sender
                node.send(msg.sender, ("child",))
                for neighbor in node.neighbors:
                    if neighbor != msg.sender:
                        node.send(neighbor, ("bfs", shared["depth"]))
            elif tag == "child":
                shared["children"].append(msg.sender)

    def idle_until(self, node: Node, round_in_phase: int, shared: dict) -> int | None:
        return None  # adoption and child reports are delivery-driven


class ConvergecastPhase(Phase):
    """Aggregate a value up the BFS tree with a user combiner.

    ``initial(node, shared)`` produces each node's contribution;
    ``combine(a, b)`` must be associative and commutative.  The root stores
    the total in ``shared[result_key]`` (other nodes keep ``None``).
    """

    name = "convergecast"

    def __init__(self, result_key: str, initial, combine):
        self.result_key = result_key
        self.initial = initial
        self.combine = combine

    def duration(self, node: Node, shared: dict) -> int:
        return shared["D"] + 2

    def on_enter(self, node: Node, shared: dict) -> None:
        shared["_acc"] = self.initial(node, shared)
        shared["_waiting"] = set(map(repr, shared["children"]))
        shared[self.result_key] = None
        if not shared["_waiting"] and shared["parent"] is not None:
            node.send(shared["parent"], ("agg", shared["_acc"]))
            shared["_sent"] = True
        else:
            shared["_sent"] = False

    def on_round(self, node: Node, r: int, inbox: list[Received], shared: dict) -> None:
        for msg in inbox:
            if msg.payload[0] != "agg":
                continue
            shared["_acc"] = self.combine(shared["_acc"], msg.payload[1])
            shared["_waiting"].discard(repr(msg.sender))
        if not shared["_waiting"] and not shared["_sent"]:
            if shared["parent"] is not None:
                node.send(shared["parent"], ("agg", shared["_acc"]))
            shared["_sent"] = True

    def on_exit(self, node: Node, shared: dict) -> None:
        if shared["parent"] is None:
            shared[self.result_key] = shared["_acc"]
        for key in ("_acc", "_waiting", "_sent"):
            shared.pop(key, None)

    def idle_until(self, node: Node, round_in_phase: int, shared: dict) -> int | None:
        # Aggregation is delivery-driven.  (The root flips its private
        # ``_sent`` flag on an empty round, but never sends -- externally a
        # no-op, so skipping is safe.)
        return None


class BroadcastPhase(Phase):
    """Push the root's ``shared[value_key]`` down the BFS tree to everyone.

    ``chunks`` bounds how many ``B``-bit rounds the payload needs per hop
    (the simulator transmits oversized payloads over ``ceil(bits/B)``
    consecutive rounds); the phase duration scales accordingly.
    """

    name = "broadcast"

    def __init__(self, value_key: str, chunks: int = 1):
        self.value_key = value_key
        self.chunks = max(1, chunks)

    def duration(self, node: Node, shared: dict) -> int:
        return self.chunks * (shared["D"] + 1) + 2

    def on_enter(self, node: Node, shared: dict) -> None:
        if shared["parent"] is None:
            for child in shared["children"]:
                node.send(child, ("bc", shared[self.value_key]))

    def on_round(self, node: Node, r: int, inbox: list[Received], shared: dict) -> None:
        for msg in inbox:
            if msg.payload[0] != "bc":
                continue
            shared[self.value_key] = msg.payload[1]
            for child in shared["children"]:
                node.send(child, ("bc", msg.payload[1]))

    def idle_until(self, node: Node, round_in_phase: int, shared: dict) -> int | None:
        return None  # pure store-and-forward on delivery


class PipelinedUpcastPhase(Phase):
    """Pipeline a set of items to the root in ``D + K`` rounds [Pel00].

    Each node starts with ``shared[items_key]`` (a list); every round it
    forwards one still-unsent item to its parent (smallest first, by repr,
    for determinism).  ``capacity_key`` names a shared value bounding the
    total item count ``K``; an optional ``reducer`` drops dominated items at
    intermediate nodes (e.g. keep only the minimum-weight edge per fragment),
    which is how the Kutten-Peleg phase keeps the pipeline short.
    """

    name = "pipelined-upcast"

    def __init__(self, items_key: str, result_key: str, capacity_key: str, reducer=None):
        self.items_key = items_key
        self.result_key = result_key
        self.capacity_key = capacity_key
        self.reducer = reducer

    def duration(self, node: Node, shared: dict) -> int:
        return shared["D"] + int(shared[self.capacity_key]) + 2

    def on_enter(self, node: Node, shared: dict) -> None:
        items = list(shared.get(self.items_key) or [])
        if self.reducer is not None:
            items = self.reducer(items)
        shared["_queue"] = sorted(items, key=repr)
        shared[self.result_key] = None

    def on_round(self, node: Node, r: int, inbox: list[Received], shared: dict) -> None:
        for msg in inbox:
            if msg.payload[0] == "item":
                shared["_queue"].append(msg.payload[1])
        if self.reducer is not None:
            shared["_queue"] = self.reducer(shared["_queue"])
        if shared["parent"] is not None and shared["_queue"]:
            item = shared["_queue"].pop(0)
            node.send(shared["parent"], ("item", item))

    def on_exit(self, node: Node, shared: dict) -> None:
        if shared["parent"] is None:
            shared[self.result_key] = list(shared.pop("_queue"))
        else:
            leftover = shared.pop("_queue")
            if leftover:
                raise RuntimeError(
                    f"upcast capacity too small: {len(leftover)} items stranded at {node.id!r}"
                )

    def idle_until(self, node: Node, round_in_phase: int, shared: dict) -> int | None:
        # Forwarding one item per round is spontaneous while the local queue
        # is non-empty; a drained queue refills only on delivery.  (Reducers
        # must be pure: they are re-applied on every stepped round.)
        if shared.get("_queue") and shared.get("parent") is not None:
            return round_in_phase + 1
        return None


class PipelinedDowncastPhase(Phase):
    """Pipeline the root's item list to every node in ``D + K`` rounds."""

    name = "pipelined-downcast"

    def __init__(self, items_key: str, capacity_key: str):
        self.items_key = items_key
        self.capacity_key = capacity_key

    def duration(self, node: Node, shared: dict) -> int:
        return shared["D"] + int(shared[self.capacity_key]) + 2

    def on_enter(self, node: Node, shared: dict) -> None:
        if shared["parent"] is None:
            shared["_down_queue"] = list(shared.get(self.items_key) or [])
            shared[self.items_key] = list(shared["_down_queue"])
        else:
            shared["_down_queue"] = []
            shared[self.items_key] = []

    def on_round(self, node: Node, r: int, inbox: list[Received], shared: dict) -> None:
        for msg in inbox:
            if msg.payload[0] == "item":
                shared["_down_queue"].append(msg.payload[1])
                shared[self.items_key].append(msg.payload[1])
        if shared["_down_queue"] and shared["children"]:
            item = shared["_down_queue"].pop(0)
            for child in shared["children"]:
                node.send(child, ("item", item))
        elif shared["_down_queue"]:
            shared["_down_queue"].clear()

    def on_exit(self, node: Node, shared: dict) -> None:
        leftover = shared.pop("_down_queue", None)
        # The root drains one item per round; a nonempty queue at phase end
        # means the capacity under-estimated the item count, and items still
        # in transit would be lost -- fail loudly instead.
        if shared["parent"] is None and shared["children"] and leftover:
            raise RuntimeError(
                f"downcast capacity too small: {len(leftover)} items undelivered at root"
            )

    def idle_until(self, node: Node, round_in_phase: int, shared: dict) -> int | None:
        # Active while the local queue drains (root seeds it in on_enter);
        # otherwise items arrive only by delivery.
        if shared.get("_down_queue"):
            return round_in_phase + 1
        return None


class LocalComputationPhase(Phase):
    """A zero-round phase running a local function at every node."""

    name = "local"

    def __init__(self, fn):
        self.fn = fn

    def duration(self, node: Node, shared: dict) -> int:
        return 0

    def on_enter(self, node: Node, shared: dict) -> None:
        self.fn(node, shared)


def estimate_item_bits(item: Any) -> int:
    """Bit size of a pipelined item (for bandwidth sanity checks in tests)."""
    return bit_size(item)
