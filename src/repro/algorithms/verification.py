"""The [DHK+12] distributed verification suite (Corollary 3.7's problems).

Every verifier follows the same skeleton:

1. flood minimum labels (with parity) over the relevant edge set -- the
   marked subnetwork ``M``, its complement ``N - M``, or ``M`` minus a
   special edge -- so each node learns its component and 2-colouring;
2. elect a leader and build a BFS tree over ``N`` (all edges);
3. convergecast the aggregate statistics (component count, degree
   histogram, odd-cycle flag, the component labels of ``s``/``t``);
4. the root evaluates the predicate and broadcasts the verdict.

Flooding uses a safe ``O(n)`` budget, so measured rounds are ``O(n + D)``;
the ``O~(sqrt(n) + D)`` variant for connectivity-type predicates reuses the
Kutten-Peleg machinery (:func:`run_gkp_components`).  Least-element-list
verification is ``O(n + D)`` by design -- the paper notes no sublinear upper
bound is known for it.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Hashable

import networkx as nx

from repro.algorithms.framework import (
    BfsTreePhase,
    BroadcastPhase,
    ConvergecastPhase,
    LeaderElectionPhase,
    LocalComputationPhase,
    Phase,
    PhasedProgram,
    PipelinedUpcastPhase,
)
from repro.algorithms.mst import GKPMSTProgram
from repro.congest.message import Received
from repro.congest.network import CongestNetwork, RunResult
from repro.congest.node import Node


class SubgraphFloodPhase(Phase):
    """Minimum-label flooding with parity over a selected edge set.

    ``edge_mode`` chooses the floodable edges per node input:
    ``"marks"`` (the subnetwork ``M``), ``"complement"`` (``N - M``) or
    ``"marks_minus_e"`` (``M`` without the input's ``special_edge``).
    Produces ``shared['comp_label']``, ``shared['parity']`` and
    ``shared['odd_cycle']`` (any same-label same-parity floodable edge).
    """

    name = "subgraph-flood"

    def __init__(self, edge_mode: str = "marks"):
        if edge_mode not in ("marks", "complement", "marks_minus_e"):
            raise ValueError(f"unknown edge mode {edge_mode!r}")
        self.edge_mode = edge_mode

    def duration(self, node: Node, shared: dict) -> int:
        return node.n_nodes + 3

    def _floodable(self, node: Node, shared: dict) -> list:
        inputs = shared["inputs"]
        marks = {repr(m) for m in inputs.get("m_neighbors", ())}
        special = inputs.get("special_edge")
        result = []
        for neighbor in node.neighbors:
            in_m = repr(neighbor) in marks
            if self.edge_mode == "complement":
                if not in_m:
                    result.append(neighbor)
                continue
            if not in_m:
                continue
            if self.edge_mode == "marks_minus_e" and special is not None:
                a, b = special
                if {repr(node.id), repr(neighbor)} == {repr(a), repr(b)}:
                    continue
            result.append(neighbor)
        return result

    def on_enter(self, node: Node, shared: dict) -> None:
        shared["comp_label"] = node.id
        shared["parity"] = 0
        shared["odd_cycle"] = False
        shared["_flood_edges"] = self._floodable(node, shared)
        for neighbor in shared["_flood_edges"]:
            node.send(neighbor, ("flood", node.id, 0))

    def on_round(self, node: Node, r: int, inbox: list[Received], shared: dict) -> None:
        n = node.n_nodes
        improved = False
        for msg in inbox:
            tag = msg.payload[0]
            if tag == "flood":
                _, their_label, their_parity = msg.payload
                if repr(their_label) < repr(shared["comp_label"]):
                    shared["comp_label"] = their_label
                    shared["parity"] = their_parity ^ 1
                    improved = True
            elif tag == "check":
                _, their_label, their_parity = msg.payload
                if (
                    repr(their_label) == repr(shared["comp_label"])
                    and their_parity == shared["parity"]
                ):
                    shared["odd_cycle"] = True
        if improved and r < n:
            for neighbor in shared["_flood_edges"]:
                node.send(neighbor, ("flood", shared["comp_label"], shared["parity"]))
        if r == n + 1:
            # Labels are stable; exchange (label, parity) for the odd-cycle
            # (bipartiteness) check across every floodable edge.
            for neighbor in shared["_flood_edges"]:
                node.send(neighbor, ("check", shared["comp_label"], shared["parity"]))

    def on_exit(self, node: Node, shared: dict) -> None:
        shared["flood_degree"] = len(shared.pop("_flood_edges"))

    def idle_until(self, node: Node, round_in_phase: int, shared: dict) -> int | None:
        # Delivery-driven flooding, except the spontaneous (label, parity)
        # exchange at round n+1.
        n = node.n_nodes
        return n + 1 if round_in_phase < n + 1 else None


def _statistics(node: Node, shared: dict) -> tuple:
    """Per-node contribution to the aggregate statistics tuple."""
    inputs = shared["inputs"]
    degree = shared["flood_degree"]
    is_root_of_component = 1 if repr(shared["comp_label"]) == repr(node.id) else 0
    label_s = shared["comp_label"] if inputs.get("is_s") else None
    label_t = shared["comp_label"] if inputs.get("is_t") else None
    return (
        is_root_of_component,  # components
        degree,  # sum of degrees = 2 |E|
        1 if degree == 0 else 0,  # isolated nodes
        1 if degree == 1 else 0,  # endpoints
        1 if degree > 2 else 0,  # high-degree nodes
        1 if shared["odd_cycle"] else 0,  # odd-cycle witnesses
        label_s,
        label_t,
    )


def _combine_statistics(a: tuple, b: tuple) -> tuple:
    return (
        a[0] + b[0],
        a[1] + b[1],
        a[2] + b[2],
        a[3] + b[3],
        a[4] + b[4],
        max(a[5], b[5]),
        a[6] if a[6] is not None else b[6],
        a[7] if a[7] is not None else b[7],
    )


class Statistics:
    """Decoded aggregate statistics at the root."""

    def __init__(self, raw: tuple, n: int):
        self.components = raw[0]
        self.edge_count = raw[1] // 2
        self.isolated = raw[2]
        self.endpoints = raw[3]
        self.high_degree = raw[4]
        self.has_odd_cycle = bool(raw[5])
        self.label_s = raw[6]
        self.label_t = raw[7]
        self.n = n


Verdict = Callable[[Statistics], bool]


def verification_program_factory(edge_mode: str, verdict: Verdict) -> Callable[[], PhasedProgram]:
    """Build the standard 4-stage verification program."""

    def decide(node: Node, shared: dict) -> None:
        if shared["parent"] is None:
            stats = Statistics(shared["stats"], node.n_nodes)
            shared["verdict"] = bool(verdict(stats))
        else:
            shared["verdict"] = None

    def finish(node: Node, shared: dict) -> None:
        shared["output"] = shared["verdict"]

    def factory() -> PhasedProgram:
        return PhasedProgram(
            [
                SubgraphFloodPhase(edge_mode),
                LeaderElectionPhase(),
                BfsTreePhase(),
                ConvergecastPhase("stats", _statistics, _combine_statistics),
                LocalComputationPhase(decide),
                BroadcastPhase("verdict"),
                LocalComputationPhase(finish),
            ]
        )

    return factory


# -- the verdicts of Appendix A.2 ---------------------------------------------


def connectivity_verdict(s: Statistics) -> bool:
    return s.components == 1


def spanning_connected_subgraph_verdict(s: Statistics) -> bool:
    return s.components == 1 and s.isolated == 0


def spanning_tree_verdict(s: Statistics) -> bool:
    return s.components == 1 and s.edge_count == s.n - 1


def hamiltonian_cycle_verdict(s: Statistics) -> bool:
    return (
        s.components == 1
        and s.edge_count == s.n
        and s.isolated == 0
        and s.endpoints == 0
        and s.high_degree == 0
    )


def simple_path_verdict(s: Statistics) -> bool:
    contains_cycle = s.edge_count > s.n - s.components
    nontrivial_components = s.components - s.isolated
    return (
        s.high_degree == 0
        and s.endpoints == 2
        and not contains_cycle
        and nontrivial_components == 1
    )


def cycle_containment_verdict(s: Statistics) -> bool:
    return s.edge_count > s.n - s.components


def bipartiteness_verdict(s: Statistics) -> bool:
    return not s.has_odd_cycle


def st_connectivity_verdict(s: Statistics) -> bool:
    return s.label_s is not None and repr(s.label_s) == repr(s.label_t)


def cut_verdict(s: Statistics) -> bool:
    # Flooding ran on the complement N - M: M is a cut iff it disconnects N.
    return s.components > 1


def st_cut_verdict(s: Statistics) -> bool:
    return repr(s.label_s) != repr(s.label_t)


def e_cycle_verdict(s: Statistics) -> bool:
    # Flooding ran on M minus e: a cycle through e exists iff e's endpoints
    # (tagged as s and t) remain connected.
    return s.label_s is not None and repr(s.label_s) == repr(s.label_t)


def edge_on_all_paths_verdict(s: Statistics) -> bool:
    # Flooding ran on M minus e: e lies on all u-v paths iff u and v are
    # separated without it.
    return repr(s.label_s) != repr(s.label_t)


#: problem name -> (edge mode, verdict)
VERIFIERS: dict[str, tuple[str, Verdict]] = {
    "connectivity": ("marks", connectivity_verdict),
    "connected spanning subgraph": ("marks", spanning_connected_subgraph_verdict),
    "spanning tree": ("marks", spanning_tree_verdict),
    "hamiltonian cycle": ("marks", hamiltonian_cycle_verdict),
    "simple path": ("marks", simple_path_verdict),
    "cycle containment": ("marks", cycle_containment_verdict),
    "bipartiteness": ("marks", bipartiteness_verdict),
    "s-t connectivity": ("marks", st_connectivity_verdict),
    "cut": ("complement", cut_verdict),
    "s-t cut": ("complement", st_cut_verdict),
    "e-cycle containment": ("marks_minus_e", e_cycle_verdict),
    "edge on all paths": ("marks_minus_e", edge_on_all_paths_verdict),
}


def build_inputs(
    graph: nx.Graph,
    m_edges: list[tuple[Hashable, Hashable]],
    diameter_bound: int | None = None,
    s: Hashable | None = None,
    t: Hashable | None = None,
    special_edge: tuple[Hashable, Hashable] | None = None,
) -> dict[Hashable, dict]:
    """Per-node inputs: incident marks, diameter bound, role flags."""
    d = diameter_bound if diameter_bound is not None else nx.diameter(graph)
    m = nx.Graph()
    m.add_nodes_from(graph.nodes())
    m.add_edges_from(m_edges)
    inputs = {}
    for node in graph.nodes():
        inputs[node] = {
            "m_neighbors": frozenset(m.neighbors(node)),
            "diameter_bound": d,
            "is_s": node == s,
            "is_t": node == t,
        }
        if special_edge is not None:
            inputs[node]["special_edge"] = special_edge
    return inputs


def run_verification(
    problem: str,
    graph: nx.Graph,
    m_edges: list[tuple[Hashable, Hashable]],
    bandwidth: int = 64,
    seed: int | None = 0,
    engine: str = "event",
    **input_kwargs: Any,
) -> tuple[bool, RunResult]:
    """Run a named verifier; returns (verdict, run metrics)."""
    if problem not in VERIFIERS:
        raise KeyError(f"unknown verification problem {problem!r}")
    edge_mode, verdict = VERIFIERS[problem]
    if edge_mode == "marks_minus_e":
        special = input_kwargs.get("special_edge")
        if special is None:
            raise ValueError(f"{problem} needs special_edge=")
        input_kwargs.setdefault("s", special[0])
        input_kwargs.setdefault("t", special[1])
    inputs = build_inputs(graph, m_edges, **input_kwargs)
    network = CongestNetwork(
        graph,
        verification_program_factory(edge_mode, verdict),
        bandwidth=bandwidth,
        seed=seed,
        inputs=inputs,
        engine=engine,
    )
    result = network.run()
    answer = bool(result.unanimous_output())
    if problem == "e-cycle containment":
        # A cycle through e needs e itself in M -- a local O(1) check at the
        # endpoint, folded into the verdict here.
        special = frozenset(input_kwargs["special_edge"])
        answer = answer and any(frozenset(e) == special for e in m_edges)
    return answer, result


def run_gkp_components(
    graph: nx.Graph,
    m_edges: list[tuple[Hashable, Hashable]],
    bandwidth: int = 64,
    diameter_bound: int | None = None,
    seed: int | None = 0,
    engine: str = "event",
) -> tuple[int, RunResult]:
    """Component count of ``M`` via the Kutten-Peleg machinery.

    The ``O~(sqrt(n) + D)``-shaped path for connectivity-style verification:
    fragment growth restricted to ``M``-edges; the number of distinct final
    labels equals the number of components of ``M``.
    """
    d = diameter_bound if diameter_bound is not None else nx.diameter(graph)
    n = graph.number_of_nodes()
    m = nx.Graph()
    m.add_nodes_from(graph.nodes())
    m.add_edges_from(m_edges)
    inputs = {
        node: {
            "diameter_bound": d,
            "m_neighbors": frozenset(m.neighbors(node)),
        }
        for node in graph.nodes()
    }
    iterations = max(3, math.ceil(math.log2(max(2, n))) + 1)
    network = CongestNetwork(
        graph,
        lambda: GKPMSTProgram(phase_b_iterations=iterations),
        bandwidth=bandwidth,
        seed=seed,
        inputs=inputs,
        engine=engine,
    )
    result = network.run(max_rounds=500_000)
    labels = {repr(out["label"]) for out in result.outputs.values()}
    return len(labels), result


# -- least-element-list verification ------------------------------------------


class _DistanceFloodPhase(Phase):
    """Weighted distance relaxation from the designated node ``u``
    (budget ``n`` rounds: hop count of shortest paths is below ``n``)."""

    name = "distance-flood"

    def duration(self, node: Node, shared: dict) -> int:
        return node.n_nodes + 2

    def on_enter(self, node: Node, shared: dict) -> None:
        shared["dist_u"] = 0.0 if shared["inputs"].get("is_u") else None
        if shared["dist_u"] is not None:
            node.broadcast(("d", 0.0))

    def on_round(self, node: Node, r: int, inbox: list[Received], shared: dict) -> None:
        improved = False
        for msg in inbox:
            candidate = msg.payload[1] + node.edge_weight(msg.sender)
            if shared["dist_u"] is None or candidate < shared["dist_u"]:
                shared["dist_u"] = candidate
                improved = True
        if improved:
            node.broadcast(("d", shared["dist_u"]))

    def idle_until(self, node: Node, round_in_phase: int, shared: dict) -> int | None:
        return None  # relaxation is delivery-driven


def run_le_list_verification(
    graph: nx.Graph,
    ranks: dict[Hashable, int],
    u: Hashable,
    candidate: list[tuple[Hashable, float]],
    bandwidth: int = 128,
    diameter_bound: int | None = None,
    seed: int | None = 0,
    engine: str = "event",
) -> tuple[bool, RunResult]:
    """Verify a least-element list (Appendix A.2).

    Pipeline: weighted distances from ``u`` (O(n) rounds), BFS tree rooted at
    ``u``, pipelined upcast of all ``(distance, rank, node)`` triples (O(n +
    D)), local prefix-minimum check at ``u``, verdict broadcast.  The paper
    records no sublinear-time algorithm for this problem, so the linear
    round count is the honest upper bound.
    """
    d = diameter_bound if diameter_bound is not None else nx.diameter(graph)
    inputs = {
        node: {
            "diameter_bound": d,
            "is_u": node == u,
            "rank": int(ranks[node]),
        }
        for node in graph.nodes()
    }

    def make_leader(node: Node, shared: dict) -> None:
        shared["leader"] = u
        shared["is_leader"] = shared["inputs"].get("is_u", False)

    def stage_items(node: Node, shared: dict) -> None:
        shared["le_items"] = [(shared["dist_u"], shared["inputs"]["rank"], repr(node.id))]
        shared["le_capacity"] = node.n_nodes + 1

    def decide(node: Node, shared: dict) -> None:
        if shared["parent"] is not None:
            shared["verdict"] = None
            return
        triples = sorted(shared["collected_le"])
        expected: list[tuple[str, float]] = []
        best_rank: int | None = None
        for dist, rank, node_repr in triples:
            if best_rank is None or rank < best_rank:
                expected.append((node_repr, dist))
                best_rank = rank
        claimed = sorted((repr(v), float(dv)) for v, dv in candidate)
        shared["verdict"] = sorted(expected) == claimed

    def finish(node: Node, shared: dict) -> None:
        shared["output"] = shared["verdict"]

    def factory() -> PhasedProgram:
        return PhasedProgram(
            [
                _DistanceFloodPhase(),
                LocalComputationPhase(make_leader),
                BfsTreePhase(),
                LocalComputationPhase(stage_items),
                PipelinedUpcastPhase("le_items", "collected_le", "le_capacity"),
                LocalComputationPhase(decide),
                BroadcastPhase("verdict"),
                LocalComputationPhase(finish),
            ]
        )

    network = CongestNetwork(
        graph, factory, bandwidth=bandwidth, seed=seed, inputs=inputs, engine=engine
    )
    result = network.run(max_rounds=500_000)
    return bool(result.unanimous_output()), result
