"""Reproduction of "Can Quantum Communication Speed Up Distributed Computation?".

Elkin, Klauck, Nanongkai, Pandurangan -- PODC 2014 (arXiv:1207.5211).

The package is organised bottom-up:

- :mod:`repro.graphs`     -- graph property checkers and generators.
- :mod:`repro.quantum`    -- statevector quantum-computation substrate.
- :mod:`repro.congest`    -- the CONGEST(B) distributed network simulator.
- :mod:`repro.comm`       -- two-party communication complexity substrate.
- :mod:`repro.core`       -- the paper's contribution: Server model, nonlocal
  games, gamma_2 machinery, gadget reductions, the Quantum Simulation Theorem
  and the closed-form bounds of Theorems 3.6/3.8.
- :mod:`repro.algorithms` -- the upper-bound distributed algorithms the paper
  cites (MST, approximate MST, shortest paths, verification problems,
  distributed Disjointness).
"""

__version__ = "1.0.0"

from repro.core.bounds import optimization_lower_bound, verification_lower_bound

__all__ = [
    "__version__",
    "verification_lower_bound",
    "optimization_lower_bound",
]
