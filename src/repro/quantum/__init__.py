"""Quantum computation substrate.

A dense statevector simulator with the phenomena the paper relies on:
entanglement (EPR pairs, GHZ states), teleportation (the Lemma 3.2 and
Theorem 3.5 proofs replace qubits with 2 classical bits + entanglement),
superdense coding, quantum fingerprinting (Equality), Grover search (the
[AA05]-style Disjointness speedup of Example 1.1) and the Holevo bound
(why entanglement alone cannot replace communication, Section 1).
"""

from repro.quantum.entanglement import bell_state, entanglement_entropy, ghz_state
from repro.quantum.fingerprint import FingerprintEquality
from repro.quantum.gates import CNOT, CZ, HADAMARD, PAULI_X, PAULI_Y, PAULI_Z, SWAP, controlled, rotation_y
from repro.quantum.grover import grover_search, optimal_grover_iterations
from repro.quantum.holevo import holevo_bound, von_neumann_entropy
from repro.quantum.state import QuantumState
from repro.quantum.superdense import superdense_decode, superdense_encode, superdense_send
from repro.quantum.teleportation import teleport

__all__ = [
    "QuantumState",
    "HADAMARD",
    "PAULI_X",
    "PAULI_Y",
    "PAULI_Z",
    "CNOT",
    "CZ",
    "SWAP",
    "controlled",
    "rotation_y",
    "bell_state",
    "ghz_state",
    "entanglement_entropy",
    "teleport",
    "superdense_encode",
    "superdense_decode",
    "superdense_send",
    "FingerprintEquality",
    "grover_search",
    "optimal_grover_iterations",
    "holevo_bound",
    "von_neumann_entropy",
]
