"""Superdense coding: 2 classical bits through 1 qubit plus an EPR pair.

The converse of teleportation; together they make ``1 qubit + 1 EPR pair``
and ``2 classical bits + 1 EPR pair`` interchangeable resources, which is the
accounting identity behind the paper's channel conversions.
"""

from __future__ import annotations

import random

from repro.quantum.entanglement import bell_state
from repro.quantum.gates import CNOT, HADAMARD, PAULI_X, PAULI_Z
from repro.quantum.state import QuantumState


def superdense_encode(bits: tuple[int, int]) -> QuantumState:
    """Alice encodes two classical bits into her half of an EPR pair.

    Returns the full 2-qubit state after Alice's local operation (qubit 0 is
    the qubit she will send to Bob).
    """
    b0, b1 = bits
    if b0 not in (0, 1) or b1 not in (0, 1):
        raise ValueError("bits must be 0/1")
    state = bell_state(0)
    if b1 == 1:
        state.apply(PAULI_X, [0])
    if b0 == 1:
        state.apply(PAULI_Z, [0])
    return state


def superdense_decode(state: QuantumState, rng: random.Random | None = None) -> tuple[int, int]:
    """Bob's Bell-basis measurement recovering the two bits (deterministic)."""
    if state.n_qubits != 2:
        raise ValueError("superdense decoding expects 2 qubits")
    state = state.copy()
    state.apply(CNOT, [0, 1])
    state.apply(HADAMARD, [0])
    return state.measure([0, 1], rng=rng)  # type: ignore[return-value]


def superdense_send(bits: tuple[int, int], rng: random.Random | None = None) -> tuple[int, int]:
    """End-to-end superdense coding of two bits; returns Bob's decoded bits."""
    return superdense_decode(superdense_encode(bits), rng=rng)
