"""Grover search.

The quantum protocol of [AA05]/[BCW98] behind Example 1.1 searches for an
index ``i`` with ``x_i AND y_i = 1`` using ``O(sqrt(b))`` oracle queries.
This module provides an exact statevector implementation whose query count is
tracked, so the distributed Disjointness protocol can charge network rounds
per query.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Sequence

import numpy as np

from repro.quantum.gates import HADAMARD
from repro.quantum.state import QuantumState


def optimal_grover_iterations(n_items: int, n_marked: int = 1) -> int:
    """The optimal iteration count ``~ (pi/4) sqrt(N/k)``."""
    if n_items < 1:
        raise ValueError("need at least one item")
    if n_marked < 1 or n_marked > n_items:
        raise ValueError("marked count out of range")
    theta = math.asin(math.sqrt(n_marked / n_items))
    return max(0, round(math.pi / (4 * theta) - 0.5))


def grover_search(
    oracle: Callable[[int], bool],
    n_items: int,
    n_marked: int | None = None,
    rng: random.Random | None = None,
) -> tuple[int, int]:
    """Run Grover search over ``0..n_items-1``.

    Returns ``(measured_index, n_oracle_queries)``.  Each Grover iteration
    makes one oracle query; ``n_oracle_queries`` is the number charged to the
    communication accounting in the distributed protocol.

    ``n_marked`` tunes the iteration count; if unknown, callers should use
    the exponential-guessing loop in :func:`grover_find_any`.
    """
    rng = rng or random
    n_qubits = max(1, math.ceil(math.log2(n_items)))
    dim = 1 << n_qubits

    marked = np.array([1.0 if (i < n_items and oracle(i)) else 0.0 for i in range(dim)])
    k = int(marked.sum())
    if n_marked is None:
        n_marked = max(1, k)
    iterations = optimal_grover_iterations(dim, n_marked)

    state = QuantumState(n_qubits)
    for q in range(n_qubits):
        state.apply(HADAMARD, [q])

    sign = 1.0 - 2.0 * marked  # oracle phase flip
    uniform = np.full(dim, 1.0 / math.sqrt(dim))
    vec = state.vector
    for _ in range(iterations):
        vec = vec * sign
        vec = 2.0 * uniform * (uniform @ vec) - vec
    norm = np.linalg.norm(vec)
    state = QuantumState(n_qubits, vec / norm)
    outcome = state.measure(list(range(n_qubits)), rng=rng)
    index = 0
    for bit in outcome:
        index = (index << 1) | bit
    return index, iterations


def grover_find_any(
    oracle: Callable[[int], bool],
    n_items: int,
    rng: random.Random | None = None,
    max_rounds: int | None = None,
) -> tuple[int | None, int]:
    """Find any marked item with unknown mark count (exponential guessing).

    Standard Boyer-Brassard-Hoyer-Tapp loop: try guesses ``k = 1, 2, 4, ...``
    for the number of marked items; verify each measurement classically with
    one extra query.  Returns ``(index or None, total_oracle_queries)``; total
    queries stay ``O(sqrt(n_items))`` in expectation.
    """
    rng = rng or random
    total_queries = 0
    guess = 1
    rounds = 0
    limit = max_rounds if max_rounds is not None else math.ceil(math.log2(n_items)) + 2
    while rounds < limit:
        index, queries = grover_search(oracle, n_items, n_marked=guess, rng=rng)
        total_queries += queries + 1  # +1 classical verification query
        if index < n_items and oracle(index):
            return index, total_queries
        guess = min(2 * guess, n_items)
        rounds += 1
    return None, total_queries


def search_success_probability(n_items: int, n_marked: int, iterations: int) -> float:
    """Closed-form success probability ``sin^2((2t+1) theta)``."""
    theta = math.asin(math.sqrt(n_marked / n_items))
    return math.sin((2 * iterations + 1) * theta) ** 2
