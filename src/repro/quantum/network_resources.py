"""Shared entanglement as a network resource (Appendix A.1).

The paper's strongest model lets nodes pre-share an arbitrary
input-independent n-partite entangled state.  This module provides the
bookkeeping for that resource on top of the CONGEST simulator:

- an :class:`EntanglementRegistry` dispensing EPR pairs between node pairs
  (input-independent, hence free -- exactly the Server model's dispensing
  rule and footnote 2's "shared randomness for free");
- :func:`teleport_over_edge`, converting one registered EPR pair plus two
  classical bits into one transmitted qubit -- the exchange rate used
  throughout Lemma 3.2 and Theorem 3.5;
- consumption accounting, so experiments can report how much entanglement a
  protocol burned.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Hashable

from repro.quantum.state import QuantumState
from repro.quantum.teleportation import CLASSICAL_BITS_PER_QUBIT, teleport


@dataclass
class EntanglementRegistry:
    """Pre-shared EPR pairs between node pairs, dispensed before the input
    arrives (so dispensing is free; only *consumption* is tracked)."""

    dispensed: dict[frozenset, int] = field(default_factory=lambda: defaultdict(int))
    consumed: dict[frozenset, int] = field(default_factory=lambda: defaultdict(int))

    def dispense(self, u: Hashable, v: Hashable, pairs: int = 1) -> None:
        if pairs < 1:
            raise ValueError("dispense at least one pair")
        if u == v:
            raise ValueError("entanglement is shared between distinct nodes")
        self.dispensed[frozenset((u, v))] += pairs

    def available(self, u: Hashable, v: Hashable) -> int:
        key = frozenset((u, v))
        return self.dispensed[key] - self.consumed[key]

    def consume(self, u: Hashable, v: Hashable, pairs: int = 1) -> None:
        if self.available(u, v) < pairs:
            raise RuntimeError(
                f"insufficient entanglement between {u!r} and {v!r}: "
                f"{self.available(u, v)} < {pairs}"
            )
        self.consumed[frozenset((u, v))] += pairs

    @property
    def total_consumed(self) -> int:
        return sum(self.consumed.values())


@dataclass
class TeleportationOutcome:
    state: QuantumState
    classical_bits: tuple[int, int]
    classical_cost: int


def teleport_over_edge(
    registry: EntanglementRegistry,
    sender: Hashable,
    receiver: Hashable,
    qubit: QuantumState,
    rng: random.Random | None = None,
) -> TeleportationOutcome:
    """Send one qubit using one registered EPR pair + 2 classical bits.

    This is the resource conversion the paper's proofs apply: a quantum
    channel of ``B`` qubits per round is interchangeable with ``2B``
    classical bits per round given pre-shared entanglement.  The statevector
    teleportation actually runs, so fidelity is exact.
    """
    registry.consume(sender, receiver, 1)
    received, bits = teleport(qubit, rng=rng)
    return TeleportationOutcome(
        state=received,
        classical_bits=bits,
        classical_cost=CLASSICAL_BITS_PER_QUBIT,
    )


def qubits_to_classical_bits(n_qubits: int) -> int:
    """The Lemma 3.2 exchange rate: ``T`` qubits -> ``2T`` classical bits
    (plus ``T`` consumed EPR pairs)."""
    if n_qubits < 0:
        raise ValueError("qubit count must be nonnegative")
    return CLASSICAL_BITS_PER_QUBIT * n_qubits
