"""Holevo bound [Hol73].

Section 1 of the paper: "entanglement cannot be used to replace
communication (by, e.g., Holevo's theorem)" -- this is why the limited-sight
argument for local problems survives quantumly.  We implement the bound

    chi({p_i, rho_i}) = S(rho) - sum_i p_i S(rho_i),    rho = sum_i p_i rho_i

which caps the mutual information extractable from ``n`` qubits at ``n`` bits.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def von_neumann_entropy(rho: np.ndarray) -> float:
    """``S(rho) = -Tr(rho log2 rho)`` in bits."""
    rho = np.asarray(rho, dtype=complex)
    if rho.shape[0] != rho.shape[1]:
        raise ValueError("density matrix must be square")
    eigenvalues = np.linalg.eigvalsh(rho)
    entropy = 0.0
    for lam in eigenvalues:
        lam = float(lam.real)
        if lam > 1e-12:
            entropy -= lam * math.log2(lam)
    return entropy


def holevo_bound(probabilities: Sequence[float], states: Sequence[np.ndarray]) -> float:
    """The Holevo quantity ``chi`` of an ensemble of density matrices.

    Always at most ``log2(dim)``: ``n`` qubits carry at most ``n`` bits of
    accessible information, no matter how much entanglement is shared.
    """
    if len(probabilities) != len(states):
        raise ValueError("need one probability per state")
    if not math.isclose(sum(probabilities), 1.0, abs_tol=1e-9):
        raise ValueError("probabilities must sum to 1")
    average = sum(p * np.asarray(rho, dtype=complex) for p, rho in zip(probabilities, states))
    chi = von_neumann_entropy(average)
    for p, rho in zip(probabilities, states):
        if p > 0:
            chi -= p * von_neumann_entropy(np.asarray(rho, dtype=complex))
    return max(0.0, chi)


def accessible_information_cap(n_qubits: int) -> float:
    """Upper bound on classical information carried by ``n`` qubits (bits)."""
    return float(n_qubits)
