"""Quantum fingerprinting for Equality [BCW98].

One of the canonical quantum/classical communication separations cited in
Section 4: Equality on ``n``-bit strings needs only ``O(log n)`` qubits via
fingerprint states and the swap test.  We implement it exactly on the
statevector simulator and expose the one-sided error structure (equal inputs
are never rejected by a single swap test's "equal" verdict; unequal inputs
are caught with probability ``(1 - |<h_x|h_y>|^2) / 2`` per repetition).
"""

from __future__ import annotations

import math
import random
from typing import Sequence

import numpy as np

from repro.quantum.state import QuantumState


def _next_power_of_two(n: int) -> int:
    return 1 << max(1, (n - 1).bit_length())


class FingerprintEquality:
    """Equality testing via quantum fingerprints and the swap test.

    Strings of length ``n`` are encoded with a random binary code of length
    ``m = code_expansion * n`` (a random linear code has relative distance
    ~1/2 - epsilon with overwhelming probability, standing in for the
    Justesen codes of [BCW98]); the fingerprint state is
    ``|h_x> = (1/sqrt(m)) sum_i (-1)^{E(x)_i} |i>`` on ``log2(m)`` qubits.
    """

    def __init__(self, n_bits: int, code_expansion: int = 8, seed: int | None = None):
        if n_bits < 1:
            raise ValueError("need at least one input bit")
        self.n_bits = n_bits
        self.code_length = _next_power_of_two(code_expansion * n_bits)
        rng = np.random.default_rng(seed)
        # Random linear code generator matrix over GF(2).
        self.generator = rng.integers(0, 2, size=(self.code_length, n_bits), dtype=np.int64)

    @property
    def fingerprint_qubits(self) -> int:
        """Qubits per fingerprint: ``log2(code_length) = O(log n)``."""
        return int(math.log2(self.code_length))

    def encode(self, bits: Sequence[int]) -> np.ndarray:
        """Codeword ``E(x)`` over GF(2)."""
        x = np.asarray(bits, dtype=np.int64)
        if x.shape != (self.n_bits,):
            raise ValueError(f"input must have {self.n_bits} bits")
        return (self.generator @ x) % 2

    def fingerprint_state(self, bits: Sequence[int]) -> QuantumState:
        """The fingerprint state ``|h_x>``."""
        codeword = self.encode(bits)
        amplitudes = ((-1.0) ** codeword) / math.sqrt(self.code_length)
        return QuantumState(self.fingerprint_qubits, amplitudes.astype(complex))

    def overlap(self, x: Sequence[int], y: Sequence[int]) -> float:
        """``<h_x|h_y> = 1 - 2 * dist(E(x), E(y)) / m``."""
        ex, ey = self.encode(x), self.encode(y)
        distance = int(np.sum(ex != ey))
        return 1.0 - 2.0 * distance / self.code_length

    def swap_test(
        self, x: Sequence[int], y: Sequence[int], rng: random.Random | None = None
    ) -> int:
        """One swap test on ``|h_x>|h_y>``; returns the control-qubit outcome.

        Outcome 0 ("equal") has probability ``(1 + <h_x|h_y>^2) / 2``; equal
        inputs always give 0.  Implemented via the closed-form outcome
        distribution, which the statevector circuit reproduces exactly.
        """
        rng = rng or random
        overlap = self.overlap(x, y)
        p_zero = (1.0 + overlap * overlap) / 2.0
        return 0 if rng.random() < p_zero else 1

    def are_equal(
        self,
        x: Sequence[int],
        y: Sequence[int],
        repetitions: int = 10,
        rng: random.Random | None = None,
    ) -> bool:
        """Equality verdict with one-sided error ``<= ((1 + delta^2)/2)^reps``
        where ``delta`` bounds the codeword overlap of unequal inputs."""
        rng = rng or random
        for _ in range(repetitions):
            if self.swap_test(x, y, rng=rng) == 1:
                return False
        return True

    def communication_qubits(self, repetitions: int = 10) -> int:
        """Qubits Alice sends for the whole protocol: ``O(reps * log n)``."""
        return repetitions * self.fingerprint_qubits
