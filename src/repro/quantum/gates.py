"""Standard gate library (unitary matrices as numpy arrays)."""

from __future__ import annotations

import math

import numpy as np

_SQRT2 = math.sqrt(2.0)

IDENTITY = np.eye(2, dtype=complex)
PAULI_X = np.array([[0, 1], [1, 0]], dtype=complex)
PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=complex)
HADAMARD = np.array([[1, 1], [1, -1]], dtype=complex) / _SQRT2
S_GATE = np.array([[1, 0], [0, 1j]], dtype=complex)
T_GATE = np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex)

CNOT = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
)
CZ = np.diag([1, 1, 1, -1]).astype(complex)
SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)


def rotation_x(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def rotation_y(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rotation_z(theta: float) -> np.ndarray:
    return np.array(
        [[np.exp(-1j * theta / 2), 0], [0, np.exp(1j * theta / 2)]], dtype=complex
    )


def phase(theta: float) -> np.ndarray:
    return np.array([[1, 0], [0, np.exp(1j * theta)]], dtype=complex)


def controlled(gate: np.ndarray) -> np.ndarray:
    """The controlled version of a ``2^k``-dimensional unitary."""
    gate = np.asarray(gate, dtype=complex)
    d = gate.shape[0]
    result = np.eye(2 * d, dtype=complex)
    result[d:, d:] = gate
    return result


def is_unitary(matrix: np.ndarray, tol: float = 1e-9) -> bool:
    matrix = np.asarray(matrix)
    d = matrix.shape[0]
    return bool(np.allclose(matrix @ matrix.conj().T, np.eye(d), atol=tol))
