"""Quantum teleportation [NC04].

Teleportation underpins two steps of the paper: Lemma 3.2 assumes Carol and
David send *2 classical bits* per qubit to the server (the server dispenses
the entanglement for free), and the Quantum Simulation Theorem's accounting
treats qubit channels and (classical + EPR) channels interchangeably.

This module implements the protocol end-to-end on the statevector simulator
and exposes the classical-bit cost explicitly.
"""

from __future__ import annotations

import random

import numpy as np

from repro.quantum.gates import CNOT, HADAMARD, PAULI_X, PAULI_Z
from repro.quantum.state import QuantumState

#: Classical bits sent per teleported qubit.
CLASSICAL_BITS_PER_QUBIT = 2


def teleport(
    message: QuantumState, rng: random.Random | None = None
) -> tuple[QuantumState, tuple[int, int]]:
    """Teleport a single-qubit state from Alice to Bob.

    Builds the 3-qubit system (message, Alice's EPR half, Bob's EPR half),
    runs the textbook circuit, and returns Bob's received qubit together with
    the two classical bits Alice transmitted.

    The returned state always has fidelity 1 with the input (tested as a
    property over random states).
    """
    if message.n_qubits != 1:
        raise ValueError("teleport expects a single-qubit message")
    rng = rng or random

    # Qubits: 0 = message, 1 = Alice's EPR half, 2 = Bob's EPR half.
    system = message.tensor(QuantumState(2))
    system.apply(HADAMARD, [1])
    system.apply(CNOT, [1, 2])

    # Alice's Bell measurement on (0, 1).
    system.apply(CNOT, [0, 1])
    system.apply(HADAMARD, [0])
    m0, m1 = system.measure([0, 1], rng=rng)

    # Bob's corrections conditioned on the 2 classical bits.
    if m1 == 1:
        system.apply(PAULI_X, [2])
    if m0 == 1:
        system.apply(PAULI_Z, [2])

    # Extract Bob's qubit: measured qubits are in a definite basis state, so
    # the remaining qubit's state is the appropriate slice.
    tensor = system.vector.reshape(2, 2, 2)
    bob_vector = tensor[m0, m1, :]
    bob_vector = bob_vector / np.linalg.norm(bob_vector)
    return QuantumState(1, bob_vector), (m0, m1)


def teleportation_cost(n_qubits: int) -> int:
    """Classical bits needed to teleport ``n`` qubits (2 per qubit).

    This is the replacement rule used in the proof of Lemma 3.2: a ``T``-qubit
    server-model protocol becomes a ``2T``-classical-bit protocol.
    """
    if n_qubits < 0:
        raise ValueError("qubit count must be nonnegative")
    return CLASSICAL_BITS_PER_QUBIT * n_qubits
