"""Entangled resource states: EPR pairs, GHZ states, entanglement measures.

The paper's model allows arbitrary input-independent n-partite entanglement
(Section 2.1).  These constructors provide the canonical resource states and
the entropy measure used to certify entanglement in tests.
"""

from __future__ import annotations

import math

import numpy as np

from repro.quantum.gates import CNOT, HADAMARD
from repro.quantum.state import QuantumState


def bell_state(which: int = 0) -> QuantumState:
    """One of the four Bell states; ``which = 0`` is the EPR pair
    ``(|00> + |11>) / sqrt(2)`` [EPR35, Bel64]."""
    if which not in range(4):
        raise ValueError("which must be in 0..3")
    state = QuantumState(2)
    if which in (1, 3):  # |01> or |11> seed
        state = QuantumState.from_bits([0, 1])
    state.apply(HADAMARD, [0])
    state.apply(CNOT, [0, 1])
    if which >= 2:  # phase flip
        from repro.quantum.gates import PAULI_Z

        state.apply(PAULI_Z, [0])
    return state


def ghz_state(n: int) -> QuantumState:
    """The n-party GHZ state ``(|0...0> + |1...1>) / sqrt(2)``."""
    if n < 2:
        raise ValueError("GHZ needs at least 2 qubits")
    state = QuantumState(n)
    state.apply(HADAMARD, [0])
    for q in range(1, n):
        state.apply(CNOT, [0, q])
    return state


def shared_random_bit(n_parties: int, rng=None) -> tuple[int, ...]:
    """Generate one shared random bit among ``n`` parties by measuring GHZ.

    Footnote 2 of the paper: an EPR pair (GHZ state for many parties), when
    measured, yields the same uniformly random bit at every party -- shared
    entanglement subsumes shared randomness.
    """
    state = ghz_state(max(2, n_parties))
    outcome = state.measure(list(range(max(2, n_parties))), rng=rng)
    return outcome[:n_parties]


def entanglement_entropy(state: QuantumState, subsystem: list[int]) -> float:
    """Entanglement entropy of a bipartition (von Neumann entropy of the
    reduced state), in bits.  Zero iff the pure state is a product state
    across the cut."""
    rho = state.density_matrix(subsystem)
    eigenvalues = np.linalg.eigvalsh(rho)
    entropy = 0.0
    for lam in eigenvalues:
        if lam > 1e-12:
            entropy -= float(lam) * math.log2(float(lam))
    return entropy


def is_product_state(state: QuantumState, subsystem: list[int], tol: float = 1e-9) -> bool:
    """Whether the state factorises across the given bipartition."""
    return entanglement_entropy(state, subsystem) < tol
