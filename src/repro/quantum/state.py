"""Dense statevector simulator.

Qubits are indexed ``0..n-1``; qubit 0 is the most significant bit of the
computational-basis index (big-endian), so ``|q0 q1 ... q_{n-1}>`` has index
``q0 * 2^{n-1} + ... + q_{n-1}``.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Sequence

import numpy as np


class QuantumState:
    """An ``n``-qubit pure state with gate application and measurement."""

    def __init__(self, n_qubits: int, vector: np.ndarray | None = None):
        if n_qubits < 1:
            raise ValueError("need at least one qubit")
        self.n_qubits = n_qubits
        dim = 1 << n_qubits
        if vector is None:
            self.vector = np.zeros(dim, dtype=complex)
            self.vector[0] = 1.0
        else:
            vector = np.asarray(vector, dtype=complex)
            if vector.shape != (dim,):
                raise ValueError(f"vector must have shape ({dim},)")
            norm = np.linalg.norm(vector)
            if not math.isclose(norm, 1.0, rel_tol=0, abs_tol=1e-9):
                raise ValueError("state vector must be normalised")
            self.vector = vector.copy()

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "QuantumState":
        """Computational-basis state ``|b0 b1 ... >``."""
        n = len(bits)
        index = 0
        for b in bits:
            if b not in (0, 1):
                raise ValueError("bits must be 0 or 1")
            index = (index << 1) | b
        state = cls(n)
        state.vector[0] = 0.0
        state.vector[index] = 1.0
        return state

    def copy(self) -> "QuantumState":
        return QuantumState(self.n_qubits, self.vector)

    # -- gate application ---------------------------------------------------

    def apply(self, gate: np.ndarray, qubits: Sequence[int]) -> "QuantumState":
        """Apply a ``2^k x 2^k`` unitary to the listed qubits, in place."""
        qubits = list(qubits)
        k = len(qubits)
        gate = np.asarray(gate, dtype=complex)
        if gate.shape != (1 << k, 1 << k):
            raise ValueError("gate dimension does not match qubit count")
        if len(set(qubits)) != k:
            raise ValueError("duplicate qubit indices")
        if any(q < 0 or q >= self.n_qubits for q in qubits):
            raise ValueError("qubit index out of range")
        # Reshape into a rank-n tensor and contract on the target axes.
        tensor = self.vector.reshape([2] * self.n_qubits)
        gate_tensor = gate.reshape([2] * (2 * k))
        tensor = np.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), qubits))
        # tensordot puts contracted axes first: move them back into place.
        rest = [q for q in range(self.n_qubits) if q not in qubits]
        perm = [0] * self.n_qubits
        for out_pos, q in enumerate(qubits + rest):
            perm[q] = out_pos
        tensor = tensor.transpose(perm)
        self.vector = tensor.reshape(-1)
        return self

    # -- measurement --------------------------------------------------------

    def probabilities(self, qubits: Sequence[int] | None = None) -> np.ndarray:
        """Outcome distribution over the listed qubits (all, by default)."""
        probs = np.abs(self.vector) ** 2
        if qubits is None:
            return probs
        qubits = list(qubits)
        tensor = probs.reshape([2] * self.n_qubits)
        other = tuple(q for q in range(self.n_qubits) if q not in qubits)
        marginal = tensor.sum(axis=other) if other else tensor
        # marginal axes are currently ordered by qubit index; reorder to the
        # requested order.
        current = sorted(qubits)
        perm = [current.index(q) for q in qubits]
        return marginal.transpose(perm).reshape(-1)

    def measure(self, qubits: Sequence[int], rng: random.Random | None = None) -> tuple[int, ...]:
        """Projective measurement of the listed qubits; collapses the state."""
        rng = rng or random
        qubits = list(qubits)
        probs = self.probabilities(qubits)
        outcome_index = rng.choices(range(len(probs)), weights=probs.tolist())[0]
        outcome = tuple((outcome_index >> (len(qubits) - 1 - i)) & 1 for i in range(len(qubits)))
        self._collapse(qubits, outcome)
        return outcome

    def _collapse(self, qubits: Sequence[int], outcome: Sequence[int]) -> None:
        tensor = self.vector.reshape([2] * self.n_qubits)
        index: list[slice | int] = [slice(None)] * self.n_qubits
        keep = tensor.copy()
        for q, bit in zip(qubits, outcome):
            index[q] = 1 - bit
            keep[tuple(index)] = 0.0
            index[q] = slice(None)
        norm = np.linalg.norm(keep)
        if norm < 1e-12:
            raise ValueError("measurement outcome has zero probability")
        self.vector = (keep / norm).reshape(-1)

    # -- analysis -----------------------------------------------------------

    def density_matrix(self, qubits: Sequence[int] | None = None) -> np.ndarray:
        """Reduced density matrix on the listed qubits (partial trace)."""
        if qubits is None:
            return np.outer(self.vector, self.vector.conj())
        qubits = list(qubits)
        other = [q for q in range(self.n_qubits) if q not in qubits]
        tensor = self.vector.reshape([2] * self.n_qubits)
        tensor = tensor.transpose(qubits + other)
        mat = tensor.reshape(1 << len(qubits), 1 << len(other))
        return mat @ mat.conj().T

    def fidelity(self, other: "QuantumState") -> float:
        """``|<psi|phi>|^2`` between two pure states."""
        if other.n_qubits != self.n_qubits:
            raise ValueError("states have different sizes")
        return float(abs(np.vdot(self.vector, other.vector)) ** 2)

    def tensor(self, other: "QuantumState") -> "QuantumState":
        """The joint state ``self (x) other`` on ``n + m`` qubits."""
        return QuantumState(self.n_qubits + other.n_qubits, np.kron(self.vector, other.vector))

    def amplitude(self, bits: Iterable[int]) -> complex:
        """Amplitude of a computational-basis state."""
        index = 0
        for b in bits:
            index = (index << 1) | b
        return complex(self.vector[index])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QuantumState(n_qubits={self.n_qubits})"
