"""Dependency-free telemetry: tracers, JSONL traces, run summaries.

See :mod:`repro.obs.trace` for the tracer API and the trace line schema,
and ``docs/observability.md`` for the workflow (tracing a sweep, reading a
trace, the timeline page and the CI regression gate).
"""

from repro.obs.trace import (
    NULL_TRACER,
    TRACE_DIR_ENV,
    TRACE_SCHEMA,
    CollectingTracer,
    RunMetaCollector,
    Span,
    TeeTracer,
    Tracer,
    TraceWriter,
    current_tracer,
    read_trace,
    summarize_trace,
    task_trace_path,
    trace_dir_from_env,
    trace_files,
    use_tracer,
)

__all__ = [
    "NULL_TRACER",
    "TRACE_DIR_ENV",
    "TRACE_SCHEMA",
    "CollectingTracer",
    "RunMetaCollector",
    "Span",
    "TeeTracer",
    "Tracer",
    "TraceWriter",
    "current_tracer",
    "read_trace",
    "summarize_trace",
    "task_trace_path",
    "trace_dir_from_env",
    "trace_files",
    "use_tracer",
]
