"""The tracer API and JSONL trace format for the telemetry subsystem.

One :class:`Tracer` carries every signal the stack emits -- counters,
gauges, events, spans, per-round engine samples and end-of-run summaries.
The base class is the **no-op null tracer**: every method does nothing and
``enabled`` is ``False``, so hot paths guard their sample construction with
one attribute check and pay nothing when tracing is off (asserted by a
zero-allocation test in ``tests/test_obs.py``).

Concrete tracers:

- :class:`TraceWriter` -- appends one JSON object per line to a file,
  timestamped with a *monotonic* clock relative to the writer's creation
  (wall-clock only appears in the ``meta`` line), thread-safe, sorted keys,
  so two traces of the same run are identical modulo timestamp fields;
- :class:`CollectingTracer` -- in-memory event list for tests and summaries;
- :class:`TeeTracer` -- fan-out to several tracers at once;
- :class:`RunMetaCollector` -- listens only to the once-per-run
  ``run_summary`` call and aggregates engine round/skip/step counts into
  the uniform ``meta`` block every sweep outcome carries.

**Trace line schema** (every line has ``kind``; writers add ``ts``):

==========  =================================================================
kind        fields
==========  =================================================================
``meta``    ``schema``, ``source``, ``unix_time``, ``pid`` + free attrs
``counter`` ``name``, ``value`` (an increment) + free attrs
``gauge``   ``name``, ``value`` (a level) + free attrs
``event``   ``name`` + free attrs
``span``    ``name``, ``dur_s`` + free attrs (emitted when the span closes)
``round``   ``round``, ``active``, ``delivered``, ``moved_bits``,
            ``sent_msgs``, ``sent_bits`` -- one engine round
``skip``    ``after_round``, ``rounds``, ``moved_bits`` -- a quiet stretch
            the event engine jumped in O(1)
``run``     ``engine``, ``rounds``, ``skipped_rounds``, ``node_steps``,
            ``total_bits``, ``total_msgs``, ``halted`` -- one CONGEST run
``task``    ``state`` (queued|cached|leased|running|done|...), ``index`` +
            free attrs -- sweep/backend/worker task lifecycle
==========  =================================================================

The **ambient tracer** (:func:`current_tracer` / :func:`use_tracer`) is how
instrumentation crosses API layers without threading a ``trace=`` argument
through every call: ``CongestNetwork`` defaults its tracer to the ambient
one, and ``execute_point`` installs a writer when the ``REPRO_TRACE_DIR``
environment variable names a directory -- which is also how a sweep's trace
switch reaches pool workers and queue daemons in other processes.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

#: Bumped when the line schema above changes incompatibly.
TRACE_SCHEMA = 1

#: Environment variable naming the directory task/worker traces land in;
#: set by ``python -m repro.experiments run --trace DIR`` and inherited by
#: every worker process the sweep spawns.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"


class _NullSpan:
    """Context manager returned by the null tracer's :meth:`Tracer.span`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Span:
    """A wall-clock span: emits one ``span`` line when the block closes."""

    __slots__ = ("_tracer", "name", "attrs", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._tracer.emit(
            "span", name=self.name, dur_s=time.perf_counter() - self._t0, **self.attrs
        )


class Tracer:
    """The no-op base tracer (and the API every tracer implements).

    ``enabled`` gates the *hot-path* signals only (per-round samples, skip
    events, shard timings): instrumentation checks it before building the
    sample, so the null tracer costs one attribute read per round.  The
    once-per-something calls (``run_summary``, ``task``, ``span``) are
    always safe to make; on the null tracer they do nothing.
    """

    enabled: bool = False

    def emit(self, kind: str, **fields) -> None:
        """Record one trace line of the given kind (no-op here)."""

    def counter(self, name: str, value: float = 1, **attrs) -> None:
        """Record an increment of a named counter."""
        self.emit("counter", name=name, value=value, **attrs)

    def gauge(self, name: str, value: float, **attrs) -> None:
        """Record the current level of a named quantity."""
        self.emit("gauge", name=name, value=value, **attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a point-in-time occurrence."""
        self.emit("event", name=name, **attrs)

    def task(self, state: str, index: int, **attrs) -> None:
        """Record a sweep-task lifecycle transition."""
        self.emit("task", state=state, index=index, **attrs)

    def span(self, name: str, **attrs):
        """A context manager timing a block; emits ``span`` on exit."""
        return _NULL_SPAN

    def run_summary(self, **fields) -> None:
        """Record one CONGEST run's end-of-run metrics (``run`` line).

        Engines call this exactly once per run, *unconditionally* -- it is
        cheap by construction and is how the uniform outcome ``meta`` block
        learns engine round/skip counts even when tracing is off.
        """
        self.emit("run", **fields)

    def close(self) -> None:
        """Release any resources (files); safe to call twice."""


#: The shared null tracer -- the default everywhere tracing is optional.
NULL_TRACER = Tracer()


class CollectingTracer(Tracer):
    """In-memory tracer: appends every line to ``self.events`` (no clock)."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []
        self._lock = threading.Lock()

    def emit(self, kind: str, **fields) -> None:
        """Append the line as a plain dict (thread-safe)."""
        with self._lock:
            self.events.append({"kind": kind, **fields})

    def span(self, name: str, **attrs) -> Span:
        """A real timed span recorded into ``self.events``."""
        return Span(self, name, attrs)

    def by_kind(self, kind: str) -> list[dict[str, Any]]:
        """The collected lines of one kind, in emission order."""
        return [e for e in self.events if e["kind"] == kind]


class RunMetaCollector(Tracer):
    """Aggregates ``run_summary`` calls into the uniform outcome meta block.

    Stays ``enabled = False``: it wants only the once-per-run summaries,
    never the per-round hot-path samples, so installing it ambiently on
    every sweep point adds no measurable cost.
    """

    def __init__(self) -> None:
        self.runs = 0
        self.rounds = 0
        self.skipped_rounds = 0
        self.node_steps = 0
        self.total_bits = 0
        self.engines: list[str] = []

    def run_summary(self, **fields) -> None:
        """Fold one run's metrics into the aggregate."""
        self.runs += 1
        self.rounds += int(fields.get("rounds") or 0)
        self.skipped_rounds += int(fields.get("skipped_rounds") or 0)
        self.node_steps += int(fields.get("node_steps") or 0)
        self.total_bits += int(fields.get("total_bits") or 0)
        engine = fields.get("engine")
        if engine and engine not in self.engines:
            self.engines.append(str(engine))

    def meta(self) -> dict[str, Any]:
        """The uniform ``meta`` block carried by every sweep outcome."""
        return {
            "congest_runs": self.runs,
            "engine_rounds": self.rounds,
            "engine_skipped_rounds": self.skipped_rounds,
            "engine_node_steps": self.node_steps,
            "engine_total_bits": self.total_bits,
            "engines": self.engines,
        }


class TeeTracer(Tracer):
    """Fans every signal out to several child tracers."""

    def __init__(self, *children: Tracer):
        self.children = tuple(children)
        self.enabled = any(c.enabled for c in children)

    def emit(self, kind: str, **fields) -> None:
        """Forward the line to every child."""
        for child in self.children:
            child.emit(kind, **fields)

    def run_summary(self, **fields) -> None:
        """Forward the run summary to every child."""
        for child in self.children:
            child.run_summary(**fields)

    def span(self, name: str, **attrs):
        """One timed span whose close is forwarded to every child."""
        return Span(self, name, attrs) if self.enabled else _NULL_SPAN

    def close(self) -> None:
        """Close every child."""
        for child in self.children:
            child.close()


class TraceWriter(Tracer):
    """JSONL tracer: one JSON object per line, monotonic timestamps.

    The first line is a ``meta`` record carrying the schema version, the
    ``source`` label and the only wall-clock value in the file
    (``unix_time``); every other line's ``ts`` is seconds since the writer
    was created, measured on the monotonic clock, so timestamps never go
    backwards and two traces of the same run differ only in timestamp
    fields.  Writes are locked -- parallel-engine shard threads may emit
    concurrently.
    """

    enabled = True

    def __init__(self, path: str | os.PathLike, source: str = "trace", **meta):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._epoch = time.monotonic()
        self._lock = threading.Lock()
        self._handle = open(self.path, "w", encoding="utf-8")
        self.emit(
            "meta",
            schema=TRACE_SCHEMA,
            source=source,
            unix_time=time.time(),
            pid=os.getpid(),
            **meta,
        )

    def emit(self, kind: str, **fields) -> None:
        """Append one timestamped JSON line (thread-safe)."""
        line = json.dumps(
            {"kind": kind, "ts": round(time.monotonic() - self._epoch, 6), **fields},
            sort_keys=True,
            default=repr,
        )
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")

    def span(self, name: str, **attrs) -> Span:
        """A real timed span written as a ``span`` line on exit."""
        return Span(self, name, attrs)

    def flush(self) -> None:
        """Flush buffered lines to disk."""
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- the ambient tracer --------------------------------------------------------

_ambient: Tracer = NULL_TRACER


def current_tracer() -> Tracer:
    """The ambient tracer (the null tracer unless :func:`use_tracer` is active).

    ``CongestNetwork`` reads this when no explicit ``trace=`` is passed, so
    instrumentation reaches engine internals without every intermediate
    layer (algorithm runners, scenario functions) forwarding a tracer.
    """
    return _ambient


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient tracer for the ``with`` block.

    Process-wide, not thread-local: the intended use is one tracer per
    task *process* (``execute_point``), where it is unambiguous.
    """
    global _ambient
    previous = _ambient
    _ambient = tracer
    try:
        yield tracer
    finally:
        _ambient = previous


def task_trace_path(trace_dir: str | os.PathLike, scenario: str, seed: int) -> Path:
    """Canonical per-task trace filename inside a sweep's trace directory.

    Seeds are sha-derived per sweep point, so the name is unique per point
    and stable across re-runs of the same sweep.
    """
    return Path(trace_dir) / f"task-{scenario}-{seed % 10**12}.jsonl"


def trace_dir_from_env() -> Path | None:
    """The trace directory named by ``REPRO_TRACE_DIR``, if any."""
    value = os.environ.get(TRACE_DIR_ENV)
    return Path(value) if value else None


# -- reading and summarising ---------------------------------------------------


def read_trace(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Parse one JSONL trace file into a list of line dicts.

    Tolerates a truncated final line (a crashed process mid-write) by
    dropping it; any other malformed line raises, since it means the file
    is not a trace.
    """
    events: list[dict[str, Any]] = []
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn tail write from a killed process
            raise
    return events


def trace_files(path: str | os.PathLike) -> list[Path]:
    """Resolve a trace argument: a file itself, or a directory's ``*.jsonl``."""
    p = Path(path)
    if p.is_dir():
        return sorted(p.glob("*.jsonl"))
    return [p] if p.exists() else []


def summarize_trace(events: list[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate one trace's lines into a summary dict.

    The summary is the contract the CLI (``trace summarize``), the tests
    and the timeline page all read: round/skip totals that must match the
    engine's ``RunResult`` metrics exactly, counter totals, span
    statistics and task state tallies.
    """
    rounds = [e for e in events if e["kind"] == "round"]
    skips = [e for e in events if e["kind"] == "skip"]
    runs = [e for e in events if e["kind"] == "run"]
    spans: dict[str, dict[str, float]] = {}
    for e in events:
        if e["kind"] != "span":
            continue
        stat = spans.setdefault(e.get("name", "?"), {"count": 0, "total_s": 0.0})
        stat["count"] += 1
        stat["total_s"] += float(e.get("dur_s", 0.0))
    counters: dict[str, float] = {}
    for e in events:
        if e["kind"] == "counter":
            name = e.get("name", "?")
            counters[name] = counters.get(name, 0) + e.get("value", 1)
    # Gauges are levels, not increments: summarize the range each one
    # moved through (a fleet trace's spool_depth going 500 -> 0 reads as
    # min/max/last, where a counter-style sum would be meaningless).
    gauges: dict[str, dict[str, float]] = {}
    for e in events:
        if e["kind"] != "gauge":
            continue
        name = e.get("name", "?")
        value = float(e.get("value", 0))
        stat = gauges.setdefault(
            name, {"count": 0, "min": value, "max": value, "last": value}
        )
        stat["count"] += 1
        stat["min"] = min(stat["min"], value)
        stat["max"] = max(stat["max"], value)
        stat["last"] = value
    named_events: dict[str, int] = {}
    for e in events:
        if e["kind"] == "event":
            name = e.get("name", "?")
            named_events[name] = named_events.get(name, 0) + 1
    tasks: dict[str, int] = {}
    for e in events:
        if e["kind"] == "task":
            state = e.get("state", "?")
            tasks[state] = tasks.get(state, 0) + 1
    meta = next((e for e in events if e["kind"] == "meta"), {})
    return {
        "source": meta.get("source"),
        "lines": len(events),
        "rounds_sampled": len(rounds),
        "rounds_skipped": sum(int(e.get("rounds", 0)) for e in skips),
        "active_steps": sum(int(e.get("active", 0)) for e in rounds),
        "delivered_messages": sum(int(e.get("delivered", 0)) for e in rounds),
        "sent_messages": sum(int(e.get("sent_msgs", 0)) for e in rounds)
        + sum(int(e.get("sent_msgs", 0)) for e in events if e["kind"] == "event" and e.get("name") == "start"),
        "sent_bits": sum(int(e.get("sent_bits", 0)) for e in rounds)
        + sum(int(e.get("sent_bits", 0)) for e in events if e["kind"] == "event" and e.get("name") == "start"),
        "moved_bits": sum(int(e.get("moved_bits", 0)) for e in rounds)
        + sum(int(e.get("moved_bits", 0)) for e in skips),
        "runs": [
            {k: r.get(k) for k in ("engine", "rounds", "skipped_rounds", "node_steps", "total_bits", "total_msgs", "halted")}
            for r in runs
        ],
        "spans": {k: spans[k] for k in sorted(spans)},
        "counters": {k: counters[k] for k in sorted(counters)},
        "gauges": {k: gauges[k] for k in sorted(gauges)},
        "events": {k: named_events[k] for k in sorted(named_events)},
        "task_states": {k: tasks[k] for k in sorted(tasks)},
    }
