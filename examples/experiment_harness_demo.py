"""Tour of the experiment harness: registry -> sweep -> parallel run -> store.

Run with::

    PYTHONPATH=src python examples/experiment_harness_demo.py

The first run executes every point (2 workers); the second run is served
entirely from the on-disk cache.
"""

import tempfile

from repro.experiments import (
    ParamSpec,
    ResultStore,
    expand_grid,
    get_scenario,
    list_scenarios,
    run_sweep,
    scenario,
)


@scenario(
    "demo-disjointness-scaling",
    description="How the quantum advantage scales with instance size b",
    params=[
        ParamSpec("b", int, 64, "bits per player"),
        ParamSpec("bandwidth", int, 8, "CONGEST bandwidth"),
    ],
    default_grid={"b": [16, 64, 256]},
)
def demo_disjointness_scaling(*, seed, b, bandwidth):
    # Scenarios compose: reuse a built-in registration programmatically.
    builtin = get_scenario("example11-disjointness")
    result = builtin.run(builtin.resolve_params({"b": b, "bandwidth": bandwidth}), seed)
    return {
        "b": b,
        "advantage": result["classical_rounds"] / result["quantum_rounds"],
        **{k: result[k] for k in ("classical_rounds", "quantum_rounds")},
    }


def main() -> None:
    print("== catalog ==")
    for scn in list_scenarios():
        print(f"  {scn.name}: {scn.description}")

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(tmp)
        points = expand_grid(get_scenario("demo-disjointness-scaling"), replicates=2)
        print(f"\n== sweep: {len(points)} points (3 sizes x 2 seeded replicates) ==")
        report = run_sweep(points, store=store, workers=2, progress=print)
        for record in report.records:
            print(f"  b={record.params['b']} rep={record.replicate}: {record.result}")

        rerun = run_sweep(points, store=store, workers=2)
        print(f"\n== re-run: {rerun.cached} cached, {rerun.executed} executed ==")


if __name__ == "__main__":
    main()
