"""Run the full [DHK+12] verification suite distributively on one network.

    python examples/verification_suite.py
"""

import random

import networkx as nx

from repro.algorithms.verification import run_verification
from repro.core.bounds import verification_lower_bound
from repro.graphs.generators import random_connected_graph


def main() -> None:
    n, bandwidth = 20, 64
    graph = random_connected_graph(n, extra_edge_prob=0.25, seed=2)
    rng = random.Random(2)
    for u, v in graph.edges():
        graph.edges[u, v]["weight"] = rng.uniform(1.0, 5.0)
    tree = list(nx.minimum_spanning_tree(graph).edges())
    print(f"network: n = {n}, m = {graph.number_of_edges()}, B = {bandwidth}")
    print(f"subnetwork M: the minimum spanning tree ({len(tree)} edges)\n")

    cases = [
        ("connectivity", tree, {}),
        ("connected spanning subgraph", tree, {}),
        ("spanning tree", tree, {}),
        ("hamiltonian cycle", tree, {}),
        ("cycle containment", tree, {}),
        ("bipartiteness", tree, {}),
        ("simple path", tree, {}),
        ("s-t connectivity", tree, {"s": 0, "t": n - 1}),
        ("cut", list(graph.edges()), {}),
        ("s-t cut", list(graph.edges()), {"s": 0, "t": n - 1}),
        ("e-cycle containment", tree, {"special_edge": tree[0]}),
        ("edge on all paths", tree, {"s": 0, "t": n - 1, "special_edge": tree[0]}),
    ]
    print(f"{'problem':30s} {'verdict':>8s} {'rounds':>7s} {'bits':>9s}")
    for problem, m, kwargs in cases:
        verdict, result = run_verification(problem, graph, m, bandwidth=bandwidth, **kwargs)
        print(f"{problem:30s} {str(verdict):>8s} {result.rounds:7d} {result.total_bits:9d}")

    print(f"\nTheorem 3.6 quantum lower bound at this (n, B): "
          f"{verification_lower_bound(n, bandwidth):.2f} rounds")


if __name__ == "__main__":
    main()
