"""End-to-end HTML report demo: tiny sweep -> result store -> static site.

Run with::

    PYTHONPATH=src python examples/html_report_demo.py [OUT_DIR]

Runs two small sweeps (the Fig. 2 bound table and the CHSH solver), then
renders the report site -- one self-contained page per scenario with
inline-SVG plots plus a cross-scenario index -- into OUT_DIR (default:
a temporary directory) and prints the index path.  Any ``BENCH_*.json``
artifacts in the working directory are charted on the index page.
"""

import sys
import tempfile
from pathlib import Path

from repro.experiments import ResultStore, expand_grid, get_scenario, run_sweep
from repro.experiments.reporting import build_site


def main(out_dir: str | None = None) -> Path:
    out = Path(out_dir) if out_dir else Path(tempfile.mkdtemp(prefix="report-demo-"))
    store = ResultStore(out / "store")

    for name, grid in (
        ("fig2-bound-table", {"n": [1_000, 10_000, 100_000]}),
        ("chsh-gamma2", {"restarts": [1, 2, 4], "iterations": [80]}),
    ):
        scenario = get_scenario(name)
        points = expand_grid(scenario, grid)
        report = run_sweep(points, store=store, progress=print)
        print(f"{name}: {report.executed} executed, {report.cached} cached\n")

    index = build_site(
        store,
        out / "site",
        bench_paths=sorted(Path(".").glob("BENCH_*.json")),
    )
    pages = sorted(p.name for p in index.parent.glob("*.html"))
    print(f"report site: {index}")
    print(f"pages: {', '.join(pages)}")
    return index


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
