"""Example 1.1 live: when quantum communication *does* help.

Two far-apart nodes hold b-bit strings; deciding Set Disjointness classically
costs ~ b/B rounds, but the Grover protocol of [BCW98, AA05] does it in
~ 2 D sqrt(b) round trips -- the counterexample that forces the paper to
replace Disjointness with IPmod3 in its hardness pipeline.

    python examples/quantum_advantage_disjointness.py
"""

import random

import networkx as nx

from repro.algorithms.disjointness import (
    run_classical_disjointness,
    run_quantum_disjointness,
)
from repro.congest.topology import dumbbell_graph


def main() -> None:
    graph = dumbbell_graph(3, 4)
    u, v = ("L", 1), ("R", 1)
    dist = nx.shortest_path_length(graph, u, v)
    print(f"network: dumbbell, {graph.number_of_nodes()} nodes, dist(u, v) = {dist}, B = 8")
    print(f"{'b':>6s} {'classical rounds':>17s} {'quantum rounds':>15s} {'queries':>8s} {'verdicts':>9s}")

    rng = random.Random(0)
    for b in (16, 64, 256, 1024):
        x = tuple(rng.randrange(2) for _ in range(b))
        y = tuple(0 if a else rng.randrange(2) for a in x)  # disjoint
        c_verdict, c_run = run_classical_disjointness(graph, u, v, x, y, bandwidth=8)
        q_verdict, q_run, queries = run_quantum_disjointness(graph, u, v, x, y, bandwidth=8, seed=b)
        print(
            f"{b:6d} {c_run.rounds:17d} {q_run.rounds:15d} {queries:8d} "
            f"{str(c_verdict) + '/' + str(q_verdict):>9s}"
        )

    print("\nclassical rounds grow ~ b/B (linear); quantum ~ 2 D sqrt(b).")
    print("For global problems like MST the paper proves no such trick exists.")


if __name__ == "__main__":
    main()
