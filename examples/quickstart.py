"""Quickstart: run a distributed MST on the CONGEST simulator and compare
the measured rounds with the paper's quantum lower bound.

    python examples/quickstart.py
"""

import random

import networkx as nx

from repro.algorithms.mst import run_gkp_mst, tree_weight
from repro.core.bounds import optimization_lower_bound, verification_lower_bound
from repro.graphs.generators import random_connected_graph


def main() -> None:
    n, bandwidth = 48, 64
    graph = random_connected_graph(n, extra_edge_prob=0.12, seed=1)
    rng = random.Random(1)
    for u, v in graph.edges():
        graph.edges[u, v]["weight"] = rng.uniform(1.0, 20.0)

    print(f"network: n = {n}, m = {graph.number_of_edges()}, "
          f"diameter = {nx.diameter(graph)}, B = {bandwidth}")

    edges, result = run_gkp_mst(graph, bandwidth=bandwidth)
    exact = sum(d["weight"] for _, _, d in nx.minimum_spanning_tree(graph).edges(data=True))
    print(f"\ndistributed GKP MST: {len(edges)} edges, weight = {tree_weight(graph, edges):.2f}")
    print(f"networkx reference weight:          {exact:.2f}")
    print(f"measured rounds: {result.rounds}, total bits: {result.total_bits}")

    lb_opt = optimization_lower_bound(n, bandwidth, aspect_ratio=20.0, alpha=1.0)
    lb_ver = verification_lower_bound(n, bandwidth)
    print(f"\nTheorem 3.8 lower bound (any quantum algorithm!): {lb_opt:.2f} rounds")
    print(f"Theorem 3.6 verification lower bound:             {lb_ver:.2f} rounds")
    print("\nThe paper's message: even with quantum links and arbitrary")
    print("entanglement, no algorithm beats Omega~(sqrt(n)) -- so the")
    print("classical upper bound above is already optimal up to polylogs.")


if __name__ == "__main__":
    main()
