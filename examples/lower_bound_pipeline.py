"""The paper's full lower-bound pipeline on concrete instances.

Walks Figure 1 left to right: a nonlocal game simulates a Server-model
protocol (Lemma 3.2); IPmod3 hardness transfers to Hamiltonian-cycle
verification through the Section 7 gadgets (Theorem 3.4); the Quantum
Simulation Theorem carries it onto a distributed network (Theorem 3.5);
and the Theorem 3.6/3.8 numbers drop out.

    python examples/lower_bound_pipeline.py
"""

import math
import random

from repro.core.approx_degree import approx_degree, mod3_function
from repro.core.bounds import optimization_lower_bound, verification_lower_bound
from repro.core.gadgets import ipmod3_to_ham, ipmod3_value
from repro.core.nonlocal_games import chsh_game
from repro.core.simulation_theorem import SimulationTheoremNetwork, theorem_parameters
from repro.graphs.generators import matching_pair_for_cycles


def main() -> None:
    print("=" * 72)
    print("Stage 1 -- nonlocal games (Section 6)")
    print("=" * 72)
    game = chsh_game()
    print(f"CHSH classical bias {game.classical_bias():.4f} vs quantum "
          f"{game.quantum_bias(seed=0):.4f} (Tsirelson: {1 / math.sqrt(2):.4f})")
    degrees = {n: approx_degree(mod3_function(n)) for n in (6, 12)}
    print(f"deg_1/3(MOD3): {degrees} -- linear, hence Q*_sv(IPmod3_n) = Omega(n)")

    print()
    print("=" * 72)
    print("Stage 2 -- gadget reduction IPmod3 -> Ham (Section 7)")
    print("=" * 72)
    rng = random.Random(0)
    for _ in range(3):
        x = tuple(rng.randrange(2) for _ in range(6))
        y = tuple(rng.randrange(2) for _ in range(6))
        instance = ipmod3_to_ham(x, y)
        print(f"x = {x}, y = {y}: IPmod3 = {ipmod3_value(x, y)}, "
              f"union graph Hamiltonian = {instance.is_hamiltonian()} "
              f"({instance.n_nodes} nodes)")

    print()
    print("=" * 72)
    print("Stage 3 -- Quantum Simulation Theorem (Section 8)")
    print("=" * 72)
    net = SimulationTheoremNetwork(6, 17)
    carol, david = matching_pair_for_cycles(net.input_graph_size, 1, seed=1)
    print(f"N(Gamma=6, L=17): {net.graph.number_of_nodes()} nodes, "
          f"{net.n_highways} highways, horizon L/2 - 2 = {net.schedule.valid_horizon()}")
    print(f"Observation 8.1 (cycles preserved by embedding): "
          f"{net.check_observation_8_1(carol, david)}")
    params = theorem_parameters(10_000, bandwidth=14)
    print(f"Theorem 3.6 plumbing at n = 10^4: L ~ {params['L']:.0f}, "
          f"Gamma ~ {params['Gamma']:.0f}, per-round sim cost ~ {params['per_round_cost']:.0f} bits")

    print()
    print("=" * 72)
    print("Stage 4 -- the headline bounds (Theorems 3.6 & 3.8)")
    print("=" * 72)
    for n in (10_000, 100_000, 1_000_000):
        b = max(1, round(math.log2(n)))
        print(f"n = {n:>9,d}: verification LB = {verification_lower_bound(n, b):8.1f} rounds, "
              f"MST LB (W large) = {optimization_lower_bound(n, b):8.1f} rounds")
    print("\nBoth bounds hold for quantum algorithms with arbitrary prior")
    print("entanglement -- quantum communication does not help for MST,")
    print("minimum cut, or shortest paths.")


if __name__ == "__main__":
    main()
