"""The Quantum Simulation Theorem, live (Theorem 3.5 / Section 8).

Builds N(Gamma, L), runs a real distributed algorithm on it, and replays the
message trace against the Carol/David/Server ownership schedule of
Eqs. (36)-(38), printing what each party paid versus the theorem's
6 k B per-round budget.

    python examples/simulation_theorem_demo.py
"""

import networkx as nx

from repro.congest.node import Node, NodeProgram
from repro.core.simulation_theorem import SimulationTheoremNetwork
from repro.graphs.generators import matching_pair_for_cycles


class ChatterProgram(NodeProgram):
    """Worst-case traffic: every node messages every neighbour every round."""

    def __init__(self, horizon: int):
        self.horizon = horizon

    def on_start(self, node: Node) -> None:
        node.broadcast(("r", 0), bits=8)

    def on_round(self, node: Node, round_no: int, inbox) -> None:
        if round_no >= self.horizon:
            node.halt()
            return
        node.broadcast(("r", round_no), bits=8)


def main() -> None:
    net = SimulationTheoremNetwork(n_paths=5, length=33)
    print(f"N(Gamma=5, L={net.length}): {net.graph.number_of_nodes()} nodes, "
          f"{net.n_highways} highways, diameter {nx.diameter(net.graph)} "
          f"(= Theta(log L))")

    carol, david = matching_pair_for_cycles(net.input_graph_size, 1, seed=0)
    print(f"embedded Server-model input: perfect matchings on "
          f"{net.input_graph_size} nodes; Observation 8.1 holds: "
          f"{net.check_observation_8_1(carol, david)}")

    horizon = net.schedule.valid_horizon()
    accounting = net.simulate(lambda: ChatterProgram(horizon), bandwidth=8)
    print(f"\nsimulated {accounting.rounds} rounds of worst-case traffic (B = 8):")
    print(f"  Carol paid:  {accounting.carol_bits} bits")
    print(f"  David paid:  {accounting.david_bits} bits")
    print(f"  Server paid: {accounting.server_bits} bits (free in the model)")
    print(f"  per-round budget 6kB = {accounting.per_round_bound}; "
          f"max measured per-round cost = {max(accounting.per_round_cost)}")
    print(f"  total C+D cost {accounting.cost} <= bound {accounting.total_bound}")
    print("\nThis is Theorem 3.5: a fast distributed algorithm on N would give")
    print("a cheap Server-model protocol for Ham -- contradicting Theorem 3.4.")


if __name__ == "__main__":
    main()
