"""Tests for the Quantum Simulation Theorem machinery (Theorem 3.5)."""

import networkx as nx
import pytest

from repro.congest.node import Node, NodeProgram
from repro.core.server_model import CAROL, DAVID, SERVER
from repro.core.simulation_theorem import (
    OwnershipSchedule,
    SimulationTheoremNetwork,
    theorem_parameters,
)
from repro.graphs.generators import matching_pair_for_cycles


class EdgeChatterProgram(NodeProgram):
    """A worst-case-traffic program: every node messages every neighbour
    every round for a fixed horizon.  Stresses the accounting maximally."""

    ROUNDS = 5

    def on_start(self, node: Node) -> None:
        node.broadcast(("r", 0), bits=8)

    def on_round(self, node: Node, round_no: int, inbox) -> None:
        if round_no >= self.ROUNDS:
            node.halt(round_no)
            return
        node.broadcast(("r", round_no), bits=8)


class TestOwnershipSchedule:
    def test_initial_regions(self):
        schedule = OwnershipSchedule(3, 17)
        assert schedule.owner(("v", 1, 1), 0) == CAROL
        assert schedule.owner(("v", 2, 17), 0) == DAVID
        assert schedule.owner(("v", 1, 9), 0) == SERVER
        assert schedule.owner(("h", 1, 1), 0) == CAROL

    def test_regions_grow(self):
        schedule = OwnershipSchedule(3, 17)
        assert schedule.owner(("v", 1, 3), 1) == SERVER
        assert schedule.owner(("v", 1, 3), 2) == CAROL
        assert schedule.owner(("v", 1, 15), 2) == DAVID

    def test_partition(self):
        net = SimulationTheoremNetwork(2, 9)
        for t in (0, 1, 2):
            regions = net.schedule.regions(t, net.graph)
            total = sum(len(s) for s in regions.values())
            assert total == net.graph.number_of_nodes()

    def test_horizon(self):
        assert OwnershipSchedule(3, 17).valid_horizon() == 6


class TestInputEmbedding:
    def test_observation_8_1_hamiltonian(self):
        net = SimulationTheoremNetwork(5, 9)  # Gamma' = 5 + 3 = 8
        carol, david = matching_pair_for_cycles(net.input_graph_size, 1, seed=0)
        assert net.check_observation_8_1(carol, david)

    def test_observation_8_1_multi_cycle(self):
        net = SimulationTheoremNetwork(5, 9)
        carol, david = matching_pair_for_cycles(net.input_graph_size, 2, seed=1)
        assert net.check_observation_8_1(carol, david)
        g = net.input_graph(net.input_graph_size, carol, david)
        assert nx.number_connected_components(g) == 2

    def test_embedding_marks_paths_and_matchings(self):
        net = SimulationTheoremNetwork(5, 9)
        carol, david = matching_pair_for_cycles(net.input_graph_size, 1, seed=2)
        m = net.embed_matchings(carol, david)
        assert m.has_edge(("v", 1, 1), ("v", 1, 2))  # path edges in M
        # Cross edges are not in M.
        assert not m.has_edge(("h", 1, 1), ("v", 1, 1)) or (("h", 1, 1), ("v", 1, 1)) in m.edges()
        # Exactly Gamma' matching edges on each side.
        left_edges = [e for e in m.edges() if e[0][2] == 1 and e[1][2] == 1 and (e[0][0] == "v" or e[0][0] == "h")]
        assert len(left_edges) >= net.input_graph_size // 2

    def test_node_inputs(self):
        net = SimulationTheoremNetwork(2, 5)
        carol, david = matching_pair_for_cycles(net.input_graph_size, 1, seed=3)
        m = net.embed_matchings(carol, david)
        inputs = net.node_inputs_from_subnetwork(m)
        assert len(inputs) == net.graph.number_of_nodes()
        assert all(isinstance(v, frozenset) for v in inputs.values())


class TestSimulationAccounting:
    def test_per_round_bound_holds(self):
        # Theorem 3.5's heart: Carol + David pay at most 6 k B per round
        # even under all-edges-every-round traffic.
        net = SimulationTheoremNetwork(4, 17)
        accounting = net.simulate(EdgeChatterProgram, bandwidth=8)
        assert accounting.rounds <= net.schedule.valid_horizon()
        for round_cost in accounting.per_round_cost:
            assert round_cost <= accounting.per_round_bound
        assert accounting.cost <= accounting.total_bound

    def test_path_traffic_is_free(self):
        # A program that only talks along paths left-to-right costs Carol
        # and David nothing: region growth absorbs the wavefront.
        class RightwardWave(NodeProgram):
            def on_start(self, node: Node) -> None:
                kind, i, j = node.id
                if kind == "v" and j == 1:
                    target = (kind, i, 2)
                    if target in set(node.neighbors):
                        node.send(target, ("w",), bits=4)

            def on_round(self, node: Node, round_no: int, inbox) -> None:
                kind, i, j = node.id
                if round_no >= 3:
                    node.halt()
                    return
                for msg in inbox:
                    target = (kind, i, j + 1) if kind == "v" else None
                    if target is not None and target in set(node.neighbors):
                        node.send(target, ("w",), bits=4)

        net = SimulationTheoremNetwork(3, 17)
        accounting = net.simulate(RightwardWave, bandwidth=8)
        assert accounting.carol_bits == 0
        assert accounting.david_bits == 0

    def test_horizon_enforced(self):
        class Staller(NodeProgram):
            def on_round(self, node: Node, round_no: int, inbox) -> None:
                if round_no > 50:
                    node.halt()

        net = SimulationTheoremNetwork(2, 9)  # horizon (9 // 2) - 2 = 2
        with pytest.raises(ValueError):
            net.simulate(Staller, bandwidth=4, max_rounds=60)

    def test_server_pays_bulk(self):
        net = SimulationTheoremNetwork(4, 17)
        accounting = net.simulate(EdgeChatterProgram, bandwidth=8)
        assert accounting.server_bits > accounting.cost


class TestTheoremParameters:
    def test_node_budget(self):
        params = theorem_parameters(10_000, bandwidth=16)
        assert params["node_count"] == pytest.approx(10_000, rel=0.01)

    def test_scaling(self):
        small = theorem_parameters(1_000, 8)
        large = theorem_parameters(100_000, 8)
        assert large["L"] > small["L"]
        assert large["Gamma"] > small["Gamma"]
