"""Documentation invariants: generated catalog, link targets, docstrings."""

import importlib
import inspect
import pkgutil
import re
from pathlib import Path

import pytest

import repro.experiments
from repro.experiments.reporting import builtin_scenarios, scenarios_markdown

REPO = Path(__file__).resolve().parent.parent

#: ``[label](target)`` markdown links, excluding images.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)#\s]+)(#[^)\s]*)?\)")


class TestScenariosCatalog:
    def test_scenarios_md_matches_registry(self):
        """docs/scenarios.md is generated; regenerate it when this fails:

        PYTHONPATH=src python -m repro.experiments.reporting.docs > docs/scenarios.md
        """
        committed = (REPO / "docs" / "scenarios.md").read_text()
        assert committed == scenarios_markdown(), (
            "docs/scenarios.md drifted from the scenario registry; regenerate with "
            "`PYTHONPATH=src python -m repro.experiments.reporting.docs > docs/scenarios.md`"
        )

    def test_catalog_excludes_adhoc_registrations(self):
        # This test module's sibling suites register test-* scenarios; the
        # generated catalog must stay insensitive to them.
        names = {scn.name for scn in builtin_scenarios()}
        assert names and not any(n.startswith("test-") for n in names)

    def test_every_builtin_scenario_documented(self):
        committed = (REPO / "docs" / "scenarios.md").read_text()
        for scn in builtin_scenarios():
            assert f"## `{scn.name}`" in committed


class TestDocLinks:
    @pytest.mark.parametrize(
        "doc", sorted(p.name for p in (REPO / "docs").glob("*.md")) + ["README.md"]
    )
    def test_relative_links_resolve(self, doc):
        path = REPO / ("docs" if doc != "README.md" else ".") / doc
        text = path.read_text()
        for match in _LINK.finditer(text):
            target = match.group(1)
            if re.match(r"[a-z]+://", target) or target.startswith("mailto:"):
                continue
            resolved = (path.parent / target).resolve()
            assert resolved.exists(), f"{doc}: broken relative link {target!r}"


def _experiment_modules():
    modules = [repro.experiments]
    for info in pkgutil.walk_packages(
        repro.experiments.__path__, prefix="repro.experiments."
    ):
        if info.name.endswith("__main__"):
            continue  # importing it would execute the CLI
        modules.append(importlib.import_module(info.name))
    # The fault-injection layer is scenario-facing API: hold it to the same
    # docstring standard as the experiment modules.
    modules.append(importlib.import_module("repro.congest.faults"))
    return modules


class TestDocstringLint:
    def test_every_module_has_a_docstring(self):
        for module in _experiment_modules():
            assert module.__doc__ and len(module.__doc__.strip()) >= 20, (
                f"{module.__name__} is missing a module docstring"
            )

    def test_public_api_has_docstrings(self):
        undocumented = []
        for module in _experiment_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not (
                    inspect.isclass(obj) or inspect.isfunction(obj)
                ):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-exports are documented at their definition
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
                if inspect.isclass(obj):
                    for meth_name, meth in vars(obj).items():
                        if meth_name.startswith("_") or not inspect.isfunction(meth):
                            continue
                        if not (meth.__doc__ or "").strip():
                            undocumented.append(
                                f"{module.__name__}.{name}.{meth_name}"
                            )
        assert not undocumented, f"missing docstrings: {sorted(undocumented)}"
