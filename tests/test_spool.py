"""Sharded spool: layout resolution, the ready-index fast path, rescue scans.

The load-bearing test here is the **scan-count regression guard**:
claiming N tickets from a sharded spool must perform O(1) full directory
scans (the index fast path), while the legacy flat layout pays one sorted
listing per claim batch -- the exact cost PR 9 removes.  The counters come
from :class:`SpoolStats`, which the claim path maintains unconditionally.
"""

import json
import os

import pytest

from repro.experiments.backends.spool import (
    DEFAULT_SHARDS,
    QueuePaths,
    ShardedSpool,
    SpoolStats,
)


def _fill(spool, n, prefix="t"):
    """Enqueue n minimal tickets (claiming only parses JSON)."""
    names = [f"{i:06d}-{prefix}-abc123.json" for i in range(n)]
    for name in names:
        spool.enqueue(name, {"schema": 2, "points": [], "nonce": "abc123"})
    return names


def _spool(root, shards=None, stats=None):
    paths = QueuePaths(root, shards=shards)
    paths.ensure()
    return ShardedSpool(paths, stats=stats or SpoolStats())


class TestScanRegressionGuard:
    def test_sharded_claims_are_o1_full_scans(self, tmp_path):
        """Regression guard: draining N tickets one claim at a time reads
        index tails (O(batch)), never one directory listing per claim."""
        n = 50
        spool = _spool(tmp_path / "q")
        _fill(spool, n)
        stats = spool.stats
        claimed = []
        for _ in range(n):
            batch = spool.claim(1)
            assert len(batch) == 1
            claimed.append(batch[0][0])
        assert len(set(claimed)) == n
        assert stats.claimed == n
        assert stats.index_hits == n  # every ticket served by the index
        assert stats.full_scans == 0  # the guard: no per-claim listings
        assert stats.rename_misses == 0

    def test_flat_layout_pays_one_scan_per_claim_batch(self, tmp_path):
        """The legacy layout's historical cost, pinned so the benchmark
        baseline stays honest: one sorted listing per claim() call."""
        n = 20
        spool = _spool(tmp_path / "q", shards=0)
        _fill(spool, n)
        for i in range(n):
            assert len(spool.claim(1)) == 1
            assert spool.stats.full_scans == i + 1

    def test_stale_index_hints_are_misses_not_errors(self, tmp_path):
        """A ticket claimed by another daemon leaves a stale index line;
        the next claimant counts a rename miss and moves on."""
        spool_a = _spool(tmp_path / "q")
        _fill(spool_a, 4)
        spool_b = ShardedSpool(spool_a.paths, stats=SpoolStats())
        took = {name for name, _ in spool_a.claim(4)}
        assert len(took) == 4
        # B's index cursors are fresh: every hint it reads is stale now.
        assert spool_b.claim(4) == []
        assert spool_b.stats.rename_misses == 4
        assert spool_b.stats.claimed == 0


class TestLayoutResolution:
    def test_marker_wins_over_requested_shards(self, tmp_path):
        first = QueuePaths(tmp_path / "q", shards=4)
        first.ensure()
        assert first.shards == 4
        assert json.loads(first.marker.read_text())["shards"] == 4
        # Every later process agrees on the layout, whatever it asked for.
        assert QueuePaths(tmp_path / "q").shards == 4
        assert QueuePaths(tmp_path / "q", shards=16).shards == 4

    def test_new_spool_defaults_to_sharded(self, tmp_path):
        assert QueuePaths(tmp_path / "q").shards == DEFAULT_SHARDS

    def test_existing_flat_spool_autodetected(self, tmp_path):
        """A pre-PR-9 spool (tickets in tasks/, no marker) keeps its
        layout instead of being half-migrated by the first new process."""
        tasks = tmp_path / "q" / "tasks"
        tasks.mkdir(parents=True)
        (tasks / "000000-old-abc.json").write_text("{}")
        paths = QueuePaths(tmp_path / "q")
        assert paths.shards == 0
        paths.ensure()  # writes the marker, pinning flat for everyone
        assert QueuePaths(tmp_path / "q", shards=8).shards == 0

    def test_ticket_path_routes_by_layout(self, tmp_path):
        sharded = QueuePaths(tmp_path / "a", shards=8)
        name = "000001-k-n.json"
        expected = sharded.shard_dir(sharded.shard_of(name)) / name
        assert sharded.ticket_path(name) == expected
        flat = QueuePaths(tmp_path / "b", shards=0)
        assert flat.ticket_path(name) == flat.tasks / name


class TestSpoolMechanics:
    def test_readmit_is_found_without_a_scan(self, tmp_path):
        """Readmit appends an index line, so other claimants re-find the
        ticket through the fast path, not a verification scan."""
        spool = _spool(tmp_path / "q")
        [name] = _fill(spool, 1)
        assert spool.claim(1)[0][0] == name
        spool.readmit(name)
        other = ShardedSpool(spool.paths, stats=SpoolStats())
        assert other.claim(1)[0][0] == name
        assert other.stats.full_scans == 0

    def test_readmit_of_reclaimed_ticket_raises(self, tmp_path):
        spool = _spool(tmp_path / "q")
        with pytest.raises(OSError):
            spool.readmit("000000-gone-abc.json")

    def test_verify_scan_rescues_unindexed_and_legacy_tickets(self, tmp_path):
        """Tickets invisible to the index -- a torn append, or a legacy
        flat-layout file from before migration -- are claimed by the
        rate-limited verification scan, never stranded."""
        spool = _spool(tmp_path / "q")
        # Dropped index line: the file is in its shard, the log is not.
        orphan = "000007-orphan-abc.json"
        (spool.paths.ticket_path(orphan)).write_text(
            json.dumps({"schema": 2, "points": [], "nonce": "abc"})
        )
        # Legacy ticket left in tasks/ by a pre-sharding process.
        legacy = "000008-legacy-abc.json"
        (spool.paths.tasks / legacy).write_text(
            json.dumps({"schema": 2, "points": [], "nonce": "abc"})
        )
        assert spool.depth() == 2
        got = {spool.claim(1)[0][0] for _ in range(2)}
        assert got == {orphan, legacy}
        assert spool.depth() == 0

    def test_unreadable_ticket_becomes_error_result(self, tmp_path):
        spool = _spool(tmp_path / "q")
        name = "000003-bad-abc.json"
        spool.paths.ticket_path(name).write_text("{not json")
        spool._index_append(spool.paths.shard_of(name), name)
        assert spool.claim(1) == []
        payload = json.loads((spool.paths.results / name).read_text())
        assert payload["outcome"]["status"] == "error"
        assert "unreadable" in payload["outcome"]["error"]

    def test_compaction_resets_misses_and_rebuilds_index(self, tmp_path):
        """After COMPACT_MISS_THRESHOLD stale hints on one shard, the
        claimant rewrites that shard's index from a single listing."""
        from repro.experiments.backends import spool as spool_mod

        spool = _spool(tmp_path / "q", shards=1)
        _fill(spool, 3)
        # Poison the index with enough phantom names to trip compaction.
        for i in range(spool_mod.COMPACT_MISS_THRESHOLD):
            spool._index_append(0, f"9{i:05d}-phantom-x.json")
        other = ShardedSpool(spool.paths, stats=SpoolStats())
        # Ask for one more than exists: the real tickets claim first (in
        # index order), then the phantom tail burns misses into a compact.
        batch = other.claim(4)
        assert len(batch) == 3
        assert other.stats.compactions == 1
        # The rewritten index holds only what is actually on disk.
        assert other.paths.index_path(0).read_text() == ""

    def test_depth_counts_all_layout_dirs(self, tmp_path):
        spool = _spool(tmp_path / "q")
        _fill(spool, 5)
        (spool.paths.tasks / "000009-legacy-x.json").write_text("{}")
        assert spool.depth() == 6
        spool.claim(2)
        assert spool.depth() == 4
