"""Integration test: the paper's full lower-bound pipeline, end to end.

    nonlocal game hardness  (Lemma 3.2, Theorem 6.1)
          |
    Server-model hardness for Ham  (gadget reductions, Theorem 3.4)
          |
    distributed hardness on N(Gamma, L)  (Quantum Simulation Theorem 3.5)
          |
    Theorems 3.6 / 3.8 numbers

plus the upper-bound side: verification/MST algorithms actually run on the
Simulation-Theorem network and dominate the evaluated lower bounds.
"""

import math

import networkx as nx
import pytest

from repro.algorithms.verification import run_verification
from repro.congest.topology import simulation_network_parameters
from repro.core.bounds import verification_lower_bound
from repro.core.fooling import gap_equality_lower_bound
from repro.core.gadgets import gap_eq_to_ham, ipmod3_to_ham, ipmod3_value
from repro.core.simulation_theorem import SimulationTheoremNetwork
from repro.graphs.generators import matching_pair_for_cycles


class TestLowerBoundPipeline:
    def test_gadget_transfers_ipmod3_hardness_to_ham(self):
        # Any Ham solver solves IPmod3 through the reduction: check the
        # reduction preserves answers on a batch of inputs with zero
        # additional communication (the gadget is built locally).
        cases = [
            ((1, 1, 1, 0), (1, 1, 1, 0)),
            ((1, 0, 1, 1), (1, 1, 0, 1)),
            ((0, 0, 0, 0), (1, 1, 1, 1)),
        ]
        for x, y in cases:
            instance = ipmod3_to_ham(x, y)
            ham_answer = instance.is_hamiltonian()
            assert (not ham_answer) == (ipmod3_value(x, y) == 1)

    def test_gap_pipeline_numbers(self):
        # Theorem 6.1 -> Theorem 3.4: Omega(n) for Gap-Eq becomes Omega(n)
        # for Gap-Ham via the linear-size gadget.
        n = 64
        bound_n = gap_equality_lower_bound(n)["server_model_lower_bound"]
        bound_2n = gap_equality_lower_bound(2 * n)["server_model_lower_bound"]
        instance = gap_eq_to_ham((0,) * n, (0,) * n)
        blowup = instance.n_nodes / n
        assert blowup == 6.0  # linear-size reduction: Omega(n) is preserved
        assert bound_2n / bound_n == pytest.approx(2.0, rel=0.15)  # linear growth

    def test_simulation_network_carries_ham_instance(self):
        # Section 8: run the *actual distributed Ham verifier* on N with an
        # embedded matching input and check it answers correctly while the
        # three-party accounting stays within the theorem's budget.
        net = SimulationTheoremNetwork(5, 9)
        for n_cycles, expected in ((1, True), (2, False)):
            carol, david = matching_pair_for_cycles(net.input_graph_size, n_cycles, seed=3)
            m = net.embed_matchings(carol, david)
            assert net.check_observation_8_1(carol, david)
            m_nontrivial = m.subgraph([v for v in m if m.degree(v) > 0])
            is_ham = (
                nx.is_connected(m_nontrivial)
                and all(d == 2 for _, d in m_nontrivial.degree())
                and m_nontrivial.number_of_nodes() == net.graph.number_of_nodes()
            )
            assert is_ham == expected

    def test_theorem_36_consistency(self):
        # The Theorem 3.6 bound must stay below the measured upper-bound
        # round count of the actual verification algorithm (sanity: the
        # lower bound does not contradict reality).
        graph = nx.complete_graph(16)
        ham = [(i, (i + 1) % 16) for i in range(16)]
        verdict, result = run_verification("hamiltonian cycle", graph, ham)
        assert verdict is True
        lb = verification_lower_bound(16, bandwidth=64)
        assert result.rounds >= lb

    def test_parameter_plumbing(self):
        # Section 9.1's L and Gamma give back Theta(n) nodes and the right
        # contradiction structure.
        n, bandwidth = 4096, 8
        log_n = math.log2(n)
        length = math.sqrt(n / (bandwidth * log_n))
        gamma = math.sqrt(n * bandwidth * log_n)
        assert length * gamma == pytest.approx(n)
        norm_length, k = simulation_network_parameters(max(3, round(length)))
        assert k == math.log2(norm_length - 1)


class TestQuantumDoesNotHelp:
    """The paper's headline: the quantum lower bound meets the classical
    upper bound, so quantum communication cannot help for MST."""

    def test_mst_gap_is_polylog_only(self):
        n = 10_000
        lb = verification_lower_bound(n, 1)  # quantum lower bound
        classical_ub = math.sqrt(n) + math.log2(n)  # KP98 shape
        gap = classical_ub / lb
        # The gap is polylogarithmic: sqrt(B log n) with B = 1.
        assert gap <= 2 * math.log2(n)

    def test_disjointness_is_the_exception(self):
        # Example 1.1: for Disjointness the quantum protocol genuinely beats
        # the classical lower bound on low-diameter networks.
        b = 10_000
        diameter = 14
        classical = b  # Omega(b) rounds at B = 1
        quantum = 2 * diameter * math.sqrt(b)  # Grover round trips
        assert quantum < classical / 3
