"""Property-based tests (hypothesis) on the core invariants."""

import math

import networkx as nx
import pytest

np = pytest.importorskip("numpy")  # exercises numpy-backed core modules

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.problems import hamming_distance
from repro.core.fooling import binary_entropy, greedy_gv_code, code_min_distance
from repro.core.gadgets import (
    gadget_permutation,
    gap_eq_mismatch_count,
    gap_eq_to_ham,
    ipmod3_to_ham,
    ipmod3_value,
    strand_permutation,
)
from repro.core.gamma2 import gamma2_lower, gamma2_upper
from repro.quantum.state import QuantumState
from repro.quantum.teleportation import teleport

bits = st.lists(st.integers(0, 1), min_size=1, max_size=7)
pair_bits = st.integers(1, 7).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, 1), min_size=n, max_size=n),
        st.lists(st.integers(0, 1), min_size=n, max_size=n),
    )
)


class TestGadgetProperties:
    @given(pair_bits)
    @settings(max_examples=60, deadline=None)
    def test_ipmod3_reduction_sound_and_complete(self, xy):
        x, y = xy
        instance = ipmod3_to_ham(x, y)
        assert instance.is_hamiltonian() == (ipmod3_value(x, y) == 0)

    @given(pair_bits)
    @settings(max_examples=60, deadline=None)
    def test_ipmod3_union_is_cycle_cover(self, xy):
        x, y = xy
        union = ipmod3_to_ham(x, y).union_graph()
        assert all(d == 2 for _, d in union.degree())
        assert union.number_of_nodes() == 12 * len(x)

    @given(pair_bits)
    @settings(max_examples=60, deadline=None)
    def test_strand_permutation_is_shift(self, xy):
        x, y = xy
        total = sum(a * b for a, b in zip(x, y)) % 3
        assert strand_permutation(x, y) == tuple((j + total) % 3 for j in range(3))

    @given(st.integers(0, 1), st.integers(0, 1))
    def test_gadget_permutation_is_permutation(self, xi, yi):
        perm = gadget_permutation(xi, yi)
        assert sorted(perm) == [0, 1, 2]

    @given(pair_bits.filter(lambda xy: len(xy[0]) >= 2))
    @settings(max_examples=60, deadline=None)
    def test_gap_eq_cycles_count_mismatches(self, xy):
        x, y = xy
        instance = gap_eq_to_ham(x, y)
        delta = gap_eq_mismatch_count(x, y)
        assert instance.cycle_count() == (1 if delta == 0 else delta + 1)
        assert instance.is_hamiltonian() == (delta == 0)


class TestQuantumProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_teleportation_preserves_any_state(self, seed):
        rng = np.random.default_rng(seed)
        vec = rng.standard_normal(2) + 1j * rng.standard_normal(2)
        state = QuantumState(1, vec / np.linalg.norm(vec))
        import random as _random

        received, _ = teleport(state.copy(), rng=_random.Random(seed))
        assert received.fidelity(state) > 1.0 - 1e-9

    @given(st.integers(1, 4), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_unitary_preserves_norm(self, n_qubits, seed):
        rng = np.random.default_rng(seed)
        vec = rng.standard_normal(1 << n_qubits) + 1j * rng.standard_normal(1 << n_qubits)
        state = QuantumState(n_qubits, vec / np.linalg.norm(vec))
        from repro.quantum.gates import HADAMARD

        state.apply(HADAMARD, [int(rng.integers(0, n_qubits))])
        np.testing.assert_allclose(np.linalg.norm(state.vector), 1.0, atol=1e-9)


class TestGamma2Properties:
    @given(st.integers(0, 500), st.integers(2, 5), st.integers(2, 5))
    @settings(max_examples=25, deadline=None)
    def test_upper_dominates_lower(self, seed, m, n):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, n))
        assert gamma2_upper(a) >= gamma2_lower(a) - 1e-7

    @given(st.integers(0, 500), st.integers(2, 4))
    @settings(max_examples=15, deadline=None)
    def test_scaling_homogeneity(self, seed, m):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, m))
        np.testing.assert_allclose(gamma2_lower(3.0 * a), 3.0 * gamma2_lower(a), rtol=1e-9)


class TestCodesProperties:
    @given(st.integers(4, 12), st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_greedy_code_distance_invariant(self, n, d):
        code = greedy_gv_code(n, d, max_size=40)
        if len(code) >= 2:
            assert code_min_distance(code) >= d

    @given(st.floats(0.01, 0.99))
    def test_entropy_bounds(self, p):
        h = binary_entropy(p)
        assert 0.0 <= h <= 1.0 + 1e-12

    @given(pair_bits)
    def test_hamming_symmetry(self, xy):
        x, y = xy
        assert hamming_distance(x, y) == hamming_distance(y, x)
        assert hamming_distance(x, x) == 0


class TestFaultDeterminismProperties:
    """The fault layer's determinism contract: every decision is a pure
    function of ``(plan seed, round, edge, msg_index)``, so identical seeds
    give identical adversaries on any engine, thread count, or claim
    batch -- and different seeds give different ones."""

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_decisions_pure_in_the_seed(self, seed, other_seed):
        from repro.congest.faults import FaultPlan

        plan = FaultPlan(seed=seed, drop_prob=0.5, dup_prob=0.5, reorder_prob=0.5)
        twin = FaultPlan(seed=seed, drop_prob=0.5, dup_prob=0.5, reorder_prob=0.5)
        grid = [(kind, r, u, v, i)
                for kind in ("drop", "dup", "reorder")
                for r in (1, 7)
                for (u, v) in ((0, 1), (1, 0), ("a", "b"))
                for i in (0, 3)]
        draws = [plan.decision(*args) for args in grid]
        assert draws == [twin.decision(*args) for args in grid]
        assert all(0.0 <= d < 1.0 for d in draws)
        if other_seed != seed:
            other = plan.with_seed(other_seed)
            assert draws != [other.decision(*args) for args in grid]

    @given(st.integers(0, 2_000))
    @settings(max_examples=25, deadline=None)
    def test_generated_schedules_are_pure_and_valid(self, seed):
        from repro.congest.faults import FaultPlan
        from repro.graphs.generators import random_connected_graph

        graph = random_connected_graph(14, extra_edge_prob=0.2, seed=3)
        kwargs = dict(
            seed=seed, drop_prob=0.1, n_crashes=2, crash_length=4,
            n_edge_deletes=2, n_edge_inserts=1, window=(1, 25),
        )
        plan = FaultPlan.generate(graph, **kwargs)
        assert plan == FaultPlan.generate(graph, **kwargs)
        for span in plan.crashes:
            assert 1 <= span.start <= 25 and span.stop == span.start + 4
        assert nx.is_connected(plan.final_graph(graph))

    @given(st.integers(0, 500), st.sampled_from([1, 3]))
    @settings(max_examples=6, deadline=None)
    def test_fault_seed_invariant_under_engine_and_threads(self, fault_seed, threads):
        from repro.algorithms.paths import run_refreshing_bellman_ford
        from repro.congest.engine import ParallelEngine
        from repro.congest.faults import FaultPlan
        from repro.graphs.generators import random_connected_graph

        graph = random_connected_graph(12, extra_edge_prob=0.2, seed=5)
        source = min(graph.nodes())
        plan = FaultPlan.generate(
            graph, seed=0, drop_prob=0.15, n_crashes=1, crash_length=4,
            window=(1, 15), protect=[source],
        )
        runs = {}
        for name, engine in (
            ("event", "event"),
            ("parallel", ParallelEngine(threads=threads, min_parallel_nodes=1)),
        ):
            dists, result = run_refreshing_bellman_ford(
                graph, source, weighted=False, max_rounds=30,
                engine=engine, faults=plan, fault_seed=fault_seed,
            )
            runs[name] = (dists, result)
        dists_e, result_e = runs["event"]
        dists_p, result_p = runs["parallel"]
        assert dists_p == dists_e
        assert result_p.fault_stats == result_e.fault_stats
        assert (result_p.rounds, result_p.total_messages, result_p.total_bits) == (
            result_e.rounds, result_e.total_messages, result_e.total_bits,
        )
        assert result_p.per_round_bits == result_e.per_round_bits

    @given(st.integers(0, 500))
    @settings(max_examples=8, deadline=None)
    def test_different_fault_seeds_differ(self, fault_seed):
        from repro.congest.faults import FaultPlan

        plan = FaultPlan(seed=fault_seed, drop_prob=0.5)
        other = plan.with_seed(fault_seed + 1)
        grid = [(r, 0, 1, i) for r in range(1, 11) for i in range(10)]
        assert [plan.drop(*g) for g in grid] != [other.drop(*g) for g in grid]


class TestDeltaFarProperties:
    @given(st.integers(0, 200), st.integers(2, 4))
    @settings(max_examples=20, deadline=None)
    def test_components_closed_form(self, seed, parts):
        from repro.graphs.distance import delta_far_from_connected
        from repro.graphs.generators import random_connected_graph

        graph = random_connected_graph(4 * parts, seed=seed)
        # Take a spanning forest with `parts` components.
        tree = list(nx.minimum_spanning_tree(graph).edges())
        removed = tree[: parts - 1]
        forest = [e for e in tree if e not in removed]
        distance = delta_far_from_connected(graph, forest)
        assert distance == parts - 1
