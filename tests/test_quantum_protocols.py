"""Tests for teleportation, superdense coding, entanglement, fingerprinting,
Grover and the Holevo bound."""

import math
import random

import pytest

np = pytest.importorskip("numpy")  # whole module is linear-algebra-bound

from repro.quantum.entanglement import (
    bell_state,
    entanglement_entropy,
    ghz_state,
    is_product_state,
    shared_random_bit,
)
from repro.quantum.fingerprint import FingerprintEquality
from repro.quantum.grover import (
    grover_find_any,
    grover_search,
    optimal_grover_iterations,
    search_success_probability,
)
from repro.quantum.holevo import accessible_information_cap, holevo_bound, von_neumann_entropy
from repro.quantum.state import QuantumState
from repro.quantum.superdense import superdense_send
from repro.quantum.teleportation import CLASSICAL_BITS_PER_QUBIT, teleport, teleportation_cost


def random_qubit(seed: int) -> QuantumState:
    rng = np.random.default_rng(seed)
    vec = rng.standard_normal(2) + 1j * rng.standard_normal(2)
    return QuantumState(1, vec / np.linalg.norm(vec))


class TestEntanglement:
    def test_epr_pair(self):
        epr = bell_state(0)
        assert epr.probabilities()[0] == pytest.approx(0.5)
        assert epr.probabilities()[3] == pytest.approx(0.5)

    def test_bell_states_orthogonal(self):
        states = [bell_state(i) for i in range(4)]
        for i in range(4):
            for j in range(i + 1, 4):
                assert states[i].fidelity(states[j]) == pytest.approx(0.0, abs=1e-9)

    def test_ghz(self):
        ghz = ghz_state(3)
        probs = ghz.probabilities()
        assert probs[0] == pytest.approx(0.5)
        assert probs[7] == pytest.approx(0.5)

    def test_epr_entropy_is_one_bit(self):
        assert entanglement_entropy(bell_state(0), [0]) == pytest.approx(1.0)

    def test_product_state_entropy_zero(self):
        product = QuantumState(2)
        assert is_product_state(product, [0])
        assert not is_product_state(bell_state(0), [0])

    def test_shared_random_bit_agreement(self):
        rng = random.Random(0)
        outcomes = [shared_random_bit(3, rng=rng) for _ in range(30)]
        for bits in outcomes:
            assert len(set(bits)) == 1  # all parties agree
        values = [bits[0] for bits in outcomes]
        assert 0 < sum(values) < len(values)  # actually random


class TestTeleportation:
    def test_fidelity_one_over_random_states(self):
        rng = random.Random(42)
        for seed in range(25):
            message = random_qubit(seed)
            received, bits = teleport(message.copy(), rng=rng)
            assert received.fidelity(message) == pytest.approx(1.0, abs=1e-9)
            assert len(bits) == CLASSICAL_BITS_PER_QUBIT

    def test_cost_accounting(self):
        assert teleportation_cost(7) == 14
        with pytest.raises(ValueError):
            teleportation_cost(-1)

    def test_rejects_multiqubit_message(self):
        with pytest.raises(ValueError):
            teleport(QuantumState(2))


class TestSuperdense:
    def test_all_four_messages(self):
        rng = random.Random(0)
        for bits in ((0, 0), (0, 1), (1, 0), (1, 1)):
            assert superdense_send(bits, rng=rng) == bits


class TestFingerprinting:
    def test_equal_inputs_always_accept(self):
        scheme = FingerprintEquality(12, seed=0)
        rng = random.Random(1)
        x = tuple(rng.randrange(2) for _ in range(12))
        for _ in range(20):
            assert scheme.are_equal(x, x, rng=rng)

    def test_unequal_inputs_mostly_rejected(self):
        scheme = FingerprintEquality(12, seed=0)
        rng = random.Random(2)
        errors = 0
        trials = 50
        for _ in range(trials):
            x = tuple(rng.randrange(2) for _ in range(12))
            y = tuple(b ^ 1 for b in x)
            if scheme.are_equal(x, y, repetitions=12, rng=rng):
                errors += 1
        assert errors <= 2

    def test_logarithmic_communication(self):
        scheme = FingerprintEquality(256, seed=0)
        assert scheme.fingerprint_qubits <= 2 * math.ceil(math.log2(256)) + 4
        assert scheme.communication_qubits(repetitions=5) == 5 * scheme.fingerprint_qubits

    def test_fingerprint_state_normalised(self):
        scheme = FingerprintEquality(8, seed=1)
        state = scheme.fingerprint_state((1, 0, 1, 1, 0, 0, 1, 0))
        assert np.linalg.norm(state.vector) == pytest.approx(1.0)

    def test_overlap_matches_states(self):
        scheme = FingerprintEquality(8, seed=3)
        x = (1, 0, 1, 1, 0, 0, 1, 0)
        y = (0, 0, 1, 1, 0, 0, 1, 1)
        sx, sy = scheme.fingerprint_state(x), scheme.fingerprint_state(y)
        inner = float(np.vdot(sx.vector, sy.vector).real)
        assert inner == pytest.approx(scheme.overlap(x, y))


class TestGrover:
    def test_finds_unique_marked(self):
        rng = random.Random(0)
        hits = 0
        for trial in range(20):
            target = trial % 16
            index, queries = grover_search(lambda i: i == target, 16, n_marked=1, rng=rng)
            hits += index == target
            assert queries == optimal_grover_iterations(16, 1)
        assert hits >= 17  # theoretical success ~ 0.96

    def test_query_count_scales_as_sqrt(self):
        q16 = optimal_grover_iterations(16, 1)
        q256 = optimal_grover_iterations(256, 1)
        ratio = q256 / q16
        assert 3.0 <= ratio <= 5.5  # sqrt(16) = 4

    def test_find_any_with_unknown_count(self):
        rng = random.Random(3)
        marked = {3, 7, 11}
        found, queries = grover_find_any(lambda i: i in marked, 32, rng=rng)
        assert found in marked
        assert queries <= 40

    def test_find_any_on_empty(self):
        rng = random.Random(4)
        found, queries = grover_find_any(lambda i: False, 32, rng=rng)
        assert found is None
        assert queries <= 80

    def test_success_probability_formula(self):
        p = search_success_probability(4, 1, 1)
        assert p == pytest.approx(1.0)  # N=4, one iteration is exact


class TestHolevo:
    def test_entropy_of_pure_state_zero(self):
        rho = np.array([[1.0, 0.0], [0.0, 0.0]])
        assert von_neumann_entropy(rho) == pytest.approx(0.0)

    def test_entropy_of_maximally_mixed(self):
        assert von_neumann_entropy(np.eye(2) / 2) == pytest.approx(1.0)

    def test_holevo_of_orthogonal_ensemble_is_one_bit(self):
        rho0 = np.array([[1.0, 0.0], [0.0, 0.0]])
        rho1 = np.array([[0.0, 0.0], [0.0, 1.0]])
        chi = holevo_bound([0.5, 0.5], [rho0, rho1])
        assert chi == pytest.approx(1.0)

    def test_holevo_never_exceeds_qubit_count(self):
        # One qubit carries at most one bit -- "entanglement cannot replace
        # communication" (Section 1).
        rng = np.random.default_rng(0)
        states = []
        for _ in range(4):
            v = rng.standard_normal(2) + 1j * rng.standard_normal(2)
            v /= np.linalg.norm(v)
            states.append(np.outer(v, v.conj()))
        chi = holevo_bound([0.25] * 4, states)
        assert chi <= accessible_information_cap(1) + 1e-9

    def test_identical_states_carry_nothing(self):
        rho = np.eye(2) / 2
        assert holevo_bound([0.5, 0.5], [rho, rho]) == pytest.approx(0.0)
