"""Tests for the closed-form bound evaluators (Theorems 3.6/3.8, Figs. 2-3)."""

import math

import pytest

from repro.core.bounds import (
    OPTIMIZATION_PROBLEMS,
    VERIFICATION_PROBLEMS,
    fig2_table,
    fig3_curve,
    mst_upper_bound,
    optimization_lower_bound,
    quantum_speedup_cap_shortest_paths,
    simulation_theorem_parameters,
    verification_lower_bound,
)


class TestVerificationBound:
    def test_scaling_sqrt(self):
        # Quadrupling n should roughly double the bound (up to log factors).
        lb1 = verification_lower_bound(10_000, 1)
        lb2 = verification_lower_bound(40_000, 1)
        assert 1.7 <= lb2 / lb1 <= 2.1

    def test_bandwidth_softens(self):
        assert verification_lower_bound(4096, 16) == pytest.approx(
            verification_lower_bound(4096, 1) / 4.0
        )

    def test_input_validation(self):
        with pytest.raises(ValueError):
            verification_lower_bound(1)
        with pytest.raises(ValueError):
            verification_lower_bound(100, 0)


class TestOptimizationBound:
    def test_small_w_regime(self):
        # W / alpha below sqrt(n): the bound is W-limited (the new regime
        # this paper adds over [DHK+12]).
        n, w, alpha = 10_000, 50.0, 2.0
        lb = optimization_lower_bound(n, 1, w, alpha)
        assert lb == pytest.approx((w / alpha) / math.sqrt(math.log2(n)))

    def test_large_w_regime(self):
        n = 10_000
        lb = optimization_lower_bound(n, 1, 1e9, 2.0)
        assert lb == pytest.approx(math.sqrt(n) / math.sqrt(math.log2(n)))

    def test_monotone_in_w(self):
        n = 4096
        values = [optimization_lower_bound(n, 1, w, 2.0) for w in (4, 64, 1024, 10**6)]
        assert values == sorted(values)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            optimization_lower_bound(100, 1, 10, 0.5)


class TestFig2Table:
    def test_all_problems_present(self):
        rows = fig2_table(10_000)
        names = {row.problem for row in rows}
        assert set(VERIFICATION_PROBLEMS) <= names
        assert set(OPTIMIZATION_PROBLEMS) <= names

    def test_verification_rows_match_theorem(self):
        rows = [r for r in fig2_table(10_000) if r.category == "verification"]
        expected = verification_lower_bound(10_000, 1)
        for row in rows:
            assert row.new_value == pytest.approx(expected)
            assert "quantum" in row.new

    def test_optimization_new_bound_never_below_small_w(self):
        rows = [r for r in fig2_table(10_000, aspect_ratio=32.0, alpha=2.0) if r.category == "optimization"]
        for row in rows:
            # With small W the new bound is the W/alpha regime, strictly less
            # than the old sqrt(n) bound that needed W = Omega(alpha n).
            assert row.new_value < row.previous_value


class TestFig3Curve:
    def test_crossover_shape(self):
        n, alpha = 10_000, 2.0
        ws = [1.0, 10.0, 100.0, 1_000.0, 100_000.0]
        curve = fig3_curve(n, alpha, ws)
        lower = [point["lower_bound"] for point in curve]
        upper = [point["upper_bound"] for point in curve]
        # Monotone then saturating, and the lower bound never exceeds the
        # upper bound.
        assert lower == sorted(lower)
        assert all(lb <= ub for lb, ub in zip(lower, upper))
        # The upper bound saturates at sqrt(n) + D once W > alpha sqrt(n).
        assert upper[-1] == pytest.approx(upper[-2])

    def test_crossover_landmarks(self):
        curve = fig3_curve(10_000, 2.0, [1.0])
        assert curve[0]["crossover_sqrt"] == pytest.approx(200.0)
        assert curve[0]["crossover_linear"] == pytest.approx(20_000.0)


class TestSupportingFormulas:
    def test_mst_upper_bound_regimes(self):
        assert mst_upper_bound(10_000, 10, 50, 2.0) == pytest.approx(35.0)
        assert mst_upper_bound(10_000, 10, 1e9, 2.0) == pytest.approx(110.0)

    def test_shortest_path_speedup_cap(self):
        assert quantum_speedup_cap_shortest_paths(10_000, 16) == pytest.approx(2.0)

    def test_simulation_theorem_parameters(self):
        params = simulation_theorem_parameters(10_000, 4)
        assert params["nodes"] == pytest.approx(10_000, rel=0.01)
        assert params["distributed_budget"] < params["L"]
