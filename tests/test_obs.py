"""Telemetry subsystem tests: tracer overhead, trace schema, exactness.

Three contracts pin the observability layer down:

1. the default null tracer must cost nothing -- the engine hot path with
   tracing off allocates nothing inside ``repro.obs.trace``;
2. JSONL traces are schema-valid and deterministic modulo clock fields,
   so archived CI traces diff cleanly;
3. trace accounting is *exact*, not approximate -- per-round sent-bit
   samples sum to ``RunResult.total_bits`` on every engine, and the
   per-task meta block the sweep runner persists agrees with the trace.
"""

import json
import tracemalloc
from pathlib import Path

import pytest

import benchmarks.check_regression as check_regression
from repro.algorithms.paths import run_bellman_ford
from repro.congest.engine import ParallelEngine
from repro.congest.network import CongestNetwork
from repro.experiments import expand_grid, get_scenario, run_sweep
from repro.experiments.cli import main as cli_main
from repro.experiments.reporting import render_timeline_page, render_trends_page
from repro.experiments.reporting.site import extract_speedups
from repro.experiments.reporting.timeline import load_traces
from repro.obs.trace import (
    TRACE_DIR_ENV,
    TRACE_SCHEMA,
    CollectingTracer,
    Tracer,
    TraceWriter,
    read_trace,
    summarize_trace,
    trace_files,
    use_tracer,
)

REPO = Path(__file__).resolve().parent.parent

#: Clock-derived trace fields ignored when comparing runs for determinism.
VOLATILE = {"ts", "dur_s", "unix_time", "pid", "duration_s", "shard_s", "merge_s"}


def _graph(n=18, seed=3):
    from repro.graphs.generators import random_connected_graph

    graph = random_connected_graph(n, extra_edge_prob=0.15, seed=seed)
    for i, (u, v) in enumerate(sorted(graph.edges())):
        graph.edges[u, v]["weight"] = float(i + 1)
    return graph


class TestNullTracer:
    def test_network_defaults_to_disabled_tracer(self):
        net = CongestNetwork(_graph(6), program_factory=lambda: None)
        assert isinstance(net.trace, Tracer)
        assert net.trace.enabled is False

    def test_hot_path_allocates_nothing(self):
        tracer = Tracer()
        # Warm up method binding and any lazy module state first.
        tracer.emit("round", round=0)
        with tracer.span("warm"):
            pass
        trace_file = str(Path(Tracer.__module__.replace(".", "/")))
        filters = [tracemalloc.Filter(True, f"*{trace_file}*")]
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot().filter_traces(filters)
            for i in range(500):
                tracer.emit("round", round=i, active=3, sent_bits=64)
                tracer.counter("messages", 2)
                tracer.gauge("depth", i)
                tracer.task("running", i)
                with tracer.span("step"):
                    pass
            after = tracemalloc.take_snapshot().filter_traces(filters)
        finally:
            tracemalloc.stop()
        stats = after.compare_to(before, "filename")
        assert sum(s.size_diff for s in stats) == 0, stats

    def test_span_is_shared_singleton(self):
        tracer = Tracer()
        assert tracer.span("a") is tracer.span("b")


class TestTraceWriter:
    def _run_traced(self, path):
        graph = _graph()
        with TraceWriter(path, source="test", scenario="bf") as tracer:
            with use_tracer(tracer):
                dist, result = run_bellman_ford(graph, min(graph.nodes()), engine="event")
        return result

    def test_lines_schema_valid(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._run_traced(path)
        events = read_trace(path)
        assert events, "trace is empty"
        meta = events[0]
        assert meta["kind"] == "meta"
        assert meta["schema"] == TRACE_SCHEMA
        assert meta["source"] == "test"
        for event in events:
            assert isinstance(event["kind"], str)
            assert isinstance(event["ts"], float)
            assert event["ts"] >= 0.0
        kinds = {e["kind"] for e in events}
        assert "round" in kinds
        assert "run" in kinds

    def test_deterministic_modulo_clock_fields(self, tmp_path):
        self._run_traced(tmp_path / "a.jsonl")
        self._run_traced(tmp_path / "b.jsonl")

        def stripped(path):
            return [
                {k: v for k, v in event.items() if k not in VOLATILE}
                for event in read_trace(path)
            ]

        assert stripped(tmp_path / "a.jsonl") == stripped(tmp_path / "b.jsonl")

    def test_read_trace_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        self._run_traced(path)
        whole = read_trace(path)
        with open(path, "a") as fh:
            fh.write('{"kind": "round", "ts"')  # no newline: a torn write
        assert read_trace(path) == whole


class TestExactAccounting:
    @pytest.mark.parametrize("engine", ["dense", "event", "parallel", "columnar"])
    def test_round_bit_samples_sum_to_run_result(self, engine):
        graph = _graph(seed=7)
        eng = (
            ParallelEngine(threads=2, min_parallel_nodes=1)
            if engine == "parallel"
            else engine
        )
        tracer = CollectingTracer()
        with use_tracer(tracer):
            dist, result = run_bellman_ford(graph, min(graph.nodes()), engine=eng)
        summary = summarize_trace(tracer.events)
        assert summary["sent_bits"] == result.total_bits
        assert summary["sent_messages"] == result.total_messages
        assert summary["moved_bits"] == result.total_bits
        (run,) = summary["runs"]
        assert run["total_bits"] == result.total_bits
        assert run["rounds"] == result.rounds
        assert run["halted"] == result.halted

    def test_engines_agree_on_counter_totals(self):
        graph = _graph(seed=11)
        totals = {}
        for name in ("dense", "event", "parallel", "columnar"):
            eng = (
                ParallelEngine(threads=2, min_parallel_nodes=1)
                if name == "parallel"
                else name
            )
            tracer = CollectingTracer()
            with use_tracer(tracer):
                run_bellman_ford(graph, min(graph.nodes()), engine=eng)
            summary = summarize_trace(tracer.events)
            totals[name] = (
                summary["sent_bits"],
                summary["sent_messages"],
                summary["moved_bits"],
            )
        assert totals["event"] == totals["dense"]
        assert totals["parallel"] == totals["dense"]
        assert totals["columnar"] == totals["dense"]


class TestSweepTraces:
    def _points(self):
        scenario = get_scenario("spanner-skeleton")
        return expand_grid(scenario, {"n": [24]})

    def test_task_trace_matches_persisted_meta(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        report = run_sweep(self._points(), store=None)
        (record,) = report.records
        assert record.status == "ok"
        meta = record.meta
        assert meta["congest_runs"] >= 1
        task_files = sorted(tmp_path.glob("task-spanner-skeleton-*.jsonl"))
        assert len(task_files) == 1
        summary = summarize_trace(read_trace(task_files[0]))
        assert summary["source"] == "task"
        assert len(summary["runs"]) == meta["congest_runs"]
        assert sum(r["total_bits"] for r in summary["runs"]) == meta["engine_total_bits"]
        assert sum(r["rounds"] for r in summary["runs"]) == meta["engine_rounds"]
        assert summary["sent_bits"] == meta["engine_total_bits"]
        events = read_trace(task_files[0])
        results = [e for e in events if e["kind"] == "event" and e.get("name") == "task_result"]
        assert len(results) == 1 and results[0]["status"] == "ok"

    def test_meta_block_uniform_across_backends(self, tmp_path):
        metas = {}
        for backend in ("serial", "pool"):
            report = run_sweep(
                self._points(), store=None, backend=backend, workers=2
            )
            (record,) = report.records
            assert record.duration_s > 0.0
            metas[backend] = record.meta
        assert metas["serial"] == metas["pool"]
        assert set(metas["serial"]) >= {
            "congest_runs",
            "engine_rounds",
            "engine_skipped_rounds",
            "engine_node_steps",
            "engine_total_bits",
            "engines",
        }


class TestTraceCli:
    @pytest.fixture()
    def trace_dir(self, tmp_path):
        out = tmp_path / "traces"
        argv = [
            "run",
            "spanner-skeleton",
            "--set",
            "n=24",
            "--no-store",
            "--trace",
            str(out),
        ]
        assert cli_main(argv) == 0
        return out

    def test_run_writes_sweep_and_task_traces(self, trace_dir):
        names = sorted(p.name for p in trace_dir.glob("*.jsonl"))
        assert any(n.startswith("sweep-") for n in names)
        assert any(n.startswith("task-") for n in names)

    def test_summarize_text_and_json(self, trace_dir, capsys):
        assert cli_main(["trace", "summarize", str(trace_dir)]) == 0
        text = capsys.readouterr().out
        assert "rounds" in text
        assert cli_main(["trace", "summarize", str(trace_dir), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload, "empty JSON summary"

    def test_timeline_renders_svg_page(self, trace_dir, tmp_path):
        out = tmp_path / "timeline.html"
        assert cli_main(["trace", "timeline", str(trace_dir), "--out", str(out)]) == 0
        html = out.read_text()
        assert "<svg" in html
        assert "Round activity" in html

    def test_missing_traces_is_an_error(self, tmp_path):
        assert cli_main(["trace", "summarize", str(tmp_path / "nope")]) == 1


class TestReportPages:
    def test_timeline_page_from_loaded_traces(self, tmp_path):
        path = tmp_path / "t.jsonl"
        graph = _graph()
        with TraceWriter(path, source="test") as tracer:
            with use_tracer(tracer):
                run_bellman_ford(graph, min(graph.nodes()), engine="event")
        traces = load_traces([tmp_path])
        html = render_timeline_page(traces)
        assert "<svg" in html
        assert "Bits per round" in html

    def test_trends_page_from_committed_bench_files(self):
        paths = [REPO / "BENCH_pr2.json", REPO / "BENCH_pr4.json"]
        html = render_trends_page(paths)
        assert "Speedup history" in html
        assert "<svg" in html

    def test_trace_files_rejects_nothing_silently(self, tmp_path):
        assert trace_files(tmp_path) == []

    def test_fleet_gauges_summarized_and_charted(self, tmp_path):
        """Fleet-controller telemetry (gauge levels + named events) lands
        in the summary dict and as a gauge chart on the timeline page."""
        path = tmp_path / "fleet-1.jsonl"
        with TraceWriter(path, source="fleet") as tracer:
            for depth, workers in [(10, 0), (6, 2), (0, 2)]:
                tracer.gauge("spool_depth", depth)
                tracer.gauge("fleet_workers", workers)
            tracer.event("worker_spawned", count=2, workers=2)
            tracer.event("fleet_exit", spawned=2, retired=0)
        events = read_trace(path)
        summary = summarize_trace(events)
        assert summary["gauges"]["spool_depth"] == {
            "count": 3, "min": 0.0, "max": 10.0, "last": 0.0,
        }
        assert summary["gauges"]["fleet_workers"]["max"] == 2.0
        assert summary["events"] == {"fleet_exit": 1, "worker_spawned": 1}
        html = render_timeline_page(load_traces([tmp_path]))
        assert "Gauges" in html
        assert "spool_depth" in html


class TestRegressionGate:
    def _bench(self, tmp_path, speedup):
        path = tmp_path / "BENCH_x.json"
        path.write_text(
            json.dumps({"benchmark": "gate-test", "speedup": speedup})
        )
        return str(path)

    def _baselines(self, tmp_path, policy, speedup=2.0):
        path = tmp_path / "baselines.json"
        path.write_text(
            json.dumps(
                {
                    "schema": 1,
                    "entries": {
                        "gate-test": {
                            "speedup": speedup,
                            "policy": policy,
                            "max_regression": 0.25,
                        }
                    },
                }
            )
        )
        return str(path)

    def test_within_threshold_passes(self, tmp_path):
        argv = [self._bench(tmp_path, 1.9), "--baselines", self._baselines(tmp_path, "hard")]
        assert check_regression.main(argv) == 0

    def test_hard_regression_fails(self, tmp_path):
        argv = [self._bench(tmp_path, 1.0), "--baselines", self._baselines(tmp_path, "hard")]
        assert check_regression.main(argv) == 1

    def test_warn_regression_passes(self, tmp_path):
        argv = [self._bench(tmp_path, 1.0), "--baselines", self._baselines(tmp_path, "warn")]
        assert check_regression.main(argv) == 0

    def test_update_writes_baselines_preserving_policy(self, tmp_path):
        baselines = self._baselines(tmp_path, "warn")
        bench = self._bench(tmp_path, 3.0)
        assert check_regression.main([bench, "--baselines", baselines, "--update"]) == 0
        doc = json.loads(Path(baselines).read_text())
        entry = doc["entries"]["gate-test"]
        assert entry["speedup"] == 3.0
        assert entry["policy"] == "warn"

    def test_extract_mirror_matches_reporting_walker(self):
        for name in ("BENCH_pr2.json", "BENCH_pr4.json"):
            data = json.loads((REPO / name).read_text())
            assert check_regression._extract_speedups(data) == extract_speedups(data)

    def test_committed_baselines_are_valid(self):
        doc = json.loads((REPO / "benchmarks" / "baselines.json").read_text())
        assert doc["schema"] == 1
        for label, entry in doc["entries"].items():
            assert entry["policy"] in ("hard", "warn"), label
            assert entry["speedup"] > 0, label
