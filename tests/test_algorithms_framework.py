"""Tests for the phased-program framework primitives."""

import networkx as nx
import pytest

from repro.algorithms.framework import (
    BfsTreePhase,
    BroadcastPhase,
    ConvergecastPhase,
    LeaderElectionPhase,
    LocalComputationPhase,
    PhasedProgram,
    PipelinedDowncastPhase,
    PipelinedUpcastPhase,
)
from repro.congest.network import CongestNetwork
from repro.graphs.generators import random_connected_graph


def run_phases(graph, phases_factory, diameter=None, bandwidth=128):
    d = diameter if diameter is not None else nx.diameter(graph)
    inputs = {node: {"diameter_bound": d} for node in graph.nodes()}
    network = CongestNetwork(
        graph, lambda: PhasedProgram(phases_factory()), bandwidth=bandwidth, inputs=inputs
    )
    return network.run(max_rounds=100_000)


class TestLeaderElection:
    def test_everyone_agrees_on_max(self):
        graph = random_connected_graph(15, seed=0)

        def phases():
            return [
                LeaderElectionPhase(),
                LocalComputationPhase(lambda node, shared: shared.update(output=shared["leader"])),
            ]

        result = run_phases(graph, phases)
        # Leader = max id under the framework's canonical (repr) order.
        assert result.unanimous_output() == max(graph.nodes(), key=repr)

    def test_single_node(self):
        graph = nx.Graph()
        graph.add_node(0)

        def phases():
            return [
                LeaderElectionPhase(),
                LocalComputationPhase(lambda node, shared: shared.update(output=shared["leader"])),
            ]

        result = run_phases(graph, phases, diameter=1)
        assert result.outputs[0] == 0


class TestBfsTree:
    def test_tree_structure(self):
        graph = random_connected_graph(20, seed=1)

        def phases():
            return [
                LeaderElectionPhase(),
                BfsTreePhase(),
                LocalComputationPhase(
                    lambda node, shared: shared.update(
                        output=(shared["parent"], shared["depth"], len(shared["children"]))
                    )
                ),
            ]

        result = run_phases(graph, phases)
        leader = max(graph.nodes(), key=repr)
        roots = [nid for nid, (parent, _, _) in result.outputs.items() if parent is None]
        assert roots == [leader]
        # Depths are BFS distances from the leader.
        expected = nx.single_source_shortest_path_length(graph, leader)
        for nid, (_, depth, _) in result.outputs.items():
            assert depth == expected[nid]
        # Parent/child counts are consistent: total children = n - 1.
        assert sum(c for (_, _, c) in result.outputs.values()) == 19


class TestConvergecastBroadcast:
    def test_sum_and_broadcast(self):
        graph = random_connected_graph(12, seed=2)

        def phases():
            return [
                LeaderElectionPhase(),
                BfsTreePhase(),
                ConvergecastPhase("total", lambda node, shared: 1, lambda a, b: a + b),
                LocalComputationPhase(
                    lambda node, shared: shared.update(
                        total=shared["total"] if shared["parent"] is None else None
                    )
                ),
                BroadcastPhase("total"),
                LocalComputationPhase(lambda node, shared: shared.update(output=shared["total"])),
            ]

        result = run_phases(graph, phases)
        assert result.unanimous_output() == 12


class TestPipelines:
    def test_upcast_collects_everything(self):
        graph = random_connected_graph(10, seed=3)

        def stage(node, shared):
            shared["items"] = [int(str(node.id))]
            shared["cap"] = 12

        def read(node, shared):
            collected = shared["collected"]
            shared["output"] = sorted(collected) if collected is not None else None

        def phases():
            return [
                LeaderElectionPhase(),
                BfsTreePhase(),
                LocalComputationPhase(stage),
                PipelinedUpcastPhase("items", "collected", "cap"),
                LocalComputationPhase(read),
            ]

        result = run_phases(graph, phases)
        root_output = result.outputs[9]
        assert root_output == list(range(10))

    def test_upcast_capacity_overflow_raises(self):
        graph = random_connected_graph(10, seed=4)

        def stage(node, shared):
            shared["items"] = [1, 2, 3, 4, 5]
            shared["cap"] = 2  # way too small

        def phases():
            return [
                LeaderElectionPhase(),
                BfsTreePhase(),
                LocalComputationPhase(stage),
                PipelinedUpcastPhase("items", "collected", "cap"),
            ]

        with pytest.raises(RuntimeError, match="capacity too small"):
            run_phases(graph, phases)

    def test_downcast_distributes_items(self):
        graph = random_connected_graph(10, seed=5)

        def stage(node, shared):
            shared["items"] = [("v", k) for k in range(4)] if shared["parent"] is None else []
            shared["cap"] = 6

        def read(node, shared):
            shared["output"] = sorted(shared["items"])

        def phases():
            return [
                LeaderElectionPhase(),
                BfsTreePhase(),
                LocalComputationPhase(stage),
                PipelinedDowncastPhase("items", "cap"),
                LocalComputationPhase(read),
            ]

        result = run_phases(graph, phases)
        expected = [("v", k) for k in range(4)]
        assert result.unanimous_output() == expected

    def test_upcast_reducer_dedupes(self):
        graph = random_connected_graph(8, seed=6)

        def stage(node, shared):
            shared["items"] = ["same-item"]
            shared["cap"] = 10

        def reducer(items):
            return sorted(set(items))

        def read(node, shared):
            if shared["parent"] is None:
                shared["output"] = shared["collected"]
            else:
                shared["output"] = None

        def phases():
            return [
                LeaderElectionPhase(),
                BfsTreePhase(),
                LocalComputationPhase(stage),
                PipelinedUpcastPhase("items", "collected", "cap", reducer=reducer),
                LocalComputationPhase(read),
            ]

        result = run_phases(graph, phases)
        root_output = result.outputs[7]
        assert root_output == ["same-item"]


class TestPhaseComposition:
    def test_zero_duration_phases_chain(self):
        graph = nx.path_graph(3)
        trace = []

        def make_recorder(tag):
            def record(node, shared):
                if node.id == 0:
                    trace.append(tag)

            return record

        def phases():
            return [
                LocalComputationPhase(make_recorder("a")),
                LocalComputationPhase(make_recorder("b")),
                LocalComputationPhase(lambda node, shared: shared.update(output="done")),
            ]

        result = run_phases(graph, phases, diameter=2)
        assert result.unanimous_output() == "done"
        assert trace == ["a", "b"]
        assert result.rounds == 0
