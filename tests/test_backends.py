"""Execution backends: cross-backend equivalence, watchdog, spool, merge.

The queue-backend tests spawn real worker daemons (``python -m
repro.experiments worker``) or drain the spool in-process with
:func:`run_worker`; scenario registrations below are shipped to workers by
module name (``tests.test_backends``), exactly like user scenarios are.
"""

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import asdict
from pathlib import Path

import pytest

import repro
from repro.experiments import (
    ParamSpec,
    ResultStore,
    SerialBackend,
    WorkQueueBackend,
    expand_grid,
    get_scenario,
    run_sweep,
    run_worker,
    scenario,
)
from repro.experiments.backends import resolve_backend
from repro.experiments.backends.base import Task
from repro.experiments.backends.queue import QueuePaths, points_of
from repro.experiments.backends.spool import ShardedSpool
from repro.experiments.store import ResultRecord, cache_key


def _task(point, **overrides) -> Task:
    fields = dict(
        point=point,
        key=cache_key(point.scenario, point.params, point.seed),
        scenario_version="1",
        code_version=repro.__version__,
        scenario_modules=("tests.test_backends",),
    )
    fields.update(overrides)
    return Task(**fields)

_SRC = Path(repro.__file__).resolve().parents[1]
_ROOT = _SRC.parent
#: Daemon subprocesses must import both `repro` and this test module.
_WORKER_ENV = {
    "PYTHONPATH": os.pathsep.join(
        p for p in (str(_SRC), str(_ROOT), os.environ.get("PYTHONPATH", "")) if p
    )
}


@scenario("bk-echo", params=[ParamSpec("x", int, 1)], default_grid={"x": [1, 2, 3]})
def _bk_echo(*, seed, x):
    return {"x": x, "seed_mod": seed % 1000, "squared": x * x}


@scenario("bk-sleepy", params=[ParamSpec("delay", float, 5.0)])
def _bk_sleepy(*, seed, delay):
    time.sleep(delay)
    return {"slept": delay}


@scenario("bk-crash", params=[ParamSpec("x", int, 1)])
def _bk_crash(*, seed, x):
    os.kill(os.getpid(), signal.SIGKILL)
    return {"unreachable": True}  # pragma: no cover


@scenario("bk-unjson", params=[ParamSpec("x", int, 1)])
def _bk_unjson(*, seed, x):
    return {"x": x, "bad": object()}


def _comparable(record) -> dict:
    data = asdict(record)
    data.pop("duration_s")
    return data


class TestCrossBackendEquivalence:
    def test_same_sweep_identical_records_across_backends(self, tmp_path):
        """Acceptance: serial, pool and a 2-daemon queue produce
        field-identical records (modulo duration_s)."""
        points = expand_grid(get_scenario("bk-echo"), {"x": [1, 2, 3, 4]})
        serial = run_sweep(points, store=None, backend="serial")
        pool = run_sweep(
            points, store=None, backend="pool", workers=2, mp_start_method="fork"
        )
        queue_backend = WorkQueueBackend(
            tmp_path / "spool",
            workers=2,
            mp_start_method="fork",
            worker_env=_WORKER_ENV,
        )
        try:
            queued = run_sweep(
                points, store=ResultStore(tmp_path / "store"), backend=queue_backend
            )
        finally:
            queue_backend.shutdown()
        assert serial.ok and pool.ok and queued.ok
        assert queued.executed == 4
        serial_records = [_comparable(r) for r in serial.records]
        assert [_comparable(r) for r in pool.records] == serial_records
        assert [_comparable(r) for r in queued.records] == serial_records

    def test_auto_backend_preserves_historical_selection(self):
        assert resolve_backend("auto", workers=1).name == "serial"
        assert resolve_backend("auto", workers=4, n_tasks=2).name == "pool"
        assert resolve_backend("auto", workers=1, task_timeout=1.0).name == "pool"
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("bogus")
        with pytest.raises(ValueError, match="queue_dir"):
            resolve_backend("queue")

    def test_serial_backend_rejects_timeout(self):
        points = expand_grid(get_scenario("bk-echo"), {"x": [1]})
        with pytest.raises(ValueError, match="timeout"):
            run_sweep(points, store=None, backend="serial", task_timeout=1.0)

    def test_maxtasksperchild_zero_means_never_recycle(self):
        # Library callers passing 0 must not hand an invalid value to
        # multiprocessing.Pool (which requires a positive int or None).
        points = expand_grid(get_scenario("bk-echo"), {"x": [1, 2]})
        report = run_sweep(
            points, store=None, workers=2, maxtasksperchild=0, mp_start_method="fork"
        )
        assert report.ok and report.executed == 2


class TestQueueBackend:
    def test_watchdog_kills_over_budget_task_and_persists_timeout(self, tmp_path):
        """Acceptance: a worker-side runtime limit actually kills an
        over-budget task and a `timeout` record lands in the store."""
        store = ResultStore(tmp_path / "store")
        points = expand_grid(get_scenario("bk-sleepy"), {"delay": [30.0]})
        backend = WorkQueueBackend(
            tmp_path / "spool", workers=1, mp_start_method="fork", worker_env=_WORKER_ENV
        )
        start = time.monotonic()
        try:
            report = run_sweep(points, store=store, backend=backend, task_timeout=1.0)
        finally:
            backend.shutdown()
        assert time.monotonic() - start < 20.0
        record = report.records[0]
        assert record.status == "timeout"
        assert "killed by worker watchdog" in record.error
        assert report.failed == 1 and not report.ok
        persisted = store.get("bk-sleepy", record.key)
        assert persisted is not None and persisted.status == "timeout"

    def test_worker_crash_mid_task_becomes_error_record(self, tmp_path):
        points = expand_grid(get_scenario("bk-crash"), {"x": [1]})
        backend = WorkQueueBackend(
            tmp_path / "spool", workers=1, mp_start_method="fork", worker_env=_WORKER_ENV
        )
        try:
            report = run_sweep(points, store=None, backend=backend)
        finally:
            backend.shutdown()
        record = report.records[0]
        assert record.status == "error"
        assert "died without reporting" in record.error
        assert report.failed == 1

    def test_external_worker_drains_and_writes_shard(self, tmp_path):
        """workers=0: tickets wait for an external daemon; the daemon's
        --store shard holds full records under the same cache keys."""
        shard = ResultStore(tmp_path / "shard")
        points = expand_grid(get_scenario("bk-echo"), {"x": [5, 6]})
        backend = WorkQueueBackend(tmp_path / "spool", workers=0)
        for p in points:
            backend.submit(_task(p))
        assert backend.spool.depth() == 2
        n_done = run_worker(
            tmp_path / "spool",
            store=shard,
            max_idle=0.5,
            poll_interval=0.05,
            mp_start_method="fork",
        )
        assert n_done == 2
        collected = backend.poll()
        assert len(collected) == 2
        assert shard.count("bk-echo") == 2
        for task, outcome in collected:
            assert outcome["status"] == "ok"
            record = shard.get("bk-echo", task.key)
            assert record is not None
            assert record.result == outcome["result"]
            assert record.seed == task.point.seed

    def test_dead_worker_fleet_fails_outstanding_tasks(self, tmp_path):
        """A fully-exited spawned fleet becomes error outcomes, not an
        exception out of poll() -- finished records must survive."""
        backend = WorkQueueBackend(tmp_path / "spool", workers=0)
        backend.submit(_task(expand_grid(get_scenario("bk-echo"), {"x": [7]})[0]))
        dead = subprocess.Popen([sys.executable, "-c", ""])
        dead.wait()
        backend._procs = [dead]
        batch = backend.poll()
        assert len(batch) == 1
        _, outcome = batch[0]
        assert outcome["status"] == "error"
        assert "workers exited" in outcome["error"]
        backend._procs = []  # the dummy is not a real daemon; skip STOP logic
        backend.shutdown()

    def test_batched_claiming_drains_in_grid_order(self, tmp_path):
        """--claim-batch: one spool scan claims several tickets (amortised
        listing), they execute in index order, and records match a serial
        run field for field."""
        points = expand_grid(get_scenario("bk-echo"), {"x": [1, 2, 3, 4, 5]})
        # shards=0 pins the legacy flat layout, whose claim order is the
        # sorted (= grid) order; the sharded layout interleaves shards.
        backend = WorkQueueBackend(tmp_path / "spool", workers=0, shards=0)
        paths = backend.paths
        for p in points:
            backend.submit(_task(p))

        # The claim primitive: one scan takes min(limit, available) tickets,
        # lowest grid index first, heartbeating each.
        batch = ShardedSpool(paths).claim(3)
        assert [points_of(t, n)[0]["index"] for n, t in batch] == [0, 1, 2]
        assert len(list(paths.tasks.glob("*.json"))) == 2
        assert all((paths.claims / name).exists() for name, _ in batch)
        assert all(paths.heartbeat(name).exists() for name, _ in batch)
        # Hand them back so the worker below sees the full spool.
        for name, _ in batch:
            paths.heartbeat(name).unlink()
            os.rename(paths.claims / name, paths.tasks / name)

        shard = ResultStore(tmp_path / "shard")
        n_done = run_worker(
            tmp_path / "spool",
            store=shard,
            max_idle=0.5,
            poll_interval=0.05,
            mp_start_method="fork",
            claim_batch=3,
        )
        assert n_done == 5
        assert not list(paths.claims.glob("*"))  # all leases released
        collected = backend.poll()
        assert sorted(t.index for t, _ in collected) == [0, 1, 2, 3, 4]
        assert all(outcome["status"] == "ok" for _, outcome in collected)

        serial = run_sweep(points, store=None, backend="serial")
        by_index = {t.index: o for t, o in collected}
        for record, point in zip(serial.records, points):
            assert by_index[point.index]["result"] == record.result
            shard_record = shard.get("bk-echo", cache_key("bk-echo", point.params, point.seed))
            assert shard_record is not None
            assert shard_record.result == record.result

    def test_worker_rejects_nonpositive_claim_batch(self, tmp_path):
        with pytest.raises(ValueError, match="claim_batch"):
            run_worker(tmp_path / "spool", claim_batch=0)

    def test_stale_lease_is_requeued_then_failed(self, tmp_path):
        backend = WorkQueueBackend(
            tmp_path / "spool", workers=0, lease_timeout=0.1, max_requeues=1, shards=0
        )
        paths = backend.paths
        points = expand_grid(get_scenario("bk-echo"), {"x": [9]})
        backend.submit(_task(points[0]))

        def fake_dead_claim():
            # A worker claims the ticket, then dies without heartbeating.
            name = next(paths.tasks.glob("*.json")).name
            os.rename(paths.tasks / name, paths.claims / name)
            stale = time.time() - 60.0
            os.utime(paths.claims / name, (stale, stale))

        fake_dead_claim()
        time.sleep(0.15)
        assert backend.poll() == []  # first expiry: republished
        # Reclaim republishes under a fresh generation name (a resumed
        # owner must never collide with the new claimant's lease).
        requeued = list(paths.tasks.glob("*.json"))
        assert len(requeued) == 1
        assert json.loads(requeued[0].read_text())["attempts"] == 1

        fake_dead_claim()
        time.sleep(0.15)
        batch = backend.poll()  # second expiry: attempts exhausted
        assert len(batch) == 1
        task, outcome = batch[0]
        assert outcome["status"] == "error"
        assert "lease expired" in outcome["error"]


class TestResultIntegrity:
    def test_non_serializable_result_fails_point_with_clear_error(self, tmp_path):
        store = ResultStore(tmp_path)
        points = expand_grid(get_scenario("bk-unjson"), {"x": [1]})
        report = run_sweep(points, store=store)
        record = report.records[0]
        assert record.status == "error" and not report.ok
        assert "non-JSON-serializable" in record.error
        # The persisted failure replays identically: still an error, still
        # failing report.ok -- never a repr-stringified "success".
        replay = run_sweep(points, store=store)
        assert (replay.cached, replay.executed) == (1, 0)
        assert not replay.ok
        assert _comparable(replay.records[0]) == _comparable(record)

    def test_to_json_is_strict(self):
        record = ResultRecord(
            key="k", scenario="s", params={"x": 1}, seed=0, replicate=0,
            status="ok", result={"bad": object()},
        )
        with pytest.raises(TypeError):
            record.to_json()

    def test_pool_timeout_record_accounting(self):
        points = expand_grid(get_scenario("bk-sleepy"), {"delay": [30.0, 0.01]})
        report = run_sweep(
            points, store=None, workers=2, task_timeout=1.0, mp_start_method="fork"
        )
        timeout_record = report.records[0]
        assert timeout_record.status == "timeout"
        assert timeout_record.duration_s == 1.0
        assert timeout_record.result is None
        assert report.records[1].status == "ok"
        assert (report.executed, report.failed) == (2, 1)
        assert not report.ok


class TestStoreMerge:
    def test_merge_imports_shards_under_same_keys(self, tmp_path):
        left = ResultStore(tmp_path / "left")
        right = ResultStore(tmp_path / "right")
        run_sweep(expand_grid(get_scenario("bk-echo"), {"x": [1, 2]}), store=left)
        run_sweep(expand_grid(get_scenario("bk-echo"), {"x": [2, 3]}), store=right)
        dest = ResultStore(tmp_path / "dest")
        assert dest.merge(left) == 2
        assert dest.merge(right) == 1  # x=2 already present (same cache key)
        assert dest.count("bk-echo") == 3
        # A merged store serves the same cache hits a central run would.
        report = run_sweep(expand_grid(get_scenario("bk-echo"), {"x": [1, 2, 3]}), store=dest)
        assert (report.cached, report.executed) == (3, 0)

    def test_merge_rejects_self(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="itself"):
            store.merge(tmp_path)

    def test_merge_summary_reports_what_happened(self, tmp_path):
        left = ResultStore(tmp_path / "left")
        run_sweep(expand_grid(get_scenario("bk-echo"), {"x": [1, 2, 3]}), store=left)
        dest = ResultStore(tmp_path / "dest")
        run_sweep(expand_grid(get_scenario("bk-echo"), {"x": [3]}), store=dest)
        summary = dest.merge(left)
        assert summary.scanned == 3
        assert summary.imported == 2
        assert summary.skipped == 1  # x=3 already present, store is write-once
        assert summary.replaced == 0
        assert summary.per_scenario == {"bk-echo": 2}
        assert summary == 2  # int back-compat (the imported count)
        assert int(summary) == 2
        again = dest.merge(left, overwrite=True)
        assert (again.imported, again.replaced, again.skipped) == (3, 3, 0)
        # The staging file never outlives the merge.
        assert not list((tmp_path / "dest").rglob(".merge-*"))

    def test_merge_under_concurrent_writer_keeps_all_records(self, tmp_path):
        """A worker put()-ing into the destination mid-merge races only on
        atomic renames: every record from both sides survives intact."""
        import threading

        source = ResultStore(tmp_path / "source")
        run_sweep(
            expand_grid(get_scenario("bk-echo"), {"x": list(range(1, 30))}), store=source
        )
        live = run_sweep(
            expand_grid(get_scenario("bk-echo"), {"x": list(range(30, 60))}), store=None
        )
        dest = ResultStore(tmp_path / "dest")

        def writer():
            for record in live.records:
                dest.put(record)

        thread = threading.Thread(target=writer)
        thread.start()
        summary = dest.merge(source)
        thread.join()
        assert summary.imported == 29
        records = list(dest.iter_records("bk-echo"))
        assert len(records) == 59  # nothing lost, nothing truncated
        assert {r.params["x"] for r in records} == set(range(1, 60))
