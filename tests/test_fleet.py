"""Work stealing, stale-lease reclaim and the fleet controller.

The acceptance bar for every concurrency path here is the same: however
tickets were split, stolen, reclaimed or duplicated, the records that
land are **field-identical to a serial run** (modulo ``duration_s``) --
per-point result names are content-addressed, so duplicate executions
converge on one record instead of forking history.

Fleet tests spawn real daemons (``python -m repro.experiments worker``)
via the controller; the scenario below is shipped to them by module name
(``tests.test_fleet``), exactly like user scenarios are.
"""

import json
import os
import time
from dataclasses import asdict
from pathlib import Path

import pytest

import repro
from repro.experiments import (
    ParamSpec,
    ResultStore,
    WorkQueueBackend,
    expand_grid,
    get_scenario,
    run_sweep,
    run_worker,
    scenario,
)
from repro.experiments.backends.base import Task
from repro.experiments.backends.fleet import FleetController
from repro.experiments.backends.queue import points_of, try_steal
from repro.experiments.backends.spool import ShardedSpool
from repro.experiments.store import cache_key

_SRC = Path(repro.__file__).resolve().parents[1]
_ROOT = _SRC.parent
#: Daemon subprocesses must import both `repro` and this test module.
_WORKER_ENV = {
    "PYTHONPATH": os.pathsep.join(
        p for p in (str(_SRC), str(_ROOT), os.environ.get("PYTHONPATH", "")) if p
    )
}


@scenario("fl-echo", params=[ParamSpec("x", int, 1)])
def _fl_echo(*, seed, x):
    return {"x": x, "seed_mod": seed % 1000, "cubed": x * x * x}


def _task(point) -> Task:
    return Task(
        point=point,
        key=cache_key(point.scenario, point.params, point.seed),
        scenario_version="1",
        code_version=repro.__version__,
        scenario_modules=("tests.test_fleet",),
    )


def _submit_block(tmp_path, xs, points_per_ticket, **backend_kwargs):
    """One sealed block ticket holding the grid points for ``xs``."""
    points = expand_grid(get_scenario("fl-echo"), {"x": xs})
    backend = WorkQueueBackend(
        tmp_path / "spool",
        workers=0,
        points_per_ticket=points_per_ticket,
        **backend_kwargs,
    )
    for p in points:
        backend.submit(_task(p))
    backend.poll()  # seal the block ticket into the spool
    return backend, points


def _serial_results(points):
    report = run_sweep(points, store=None, backend="serial")
    return {r.params["x"]: r.result for r in report.records}


def _comparable(record) -> dict:
    data = asdict(record)
    data.pop("duration_s")
    return data


class TestWorkStealing:
    def test_thief_carves_tail_half_of_published_rest(self, tmp_path):
        """An idle daemon carves the tail half of the deepest in-flight
        block ticket; owner and thief together produce exactly the
        serial sweep's results."""
        backend, points = _submit_block(tmp_path, [1, 2, 3, 4], points_per_ticket=4)
        paths = backend.paths
        owner = ShardedSpool(paths)
        [(name, ticket)] = owner.claim(1)
        # The owner is "executing point 0": positions 1..3 are stealable.
        paths.rest(name).write_text(json.dumps({"positions": [1, 2, 3]}))

        thief = ShardedSpool(paths)
        assert try_steal(paths, thief)
        stolen = json.loads(paths.steal(name).read_text())["positions"]
        assert stolen == [3]  # the tail half (owner keeps ceil(3/2))
        assert owner.depth() == 1  # the carve-off is back in the spool
        # One thief per ticket, ever: the second attempt must not carve.
        assert not try_steal(paths, ShardedSpool(paths))

        [(carve_name, carve)] = thief.claim(1)
        carve_points = points_of(carve, carve_name)
        original = points_of(ticket, name)
        assert [p["index"] for p in carve_points] == [3]
        # Same result name as the original's point: duplicate completions
        # converge on one file.
        assert carve_points[0]["result_name"] == original[3]["result_name"]

        # Hand both claims back and drain: the owner's ticket skips its
        # stolen positions, the carve supplies them.
        for claim_name in (name, carve_name):
            paths.heartbeat(claim_name).unlink(missing_ok=True)
        owner.readmit(name)
        thief.readmit(carve_name)
        n_done = run_worker(
            tmp_path / "spool", max_idle=0.3, poll_interval=0.02, inline=True
        )
        assert n_done == 4
        collected = backend.poll()
        assert len(collected) == 4
        expected = _serial_results(points)
        for task, outcome in collected:
            assert outcome["status"] == "ok"
            assert outcome["result"] == expected[task.point.params["x"]]

    def test_duplicate_ticket_converges_on_single_result(self, tmp_path):
        """A republished duplicate (resumed owner vs reclaim, thief vs
        owner) executes at most once per point: the second ticket sees
        the landed result file and skips."""
        backend, points = _submit_block(tmp_path, [7], points_per_ticket=1)
        spool = ShardedSpool(backend.paths)
        [(name, ticket)] = spool.claim(1)
        backend.paths.heartbeat(name).unlink()
        spool.readmit(name)
        spool.enqueue(f"dup-{name}", ticket)  # same points, same result_name
        n_done = run_worker(
            tmp_path / "spool", max_idle=0.3, poll_interval=0.02, inline=True
        )
        assert n_done == 1  # the duplicate claimed, matched, skipped
        results = list(backend.paths.results.glob("*.json"))
        assert len(results) == 1
        [(task, outcome)] = backend.poll()
        assert outcome["status"] == "ok"
        assert outcome["result"] == _serial_results(points)[7]


class TestStaleLeaseReclaim:
    def test_reclaim_republishes_only_unstolen_remaining(self, tmp_path):
        """A half-stolen ticket whose owner dies is republished minus the
        stolen positions -- the thief's carve is not double-queued."""
        backend, points = _submit_block(
            tmp_path, [1, 2, 3, 4], points_per_ticket=4,
            lease_timeout=0.05, max_requeues=2,
        )
        paths = backend.paths
        owner = ShardedSpool(paths)
        [(name, ticket)] = owner.claim(1)
        paths.rest(name).write_text(json.dumps({"positions": [1, 2, 3]}))
        assert try_steal(paths, ShardedSpool(paths))  # carves the tail: [3]

        # The owner dies: heartbeat and claim go stale together.
        stale = time.time() - 60.0
        os.utime(paths.claims / name, (stale, stale))
        os.utime(paths.heartbeat(name), (stale, stale))
        time.sleep(0.06)
        assert backend.poll() == []  # reclaim republishes, nothing landed

        assert not (paths.claims / name).exists()
        assert not paths.steal(name).exists()  # sidecars retired with it
        spooled = []
        for directory in [paths.tasks] + [
            paths.shard_dir(i) for i in range(paths.shards)
        ]:
            for path in directory.glob("*.json"):
                spooled.append(json.loads(path.read_text()))
        assert len(spooled) == 2  # the thief's carve + the reclaim
        by_attempts = {t["attempts"]: t for t in spooled}
        reclaim = by_attempts[1]  # bumped generation
        assert [p["index"] for p in reclaim["points"]] == [0, 1, 2]
        carve = by_attempts[0]
        assert [p["index"] for p in carve["points"]] == [3]

        n_done = run_worker(
            tmp_path / "spool", max_idle=0.3, poll_interval=0.02, inline=True
        )
        assert n_done == 4
        collected = backend.poll()
        assert len(collected) == 4
        expected = _serial_results(points)
        for task, outcome in collected:
            assert outcome["status"] == "ok"
            assert outcome["result"] == expected[task.point.params["x"]]


class TestFleetController:
    def test_rejects_bad_sizing(self, tmp_path):
        with pytest.raises(ValueError, match="max_workers"):
            FleetController(tmp_path / "q", max_workers=0)
        with pytest.raises(ValueError, match="min_workers"):
            FleetController(tmp_path / "q", min_workers=3, max_workers=2)

    def test_drain_down_leaves_zero_orphans_and_serial_records(self, tmp_path):
        """Acceptance: the controller scales up on backlog, drains the
        spool, and exits with every daemon reaped; the workers' merged
        store shards are field-identical to a serial run."""
        backend, points = _submit_block(tmp_path, [1, 2, 3, 4, 5, 6], points_per_ticket=1)
        controller = FleetController(
            tmp_path / "spool",
            max_workers=2,
            backlog_per_worker=2,
            interval=0.1,
            cooldown=0.3,
            store_prefix=str(tmp_path / "shard"),
            inline=True,
            claim_batch=2,
            max_idle=30.0,
            worker_env=_WORKER_ENV,
        )
        report = controller.run(drain=True, max_runtime=60.0)

        # Zero-orphan guarantee: every spawned daemon exited cleanly and
        # was reaped before run() returned.
        assert controller._workers == []
        assert len(report.exit_codes) == report.spawned
        assert all(code == 0 for code in report.exit_codes)
        assert report.peak_workers == 2  # backlog 6 / 2-per-worker, capped
        assert report.final_depth == 0
        assert not list(backend.paths.claims.glob("*"))
        assert len(backend.poll()) == 6

        merged = ResultStore(tmp_path / "merged")
        for shard_dir in sorted(tmp_path.glob("shard-*")):
            merged.merge(shard_dir)
        serial = run_sweep(points, store=None, backend="serial")
        merged_records = sorted(merged.iter_records(), key=lambda r: r.key)
        serial_records = sorted(serial.records, key=lambda r: r.key)
        assert [_comparable(r) for r in merged_records] == [
            _comparable(r) for r in serial_records
        ]

    def test_emits_own_trace_when_no_ambient_tracer(self, tmp_path, monkeypatch):
        trace_dir = tmp_path / "trace"
        trace_dir.mkdir()
        monkeypatch.setenv("REPRO_TRACE_DIR", str(trace_dir))
        controller = FleetController(tmp_path / "spool", max_workers=1, interval=0.05)
        report = controller.run(drain=True)  # empty spool: exits first tick
        assert report.spawned == 0
        [trace_file] = trace_dir.glob("fleet-*.jsonl")
        body = trace_file.read_text()
        assert "spool_depth" in body
        assert "fleet_exit" in body
