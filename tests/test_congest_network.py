"""Tests for the CONGEST simulator: rounds, bandwidth, pipelining, metrics."""

import networkx as nx
import pytest

from repro.congest.message import QubitPayload, bit_size
from repro.congest.network import BandwidthExceeded, CongestNetwork, run_program
from repro.congest.node import Node, NodeProgram


class EchoOnce(NodeProgram):
    """Round 1: node 0 sends 'ping' to all; receivers halt on receipt."""

    def on_start(self, node: Node) -> None:
        if node.id == 0:
            node.broadcast(("ping",))
            node.halt("sent")

    def on_round(self, node: Node, round_no: int, inbox, **_) -> None:
        if inbox:
            node.halt("got")


class FloodProgram(NodeProgram):
    """Flood a token; halt when seen.  Measures diameter-from-0 in rounds."""

    def on_start(self, node: Node) -> None:
        self.seen = False
        if node.id == 0:
            node.broadcast(("tok",))
            self.seen = True
            node.halt(0)

    def on_round(self, node: Node, round_no: int, inbox) -> None:
        if inbox and not self.seen:
            self.seen = True
            node.broadcast(("tok",))
            node.halt(round_no)


class BigSender(NodeProgram):
    def on_start(self, node: Node) -> None:
        if node.id == 0:
            node.send(1, "x" * 100, bits=100)
            node.halt()

    def on_round(self, node: Node, round_no: int, inbox) -> None:
        if inbox:
            node.halt(round_no)


class TestBitSize:
    def test_int_sizes(self):
        assert bit_size(0) == 1
        assert bit_size(255) == 9
        assert bit_size(True) == 1

    def test_container_sizes(self):
        assert bit_size((1, 2)) > bit_size(1)
        assert bit_size("ab") == 8 + 16

    def test_qubit_payload(self):
        assert bit_size(QubitPayload(5)) == 5
        with pytest.raises(ValueError):
            QubitPayload(0)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            bit_size(object())


class TestExecution:
    def test_flood_measures_distance(self):
        graph = nx.path_graph(6)
        result = run_program(graph, FloodProgram, bandwidth=64)
        assert result.halted
        assert result.outputs[5] == 5  # distance from node 0
        assert result.outputs[1] == 1

    def test_message_arrives_next_round(self):
        graph = nx.path_graph(2)
        result = run_program(graph, EchoOnce, bandwidth=64)
        assert result.rounds == 1
        assert result.outputs[1] == "got"

    def test_big_message_takes_multiple_rounds(self):
        graph = nx.path_graph(2)
        result = run_program(graph, BigSender, bandwidth=10)
        # 100 bits over B=10 takes 10 rounds to traverse the single edge.
        assert result.outputs[1] == 10

    def test_strict_mode_rejects_oversize(self):
        graph = nx.path_graph(2)
        with pytest.raises(BandwidthExceeded):
            run_program(graph, BigSender, bandwidth=10, strict=True)

    def test_metrics_accumulate(self):
        graph = nx.cycle_graph(5)
        result = run_program(graph, FloodProgram, bandwidth=64)
        assert result.total_messages >= 5
        assert result.total_bits >= result.total_messages
        assert result.max_edge_bits_per_round <= 64

    def test_unanimous_output(self):
        graph = nx.path_graph(3)

        class Fixed(NodeProgram):
            def on_start(self, node):
                node.halt("same")

            def on_round(self, node, round_no, inbox):
                pass

        result = run_program(graph, Fixed)
        assert result.unanimous_output() == "same"

    def test_unanimous_raises_on_disagreement(self):
        graph = nx.path_graph(3)

        class ById(NodeProgram):
            def on_start(self, node):
                node.halt(node.id)

            def on_round(self, node, round_no, inbox):
                pass

        result = run_program(graph, ById)
        with pytest.raises(ValueError):
            result.unanimous_output()

    def test_quiescence_stop(self):
        graph = nx.path_graph(4)

        class Silent(NodeProgram):
            def on_start(self, node):
                if node.id == 0:
                    node.broadcast(("x",))

            def on_round(self, node, round_no, inbox):
                pass  # never halts, never answers

        network = CongestNetwork(graph, Silent, bandwidth=8)
        result = network.run(max_rounds=500, stop_on_quiescence=True)
        assert result.rounds < 10

    def test_send_to_non_neighbor_rejected(self):
        graph = nx.path_graph(3)

        class Bad(NodeProgram):
            def on_start(self, node):
                if node.id == 0:
                    node.send(2, "x")

            def on_round(self, node, round_no, inbox):
                node.halt()

        with pytest.raises(ValueError):
            run_program(graph, Bad)

    def test_halted_node_cannot_send(self):
        graph = nx.path_graph(2)
        network = CongestNetwork(graph, EchoOnce, bandwidth=8)
        network.run()
        with pytest.raises(RuntimeError):
            network.nodes[0].send(1, "late")

    def test_inputs_delivered(self):
        graph = nx.path_graph(2)

        class ReadInput(NodeProgram):
            def on_start(self, node):
                node.halt(node.input)

            def on_round(self, node, round_no, inbox):
                pass

        result = run_program(graph, ReadInput, inputs={0: "a", 1: "b"})
        assert result.outputs == {0: "a", 1: "b"}

    def test_message_log_records_rounds(self):
        graph = nx.path_graph(3)
        network = CongestNetwork(graph, FloodProgram, bandwidth=64, record_messages=True)
        network.run()
        rounds_in_log = [entry[0] for entry in network.message_log]
        assert 0 in rounds_in_log  # on_start send
        assert max(rounds_in_log) >= 1

    def test_message_log_off_by_default(self):
        # The per-message log grows unboundedly, so it is opt-in; the
        # aggregate metrics are unaffected.
        graph = nx.path_graph(3)
        network = CongestNetwork(graph, FloodProgram, bandwidth=64)
        network.run()
        assert network.message_log == []
        assert network.total_messages > 0

    def test_engine_selection(self):
        from repro.congest.engine import DenseEngine, EventEngine, get_engine

        graph = nx.path_graph(4)
        assert isinstance(CongestNetwork(graph, FloodProgram).engine, EventEngine)
        assert isinstance(CongestNetwork(graph, FloodProgram, engine="dense").engine, DenseEngine)
        engine = DenseEngine()
        assert get_engine(engine) is engine
        with pytest.raises(ValueError, match="unknown engine"):
            CongestNetwork(graph, FloodProgram, engine="bogus")

    def test_both_engines_strict_mode(self):
        graph = nx.path_graph(2)
        for engine in ("dense", "event", "columnar"):
            with pytest.raises(BandwidthExceeded):
                run_program(graph, BigSender, bandwidth=10, strict=True, engine=engine)
