"""Tests for the Server model and the Section 3.1 equivalence."""

import pytest

pytest.importorskip("numpy")  # the comm/server stack is numpy-bound

from repro.comm.classical import RandomizedEqualityProtocol
from repro.comm.problems import equality
from repro.core.server_model import (
    CAROL,
    DAVID,
    SERVER,
    ServerChannel,
    ServerProtocol,
    StructuredServerProtocol,
    TwoPartyAsServerProtocol,
    two_party_simulation_of_server,
)


class TestServerChannel:
    def test_cost_counts_only_carol_and_david(self):
        channel = ServerChannel()
        channel.send(CAROL, SERVER, "x", bits=5)
        channel.send(DAVID, SERVER, "y", bits=3)
        channel.send(SERVER, CAROL, "huge", bits=1_000_000)
        assert channel.cost == 8

    def test_entanglement_dispensing_free(self):
        channel = ServerChannel()
        channel.dispense_entanglement("EPR x 1000")
        assert channel.cost == 0
        assert len(channel.transcript) == 2

    def test_invalid_parties_rejected(self):
        channel = ServerChannel()
        with pytest.raises(ValueError):
            channel.send("mallory", SERVER, "x", bits=1)
        with pytest.raises(ValueError):
            channel.send(CAROL, CAROL, "x", bits=1)


class TestTwoPartyLift:
    def test_lifted_protocol_same_cost(self):
        eq = equality(8)
        inner = RandomizedEqualityProtocol(repetitions=6)
        lifted = TwoPartyAsServerProtocol(inner)
        x = (1, 0, 1, 0, 1, 0, 1, 0)
        inner_result = inner.run(x, x, seed=7)
        lifted_result = lifted.run(x, x, seed=7)
        assert lifted_result.output == inner_result.output
        assert lifted_result.cost == inner_result.total_communication
        assert lifted_result.server_bits == 0


def make_xor_exchange_protocol(n_rounds: int = 3) -> StructuredServerProtocol:
    """Toy structured protocol: Carol and David stream their bits to the
    server, which reflects the running XOR back; Carol outputs the final XOR.
    Deterministic, so the Section 3.1 simulation applies."""

    def carol_message(x, view, t):
        return (x[t % len(x)],)

    def david_message(y, view, t):
        return (y[t % len(y)],)

    def server_message(carol_sent, david_sent, t):
        xor = 0
        for bits in carol_sent:
            for b in bits:
                xor ^= b
        for bits in david_sent:
            for b in bits:
                xor ^= b
        return xor, xor

    def carol_output(x, view):
        return view[-1]

    return StructuredServerProtocol(
        n_rounds=n_rounds,
        carol_message=carol_message,
        david_message=david_message,
        server_message=server_message,
        carol_output=carol_output,
    )


class TestStructuredProtocol:
    def test_runs_and_costs(self):
        proto = make_xor_exchange_protocol(3)
        result = proto.run((1, 0, 1), (0, 1, 1))
        assert result.carol_bits == 3
        assert result.david_bits == 3
        assert result.cost == 6
        # XOR of all six streamed bits.
        assert result.output == (1 ^ 0 ^ 1) ^ (0 ^ 1 ^ 1)

    def test_two_party_simulation_matches_exactly(self):
        # The Section 3.1 theorem: identical output, identical cost.
        proto = make_xor_exchange_protocol(4)
        for x, y in [((1, 0, 1, 1), (0, 1, 1, 0)), ((0, 0, 0, 0), (1, 1, 1, 1))]:
            server_result = proto.run(x, y)
            sim = two_party_simulation_of_server(proto, x, y)
            assert sim.output == server_result.output
            assert sim.total_bits == server_result.cost

    def test_simulation_over_many_inputs(self):
        import random

        proto = make_xor_exchange_protocol(5)
        rng = random.Random(0)
        for _ in range(25):
            x = tuple(rng.randrange(2) for _ in range(5))
            y = tuple(rng.randrange(2) for _ in range(5))
            assert two_party_simulation_of_server(proto, x, y).output == proto.run(x, y).output


class TestServerProtocolBase:
    def test_abstract_execute(self):
        with pytest.raises(NotImplementedError):
            ServerProtocol().execute(None, None, ServerChannel(), None)
