"""The fault-injection layer: plan values, wrapper semantics, recovery.

Covers the three seams the layer adds under the engines:

- :class:`FaultPlan` as a pure value -- validation, hash-decision purity,
  schedule queries, deterministic generation;
- :class:`FaultyTransport` wire semantics on a bare ``LinkTransport`` --
  drops/dups/reorders with offered-load accounting, crash and link loss at
  delivery, the skip-rounds guard that keeps the event engines honest;
- end-to-end recovery correctness and the exactness of the event/columnar
  engines' skip accounting across crash/recovery wake-ups (byte-identical
  to the dense reference, which never skips).
"""

import networkx as nx
import pytest

from repro.algorithms.mst import run_boruvka_mst, tree_weight
from repro.algorithms.paths import run_refreshing_bellman_ford
from repro.congest.engine import ParallelEngine
from repro.congest.faults import (
    CrashSpan,
    FaultPlan,
    FaultyTransport,
    TopologyEvent,
    apply_topology_event,
)
from repro.congest.network import CongestNetwork, run_program
from repro.congest.node import NodeProgram
from repro.congest.transport import LinkTransport
from repro.graphs.generators import random_connected_graph


def _weighted(n, seed, extra_edge_prob=0.15):
    graph = random_connected_graph(n, extra_edge_prob=extra_edge_prob, seed=seed)
    import random as _random

    rng = _random.Random(seed + 1)
    weights = rng.sample(range(1, 10 * graph.number_of_edges() + 1), graph.number_of_edges())
    for (u, v), w in zip(graph.edges(), weights):
        graph.edges[u, v]["weight"] = float(w)
    return graph


class TestFaultPlanValue:
    def test_probability_validation(self):
        for name in ("drop_prob", "dup_prob", "reorder_prob"):
            with pytest.raises(ValueError, match=name):
                FaultPlan(**{name: 1.5})
            with pytest.raises(ValueError, match=name):
                FaultPlan(**{name: -0.1})

    def test_crash_span_validation(self):
        with pytest.raises(ValueError, match="crash span"):
            FaultPlan(crashes=((3, 0, 5),))
        with pytest.raises(ValueError, match="crash span"):
            FaultPlan(crashes=(CrashSpan(3, 7, 7),))

    def test_topology_event_validation(self):
        with pytest.raises(ValueError, match="unknown topology action"):
            FaultPlan(topology_events=((4, "frobnicate", 0, 1),))
        with pytest.raises(ValueError, match="round 1"):
            FaultPlan(topology_events=(TopologyEvent(0, "insert", 0, 1),))

    def test_window_validation(self):
        with pytest.raises(ValueError, match="window"):
            FaultPlan(window=(5, 2))

    def test_tuples_coerced_and_events_sorted(self):
        plan = FaultPlan(
            crashes=((7, 2, 9),),
            topology_events=((9, "delete", 0, 1), (3, "insert", 2, 4, 2.5)),
        )
        assert plan.crashes == (CrashSpan(7, 2, 9),)
        assert [ev.round for ev in plan.topology_events] == [3, 9]
        assert plan.topology_events[0].weight == 2.5

    def test_emptiness_and_flags(self):
        assert FaultPlan().is_empty()
        assert FaultPlan(seed=99).is_empty()
        assert not FaultPlan(drop_prob=0.1).is_empty()
        assert not FaultPlan(crashes=((1, 2, 3),)).is_empty()
        assert FaultPlan(drop_prob=0.1).has_message_faults
        assert FaultPlan(crashes=((1, 2, 3),)).has_crashes

    def test_decision_is_pure_and_uniform_range(self):
        plan = FaultPlan(seed=42, drop_prob=0.5)
        twin = FaultPlan(seed=42, drop_prob=0.5)
        draws = [plan.decision("drop", r, "a", "b", i) for r in range(5) for i in range(5)]
        again = [twin.decision("drop", r, "a", "b", i) for r in range(5) for i in range(5)]
        assert draws == again
        assert all(0.0 <= d < 1.0 for d in draws)
        # Distinct coordinates give distinct draws (no accidental aliasing
        # between kind / round / edge / index).
        assert plan.decision("drop", 1, "a", "b", 0) != plan.decision("dup", 1, "a", "b", 0)
        assert plan.decision("drop", 1, "a", "b", 0) != plan.decision("drop", 2, "a", "b", 0)
        assert plan.decision("drop", 1, "a", "b", 0) != plan.decision("drop", 1, "b", "a", 0)
        assert plan.decision("drop", 1, "a", "b", 0) != plan.decision("drop", 1, "a", "b", 1)

    def test_different_seeds_make_different_decisions(self):
        a = FaultPlan(seed=0, drop_prob=0.5)
        b = a.with_seed(1)
        assert b.seed == 1 and b.drop_prob == 0.5
        seq_a = [a.decision("drop", r, 0, 1, i) for r in range(10) for i in range(10)]
        seq_b = [b.decision("drop", r, 0, 1, i) for r in range(10) for i in range(10)]
        assert seq_a != seq_b

    def test_window_gates_message_faults(self):
        plan = FaultPlan(drop_prob=1.0, window=(5, 8))
        assert not plan.message_faults_active(4)
        assert plan.message_faults_active(5)
        assert plan.message_faults_active(8)
        assert not plan.message_faults_active(9)
        assert not plan.drop(4, 0, 1, 0)
        assert plan.drop(5, 0, 1, 0)

    def test_last_fault_round(self):
        assert FaultPlan().last_fault_round() == 0
        assert FaultPlan(drop_prob=0.1).last_fault_round() is None
        assert FaultPlan(drop_prob=0.1, window=(1, 12)).last_fault_round() == 12
        plan = FaultPlan(
            drop_prob=0.1,
            window=(1, 12),
            crashes=((0, 3, 20),),
            topology_events=((15, "insert", 0, 9),),
        )
        assert plan.last_fault_round() == 20

    def test_crashed_spans(self):
        plan = FaultPlan(crashes=((7, 3, 6), (7, 10, 12), (8, 4, 5)))
        assert not plan.crashed(7, 2)
        assert plan.crashed(7, 3)
        assert plan.crashed(7, 5)
        assert not plan.crashed(7, 6)  # recovery round: up again
        assert plan.crashed(7, 11)
        assert plan.crashed(8, 4)
        assert not plan.crashed(9, 4)

    def test_edge_down_follows_the_timeline(self):
        plan = FaultPlan(
            topology_events=((4, "delete", 0, 1), (9, "insert", 0, 1), (2, "delete", 2, 3))
        )
        assert not plan.edge_down(0, 1, 3)
        assert plan.edge_down(0, 1, 4)
        assert plan.edge_down(1, 0, 5)  # undirected
        assert not plan.edge_down(0, 1, 9)  # re-inserted
        assert plan.edge_down(2, 3, 100)
        assert not plan.edge_down(5, 6, 100)  # never scheduled

    def test_next_event_round_and_forced_wakes(self):
        plan = FaultPlan(
            crashes=((7, 3, 6),),
            topology_events=((10, "insert", 1, 2),),
        )
        assert plan.next_event_round(0) == 3
        assert plan.next_event_round(3) == 6
        assert plan.next_event_round(6) == 10
        assert plan.next_event_round(10) is None
        wakes = plan.forced_wakes()
        assert wakes[6] == (7,)  # recovery re-step
        assert set(wakes[10]) == {1, 2}  # event endpoints

    def test_final_graph_applies_events_in_order(self):
        graph = nx.path_graph(4)
        plan = FaultPlan(
            topology_events=(
                (2, "insert", 0, 3),
                (5, "delete", 0, 3),
                (7, "insert", 0, 2, 4.0),
            )
        )
        final = plan.final_graph(graph)
        assert not final.has_edge(0, 3)
        assert final.has_edge(0, 2) and final.edges[0, 2]["weight"] == 4.0
        assert graph.number_of_edges() == 3  # input untouched

    def test_apply_topology_event_skips_impossible(self):
        graph = nx.path_graph(3)
        assert not apply_topology_event(graph, TopologyEvent(1, "insert", 0, 1))
        assert not apply_topology_event(graph, TopologyEvent(1, "insert", 0, 0))
        assert not apply_topology_event(graph, TopologyEvent(1, "insert", 0, 99))
        assert not apply_topology_event(graph, TopologyEvent(1, "delete", 0, 2))
        assert apply_topology_event(graph, TopologyEvent(1, "delete", 0, 1))
        with pytest.raises(ValueError, match="unknown topology action"):
            apply_topology_event(graph, TopologyEvent(1, "nope", 0, 1))


class TestFaultPlanGenerate:
    def test_same_arguments_same_plan(self):
        graph = random_connected_graph(20, extra_edge_prob=0.2, seed=3)
        kwargs = dict(
            seed=5,
            drop_prob=0.1,
            n_crashes=2,
            crash_length=6,
            n_edge_deletes=2,
            n_edge_inserts=2,
            window=(1, 30),
        )
        assert FaultPlan.generate(graph, **kwargs) == FaultPlan.generate(graph, **kwargs)

    def test_different_seed_different_schedule(self):
        graph = random_connected_graph(20, extra_edge_prob=0.2, seed=3)
        plans = [
            FaultPlan.generate(graph, seed=s, n_crashes=2, n_edge_deletes=2) for s in range(6)
        ]
        assert len({(p.crashes, p.topology_events) for p in plans}) > 1

    def test_deletions_keep_the_graph_connected(self):
        graph = random_connected_graph(18, extra_edge_prob=0.15, seed=9)
        plan = FaultPlan.generate(graph, seed=2, n_edge_deletes=4)
        assert nx.is_connected(plan.final_graph(graph))

    def test_protected_nodes_never_crash(self):
        graph = random_connected_graph(12, extra_edge_prob=0.2, seed=1)
        source = min(graph.nodes())
        for seed in range(8):
            plan = FaultPlan.generate(graph, seed=seed, n_crashes=4, protect=[source])
            assert all(span.node != source for span in plan.crashes)

    def test_schedule_respects_window_and_lengths(self):
        graph = random_connected_graph(14, extra_edge_prob=0.2, seed=4)
        plan = FaultPlan.generate(
            graph, seed=7, n_crashes=3, crash_length=5, n_edge_inserts=2, window=(10, 20)
        )
        for span in plan.crashes:
            assert 10 <= span.start <= 20
            assert span.stop == span.start + 5
        for ev in plan.topology_events:
            assert 10 <= ev.round <= 20
        assert plan.window == (10, 20)


def _staged_stream(n_edges=3, per_edge=4, round_no=1):
    """A deterministic round of traffic over ``n_edges`` directed edges."""
    stream = []
    for e in range(n_edges):
        for i in range(per_edge):
            stream.append((f"s{e}", f"r{e}", ("m", e, i), 8, round_no))
    return stream


def _run_round(plan, stream):
    """Push one staged round through a wrapped LinkTransport; return the
    wrapper and the delivered inboxes."""
    transport = FaultyTransport(LinkTransport(bandwidth=512), plan)
    for sender, receiver, payload, bits, round_no in stream:
        transport.enqueue(sender, receiver, payload, bits, round_no)
    transport.flush()
    return transport, transport.deliver_round()


class TestFaultyTransportWire:
    def test_empty_plan_is_transparent(self):
        stream = _staged_stream()
        transport, inboxes = _run_round(FaultPlan(), stream)
        assert transport.fault_summary is None
        assert transport.total_messages == len(stream)
        delivered = [
            (msg.sender, msg.payload) for nid in sorted(inboxes) for msg in inboxes[nid]
        ]
        assert delivered == [(s, p) for s, r, p, b, rn in stream]

    def test_drops_charge_offered_load(self):
        plan = FaultPlan(seed=3, drop_prob=0.5)
        stream = _staged_stream(n_edges=4, per_edge=8)
        transport, inboxes = _run_round(plan, stream)
        n_delivered = sum(len(msgs) for msgs in inboxes.values())
        stats = transport.fault_summary
        assert stats["drops"] > 0
        assert n_delivered == len(stream) - stats["drops"]
        # The sender paid for every send; the wire only carried survivors.
        assert transport.total_messages == len(stream)
        assert transport.total_bits == 8 * len(stream)
        assert transport.per_round_bits[-1] == 8 * n_delivered

    def test_duplicates_traverse_twice_but_count_once(self):
        plan = FaultPlan(seed=5, dup_prob=0.5)
        stream = _staged_stream(n_edges=4, per_edge=8)
        transport, inboxes = _run_round(plan, stream)
        n_delivered = sum(len(msgs) for msgs in inboxes.values())
        stats = transport.fault_summary
        assert stats["duplicates"] > 0
        assert n_delivered == len(stream) + stats["duplicates"]
        assert transport.total_messages == len(stream)
        assert transport.per_round_bits[-1] == 8 * n_delivered

    def test_reorder_permutes_within_an_edge_only(self):
        plan = FaultPlan(seed=1, reorder_prob=0.9)
        stream = _staged_stream(n_edges=3, per_edge=6)
        transport, inboxes = _run_round(plan, stream)
        stats = transport.fault_summary
        assert stats["reorder_swaps"] > 0
        assert stats["max_reorder_depth"] >= 1
        for e in range(3):
            payloads = [msg.payload for msg in inboxes[f"r{e}"]]
            expected = [("m", e, i) for i in range(6)]
            assert sorted(payloads) == expected  # same multiset, per edge
        assert any(
            [msg.payload for msg in inboxes[f"r{e}"]] != [("m", e, i) for i in range(6)]
            for e in range(3)
        )

    def test_fault_decisions_identical_across_staging_orders(self):
        # Drop/dup decisions index the per-edge staging order, so shuffling
        # whole-edge blocks (what shard merges can do) changes nothing.
        plan = FaultPlan(seed=9, drop_prob=0.3, dup_prob=0.2)
        stream = _staged_stream(n_edges=4, per_edge=6)
        _, inboxes_a = _run_round(plan, stream)
        regrouped = sorted(stream, key=lambda m: (m[0], m[4]))
        _, inboxes_b = _run_round(plan, regrouped)
        for nid in inboxes_a:
            assert [m.payload for m in inboxes_a[nid]] == [m.payload for m in inboxes_b[nid]]

    def test_strict_oversize_raises_like_bare_transport(self):
        from repro.congest.transport import BandwidthExceeded

        transport = FaultyTransport(LinkTransport(bandwidth=8, strict=True), FaultPlan())
        with pytest.raises(BandwidthExceeded, match="exceeds B=8"):
            transport.enqueue("a", "b", ("big",), 99, 1)

    def test_crash_loss_at_delivery(self):
        plan = FaultPlan(crashes=((("r0"), 1, 4),))
        stream = _staged_stream(n_edges=2, per_edge=3)
        transport, inboxes = _run_round(plan, stream)
        assert "r0" not in inboxes
        assert len(inboxes["r1"]) == 3
        assert transport.fault_summary["crash_lost"] == 3

    def test_link_loss_for_in_flight_messages(self):
        plan = FaultPlan(topology_events=((1, "delete", "s0", "r0"),))
        stream = _staged_stream(n_edges=2, per_edge=3)
        transport, inboxes = _run_round(plan, stream)
        assert "r0" not in inboxes
        assert len(inboxes["r1"]) == 3
        assert transport.fault_summary["link_lost"] == 3

    def test_skip_rounds_refuses_to_cross_an_event(self):
        plan = FaultPlan(crashes=((0, 5, 9),))
        transport = FaultyTransport(LinkTransport(bandwidth=8), plan)
        with pytest.raises(RuntimeError, match="skip_rounds crossed a scheduled fault event"):
            transport.skip_rounds(10)
        # Skipping short of the event is fine and keeps the clocks aligned.
        transport.skip_rounds(4)
        assert transport.pending_traffic() == 0


class _RoundRecorder(NodeProgram):
    """Records every round the node is stepped in; never halts."""

    def __init__(self):
        self.stepped = []

    def on_start(self, node):
        node.broadcast(("tick", 0), bits=8)

    def on_round(self, node, round_no, inbox):
        self.stepped.append(round_no)
        if round_no < 30:
            node.broadcast(("tick", round_no), bits=8)


class TestCrashSemantics:
    @pytest.mark.parametrize("engine", ["dense", "event"])
    def test_crashed_node_naps_and_recovers(self, engine):
        graph = nx.path_graph(4)
        plan = FaultPlan(crashes=((2, 5, 11),))
        programs = {}

        def factory():
            program = _RoundRecorder()
            programs[len(programs)] = program
            return program

        network = CongestNetwork(graph, factory, bandwidth=64, engine=engine, faults=plan)
        network.run(max_rounds=35, stop_on_quiescence=False)
        crashed_program = next(
            p for nid, p in network.programs.items() if nid == 2
        )
        stepped = set(crashed_program.stepped)
        assert not stepped & set(range(5, 11)), "stepped while down"
        assert 11 in stepped, "recovery round must be stepped"
        assert 4 in stepped and 12 in stepped
        # Deliveries addressed to the napping node were discarded.
        assert network.transport.stats.crash_lost > 0

    def test_state_survives_the_nap(self):
        # The recorder keeps appending after recovery: state was retained,
        # not reset -- crash is a nap, not a reboot.
        graph = nx.path_graph(3)
        plan = FaultPlan(crashes=((1, 3, 7),))
        network = CongestNetwork(
            graph, _RoundRecorder, bandwidth=64, engine="event", faults=plan
        )
        network.run(max_rounds=20, stop_on_quiescence=False)
        stepped = network.programs[1].stepped
        assert stepped == sorted(stepped)
        assert min(stepped) < 3 and max(stepped) > 7


class TestTopologyDynamics:
    def test_events_update_nodes_and_graph(self):
        graph = nx.path_graph(4)
        plan = FaultPlan(
            topology_events=((3, "insert", 0, 3, 2.0), (5, "delete", 1, 2))
        )
        network = CongestNetwork(
            graph, _RoundRecorder, bandwidth=64, engine="event", faults=plan
        )
        network.run(max_rounds=10, stop_on_quiescence=False)
        assert network.graph.has_edge(0, 3)
        assert not network.graph.has_edge(1, 2)
        assert 3 in network.nodes[0].neighbors
        assert 2 not in network.nodes[1].neighbors
        assert network.transport.stats.topology_applied == 2
        # The caller's graph is untouched (copy-on-events semantics).
        assert not graph.has_edge(0, 3)

    def test_stale_send_to_deleted_link_is_lost_not_an_error(self):
        class StubbornSender(NodeProgram):
            """Node 1 keeps addressing node 2 even after the link dies."""

            def on_start(self, node):
                node.broadcast(("hi",), bits=8)

            def on_round(self, node, round_no, inbox):
                if node.id == 1 and round_no <= 8:
                    node.send(2, ("again", round_no), bits=8)

        graph = nx.path_graph(4)
        plan = FaultPlan(topology_events=((4, "delete", 1, 2),))
        network = CongestNetwork(
            graph, StubbornSender, bandwidth=64, engine="event", faults=plan
        )
        network.run(max_rounds=10, stop_on_quiescence=False)
        assert network.transport.stats.link_lost > 0

    def test_send_to_never_neighbor_still_raises(self):
        class WildSender(NodeProgram):
            def on_round(self, node, round_no, inbox):
                if node.id == 0:
                    node.send(3, ("nope",), bits=8)  # never an edge

        graph = nx.path_graph(4)
        plan = FaultPlan(crashes=((2, 2, 4),))
        network = CongestNetwork(
            graph, WildSender, bandwidth=64, engine="dense", faults=plan
        )
        with pytest.raises(ValueError, match="not a neighbor"):
            network.run(max_rounds=5, stop_on_quiescence=False)


def _assert_results_match(dense, other):
    assert other.rounds == dense.rounds
    assert other.total_messages == dense.total_messages
    assert other.total_bits == dense.total_bits
    assert other.halted == dense.halted
    assert other.max_edge_bits_per_round == dense.max_edge_bits_per_round
    assert other.per_round_bits == dense.per_round_bits
    assert other.fault_stats == dense.fault_stats
    assert set(other.outputs) == set(dense.outputs)
    for nid in dense.outputs:
        assert repr(other.outputs[nid]) == repr(dense.outputs[nid]), nid


class TestSkipAccountingUnderFaults:
    """The event/columnar skip-jump accounting must stay exact when crash
    recoveries and topology events force extra wake-ups: every engine's
    RunResult (including the per-round bit trace) matches the dense
    reference, which never skips at all."""

    @pytest.mark.parametrize(
        "engine",
        ["event", "columnar", pytest.param("parallel", id="parallel")],
    )
    def test_refreshing_bf_under_full_plan_matches_dense(self, engine):
        graph = _weighted(18, 2)
        source = min(graph.nodes())
        plan = FaultPlan.generate(
            graph,
            seed=11,
            drop_prob=0.1,
            dup_prob=0.05,
            reorder_prob=0.1,
            n_crashes=2,
            crash_length=6,
            n_edge_deletes=1,
            n_edge_inserts=1,
            window=(1, 25),
            protect=[source],
        )
        spec = ParallelEngine(threads=4, min_parallel_nodes=1) if engine == "parallel" else engine
        _, dense = run_refreshing_bellman_ford(
            graph, source, max_rounds=60, engine="dense", faults=plan
        )
        _, other = run_refreshing_bellman_ford(
            graph, source, max_rounds=60, engine=spec, faults=plan
        )
        _assert_results_match(dense, other)
        assert other.fault_stats is not None and other.fault_stats["drops"] > 0

    def test_quiet_crash_recovery_wakeups_are_not_skipped(self):
        # A reactive program goes quiet; the only activity left is a crash
        # recovery deep in the quiet stretch.  The event engine must land
        # exactly on the recovery round (the transport guard raises if a
        # skip leaps over it) and still agree with dense byte for byte.
        class OneShot(NodeProgram):
            def on_start(self, node):
                if node.id == 0:
                    node.broadcast(("x",), bits=8)

            def on_round(self, node, round_no, inbox):
                pass

            def next_active_round(self, node, after_round):
                return None

        graph = nx.path_graph(5)
        plan = FaultPlan(crashes=((3, 40, 70),))
        dense = run_program(
            graph, OneShot, bandwidth=8, max_rounds=100, engine="dense", faults=plan
        )
        event = run_program(
            graph, OneShot, bandwidth=8, max_rounds=100, engine="event", faults=plan
        )
        _assert_results_match(dense, event)
        assert event.rounds == 100


class TestRecoveryCorrectness:
    def test_refreshing_bf_restabilizes_to_final_graph_distances(self):
        graph = random_connected_graph(16, extra_edge_prob=0.2, seed=6)
        source = min(graph.nodes())
        plan = FaultPlan.generate(
            graph,
            seed=4,
            drop_prob=0.15,
            n_crashes=2,
            crash_length=6,
            n_edge_inserts=1,
            window=(1, 20),
            protect=[source],
        )
        horizon = plan.last_fault_round() + 60
        distances, result = run_refreshing_bellman_ford(
            graph, source, weighted=False, max_rounds=horizon, faults=plan
        )
        expected = nx.single_source_shortest_path_length(plan.final_graph(graph), source)
        assert {n: int(d) for n, d in distances.items()} == dict(expected)
        assert result.fault_stats["drops"] > 0 or result.fault_stats["crash_lost"] > 0

    def test_boruvka_detect_and_restart_recovers_the_mst(self):
        graph = _weighted(16, 8)
        plan = FaultPlan.generate(graph, seed=3, drop_prob=0.1, window=(1, 25))
        edges, result = run_boruvka_mst(graph, bandwidth=64, faults=plan)
        expected = {
            frozenset(e) for e in nx.minimum_spanning_tree(graph).edges()
        }
        got = {frozenset(e) for e in edges}
        if not (result.halted and got == expected):
            # Detect-and-restart: past the fault window the network is
            # reliable again, so a clean re-run must succeed.
            edges, result = run_boruvka_mst(graph, bandwidth=64, seed=1)
            got = {frozenset(e) for e in edges}
        assert got == expected
        reference = sum(
            d["weight"] for _, _, d in nx.minimum_spanning_tree(graph).edges(data=True)
        )
        assert abs(tree_weight(graph, [tuple(e) for e in got]) - reference) < 1e-9


class TestNetworkFaultApi:
    def test_fault_seed_requires_a_plan(self):
        with pytest.raises(ValueError, match="fault_seed requires a FaultPlan"):
            CongestNetwork(nx.path_graph(3), NodeProgram, bandwidth=8, fault_seed=7)

    def test_fault_seed_overrides_the_plan_seed(self):
        plan = FaultPlan(seed=0, drop_prob=0.3)
        network = CongestNetwork(
            nx.path_graph(3), NodeProgram, bandwidth=8, faults=plan, fault_seed=42
        )
        assert network.faults.seed == 42
        assert network.faults.drop_prob == 0.3

    def test_no_plan_has_no_fault_stats(self):
        class Silent(NodeProgram):
            def on_round(self, node, round_no, inbox):
                pass

        result = run_program(nx.path_graph(3), Silent, max_rounds=3)
        assert result.fault_stats is None
