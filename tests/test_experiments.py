"""The experiment harness: registry, sweep expansion, store, runner, CLI."""

import json
import time

import pytest

from repro.experiments import (
    ParamSpec,
    ResultStore,
    ScenarioNotFound,
    cache_key,
    expand_grid,
    get_scenario,
    list_scenarios,
    run_sweep,
    scenario,
)
from repro.experiments.cli import main as cli_main
from repro.experiments.sweep import derive_seed, parse_axis_overrides

BUILTINS = (
    "boruvka-mst-sweep",
    "chsh-gamma2",
    "example11-disjointness",
    "fig2-bound-table",
    "fig3-mst-tradeoff",
    "gkp-cap-ablation",
    "server-model-equivalence",
    "spanner-skeleton",
    "verification-suite",
)


@scenario(
    "test-echo",
    params=[ParamSpec("x", int, 1), ParamSpec("label", str, "a")],
    default_grid={"x": [1, 2]},
)
def _echo(*, seed, x, label):
    return {"x": x, "label": label, "seed_mod": seed % 1000}


@scenario("test-always-fails", params=[ParamSpec("x", int, 1)])
def _always_fails(*, seed, x):
    raise RuntimeError("deliberate failure")


@scenario("test-sleepy", params=[ParamSpec("delay", float, 5.0)])
def _sleepy(*, seed, delay):
    time.sleep(delay)
    return {"slept": delay}


class TestRegistry:
    def test_builtin_catalog_discoverable(self):
        names = {s.name for s in list_scenarios()}
        assert set(BUILTINS) <= names

    def test_get_scenario_loads_builtins(self):
        scn = get_scenario("fig3-mst-tradeoff")
        assert scn.name == "fig3-mst-tradeoff"
        assert {p.name for p in scn.params} >= {"n", "aspect_ratio", "alpha"}
        assert scn.default_grid["aspect_ratio"]  # multi-point by default
        assert len(scn.default_grid["aspect_ratio"]) >= 2

    def test_unknown_scenario_raises(self):
        with pytest.raises(ScenarioNotFound):
            get_scenario("no-such-scenario")

    def test_resolve_params_coerces_and_rejects_unknown(self):
        scn = get_scenario("test-echo")
        assert scn.resolve_params({"x": "7"}) == {"x": 7, "label": "a"}
        with pytest.raises(KeyError, match="unknown parameter"):
            scn.resolve_params({"bogus": 1})

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            scenario("test-echo")(lambda *, seed: {})


class TestSweepExpansion:
    def test_grid_is_cartesian_and_ordered(self):
        scn = get_scenario("test-echo")
        points = expand_grid(scn, {"x": [1, 2], "label": ["a", "b"]})
        assert [(p.params["x"], p.params["label"]) for p in points] == [
            (1, "a"), (1, "b"), (2, "a"), (2, "b"),
        ]
        assert [p.index for p in points] == [0, 1, 2, 3]

    def test_same_grid_and_seed_give_identical_cache_keys(self):
        scn = get_scenario("test-echo")
        first = expand_grid(scn, {"x": [1, 2, 3]}, replicates=2, base_seed=42)
        second = expand_grid(scn, {"x": [1, 2, 3]}, replicates=2, base_seed=42)
        assert [p.seed for p in first] == [p.seed for p in second]
        keys_first = [cache_key(p.scenario, p.params, p.seed) for p in first]
        keys_second = [cache_key(p.scenario, p.params, p.seed) for p in second]
        assert keys_first == keys_second
        assert len(set(keys_first)) == len(keys_first)  # all distinct

    def test_seed_derivation_varies_with_everything(self):
        base = derive_seed("s", {"x": 1}, 0, 0)
        assert derive_seed("s", {"x": 2}, 0, 0) != base
        assert derive_seed("s", {"x": 1}, 1, 0) != base
        assert derive_seed("s", {"x": 1}, 0, 1) != base
        assert derive_seed("other", {"x": 1}, 0, 0) != base

    def test_scalar_axis_and_defaults(self):
        scn = get_scenario("test-echo")
        points = expand_grid(scn, {"x": 5})
        assert len(points) == 1
        assert points[0].params == {"x": 5, "label": "a"}
        # No grid: the registered default grid applies.
        assert [p.params["x"] for p in expand_grid(scn)] == [1, 2]

    def test_unknown_axis_rejected(self):
        with pytest.raises(KeyError, match="unknown grid axis"):
            expand_grid(get_scenario("test-echo"), {"bogus": [1]})

    def test_parse_axis_overrides(self):
        assert parse_axis_overrides(["x=1,2,3", "label=b"]) == {
            "x": ["1", "2", "3"],
            "label": ["b"],
        }
        with pytest.raises(ValueError):
            parse_axis_overrides(["nonsense"])


class TestStoreAndCache:
    def test_cache_hit_skips_execution(self, tmp_path):
        store = ResultStore(tmp_path)
        points = expand_grid(get_scenario("test-echo"), {"x": [1, 2, 3]})
        first = run_sweep(points, store=store)
        assert (first.cached, first.executed) == (0, 3)
        second = run_sweep(points, store=store)
        assert (second.cached, second.executed) == (3, 0)
        assert second.results() == first.results()

    def test_force_reruns(self, tmp_path):
        store = ResultStore(tmp_path)
        points = expand_grid(get_scenario("test-echo"), {"x": [1]})
        run_sweep(points, store=store)
        report = run_sweep(points, store=store, force=True)
        assert (report.cached, report.executed) == (0, 1)

    def test_records_are_json_on_disk(self, tmp_path):
        store = ResultStore(tmp_path)
        points = expand_grid(get_scenario("test-echo"), {"x": [1, 2]})
        run_sweep(points, store=store)
        files = sorted((tmp_path / "test-echo").glob("*.json"))
        assert len(files) == 2
        record = json.loads(files[0].read_text())
        assert record["scenario"] == "test-echo"
        assert record["status"] == "ok"
        assert set(record) >= {"key", "params", "seed", "result", "code_version"}

    def test_version_bump_invalidates_cache(self):
        key = cache_key("s", {"x": 1}, 7, scenario_version="1")
        assert cache_key("s", {"x": 1}, 7, scenario_version="2") != key
        assert cache_key("s", {"x": 1}, 7, code_version="9.9.9") != key

    def test_failure_captured_not_raised(self, tmp_path):
        store = ResultStore(tmp_path)
        points = expand_grid(get_scenario("test-always-fails"))
        report = run_sweep(points, store=store)
        assert report.failed == 1 and not report.ok
        record = report.records[0]
        assert record.status == "error"
        assert "deliberate failure" in record.error
        # Failures are persisted (resumable) and served from cache too --
        # and a cached failure still fails the resumed sweep.
        resumed = run_sweep(points, store=store)
        assert (resumed.cached, resumed.executed) == (1, 0)
        assert resumed.failed == 1 and not resumed.ok


class TestParallelRunner:
    def test_parallel_matches_serial(self, tmp_path):
        points = expand_grid(
            get_scenario("chsh-gamma2"), {"restarts": [1, 2, 3, 4], "iterations": 60}
        )
        serial = run_sweep(points, store=None, workers=1)
        parallel = run_sweep(points, store=ResultStore(tmp_path), workers=3)
        assert serial.ok and parallel.ok
        assert parallel.executed == 4
        assert parallel.results() == serial.results()
        assert [r.seed for r in parallel.records] == [r.seed for r in serial.records]

    def test_parallel_timeout_is_captured(self):
        points = expand_grid(get_scenario("test-sleepy"), {"delay": [30.0, 0.01]})
        start = time.monotonic()
        # 2s deadline: enough margin for spawn-worker boot under CI load
        # (the deadline clock starts at submission, not at worker start).
        report = run_sweep(points, store=None, workers=2, task_timeout=2.0)
        assert report.records[0].status == "timeout"
        assert report.records[1].status == "ok"
        # The hung worker is terminated, not joined: run_sweep returns well
        # before the 30s sleep would finish.
        assert time.monotonic() - start < 10.0

    def test_timeout_enforced_with_serial_workers(self):
        points = expand_grid(get_scenario("test-sleepy"), {"delay": [30.0]})
        start = time.monotonic()
        report = run_sweep(points, store=None, workers=1, task_timeout=0.5)
        assert report.records[0].status == "timeout"
        assert time.monotonic() - start < 10.0

    def test_slow_point_does_not_delay_timeout_detection(self):
        # Grid order: a slow-but-finishing point first, a hung point second.
        # Out-of-order collection detects the hang on its own clock instead
        # of only after the point in front has been collected.
        points = expand_grid(get_scenario("test-sleepy"), {"delay": [2.0, 30.0]})
        start = time.monotonic()
        report = run_sweep(
            points, store=None, workers=2, task_timeout=2.5, mp_start_method="fork"
        )
        elapsed = time.monotonic() - start
        assert report.records[0].status == "ok"
        assert report.records[1].status == "timeout"
        # In-grid-order collection would need ~2.0s + 2.5s before detecting
        # the hang; independent deadlines detect it at ~2.5s.
        assert elapsed < 4.0

    def test_workers_recycled_with_maxtasksperchild(self):
        points = expand_grid(get_scenario("test-echo"), {"x": [1, 2, 3, 4, 5]})
        report = run_sweep(
            points, store=None, workers=2, task_timeout=30.0,
            mp_start_method="fork", maxtasksperchild=1,
        )
        assert report.ok and report.executed == 5
        assert [r.result["x"] for r in report.records] == [1, 2, 3, 4, 5]


class TestSpannerSkeletonScenario:
    def test_linear_size_and_stretch_with_quiet_rounds(self):
        points = expand_grid(get_scenario("spanner-skeleton"), {"n": 24})
        report = run_sweep(points, store=None)
        assert report.ok
        result = report.results()[0]
        assert result["linear_size"] and result["within_stretch"]
        assert result["spanner_edges"] < result["m"] or result["m"] < 2 * 24
        # The phased construction is mostly quiet: the event engine must
        # skip a large majority of the dense n x rounds schedule.
        assert result["quiet_fraction"] > 0.5


class TestBoruvkaMstSweepScenario:
    @pytest.mark.parametrize("generator", ["random", "grid", "geometric"])
    def test_exact_mst_on_every_topology_family(self, generator):
        scn = get_scenario("boruvka-mst-sweep")
        params = scn.resolve_params(
            {"n": 25, "generator": generator, "weight_model": "euclidean"}
        )
        result = scn.run(params, seed=9)
        assert result["exact"], result
        assert result["tree_edges"] == result["n"] - 1
        assert result["rounds"] > 0 and result["total_bits"] > 0

    def test_engine_axis_sweeps_identically(self):
        """The engine is a grid axis: every engine must report the same MST
        and the same CONGEST metrics on the same point."""
        scn = get_scenario("boruvka-mst-sweep")
        results = {}
        for engine in ("dense", "event", "parallel", "columnar"):
            params = scn.resolve_params(
                {"n": 16, "generator": "geometric", "weight_model": "distinct",
                 "engine": engine, "engine_threads": 2}
            )
            results[engine] = scn.run(params, seed=5)
        for engine in ("event", "parallel", "columnar"):
            for field in ("tree_weight", "rounds", "total_bits", "total_messages", "exact"):
                assert results[engine][field] == results["dense"][field], (engine, field)

    def test_unknown_generator_and_weight_model_fail_the_point(self):
        scn = get_scenario("boruvka-mst-sweep")
        with pytest.raises(ValueError, match="unknown generator"):
            scn.run(scn.resolve_params({"generator": "bogus"}), seed=0)
        with pytest.raises(ValueError, match="unknown weight model"):
            scn.run(scn.resolve_params({"weight_model": "bogus"}), seed=0)


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in BUILTINS:
            assert name in out

    def test_fig3_acceptance_parallel_then_cached(self, tmp_path, capsys):
        """The acceptance criterion: a parallel multi-point fig3 sweep writes
        JSON records, and a second invocation serves every point from cache."""
        store = str(tmp_path / "store")
        argv = [
            "run", "fig3-mst-tradeoff", "--workers", "4", "--store", store,
            "--set", "n=24", "--set", "aspect_ratio=2.0,64.0,2048.0",
        ]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "0 cached, 3 executed, 0 failed" in out
        files = list((tmp_path / "store" / "fig3-mst-tradeoff").glob("*.json"))
        assert len(files) == 3
        for path in files:
            record = json.loads(path.read_text())
            assert record["status"] == "ok"
            assert {"elkin_rounds", "gkp_rounds", "combined_rounds"} <= set(record["result"])

        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "3 cached, 0 executed, 0 failed" in out

    def test_engine_flags_become_grid_axes(self, capsys):
        argv = [
            "run", "boruvka-mst-sweep", "--no-store",
            "--set", "n=12", "--set", "generator=random", "--set", "weight_model=distinct",
            "--engine", "parallel", "--engine-threads", "2",
        ]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "'engine': 'parallel'" in out
        assert "'engine_threads': 2" in out
        # Scenarios without an engine param reject the flag cleanly.
        assert cli_main(["run", "test-echo", "--no-store", "--engine", "dense"]) == 2
        assert "unknown grid axis" in capsys.readouterr().err

    def test_bad_input_gives_clean_error(self, tmp_path, capsys):
        assert cli_main(["run", "test-echo", "--set", "bogus=1", "--store", str(tmp_path)]) == 2
        assert "unknown grid axis" in capsys.readouterr().err
        assert cli_main(["run", "no-such-scenario", "--no-store"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
        assert cli_main(["run", "test-echo", "--set", "x=abc", "--no-store"]) == 2
        assert "invalid literal" in capsys.readouterr().err

    def test_report_shows_error_line_for_failed_records(self, tmp_path, capsys):
        cli_main(["run", "test-always-fails", "--store", str(tmp_path)])
        capsys.readouterr()
        cli_main(["report", "test-always-fails", "--store", str(tmp_path)])
        out = capsys.readouterr().out
        assert "[ERROR]" in out
        assert "-> RuntimeError: deliberate failure" in out

    def test_report(self, tmp_path, capsys):
        store = str(tmp_path)
        cli_main(["run", "test-echo", "--store", store])
        capsys.readouterr()
        assert cli_main(["report", "test-echo", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "2 record(s)" in out
        assert cli_main(["report", "--store", str(tmp_path / "empty")]) == 1
