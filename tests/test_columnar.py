"""Columnar transport unit tests: the struct-of-arrays hot path in isolation.

The cross-engine suite (``test_engine_equivalence.py``) pins whole runs to
the dense reference; these tests drive :class:`ColumnarTransport` directly
against :class:`LinkTransport` on randomised edge workloads, pin the
telemetry events and strict-mode error texts, exercise the numpy-absent
import guard the acceptance criteria require, and check that
:class:`MinEdgeIndex` reproduces the legacy per-neighbour minimum scans
key for key.
"""

import importlib
import random
import sys

import networkx as nx
import pytest

import repro.congest.columnar as columnar
from repro.algorithms.mst import edge_key, run_boruvka_mst
from repro.congest.columnar import ColumnarTransport, MinEdgeIndex, _sum_bits
from repro.congest.network import CongestNetwork, run_program
from repro.congest.node import NodeProgram
from repro.congest.transport import BandwidthExceeded, LinkTransport
from repro.graphs.generators import random_connected_graph
from repro.obs.trace import CollectingTracer


def _drain(transport):
    """One round on either transport, normalised for comparison."""
    inboxes = transport.deliver_round()
    return {
        receiver: [(m.sender, m.payload, m.bits) for m in msgs]
        for receiver, msgs in inboxes.items()
    }


def _random_workload(seed, rounds=40, nodes=6, bandwidth=16):
    """Drive both transports through an identical random send schedule and
    yield (baseline, columnar) after every round for lockstep comparison."""
    rng = random.Random(seed)
    base = LinkTransport(bandwidth, record_messages=True)
    cols = ColumnarTransport(bandwidth, record_messages=True)
    for round_no in range(1, rounds + 1):
        for _ in range(rng.randrange(0, 8)):
            sender, receiver = rng.sample(range(nodes), 2)
            bits = rng.randrange(1, 3 * bandwidth)
            payload = ("p", round_no, sender, receiver, bits)
            base.enqueue(sender, receiver, payload, bits, round_no)
            cols.enqueue(sender, receiver, payload, bits, round_no)
        assert cols.has_outgoing() == base.has_outgoing()
        base.flush()
        cols.flush()
        yield round_no, base, cols


class TestTransportLockstep:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_deliveries_and_metrics_match_baseline(self, seed):
        for round_no, base, cols in _random_workload(seed):
            assert cols.rounds_until_delivery() == base.rounds_until_delivery()
            assert cols.pending_traffic() == base.pending_traffic()
            assert _drain(cols) == _drain(base), round_no
            assert cols.per_round_bits == base.per_round_bits
            assert cols.max_edge_bits_per_round == base.max_edge_bits_per_round
        assert cols.total_messages == base.total_messages
        assert cols.total_bits == base.total_bits
        assert cols.message_log == base.message_log

    def test_drain_then_revive_keeps_baseline_delivery_order(self):
        # An edge that drains and is re-created must complete *after* edges
        # created in between -- the baseline's insertion-ordered link dict
        # behaviour, reproduced columnar-side by the edge creation sequence.
        bw = 8
        base = LinkTransport(bw)
        cols = ColumnarTransport(bw)
        for t in (base, cols):
            t.enqueue(0, 1, "a", bw, 1)
            t.flush()
        assert _drain(cols) == _drain(base)  # edge (0, 1) drains
        for t in (base, cols):
            t.enqueue(2, 1, "b", bw, 2)  # new edge while (0, 1) is dead
            t.enqueue(0, 1, "c", bw, 2)  # (0, 1) revived -- now *after* (2, 1)
            t.flush()
        assert _drain(cols) == _drain(base)

    @pytest.mark.parametrize("seed", [5, 17])
    def test_skip_rounds_matches_baseline(self, seed):
        rng = random.Random(seed)
        bw = 16
        base = LinkTransport(bw)
        cols = ColumnarTransport(bw)
        for round_no in range(1, 12):
            for _ in range(rng.randrange(1, 4)):
                sender, receiver = rng.sample(range(5), 2)
                bits = rng.randrange(bw, 20 * bw)
                base.enqueue(sender, receiver, ("p", round_no), bits, round_no)
                cols.enqueue(sender, receiver, ("p", round_no), bits, round_no)
            base.flush()
            cols.flush()
            gap = base.rounds_until_delivery()
            if gap is not None and gap > 1:
                skip = rng.randrange(1, gap)
                assert cols.skip_rounds(skip) == base.skip_rounds(skip)
            assert _drain(cols) == _drain(base)
            assert cols.per_round_bits == base.per_round_bits
            assert cols.pending_traffic() == base.pending_traffic()

    def test_skip_rounds_crossing_a_delivery_raises(self):
        cols = ColumnarTransport(8)
        cols.enqueue(0, 1, "x", 24, 1)  # 3 rounds to deliver
        cols.flush()
        assert cols.rounds_until_delivery() == 3
        with pytest.raises(RuntimeError, match="crossed a delivery"):
            cols.skip_rounds(3)
        assert cols.skip_rounds(2) == 16
        assert cols.rounds_until_delivery() == 1

    def test_quiet_skip_with_no_traffic(self):
        cols = ColumnarTransport(8)
        assert cols.skip_rounds(4) == 0
        assert cols.per_round_bits == [0, 0, 0, 0]
        assert cols.rounds_until_delivery() is None

    def test_live_edges_tracks_queue_lifecycle(self):
        cols = ColumnarTransport(8)
        cols.enqueue(0, 1, "a", 8, 1)
        cols.enqueue(1, 0, "b", 16, 1)
        cols.flush()
        assert cols.live_edges == 2
        cols.deliver_round()  # (0, 1) drains, (1, 0) still has 8 bits
        assert cols.live_edges == 1
        cols.deliver_round()
        assert cols.live_edges == 0


class TestStrictMode:
    def test_oversized_message_text_matches_baseline(self):
        base = LinkTransport(8, strict=True)
        cols = ColumnarTransport(8, strict=True)
        errors = {}
        for name, transport in (("base", base), ("cols", cols)):
            with pytest.raises(BandwidthExceeded) as info:
                transport.enqueue(0, 1, "big", 9, 1)
            errors[name] = str(info.value)
        assert errors["cols"] == errors["base"]

    def test_per_edge_overflow_text_matches_and_commits_nothing(self):
        base = LinkTransport(8, strict=True)
        cols = ColumnarTransport(8, strict=True)
        errors = {}
        for name, transport in (("base", base), ("cols", cols)):
            transport.enqueue(0, 1, "a", 5, 1)
            transport.enqueue(0, 1, "b", 5, 1)
            with pytest.raises(BandwidthExceeded) as info:
                transport.flush()
            errors[name] = str(info.value)
        assert errors["cols"] == errors["base"]
        # The check raises before the commit: nothing is in flight.
        assert cols.pending_traffic() == base.pending_traffic() == 0
        assert cols.live_edges == 0

    def test_shard_staging_is_rejected(self):
        cols = ColumnarTransport(8)
        with pytest.raises(RuntimeError, match="single-writer"):
            cols.begin_shard_staging()


class TestNumpyPolicy:
    def test_sum_bits_matches_python_sum(self):
        from array import array

        rng = random.Random(0)
        for n in (0, 1, 63, 64, 65, 500):
            col = array("q", [rng.randrange(1, 1 << 40) for _ in range(n)])
            assert _sum_bits(col) == sum(col)

    def test_forced_stdlib_path(self, monkeypatch):
        from array import array

        monkeypatch.setattr(columnar, "_np", None)
        col = array("q", range(1, 200))
        assert _sum_bits(col) == sum(range(1, 200))

    def test_import_survives_numpy_absence(self, monkeypatch):
        """The acceptance guard: with numpy unimportable, the module loads
        and a columnar run still matches the dense reference."""
        for name in list(sys.modules):
            if name == "numpy" or name.startswith("numpy."):
                monkeypatch.delitem(sys.modules, name)
        monkeypatch.setitem(sys.modules, "numpy", None)  # import -> ImportError
        try:
            reloaded = importlib.reload(columnar)
            assert reloaded._np is None
            graph = random_connected_graph(10, seed=3)
            for u, v in graph.edges():
                graph.edges[u, v]["weight"] = float(u * 31 + v + 1)
            edges_dense, dense = run_boruvka_mst(graph, bandwidth=64, seed=0, engine="dense")
            edges_cols, cols = run_boruvka_mst(graph, bandwidth=64, seed=0, engine="columnar")
            assert edges_cols == edges_dense
            assert (cols.rounds, cols.total_bits, cols.per_round_bits) == (
                dense.rounds,
                dense.total_bits,
                dense.per_round_bits,
            )
        finally:
            monkeypatch.undo()
            importlib.reload(columnar)


class TestTelemetry:
    def test_flush_emits_columnar_batch_events(self):
        tracer = CollectingTracer()
        cols = ColumnarTransport(8)
        cols.trace = tracer
        cols.enqueue(0, 1, "a", 4, 1)
        cols.enqueue(1, 2, "b", 4, 1)
        cols.flush()
        cols.flush()  # empty flush: no event
        batches = [e for e in tracer.by_kind("event") if e["name"] == "columnar_batch"]
        assert len(batches) == 1
        assert batches[0]["staged"] == 2
        assert batches[0]["live_edges"] == 2

    def test_engine_run_emits_columnar_summary(self):
        class Chatter(NodeProgram):
            def on_start(self, node):
                node.broadcast(("hi",), bits=8)

            def on_round(self, node, round_no, inbox):
                if round_no >= 3:
                    node.halt(round_no)

        tracer = CollectingTracer()
        graph = nx.path_graph(5)
        run_program(graph, Chatter, bandwidth=8, engine="columnar", trace=tracer)
        summaries = [e for e in tracer.by_kind("event") if e["name"] == "columnar_summary"]
        assert len(summaries) == 1
        assert summaries[0]["flush_batches"] >= 1
        assert summaries[0]["max_batch"] >= 1
        assert summaries[0]["peak_live_edges"] >= 1
        batches = [e for e in tracer.by_kind("event") if e["name"] == "columnar_batch"]
        assert len(batches) == summaries[0]["flush_batches"]

    def test_network_binds_tracer_to_columnar_transport(self):
        tracer = CollectingTracer()
        graph = nx.path_graph(3)
        network = CongestNetwork(graph, NodeProgram, engine="columnar", trace=tracer)
        assert network.transport.trace is tracer
        baseline = CongestNetwork(graph, NodeProgram, engine="event", trace=tracer)
        assert not hasattr(baseline.transport, "trace")


class TestMinEdgeIndex:
    def _weighted(self, n, seed):
        graph = random_connected_graph(n, extra_edge_prob=0.3, seed=seed)
        rng = random.Random(seed + 100)
        for u, v in graph.edges():
            graph.edges[u, v]["weight"] = float(rng.randrange(1, 50))
        return graph

    @pytest.mark.parametrize("seed", [0, 6])
    def test_entries_use_the_canonical_edge_key(self, seed):
        graph = self._weighted(12, seed)
        index = MinEdgeIndex(graph)
        for u in graph.nodes():
            entries = index._incident[u]
            assert [e[0] for e in entries] == sorted(e[0] for e in entries)
            for key, v, v_repr in entries:
                assert key == edge_key(graph.edges[u, v]["weight"], u, v)
                assert v_repr == repr(v)

    @pytest.mark.parametrize("seed", [1, 9])
    def test_min_outgoing_matches_brute_force(self, seed):
        graph = self._weighted(14, seed)
        index = MinEdgeIndex(graph)
        rng = random.Random(seed)
        label_of = {repr(v): rng.randrange(3) for v in graph.nodes()}
        for u in graph.nodes():
            my_label = label_of[repr(u)]
            expected = min(
                (
                    (edge_key(graph.edges[u, v]["weight"], u, v), u, v)
                    for v in graph.neighbors(u)
                    if label_of[repr(v)] != my_label
                ),
                default=None,
            )
            assert index.min_outgoing(u, label_of, my_label) == expected

    @pytest.mark.parametrize("seed", [2, 11])
    def test_min_outgoing_by_repr_matches_brute_force(self, seed):
        graph = self._weighted(14, seed)
        index = MinEdgeIndex(graph)
        rng = random.Random(seed + 1)
        label_of = {repr(v): rng.randrange(3) for v in graph.nodes()}
        for u in graph.nodes():
            my_label = label_of[repr(u)]
            exclude = {repr(v) for v in graph.neighbors(u) if rng.random() < 0.3}
            expected = min(
                (
                    (edge_key(graph.edges[u, v]["weight"], u, v), v, label_of[repr(v)])
                    for v in graph.neighbors(u)
                    if repr(label_of[repr(v)]) != repr(my_label) and repr(v) not in exclude
                ),
                default=None,
            )
            assert index.min_outgoing_by_repr(u, label_of, my_label, exclude) == expected

    def test_network_caches_one_index(self):
        graph = self._weighted(8, 4)
        network = CongestNetwork(graph, NodeProgram, engine="columnar")
        assert network.min_edge_index() is network.min_edge_index()

    def test_opt_in_flag_per_engine(self):
        from repro.congest.engine import get_engine

        assert get_engine("columnar").uses_min_edge_index
        assert not get_engine("event").uses_min_edge_index
        assert not get_engine("dense").uses_min_edge_index
